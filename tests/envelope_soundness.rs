//! Soundness of the two-sided cycle envelopes of `protoacc-absint`: for
//! every fixture schema, randomized hyperbench service, and fleet-traffic
//! prototype, the simulator's measured deserialization AND serialization
//! cycles must sit inside the statically derived `[lower, upper]` envelope.
//!
//! Also covers the satellite edge matrix — nesting at/past the metadata
//! stack depth (spill cycles must stay under the ceiling) and the maximum
//! field number 536,870,911 — and proves the abstract interpretation never
//! reports a weaker floor than lint's original per-record [`static_bound`].

use protoacc_suite::absint::Envelope;
use protoacc_suite::accel::{AccelConfig, ProtoAccelerator};
use protoacc_suite::fleet::traffic::TrafficMix;
use protoacc_suite::hyperbench::{Generator, ServiceProfile};
use protoacc_suite::lint::static_bound;
use protoacc_suite::mem::{MemConfig, Memory};
use protoacc_suite::runtime::{
    object, reference, write_adts, BumpArena, MessageLayouts, MessageValue, Value,
};
use protoacc_suite::schema::{parse_proto, MessageId, Schema};
use protoacc_suite::xrand::StdRng;

/// Measured cycles of one message driven through both units.
struct Measured {
    wire_len: u64,
    deser_cycles: u64,
    ser_cycles: u64,
}

/// Runs `message` through the deserializer (from reference-encoded bytes)
/// and the serializer (from a runtime-written object graph), asserting both
/// are functionally exact, and returns the cycle counts the envelopes must
/// bracket.
fn measure(schema: &Schema, message: &MessageValue, config: &AccelConfig) -> Measured {
    let type_id = message.type_id();
    let layouts = MessageLayouts::compute(schema);
    let mut mem = Memory::new(MemConfig::default());
    // Sparse guest memory: descriptor tables are sized by field-number
    // span, and the max-field-number case needs gigabytes of address space.
    let mut arena = BumpArena::new(0x1_0000, 16 << 30);
    let adts = write_adts(schema, &layouts, &mut mem.data, &mut arena).unwrap();
    let layout = layouts.layout(type_id);

    let wire = reference::encode(message, schema).unwrap();
    mem.data.write_bytes(0x10_0000_0000, &wire);

    let mut accel = ProtoAccelerator::new(*config);
    accel.deser_assign_arena(0x20_0000_0000, 1 << 24);
    let dest = arena.alloc(layout.object_size(), 8).unwrap();
    accel.deser_info(adts.addr(type_id), dest);
    let deser = accel
        .do_proto_deser(
            &mut mem,
            0x10_0000_0000,
            wire.len() as u64,
            layout.min_field(),
        )
        .unwrap();
    let back = object::read_message(&mem.data, schema, &layouts, type_id, dest).unwrap();
    assert!(back.bits_eq(message), "deser round trip");

    let obj = object::write_message(&mut mem.data, schema, &layouts, &mut arena, message).unwrap();
    accel.ser_assign_arena(0x30_0000_0000, 1 << 24, 0x31_0000_0000, 1 << 16);
    accel.ser_info(
        layout.hasbits_offset(),
        layout.min_field(),
        layout.max_field(),
    );
    let ser = accel
        .do_proto_ser(&mut mem, adts.addr(type_id), obj)
        .unwrap();
    assert_eq!(
        mem.data.read_vec(ser.out_addr, ser.out_len as usize),
        wire,
        "ser output is byte-identical to the reference codec"
    );

    Measured {
        wire_len: wire.len() as u64,
        deser_cycles: deser.cycles,
        ser_cycles: ser.cycles,
    }
}

/// Full envelope check for one (schema, instance, config) triple.
fn check_envelopes(schema: &Schema, message: &MessageValue, config: &AccelConfig, label: &str) {
    let mem_cfg = MemConfig::default();
    let layouts = MessageLayouts::compute(schema);
    let id = message.type_id();
    let deser_env = Envelope::deser(schema, &layouts, id, config, &mem_cfg);
    let ser_env = Envelope::ser(schema, &layouts, id, config, &mem_cfg);

    let m = measure(schema, message, config);
    let db = deser_env.bounds(m.wire_len, 1);
    assert!(
        db.contains(m.deser_cycles),
        "{label}: deser {} cycles outside [{}, {}] at {} wire bytes",
        m.deser_cycles,
        db.lower,
        db.upper,
        m.wire_len
    );
    let sb = ser_env.bounds(m.wire_len, 1);
    assert!(
        sb.contains(m.ser_cycles),
        "{label}: ser {} cycles outside [{}, {}] at {} wire bytes",
        m.ser_cycles,
        sb.lower,
        sb.upper,
        m.wire_len
    );
}

fn load(name: &str) -> Schema {
    let path = format!("{}/protos/{name}", env!("CARGO_MANIFEST_DIR"));
    let source = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{path}: {e}"));
    parse_proto(&source).unwrap_or_else(|e| panic!("{name} must parse: {e}"))
}

// ---------------------------------------------------------------------------
// Fixture corpus.
// ---------------------------------------------------------------------------

#[test]
fn addressbook_fixture_stays_inside_both_envelopes() {
    let schema = load("addressbook.proto");
    let person_id = schema.id_by_name("Person").unwrap();
    let phone_id = schema.id_by_name("Person.PhoneNumber").unwrap();
    let book_id = schema.id_by_name("AddressBook").unwrap();
    let mut people = Vec::new();
    for i in 0..4 {
        let mut phone = MessageValue::new(phone_id);
        phone.set_unchecked(1, Value::Str(format!("+44-20-7946-{i:04}")));
        phone.set_unchecked(2, Value::Enum(i % 3));
        let mut person = MessageValue::new(person_id);
        person.set_unchecked(1, Value::Str(format!("Envelope Tester {i}")));
        person.set_unchecked(2, Value::Int32(100 + i));
        person.set_repeated(4, vec![Value::Message(phone)]);
        people.push(Value::Message(person));
    }
    let mut book = MessageValue::new(book_id);
    book.set_repeated(1, people);
    check_envelopes(&schema, &book, &AccelConfig::default(), "addressbook");
}

#[test]
fn telemetry_fixture_stays_inside_both_envelopes() {
    let schema = load("telemetry.proto");
    let point_id = schema.id_by_name("Point").unwrap();
    let series_id = schema.id_by_name("TimeSeries").unwrap();
    let batch_id = schema.id_by_name("ScrapeBatch").unwrap();
    let points = (0..8)
        .map(|i| {
            let mut p = MessageValue::new(point_id);
            p.set_unchecked(1, Value::Fixed64(9_000_000 + i));
            p.set_unchecked(2, Value::Double(i as f64 * 1.5));
            Value::Message(p)
        })
        .collect();
    let mut series = MessageValue::new(series_id);
    series.set_unchecked(1, Value::Str("disk.io.await".into()));
    series.set_repeated(3, points);
    series.set_repeated(12, (0..16).map(|i| Value::Double(i as f64)).collect());
    series.set_repeated(13, (0..32).map(Value::Int64).collect());
    let mut batch = MessageValue::new(batch_id);
    batch.set_unchecked(1, Value::Fixed64(7));
    batch.set_repeated(2, vec![Value::Message(series)]);
    check_envelopes(&schema, &batch, &AccelConfig::default(), "telemetry");
}

#[test]
fn storage_row_fixture_stays_inside_both_envelopes() {
    let schema = load("storage_row.proto");
    let row_id = schema.id_by_name("Row").unwrap();
    let tablet_id = schema.id_by_name("Tablet").unwrap();
    let mut row = MessageValue::new(row_id);
    row.set_unchecked(1, Value::Bytes(b"leaf".to_vec()));
    for i in 0..5 {
        let mut outer = MessageValue::new(row_id);
        outer.set_unchecked(1, Value::Bytes(format!("shadow-{i}").into_bytes()));
        outer.set_unchecked(15, Value::Message(row));
        row = outer;
    }
    let mut tablet = MessageValue::new(tablet_id);
    tablet.set_unchecked(1, Value::Str("tablet-0".into()));
    tablet.set_repeated(2, vec![Value::Message(row)]);
    check_envelopes(&schema, &tablet, &AccelConfig::default(), "storage_row");
}

// ---------------------------------------------------------------------------
// Randomized populations.
// ---------------------------------------------------------------------------

/// xrand-randomized hyperbench services: six schema shapes, several seeds,
/// every generated message checked in both directions.
#[test]
fn randomized_hyperbench_messages_stay_inside_envelopes() {
    use protoacc_suite::xrand::Rng;
    let mut seed_rng = StdRng::seed_from_u64(0xE57E_107E);
    for service in 0..6 {
        for round in 0..2 {
            let seed = seed_rng.gen::<u64>();
            let bench = Generator::new(ServiceProfile::bench(service), seed).generate(2);
            for (i, m) in bench.messages.iter().enumerate() {
                check_envelopes(
                    &bench.schema,
                    m,
                    &AccelConfig::default(),
                    &format!("hyperbench service {service} round {round} msg {i}"),
                );
            }
        }
    }
}

/// The serve workload's own prototype population: every fleet-traffic
/// prototype — the exact messages `serve_tail_latency --sanitize` replays —
/// is bracketed in both directions.
#[test]
fn traffic_mix_prototypes_stay_inside_envelopes() {
    let mut rng = StdRng::seed_from_u64(0xF1EE7);
    let mix = TrafficMix::build(&mut rng, 12);
    for (i, p) in mix.prototypes.iter().enumerate() {
        check_envelopes(
            &mix.schema,
            &p.message,
            &AccelConfig::default(),
            &format!("traffic prototype {i}"),
        );
    }
}

// ---------------------------------------------------------------------------
// Edge matrix.
// ---------------------------------------------------------------------------

/// A linear chain of `n` message types, as in the lint cross-validation.
fn chain_schema(n: usize) -> Schema {
    let mut src = String::new();
    for i in 0..n {
        if i + 1 < n {
            src.push_str(&format!(
                "message M{i} {{ optional M{} next = 1; }}\n",
                i + 1
            ));
        } else {
            src.push_str(&format!("message M{i} {{ optional uint32 leaf = 1; }}\n"));
        }
    }
    parse_proto(&src).unwrap()
}

fn chain_instance(schema: &Schema, depth: usize) -> MessageValue {
    let id = |i: usize| -> MessageId { schema.id_by_name(&format!("M{i}")).unwrap() };
    let mut inner = MessageValue::new(id(depth - 1));
    if depth == schema.len() {
        inner.set_unchecked(1, Value::UInt32(7));
    }
    for i in (0..depth - 1).rev() {
        let mut outer = MessageValue::new(id(i));
        outer.set_unchecked(1, Value::Message(inner));
        inner = outer;
    }
    inner
}

/// Nesting at the stack depth (no spill), and one past it (every push
/// spills): the spill cycles must stay under the static ceiling, and the
/// floor must hold on the tiny spilling input too.
#[test]
fn stack_depth_boundary_stays_inside_envelopes() {
    let config = AccelConfig::default();
    let chain_len = config.stack_depth + 1;
    let schema = chain_schema(chain_len);
    for depth in [config.stack_depth - 1, config.stack_depth, chain_len] {
        let message = chain_instance(&schema, depth);
        assert_eq!(message.depth(), depth);
        check_envelopes(&schema, &message, &config, &format!("chain depth {depth}"));
    }
}

/// The maximum legal field number (2^29 - 1) forces 5-byte wire keys and
/// the widest descriptor span. The serializer frontend scans the whole
/// span, so simulating it takes minutes; the deserializer does not, so the
/// deser envelope is checked at the true maximum and the two-sided check
/// runs on a still-PA002-wide but simulable span.
#[test]
fn max_field_number_stays_inside_deser_envelope() {
    let config = AccelConfig::default();
    let mem_cfg = MemConfig::default();
    let schema =
        parse_proto("message Extreme { optional uint64 lo = 1; optional uint64 hi = 536870911; }")
            .unwrap();
    let id = schema.id_by_name("Extreme").unwrap();
    let mut message = MessageValue::new(id);
    message.set_unchecked(1, Value::UInt64(1));
    message.set_unchecked(536_870_911, Value::UInt64(u64::MAX));

    let layouts = MessageLayouts::compute(&schema);
    let mut mem = Memory::new(MemConfig::default());
    let mut arena = BumpArena::new(0x1_0000, 16 << 30);
    let adts = write_adts(&schema, &layouts, &mut mem.data, &mut arena).unwrap();
    let layout = layouts.layout(id);
    let wire = reference::encode(&message, &schema).unwrap();
    mem.data.write_bytes(0x10_0000_0000, &wire);
    let mut accel = ProtoAccelerator::new(config);
    accel.deser_assign_arena(0x20_0000_0000, 1 << 24);
    let dest = arena.alloc(layout.object_size(), 8).unwrap();
    accel.deser_info(adts.addr(id), dest);
    let run = accel
        .do_proto_deser(
            &mut mem,
            0x10_0000_0000,
            wire.len() as u64,
            layout.min_field(),
        )
        .unwrap();
    let back = object::read_message(&mem.data, &schema, &layouts, id, dest).unwrap();
    assert!(back.bits_eq(&message), "deser round trip");

    let env = Envelope::deser(&schema, &layouts, id, &config, &mem_cfg);
    let b = env.bounds(wire.len() as u64, 1);
    assert!(
        b.contains(run.cycles),
        "max field number: deser {} cycles outside [{}, {}]",
        run.cycles,
        b.lower,
        b.upper
    );
}

/// A wide-but-simulable field number (still far past the 2-byte key fast
/// path) gets the full two-sided check in both directions.
#[test]
fn wide_field_number_stays_inside_both_envelopes() {
    let schema =
        parse_proto("message Wide { optional uint64 lo = 1; optional uint64 hi = 300000; }")
            .unwrap();
    let id = schema.id_by_name("Wide").unwrap();
    let mut message = MessageValue::new(id);
    message.set_unchecked(1, Value::UInt64(1));
    message.set_unchecked(300_000, Value::UInt64(u64::MAX));
    check_envelopes(
        &schema,
        &message,
        &AccelConfig::default(),
        "wide field number",
    );
}

#[test]
fn empty_message_envelope_is_tight_at_zero_bytes() {
    let schema = parse_proto("message Empty {}").unwrap();
    let id = schema.id_by_name("Empty").unwrap();
    let message = MessageValue::new(id);
    check_envelopes(&schema, &message, &AccelConfig::default(), "empty message");
}

/// Emits the envelope-tightness table of EXPERIMENTS.md: per fixture root
/// type, the `[lower, upper]` envelopes at the measured wire length, the
/// measured cycles, and the upper/lower ratio. Run with
/// `cargo test --test envelope_soundness -- --ignored --nocapture`.
#[test]
#[ignore = "report generator, not a check"]
fn envelope_tightness_report() {
    let accel = AccelConfig::default();
    let mem_cfg = MemConfig::default();
    let fixtures: Vec<(&str, Schema, MessageValue)> = vec![
        {
            let schema = load("addressbook.proto");
            let person_id = schema.id_by_name("Person").unwrap();
            let book_id = schema.id_by_name("AddressBook").unwrap();
            let mut person = MessageValue::new(person_id);
            person.set_unchecked(1, Value::Str("Report Person".into()));
            person.set_unchecked(2, Value::Int32(1));
            let mut book = MessageValue::new(book_id);
            book.set_repeated(1, vec![Value::Message(person)]);
            ("AddressBook", schema, book)
        },
        {
            let schema = load("telemetry.proto");
            let series_id = schema.id_by_name("TimeSeries").unwrap();
            let batch_id = schema.id_by_name("ScrapeBatch").unwrap();
            let mut series = MessageValue::new(series_id);
            series.set_unchecked(1, Value::Str("cpu.user".into()));
            series.set_repeated(13, (0..16).map(Value::Int64).collect());
            let mut batch = MessageValue::new(batch_id);
            batch.set_unchecked(1, Value::Fixed64(1));
            batch.set_repeated(2, vec![Value::Message(series)]);
            ("ScrapeBatch", schema, batch)
        },
        {
            let schema = load("storage_row.proto");
            let row_id = schema.id_by_name("Row").unwrap();
            let tablet_id = schema.id_by_name("Tablet").unwrap();
            let mut row = MessageValue::new(row_id);
            row.set_unchecked(1, Value::Bytes(b"key".to_vec()));
            let mut tablet = MessageValue::new(tablet_id);
            tablet.set_unchecked(1, Value::Str("t".into()));
            tablet.set_repeated(2, vec![Value::Message(row)]);
            ("Tablet", schema, tablet)
        },
    ];
    println!("| fixture | wire B | deser [lo, hi] | measured | ratio | ser [lo, hi] | measured | ratio |");
    println!("|---|---|---|---|---|---|---|---|");
    for (name, schema, message) in &fixtures {
        let layouts = MessageLayouts::compute(schema);
        let id = message.type_id();
        let denv = Envelope::deser(schema, &layouts, id, &accel, &mem_cfg);
        let senv = Envelope::ser(schema, &layouts, id, &accel, &mem_cfg);
        let m = measure(schema, message, &accel);
        let db = denv.bounds(m.wire_len, 1);
        let sb = senv.bounds(m.wire_len, 1);
        println!(
            "| {name} | {} | [{}, {}] | {} | {:.0}x | [{}, {}] | {} | {:.0}x |",
            m.wire_len,
            db.lower,
            db.upper,
            m.deser_cycles,
            db.ratio(),
            sb.lower,
            sb.upper,
            m.ser_cycles,
            sb.ratio()
        );
    }
}

// ---------------------------------------------------------------------------
// The abstract interpretation sharpens (never weakens) lint's floor.
// ---------------------------------------------------------------------------

#[test]
fn absint_floor_dominates_lint_floor_at_every_length() {
    let accel = AccelConfig::default();
    let mem_cfg = MemConfig::default();
    for file in ["addressbook.proto", "telemetry.proto", "storage_row.proto"] {
        let schema = load(file);
        let layouts = MessageLayouts::compute(&schema);
        for (id, msg) in schema.iter() {
            let env = Envelope::deser(&schema, &layouts, id, &accel, &mem_cfg);
            let bound = static_bound(&schema, id, &accel);
            for len in [0u64, 1, 15, 16, 17, 255, 256, 4096, 1 << 20] {
                assert!(
                    env.lower_bound(len) >= bound.lower_bound(len),
                    "{file}/{}: absint floor {} < lint floor {} at {len} bytes",
                    msg.name(),
                    env.lower_bound(len),
                    bound.lower_bound(len)
                );
            }
        }
    }
}
