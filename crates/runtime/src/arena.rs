//! Bump-pointer arena allocation in guest memory.
//!
//! Arena allocation (Section 2.3) reduces message construction/destruction
//! overheads by pre-allocating a large region; individual allocations become
//! a pointer increment. Both the software runtime ("software arenas") and
//! the accelerator ("accelerator arenas", Section 4.3) use this mechanism;
//! the paper's `{ser,deser}_assign_arena` instructions hand one of these to
//! the accelerator.

use std::error::Error;
use std::fmt;

/// Error produced by arena allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum ArenaError {
    /// The arena has insufficient remaining space.
    Exhausted {
        /// Bytes requested.
        requested: u64,
        /// Bytes remaining.
        remaining: u64,
    },
}

impl fmt::Display for ArenaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArenaError::Exhausted {
                requested,
                remaining,
            } => write!(
                f,
                "arena exhausted: requested {requested} bytes, {remaining} remain"
            ),
        }
    }
}

impl Error for ArenaError {}

/// A bump allocator over a fixed guest-memory region.
///
/// ```rust
/// use protoacc_runtime::BumpArena;
/// let mut arena = BumpArena::new(0x10_0000, 4096);
/// let a = arena.alloc(24, 8)?;
/// let b = arena.alloc(1, 1)?;
/// assert_eq!(a, 0x10_0000);
/// assert_eq!(b, a + 24);
/// # Ok::<(), protoacc_runtime::ArenaError>(())
/// ```
#[derive(Debug, Clone)]
pub struct BumpArena {
    base: u64,
    len: u64,
    cursor: u64,
    allocations: u64,
}

impl BumpArena {
    /// Creates an arena covering `[base, base + len)`.
    pub fn new(base: u64, len: u64) -> Self {
        BumpArena {
            base,
            len,
            cursor: base,
            allocations: 0,
        }
    }

    /// Allocates `size` bytes aligned to `align` (a power of two).
    ///
    /// # Errors
    ///
    /// [`ArenaError::Exhausted`] when the region cannot satisfy the request.
    ///
    /// # Panics
    ///
    /// Panics if `align` is not a power of two.
    pub fn alloc(&mut self, size: u64, align: u64) -> Result<u64, ArenaError> {
        assert!(align.is_power_of_two(), "alignment must be a power of two");
        let aligned = (self.cursor + align - 1) & !(align - 1);
        let end = aligned.checked_add(size).ok_or(ArenaError::Exhausted {
            requested: size,
            remaining: self.remaining(),
        })?;
        if end > self.base + self.len {
            return Err(ArenaError::Exhausted {
                requested: size,
                remaining: self.remaining(),
            });
        }
        self.cursor = end;
        self.allocations += 1;
        Ok(aligned)
    }

    /// Base address of the region.
    pub fn base(&self) -> u64 {
        self.base
    }

    /// Total region size in bytes.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// Whether the region has zero capacity.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Bytes not yet allocated.
    pub fn remaining(&self) -> u64 {
        self.base + self.len - self.cursor
    }

    /// Bytes handed out so far (including alignment padding).
    pub fn used(&self) -> u64 {
        self.cursor - self.base
    }

    /// Number of successful allocations.
    pub fn allocations(&self) -> u64 {
        self.allocations
    }

    /// Resets the arena to empty, invalidating all prior allocations
    /// (the O(1) bulk-free that makes arenas attractive).
    pub fn reset(&mut self) {
        self.cursor = self.base;
        self.allocations = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bump_allocation_is_contiguous() {
        let mut a = BumpArena::new(1000, 100);
        assert_eq!(a.alloc(10, 1).unwrap(), 1000);
        assert_eq!(a.alloc(10, 1).unwrap(), 1010);
        assert_eq!(a.used(), 20);
        assert_eq!(a.remaining(), 80);
        assert_eq!(a.allocations(), 2);
    }

    #[test]
    fn alignment_pads_the_cursor() {
        let mut a = BumpArena::new(1000, 100);
        a.alloc(3, 1).unwrap();
        let p = a.alloc(8, 8).unwrap();
        assert_eq!(p % 8, 0);
        assert_eq!(p, 1008);
    }

    #[test]
    fn exhaustion_is_reported() {
        let mut a = BumpArena::new(0, 16);
        a.alloc(10, 1).unwrap();
        let err = a.alloc(10, 1).unwrap_err();
        assert_eq!(
            err,
            ArenaError::Exhausted {
                requested: 10,
                remaining: 6
            }
        );
    }

    #[test]
    fn reset_reclaims_everything() {
        let mut a = BumpArena::new(0, 16);
        a.alloc(16, 1).unwrap();
        assert_eq!(a.remaining(), 0);
        a.reset();
        assert_eq!(a.remaining(), 16);
        assert_eq!(a.allocations(), 0);
        assert_eq!(a.alloc(16, 1).unwrap(), 0);
    }

    #[test]
    fn zero_size_allocations_succeed() {
        let mut a = BumpArena::new(8, 8);
        let p = a.alloc(0, 8).unwrap();
        assert_eq!(p, 8);
        assert_eq!(a.used(), 0);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_alignment_panics() {
        let mut a = BumpArena::new(0, 16);
        let _ = a.alloc(1, 3);
    }
}
