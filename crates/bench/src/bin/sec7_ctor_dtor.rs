//! Section 7 study: constructor and destructor cycles.
//!
//! Figure 2 attributes 6.4% of fleet protobuf cycles to constructors and
//! 13.9% to destructors. The paper notes the accelerator already absorbs
//! deserialization-side construction (it allocates and initializes
//! sub-message objects itself), and destructor cost "can be addressed in
//! software by fully migrating to arenas, which the accelerator already
//! supports" (reset is a pointer move). This study puts cycles on both
//! claims.

use hyperprotobench::{Generator, ServiceProfile};
use protoacc::{AccelConfig, ProtoAccelerator};
use protoacc_cpu::CostTable;
use protoacc_fleet::gwp::{FleetProfile, ProtoOp};
use protoacc_mem::{AccessKind, MemConfig, Memory};
use protoacc_runtime::{reference, write_adts, BumpArena, MessageLayouts, MessageValue, Value};

/// CPU cycles to heap-construct the object graph of one message: one
/// malloc + ctor per message object, one per string, plus field zeroing.
fn cpu_construct_cycles(cost: &CostTable, m: &MessageValue) -> u64 {
    let mut cycles = cost.alloc + cost.message_construct;
    for (_, payload) in m.iter() {
        for v in payload.values() {
            match v {
                Value::Message(sub) => cycles += cpu_construct_cycles(cost, sub),
                Value::Str(_) | Value::Bytes(_) => {
                    cycles += cost.alloc + cost.string_construct;
                }
                _ => cycles += cost.fixed_op,
            }
        }
    }
    cycles
}

/// CPU cycles to destruct the same graph: one free + dtor call per object
/// and string (roughly symmetric with construction in tcmalloc-class
/// allocators).
fn cpu_destruct_cycles(cost: &CostTable, m: &MessageValue) -> u64 {
    let mut cycles = cost.alloc / 2 + cost.message_construct / 2;
    for (_, payload) in m.iter() {
        for v in payload.values() {
            match v {
                Value::Message(sub) => cycles += cpu_destruct_cycles(cost, sub),
                Value::Str(_) | Value::Bytes(_) => cycles += cost.alloc / 2,
                _ => {}
            }
        }
    }
    cycles
}

fn main() {
    let bench = Generator::new(ServiceProfile::bench(0), 0xC7D7).generate(64);
    let cost = CostTable::boom();
    let mut ctor = 0u64;
    let mut dtor = 0u64;
    for m in &bench.messages {
        ctor += cpu_construct_cycles(&cost, m);
        dtor += cpu_destruct_cycles(&cost, m);
    }

    // Accelerated path: deserialization *includes* all internal object
    // construction; destruction is an arena reset.
    let layouts = MessageLayouts::compute(&bench.schema);
    let mut mem = Memory::new(MemConfig::default());
    let mut setup = BumpArena::new(0x1_0000, 1 << 26);
    let adts = write_adts(&bench.schema, &layouts, &mut mem.data, &mut setup).unwrap();
    let mut accel = ProtoAccelerator::new(AccelConfig::default());
    accel.deser_assign_arena(0x1_0000_0000, 1 << 28);
    let layout = layouts.layout(bench.type_id);
    let mut deser_cycles = 0u64;
    let mut cursor = 0x2000_0000u64;
    for m in &bench.messages {
        let wire = reference::encode(m, &bench.schema).unwrap();
        mem.data.write_bytes(cursor, &wire);
        let dest = setup.alloc(layout.object_size(), 8).unwrap();
        accel.deser_info(adts.addr(bench.type_id), dest);
        let run = accel
            .do_proto_deser(&mut mem, cursor, wire.len() as u64, layout.min_field())
            .unwrap();
        deser_cycles += run.cycles;
        cursor += wire.len() as u64 + 32;
    }
    // Arena "destruction": one bump-pointer reset for the whole batch, plus
    // the hasbits of the top-level objects if they are to be reused.
    let arena_reset_cycles = 1 + mem.system.access(0x1_0000_0000, 8, AccessKind::Write);

    println!(
        "Section 7: constructor/destructor cycles (bench0, {} messages)",
        bench.messages.len()
    );
    println!("CPU heap construction:            {ctor:>10} cycles");
    println!("CPU heap destruction:             {dtor:>10} cycles");
    println!("accel deser (construction incl.): {deser_cycles:>10} cycles");
    println!("accel arena reset (destruction):  {arena_reset_cycles:>10} cycles");
    println!();
    let profile = FleetProfile::google_2021();
    println!(
        "fleet context (Figure 2): constructors are {:.1}% and destructors {:.1}% of C++ \
         protobuf cycles; the accelerator absorbs sub-message construction inside \
         deserialization and reduces batch destruction to an O(1) arena reset",
        profile.share(ProtoOp::Construct) * 100.0,
        profile.share(ProtoOp::Destruct) * 100.0
    );
    println!(
        "construction+destruction eliminated per batch: {} cycles ({:.1}% of the accelerated \
         deserialization cost)",
        ctor + dtor - arena_reset_cycles,
        (ctor + dtor) as f64 / deser_cycles as f64 * 100.0
    );
}
