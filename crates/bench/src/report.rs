//! Result aggregation and formatting.

use crate::{Measurement, SystemKind};

/// Geometric mean of a set of positive values; 0 if empty.
pub fn geomean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = values.iter().map(|v| v.max(1e-12).ln()).sum();
    (log_sum / values.len() as f64).exp()
}

/// Accelerator speedups over the two baselines, aggregated over a benchmark
/// group (the paper's headline metrics).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Speedups {
    /// Geomean accelerated throughput / geomean riscv-boom throughput.
    pub vs_boom: f64,
    /// Geomean accelerated throughput / geomean Xeon throughput.
    pub vs_xeon: f64,
}

impl Speedups {
    /// Computes speedups from per-workload rows of `(boom, xeon, accel)`
    /// throughputs, matching the paper's per-benchmark-then-geomean
    /// aggregation.
    pub fn from_rows(rows: &[(f64, f64, f64)]) -> Speedups {
        let vs_boom: Vec<f64> = rows.iter().map(|&(b, _, a)| a / b).collect();
        let vs_xeon: Vec<f64> = rows.iter().map(|&(_, x, a)| a / x).collect();
        Speedups {
            vs_boom: geomean(&vs_boom),
            vs_xeon: geomean(&vs_xeon),
        }
    }
}

/// Formats a Figure 11/12/13-style table: one row per benchmark, one column
/// per system, in Gbits/s, followed by a geomean row.
pub fn format_gbits_table(rows: &[(String, Vec<Measurement>)]) -> String {
    let mut out = String::new();
    out.push_str(&format!("{:<22}", "Benchmark"));
    for system in SystemKind::ALL {
        out.push_str(&format!("{:>18}", system.label()));
    }
    out.push('\n');
    let mut columns: Vec<Vec<f64>> = vec![Vec::new(); SystemKind::ALL.len()];
    for (name, measurements) in rows {
        out.push_str(&format!("{name:<22}"));
        for (i, system) in SystemKind::ALL.iter().enumerate() {
            let m = measurements
                .iter()
                .find(|m| m.system == *system)
                .expect("every system measured");
            columns[i].push(m.gbits);
            out.push_str(&format!("{:>18.3}", m.gbits));
        }
        out.push('\n');
    }
    out.push_str(&format!("{:<22}", "geomean"));
    for column in &columns {
        out.push_str(&format!("{:>18.3}", geomean(column)));
    }
    out.push('\n');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_basics() {
        assert_eq!(geomean(&[]), 0.0);
        assert!((geomean(&[4.0]) - 4.0).abs() < 1e-12);
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert!((geomean(&[2.0, 8.0]) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn speedups_from_rows() {
        let rows = [(1.0, 2.0, 8.0), (2.0, 2.0, 8.0)];
        let s = Speedups::from_rows(&rows);
        // vs boom: geomean(8, 4) = sqrt(32); vs xeon: geomean(4,4) = 4.
        assert!((s.vs_boom - 32f64.sqrt()).abs() < 1e-9);
        assert!((s.vs_xeon - 4.0).abs() < 1e-9);
    }

    #[test]
    fn table_contains_all_systems_and_geomean() {
        let rows = vec![(
            "w1".to_owned(),
            SystemKind::ALL
                .iter()
                .map(|&system| Measurement {
                    system,
                    cycles: 100,
                    wire_bytes: 100,
                    gbits: 5.0,
                })
                .collect(),
        )];
        let table = format_gbits_table(&rows);
        assert!(table.contains("riscv-boom-accel"));
        assert!(table.contains("geomean"));
        assert!(table.contains("5.000"));
    }
}
