//! Property-based tests for the wire-format primitives.

use proptest::prelude::*;
use protoacc_wire::hw::{CombVarintDecoder, CombVarintEncoder};
use protoacc_wire::{varint, zigzag, FieldKey, WireReader, WireType, WireWriter};

proptest! {
    #[test]
    fn varint_round_trips(v in any::<u64>()) {
        let mut buf = Vec::new();
        let n = varint::encode(v, &mut buf);
        prop_assert_eq!(n, varint::encoded_len(v));
        let (decoded, consumed) = varint::decode(&buf).unwrap();
        prop_assert_eq!(decoded, v);
        prop_assert_eq!(consumed, n);
    }

    #[test]
    fn hardware_and_software_varint_agree(v in any::<u64>()) {
        let mut sw = Vec::new();
        varint::encode(v, &mut sw);
        let hw = CombVarintEncoder::encode(v);
        prop_assert_eq!(hw.as_slice(), sw.as_slice());
        let dec = CombVarintDecoder::decode_avail(&sw).unwrap();
        prop_assert_eq!(dec.value, v);
    }

    #[test]
    fn zigzag_round_trips(v in any::<i64>(), w in any::<i32>()) {
        prop_assert_eq!(zigzag::decode64(zigzag::encode64(v)), v);
        prop_assert_eq!(zigzag::decode32(zigzag::encode32(w)), w);
    }

    #[test]
    fn zigzag_small_magnitude_stays_small(v in -64i64..64) {
        // Zigzag keeps |v| < 64 within one varint byte.
        prop_assert_eq!(varint::encoded_len(zigzag::encode64(v)), 1);
    }

    #[test]
    fn field_key_round_trips(number in 1u32..=protoacc_wire::MAX_FIELD_NUMBER, raw_wt in 0u8..=5) {
        let wt = WireType::from_raw(raw_wt).unwrap();
        let key = FieldKey::new(number, wt).unwrap();
        let back = FieldKey::from_encoded(key.encoded()).unwrap();
        prop_assert_eq!(back, key);
    }

    #[test]
    fn writer_reader_round_trip_mixed_fields(
        fields in prop::collection::vec(
            (1u32..1000, prop_oneof![
                any::<u64>().prop_map(Field::Varint),
                any::<u64>().prop_map(Field::Fixed64),
                any::<u32>().prop_map(Field::Fixed32),
                prop::collection::vec(any::<u8>(), 0..64).prop_map(Field::Bytes),
            ]),
            0..32,
        )
    ) {
        let mut w = WireWriter::new();
        for (num, field) in &fields {
            match field {
                Field::Varint(v) => w.write_varint_field(*num, *v).unwrap(),
                Field::Fixed64(v) => w.write_fixed64_field(*num, *v).unwrap(),
                Field::Fixed32(v) => w.write_fixed32_field(*num, *v).unwrap(),
                Field::Bytes(b) => w.write_length_delimited_field(*num, b).unwrap(),
            }
        }
        let buf = w.into_bytes();
        let mut r = WireReader::new(&buf);
        for (num, field) in &fields {
            let key = r.read_key().unwrap();
            prop_assert_eq!(key.field_number(), *num);
            match field {
                Field::Varint(v) => prop_assert_eq!(r.read_varint().unwrap(), *v),
                Field::Fixed64(v) => prop_assert_eq!(r.read_fixed64().unwrap(), *v),
                Field::Fixed32(v) => prop_assert_eq!(r.read_fixed32().unwrap(), *v),
                Field::Bytes(b) => prop_assert_eq!(r.read_length_delimited().unwrap(), b.as_slice()),
            }
        }
        prop_assert!(r.is_at_end());
    }

    #[test]
    fn truncation_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..64)) {
        // Decoding arbitrary garbage must fail gracefully, never panic.
        let mut r = WireReader::new(&bytes);
        while !r.is_at_end() {
            match r.read_key() {
                Ok(key) => {
                    if r.skip_value(key.wire_type()).is_err() {
                        break;
                    }
                }
                Err(_) => break,
            }
        }
    }
}

#[derive(Debug, Clone)]
enum Field {
    Varint(u64),
    Fixed64(u64),
    Fixed32(u32),
    Bytes(Vec<u8>),
}
