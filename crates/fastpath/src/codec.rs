//! The fast-path codec: SWAR-varint decode through precompiled dispatch
//! tables into an arena, and reverse-order (memwriter) serialization.
//!
//! [`FastCodec`] is `Codec`-shaped like [`protoacc_cpu`'s software codec]
//! and is held to that codec's *exact* observable semantics: byte-identical
//! encodes, identical accept/reject verdicts (same `RuntimeError` classes,
//! hence same `DecodeFault` mapping) on every corruption class, identical
//! value trees on accepts. Every divergence the differential suite surfaces
//! is a bug in one of the two engines and gets fixed in place, not papered
//! over.
//!
//! [`protoacc_cpu`'s software codec]: https://github.com/ — crates/cpu

use crate::arena::{pack_str, unpack_str, DecodeArena};
use crate::dispatch::{CompiledSchema, FieldEntry, Op};
use crate::reverse::ReverseWriter;
use crate::swar;
use protoacc_runtime::object::value_from_bits;
use protoacc_runtime::reference::MAX_DECODE_DEPTH;
use protoacc_runtime::{FieldPayload, MessageValue, RuntimeError, Value, REPEATED_HEADER_BYTES};
use protoacc_schema::{FieldType, MessageId, Schema};
use protoacc_wire::{zigzag, FieldKey, WireError, WireType};

/// A compiled, reusable fast-path codec for one schema.
#[derive(Debug, Clone)]
pub struct FastCodec {
    compiled: CompiledSchema,
}

/// Accumulator for one repeated field within one message frame.
struct RepAccum {
    number: u32,
    elems: Vec<u64>,
}

/// Decode state shared down the recursion: the compiled schema plus a
/// recycling pool for repeated-field element buffers, so steady-state decode
/// of repeated-heavy messages does no per-frame heap allocation.
struct Decoder<'c> {
    cs: &'c CompiledSchema,
    pool: Vec<Vec<u64>>,
}

impl FastCodec {
    /// Compiles `schema` into dispatch tables.
    pub fn new(schema: &Schema) -> Self {
        FastCodec {
            compiled: CompiledSchema::compile(schema),
        }
    }

    /// The compiled schema backing this codec.
    pub fn compiled(&self) -> &CompiledSchema {
        &self.compiled
    }

    /// The source schema.
    pub fn schema(&self) -> &Schema {
        self.compiled.schema()
    }

    /// Decodes `input` as one `type_id` message into `arena`, returning the
    /// root object's offset. The arena is reset first; string and bytes
    /// fields borrow from `input`, so `input` must stay alive (and
    /// unmodified) as long as the decoded object is read.
    ///
    /// # Errors
    ///
    /// The same `RuntimeError` classes as `crates/cpu`'s
    /// `SoftwareCodec::deser_message` on the same inputs — that equivalence
    /// is the differential suite's core invariant.
    pub fn decode(
        &self,
        type_id: MessageId,
        input: &[u8],
        arena: &mut DecodeArena,
    ) -> Result<u32, RuntimeError> {
        arena.reset();
        let cm = self.compiled.message(type_id);
        let obj = arena.alloc_zeroed(cm.object_size as usize)?;
        let mut dec = Decoder {
            cs: &self.compiled,
            pool: Vec::new(),
        };
        dec.frame(arena, input, 0, input.len(), type_id, obj, 0)?;
        Ok(obj)
    }

    /// Decodes and immediately converts to a [`MessageValue`] tree.
    ///
    /// # Errors
    ///
    /// Same classification as [`FastCodec::decode`].
    pub fn decode_to_value(
        &self,
        type_id: MessageId,
        input: &[u8],
        arena: &mut DecodeArena,
    ) -> Result<MessageValue, RuntimeError> {
        let obj = self.decode(type_id, input, arena)?;
        Ok(self.to_value(type_id, input, arena, obj))
    }

    /// Converts a decoded arena object back into a [`MessageValue`] tree.
    /// `input` must be the buffer the object was decoded from (string slots
    /// borrow from it).
    pub fn to_value(
        &self,
        type_id: MessageId,
        input: &[u8],
        arena: &DecodeArena,
        obj: u32,
    ) -> MessageValue {
        let cm = self.compiled.message(type_id);
        let descriptor = self.compiled.schema().message(type_id);
        let mut message = MessageValue::new(type_id);
        for &number in &cm.numbers {
            let entry = cm.entry(number).expect("listed number has an entry");
            if !arena.bit(
                obj + cm.hasbits_offset + entry.hasbit_byte,
                entry.hasbit_mask,
            ) {
                continue;
            }
            let ft = descriptor
                .field_by_number(number)
                .expect("listed number is in the descriptor")
                .field_type();
            let slot = obj + entry.slot_offset;
            if entry.repeated {
                let header = arena.read_u64(slot) as u32;
                let data = arena.read_u64(header) as u32;
                let count = arena.read_u64(header + 8) as usize;
                let elem = u32::from(entry.elem_size);
                let values = (0..count)
                    .map(|i| self.elem_value(ft, entry, input, arena, data + i as u32 * elem))
                    .collect();
                message.set_repeated(number, values);
            } else {
                let value = match entry.op {
                    Op::Bytes => borrowed_value(ft, input, arena.read_u64(slot)),
                    Op::Msg => {
                        let sub = entry.sub.expect("Msg op has a sub type");
                        let sub_obj = arena.read_u64(slot) as u32;
                        Value::Message(self.to_value(sub, input, arena, sub_obj))
                    }
                    _ => value_from_bits(ft, arena.read_scalar(slot, entry.elem_size as usize)),
                };
                message.set_unchecked(number, value);
            }
        }
        message
    }

    /// One repeated element from the arena's element array.
    fn elem_value(
        &self,
        ft: FieldType,
        entry: &FieldEntry,
        input: &[u8],
        arena: &DecodeArena,
        at: u32,
    ) -> Value {
        match entry.op {
            Op::Bytes => borrowed_value(ft, input, arena.read_u64(at)),
            Op::Msg => {
                let sub = entry.sub.expect("Msg op has a sub type");
                Value::Message(self.to_value(sub, input, arena, arena.read_u64(at) as u32))
            }
            _ => value_from_bits(ft, arena.read_scalar(at, entry.elem_size as usize)),
        }
    }

    /// Serializes a [`MessageValue`] tree in one reverse-order pass.
    ///
    /// Byte-identical to `protoacc_runtime::reference::encode` (and hence to
    /// `crates/cpu`'s serializer): fields ascending, sub-messages
    /// depth-first. Prepending fields in *descending* order produces exactly
    /// that layout without a ByteSize pass.
    ///
    /// # Errors
    ///
    /// `UnknownField` / `TypeMismatch` on value trees that do not fit the
    /// schema, like the reference encoder.
    pub fn encode_value(&self, message: &MessageValue) -> Result<Vec<u8>, RuntimeError> {
        let mut w = ReverseWriter::new();
        self.rencode_value(message, &mut w)?;
        Ok(w.into_bytes())
    }

    fn rencode_value(
        &self,
        message: &MessageValue,
        w: &mut ReverseWriter,
    ) -> Result<(), RuntimeError> {
        let descriptor = self.compiled.schema().message(message.type_id());
        let pairs: Vec<(u32, &FieldPayload)> = message.iter().collect();
        for &(number, payload) in pairs.iter().rev() {
            let field = descriptor
                .field_by_number(number)
                .ok_or(RuntimeError::UnknownField {
                    field_number: number,
                })?;
            let values: &[Value] = match payload {
                FieldPayload::Single(v) => std::slice::from_ref(v),
                FieldPayload::Repeated(vs) => vs,
            };
            if field.is_packed() {
                let before = w.len();
                for v in values.iter().rev() {
                    prepend_packed_element(v, field.number(), w)?;
                }
                let body = (w.len() - before) as u64;
                w.prepend_varint(body);
                w.prepend_varint(
                    FieldKey::new(number, WireType::LengthDelimited)
                        .map_err(RuntimeError::from)?
                        .encoded(),
                );
                continue;
            }
            for v in values.iter().rev() {
                self.rencode_field_value(number, field.field_type(), v, w)?;
            }
        }
        Ok(())
    }

    fn rencode_field_value(
        &self,
        number: u32,
        ft: FieldType,
        value: &Value,
        w: &mut ReverseWriter,
    ) -> Result<(), RuntimeError> {
        if !value.matches(ft) {
            return Err(RuntimeError::TypeMismatch {
                field_number: number,
                expected: format!("{ft:?}"),
            });
        }
        let key = FieldKey::new(number, ft.wire_type())
            .map_err(RuntimeError::from)?
            .encoded();
        match value {
            Value::Bool(v) => w.prepend_varint(u64::from(*v)),
            Value::Int32(v) => w.prepend_varint(*v as i64 as u64),
            Value::Int64(v) => w.prepend_varint(*v as u64),
            Value::UInt32(v) => w.prepend_varint(u64::from(*v)),
            Value::UInt64(v) => w.prepend_varint(*v),
            Value::SInt32(v) => w.prepend_varint(u64::from(zigzag::encode32(*v))),
            Value::SInt64(v) => w.prepend_varint(zigzag::encode64(*v)),
            Value::Enum(v) => w.prepend_varint(*v as i64 as u64),
            Value::Fixed32(v) => w.prepend_fixed32(*v),
            Value::SFixed32(v) => w.prepend_fixed32(*v as u32),
            Value::Float(v) => w.prepend_fixed32(v.to_bits()),
            Value::Fixed64(v) => w.prepend_fixed64(*v),
            Value::SFixed64(v) => w.prepend_fixed64(*v as u64),
            Value::Double(v) => w.prepend_fixed64(v.to_bits()),
            Value::Str(s) => {
                w.prepend_slice(s.as_bytes());
                w.prepend_varint(s.len() as u64);
            }
            Value::Bytes(b) => {
                w.prepend_slice(b);
                w.prepend_varint(b.len() as u64);
            }
            Value::Message(m) => {
                let before = w.len();
                self.rencode_value(m, w)?;
                w.prepend_varint((w.len() - before) as u64);
            }
        }
        w.prepend_varint(key);
        Ok(())
    }

    /// Serializes a decoded arena object straight back to wire bytes, never
    /// materializing a value tree. `input` must be the buffer the object was
    /// decoded from.
    ///
    /// Byte-identical to decoding to a value tree and reference-encoding it.
    pub fn encode_decoded(
        &self,
        type_id: MessageId,
        input: &[u8],
        arena: &DecodeArena,
        obj: u32,
    ) -> Vec<u8> {
        let mut w = ReverseWriter::with_capacity(input.len() + input.len() / 2 + 64);
        self.rencode_obj(type_id, input, arena, obj, &mut w);
        w.into_bytes()
    }

    fn rencode_obj(
        &self,
        type_id: MessageId,
        input: &[u8],
        arena: &DecodeArena,
        obj: u32,
        w: &mut ReverseWriter,
    ) {
        let cm = self.compiled.message(type_id);
        for &number in cm.numbers.iter().rev() {
            let entry = cm.entry(number).expect("listed number has an entry");
            if !arena.bit(
                obj + cm.hasbits_offset + entry.hasbit_byte,
                entry.hasbit_mask,
            ) {
                continue;
            }
            let slot = obj + entry.slot_offset;
            if entry.repeated {
                let header = arena.read_u64(slot) as u32;
                let data = arena.read_u64(header) as u32;
                let count = arena.read_u64(header + 8) as usize;
                let elem = u32::from(entry.elem_size);
                if entry.packed {
                    let before = w.len();
                    for i in (0..count).rev() {
                        let bits = arena.read_scalar(data + i as u32 * elem, elem as usize);
                        self.prepend_scalar(entry, bits, w);
                    }
                    w.prepend_varint((w.len() - before) as u64);
                    w.prepend_varint(entry.packed_key_encoded);
                } else {
                    for i in (0..count).rev() {
                        self.prepend_element(entry, input, arena, data + i as u32 * elem, w);
                        w.prepend_varint(entry.key_encoded);
                    }
                }
            } else {
                match entry.op {
                    Op::Bytes => {
                        let (off, len) = unpack_str(arena.read_u64(slot));
                        w.prepend_slice(&input[off..off + len]);
                        w.prepend_varint(len as u64);
                    }
                    Op::Msg => {
                        let sub = entry.sub.expect("Msg op has a sub type");
                        let sub_obj = arena.read_u64(slot) as u32;
                        let before = w.len();
                        self.rencode_obj(sub, input, arena, sub_obj, w);
                        w.prepend_varint((w.len() - before) as u64);
                    }
                    _ => {
                        let bits = arena.read_scalar(slot, entry.elem_size as usize);
                        self.prepend_scalar(entry, bits, w);
                    }
                }
                w.prepend_varint(entry.key_encoded);
            }
        }
    }

    /// One repeated element's payload bytes (no key).
    fn prepend_element(
        &self,
        entry: &FieldEntry,
        input: &[u8],
        arena: &DecodeArena,
        at: u32,
        w: &mut ReverseWriter,
    ) {
        match entry.op {
            Op::Bytes => {
                let (off, len) = unpack_str(arena.read_u64(at));
                w.prepend_slice(&input[off..off + len]);
                w.prepend_varint(len as u64);
            }
            Op::Msg => {
                let sub = entry.sub.expect("Msg op has a sub type");
                let before = w.len();
                self.rencode_obj(sub, input, arena, arena.read_u64(at) as u32, w);
                w.prepend_varint((w.len() - before) as u64);
            }
            _ => self.prepend_scalar(entry, arena.read_scalar(at, entry.elem_size as usize), w),
        }
    }

    /// One scalar payload from normalized slot bits, applying the inverse of
    /// the decode-side bit transform (sign extension for int32/enum, zigzag
    /// for sint types) exactly as `crates/cpu::wire_varint_from_bits` does.
    fn prepend_scalar(&self, entry: &FieldEntry, bits: u64, w: &mut ReverseWriter) {
        match entry.op {
            Op::VarintI32 => w.prepend_varint(bits as u32 as i32 as i64 as u64),
            Op::VarintZig32 => w.prepend_varint(u64::from(zigzag::encode32(bits as u32 as i32))),
            Op::VarintZig64 => w.prepend_varint(zigzag::encode64(bits as i64)),
            Op::VarintRaw | Op::VarintU32 | Op::VarintBool => w.prepend_varint(bits),
            Op::Fixed32 => w.prepend_fixed32(bits as u32),
            Op::Fixed64 => w.prepend_fixed64(bits),
            Op::Bytes | Op::Msg => unreachable!("length-delimited ops handled by callers"),
        }
    }
}

/// A borrowed string/bytes slot as a [`Value`].
fn borrowed_value(ft: FieldType, input: &[u8], word: u64) -> Value {
    let (off, len) = unpack_str(word);
    let payload = &input[off..off + len];
    match ft {
        FieldType::String => Value::Str(String::from_utf8_lossy(payload).into_owned()),
        _ => Value::Bytes(payload.to_vec()),
    }
}

/// Packed element for the value-tree encoder; mirrors
/// `reference::encode_packed_element` but reports out-of-line values as a
/// typed error instead of panicking.
fn prepend_packed_element(
    value: &Value,
    number: u32,
    w: &mut ReverseWriter,
) -> Result<(), RuntimeError> {
    match value {
        Value::Bool(v) => w.prepend_varint(u64::from(*v)),
        Value::Int32(v) => w.prepend_varint(*v as i64 as u64),
        Value::Int64(v) => w.prepend_varint(*v as u64),
        Value::UInt32(v) => w.prepend_varint(u64::from(*v)),
        Value::UInt64(v) => w.prepend_varint(*v),
        Value::SInt32(v) => w.prepend_varint(u64::from(zigzag::encode32(*v))),
        Value::SInt64(v) => w.prepend_varint(zigzag::encode64(*v)),
        Value::Enum(v) => w.prepend_varint(*v as i64 as u64),
        Value::Fixed32(v) => w.prepend_fixed32(*v),
        Value::SFixed32(v) => w.prepend_fixed32(*v as u32),
        Value::Float(v) => w.prepend_fixed32(v.to_bits()),
        Value::Fixed64(v) => w.prepend_fixed64(*v),
        Value::SFixed64(v) => w.prepend_fixed64(*v as u64),
        Value::Double(v) => w.prepend_fixed64(v.to_bits()),
        Value::Str(_) | Value::Bytes(_) | Value::Message(_) => {
            return Err(RuntimeError::TypeMismatch {
                field_number: number,
                expected: "packable scalar".to_string(),
            });
        }
    }
    Ok(())
}

/// Normalizes a decoded varint payload into slot bits — the same transforms
/// `crates/cpu`'s scalar path applies.
#[inline]
fn decode_bits(op: Op, raw: u64) -> u64 {
    match op {
        Op::VarintI32 => u64::from(raw as u32),
        Op::VarintU32 => raw & 0xffff_ffff,
        Op::VarintBool => u64::from(raw != 0),
        Op::VarintZig32 => u64::from(zigzag::decode32(raw as u32) as u32),
        Op::VarintZig64 => zigzag::decode64(raw) as u64,
        _ => raw,
    }
}

impl Decoder<'_> {
    /// Decodes one message frame spanning `full[start..end]` into `obj`.
    ///
    /// Error ordering and classification deliberately mirror
    /// `crates/cpu::SoftwareCodec::deser_message` step for step; comments
    /// mark the decision points the differential suite exercises.
    #[allow(clippy::too_many_arguments)]
    fn frame(
        &mut self,
        arena: &mut DecodeArena,
        full: &[u8],
        start: usize,
        end: usize,
        type_id: MessageId,
        obj: u32,
        depth: usize,
    ) -> Result<(), RuntimeError> {
        if depth > MAX_DECODE_DEPTH {
            return Err(RuntimeError::DepthExceeded {
                limit: MAX_DECODE_DEPTH,
            });
        }
        let cs = self.cs;
        let cm = cs.message(type_id);
        let mut accums: Vec<RepAccum> = Vec::new();
        let mut pos = start;
        while pos < end {
            let (key_raw, key_len) = swar::decode(&full[pos..end])?;
            pos += key_len;
            let key = FieldKey::from_encoded(key_raw)?;
            let number = key.field_number();
            let wt = key.wire_type();
            let Some(&entry) = cm.entry(number) else {
                pos += skip_len(&full[..end], pos, wt)?;
                continue;
            };
            // Packed arrival: a length-delimited body for a packable
            // repeated field whose scalar wire type is not LD itself.
            if wt == WireType::LengthDelimited
                && entry.wire != WireType::LengthDelimited
                && entry.repeated
                && entry.packable
            {
                let (body_len, len_len) = swar::decode(&full[pos..end])?;
                pos += len_len;
                let remaining = end - pos;
                if body_len > remaining as u64 {
                    return Err(RuntimeError::Wire(WireError::LengthOutOfBounds {
                        declared: body_len,
                        remaining,
                    }));
                }
                // Elements decode against the *clamped* body end: an element
                // straddling the body boundary is Truncated, never silently
                // completed from the bytes that follow the packed run.
                let body_end = pos + body_len as usize;
                if pos < body_end {
                    // An accumulator (and hence the hasbit) appears only
                    // once at least one element exists: an empty packed body
                    // leaves the field absent, exactly like crates/cpu.
                    let acc = self.accum(&mut accums, number);
                    while pos < body_end {
                        let (bits, n) = scalar_element(&full[..body_end], pos, &entry)?;
                        accums[acc].elems.push(bits);
                        pos += n;
                    }
                }
                continue;
            }
            if wt != entry.wire {
                return Err(RuntimeError::WireTypeMismatch {
                    field_number: number,
                });
            }
            match entry.op {
                Op::Bytes => {
                    let (payload_off, len) = length_prefix(full, pos, end)?;
                    pos = payload_off + len;
                    let word = pack_str(payload_off, len);
                    if entry.repeated {
                        let acc = self.accum(&mut accums, number);
                        accums[acc].elems.push(word);
                    } else {
                        arena.write_u64(obj + entry.slot_offset, word);
                        arena.set_bit(
                            obj + cm.hasbits_offset + entry.hasbit_byte,
                            entry.hasbit_mask,
                        );
                    }
                }
                Op::Msg => {
                    let (payload_off, len) = length_prefix(full, pos, end)?;
                    pos = payload_off + len;
                    let sub = entry.sub.expect("Msg op has a sub type");
                    // Allocation precedes the sub-parse (arena exhaustion
                    // surfaces before the sub-frame's own errors), and a
                    // repeated singular arrival overwrites the slot with the
                    // fresh object: last-one-wins, no merge — both mirroring
                    // crates/cpu.
                    let sub_obj = arena.alloc_zeroed(cs.message(sub).object_size as usize)?;
                    self.frame(
                        arena,
                        full,
                        payload_off,
                        payload_off + len,
                        sub,
                        sub_obj,
                        depth + 1,
                    )?;
                    if entry.repeated {
                        let acc = self.accum(&mut accums, number);
                        accums[acc].elems.push(u64::from(sub_obj));
                    } else {
                        arena.write_u64(obj + entry.slot_offset, u64::from(sub_obj));
                        arena.set_bit(
                            obj + cm.hasbits_offset + entry.hasbit_byte,
                            entry.hasbit_mask,
                        );
                    }
                }
                _ => {
                    let (bits, n) = scalar_element(&full[..end], pos, &entry)?;
                    pos += n;
                    if entry.repeated {
                        let acc = self.accum(&mut accums, number);
                        accums[acc].elems.push(bits);
                    } else {
                        arena.write_scalar(obj + entry.slot_offset, bits, entry.elem_size as usize);
                        arena.set_bit(
                            obj + cm.hasbits_offset + entry.hasbit_byte,
                            entry.hasbit_mask,
                        );
                    }
                }
            }
        }
        // Materialize repeated fields in ascending field-number order (the
        // BTreeMap order crates/cpu materializes in).
        accums.sort_unstable_by_key(|a| a.number);
        for acc in &mut accums {
            let entry = cm
                .entry(acc.number)
                .expect("accum numbers are known fields");
            let elem = usize::from(entry.elem_size);
            let count = acc.elems.len();
            let header = arena.alloc_zeroed(REPEATED_HEADER_BYTES as usize)?;
            let data = arena.alloc_zeroed(count * elem)?;
            arena.write_u64(header, u64::from(data));
            arena.write_u64(header + 8, count as u64);
            arena.write_u64(header + 16, count as u64);
            for (i, &bits) in acc.elems.iter().enumerate() {
                arena.write_scalar(data + (i * elem) as u32, bits, elem);
            }
            arena.write_u64(obj + entry.slot_offset, u64::from(header));
            arena.set_bit(
                obj + cm.hasbits_offset + entry.hasbit_byte,
                entry.hasbit_mask,
            );
            self.pool.push(std::mem::take(&mut acc.elems));
        }
        Ok(())
    }

    /// Index of the accumulator for `number`, creating one (with a recycled
    /// element buffer) on first arrival.
    fn accum(&mut self, accums: &mut Vec<RepAccum>, number: u32) -> usize {
        if let Some(i) = accums.iter().position(|a| a.number == number) {
            return i;
        }
        let mut elems = self.pool.pop().unwrap_or_default();
        elems.clear();
        accums.push(RepAccum { number, elems });
        accums.len() - 1
    }
}

/// Bytes consumed skipping an unknown field's payload at `pos` in
/// `frame` — classification identical to `crates/cpu::skip_value`.
fn skip_len(frame: &[u8], pos: usize, wt: WireType) -> Result<usize, RuntimeError> {
    let consumed = match wt {
        WireType::Varint => swar::decode(&frame[pos..])?.1,
        WireType::Bits32 => 4,
        WireType::Bits64 => 8,
        WireType::LengthDelimited => {
            let (len, len_len) = swar::decode(&frame[pos..])?;
            // Oversized declared lengths overflow-check into Truncated here
            // (not LengthOutOfBounds): unknown-field skips never got a
            // bounds verdict in crates/cpu and the fast path must agree.
            len_len
                .checked_add(len as usize)
                .ok_or(WireError::Truncated {
                    offset: frame.len(),
                })?
        }
        WireType::StartGroup | WireType::EndGroup => {
            return Err(RuntimeError::Wire(WireError::InvalidWireType {
                raw: wt.as_raw(),
            }));
        }
    };
    if consumed > frame.len() - pos {
        return Err(RuntimeError::Wire(WireError::Truncated {
            offset: frame.len(),
        }));
    }
    Ok(consumed)
}

/// Decodes a length prefix at `pos`, returning `(payload_offset, len)`
/// bounds-checked against `end` — `crates/cpu::deser_length_prefix`.
fn length_prefix(full: &[u8], pos: usize, end: usize) -> Result<(usize, usize), RuntimeError> {
    let (len, len_len) = swar::decode(&full[pos..end])?;
    let payload_off = pos + len_len;
    let remaining = end - payload_off;
    if len > remaining as u64 {
        return Err(RuntimeError::Wire(WireError::LengthOutOfBounds {
            declared: len,
            remaining,
        }));
    }
    Ok((payload_off, len as usize))
}

/// One scalar payload at `pos` in `clamped` (which ends at the enclosing
/// frame or packed-body boundary), returning normalized slot bits and the
/// bytes consumed — `crates/cpu::deser_scalar_element`.
fn scalar_element(
    clamped: &[u8],
    pos: usize,
    entry: &FieldEntry,
) -> Result<(u64, usize), RuntimeError> {
    match entry.op {
        Op::Fixed32 => {
            if pos + 4 > clamped.len() {
                return Err(RuntimeError::Wire(WireError::Truncated {
                    offset: clamped.len(),
                }));
            }
            let bits = u32::from_le_bytes(clamped[pos..pos + 4].try_into().expect("4 bytes"));
            Ok((u64::from(bits), 4))
        }
        Op::Fixed64 => {
            if pos + 8 > clamped.len() {
                return Err(RuntimeError::Wire(WireError::Truncated {
                    offset: clamped.len(),
                }));
            }
            let bits = u64::from_le_bytes(clamped[pos..pos + 8].try_into().expect("8 bytes"));
            Ok((bits, 8))
        }
        Op::Bytes | Op::Msg => Err(RuntimeError::WireTypeMismatch {
            field_number: entry.number,
        }),
        _ => {
            let (raw, n) = swar::decode(&clamped[pos..])?;
            Ok((decode_bits(entry.op, raw), n))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use protoacc_runtime::reference;
    use protoacc_schema::SchemaBuilder;

    fn test_schema() -> (Schema, MessageId, MessageId) {
        let mut b = SchemaBuilder::new();
        let inner = b.declare("Inner");
        b.message(inner)
            .optional("id", FieldType::UInt64, 1)
            .optional("label", FieldType::String, 2);
        let root = b.declare("Root");
        b.message(root)
            .optional("a", FieldType::Int32, 1)
            .optional("b", FieldType::SInt64, 2)
            .optional("name", FieldType::String, 3)
            .optional("blob", FieldType::Bytes, 4)
            .optional("sub", FieldType::Message(inner), 5)
            .repeated("subs", FieldType::Message(inner), 6)
            .packed("nums", FieldType::SInt32, 7)
            .repeated("tags", FieldType::String, 8)
            .optional("f32", FieldType::Fixed32, 9)
            .optional("f64", FieldType::SFixed64, 10)
            .optional("flag", FieldType::Bool, 11)
            .packed("doubles", FieldType::Double, 12);
        (b.build().unwrap(), root, inner)
    }

    fn sample(root: MessageId, inner: MessageId) -> MessageValue {
        let mut sub = MessageValue::new(inner);
        sub.set_unchecked(1, Value::UInt64(77));
        sub.set_unchecked(2, Value::Str("inner".into()));
        let mut m = MessageValue::new(root);
        m.set_unchecked(1, Value::Int32(-42));
        m.set_unchecked(2, Value::SInt64(i64::MIN));
        m.set_unchecked(3, Value::Str("hello".into()));
        m.set_unchecked(4, Value::Bytes(vec![0, 159, 146, 150]));
        m.set_unchecked(5, Value::Message(sub.clone()));
        m.set_repeated(6, vec![Value::Message(sub.clone()), Value::Message(sub)]);
        m.set_repeated(
            7,
            vec![
                Value::SInt32(i32::MIN),
                Value::SInt32(-1),
                Value::SInt32(0),
                Value::SInt32(i32::MAX),
            ],
        );
        m.set_repeated(8, vec![Value::Str("x".into()), Value::Str(String::new())]);
        m.set_unchecked(9, Value::Fixed32(0xdead_beef));
        m.set_unchecked(10, Value::SFixed64(-5));
        m.set_unchecked(11, Value::Bool(true));
        m.set_repeated(12, vec![Value::Double(-0.0), Value::Double(1.5e300)]);
        m
    }

    #[test]
    fn encode_is_byte_identical_to_reference() {
        let (schema, root, inner) = test_schema();
        let codec = FastCodec::new(&schema);
        let m = sample(root, inner);
        let fast = codec.encode_value(&m).unwrap();
        let reference = reference::encode(&m, &schema).unwrap();
        assert_eq!(fast, reference);
    }

    #[test]
    fn decode_round_trips_through_arena_and_back() {
        let (schema, root, inner) = test_schema();
        let codec = FastCodec::new(&schema);
        let m = sample(root, inner);
        let wire = reference::encode(&m, &schema).unwrap();
        let mut arena = DecodeArena::new();
        let obj = codec.decode(root, &wire, &mut arena).unwrap();
        let back = codec.to_value(root, &wire, &arena, obj);
        assert!(m.bits_eq(&back), "decoded tree differs");
        let re = codec.encode_decoded(root, &wire, &arena, obj);
        assert_eq!(re, wire, "arena re-serialization differs");
    }

    /// Regression (divergence sweep): a packed element whose varint carries
    /// a continuation bit into the byte *after* the packed body must be
    /// Truncated, not completed from the next field's bytes.
    #[test]
    fn packed_element_is_clamped_to_the_declared_body() {
        let (schema, root, _) = test_schema();
        let codec = FastCodec::new(&schema);
        // Field 7 (packed sint32): key 0x3a, len 1, body [0x96 = continuation
        // set], then a perfectly valid field 1 varint afterward.
        let bytes = [0x3a, 0x01, 0x96, 0x08, 0x05];
        let mut arena = DecodeArena::new();
        let err = codec.decode(root, &bytes, &mut arena).unwrap_err();
        assert!(
            matches!(err, RuntimeError::Wire(WireError::Truncated { .. })),
            "{err:?}"
        );
    }

    /// Regression (divergence sweep): empty packed body decodes to an
    /// *absent* field, matching crates/cpu's accumulator semantics.
    #[test]
    fn empty_packed_body_leaves_field_absent() {
        let (schema, root, _) = test_schema();
        let codec = FastCodec::new(&schema);
        let bytes = [0x3a, 0x00];
        let mut arena = DecodeArena::new();
        let obj = codec.decode(root, &bytes, &mut arena).unwrap();
        let back = codec.to_value(root, &bytes, &arena, obj);
        assert!(back.get(7).is_none(), "empty packed body must stay absent");
    }

    /// Regression (divergence sweep): zigzag extremes round-trip bit-exactly
    /// through the 32-bit slot truncation.
    #[test]
    fn zigzag_extremes_round_trip() {
        let (schema, root, _) = test_schema();
        let codec = FastCodec::new(&schema);
        for v in [i32::MIN, -1, 0, 1, i32::MAX] {
            let mut m = MessageValue::new(root);
            m.set_repeated(7, vec![Value::SInt32(v)]);
            let wire = codec.encode_value(&m).unwrap();
            assert_eq!(wire, reference::encode(&m, &schema).unwrap(), "sint32 {v}");
            let mut arena = DecodeArena::new();
            let back = codec.decode_to_value(root, &wire, &mut arena).unwrap();
            assert!(m.bits_eq(&back), "sint32 {v}");
        }
        for v in [i64::MIN, -1, 0, i64::MAX] {
            let mut m = MessageValue::new(root);
            m.set_unchecked(2, Value::SInt64(v));
            let wire = codec.encode_value(&m).unwrap();
            assert_eq!(wire, reference::encode(&m, &schema).unwrap(), "sint64 {v}");
            let mut arena = DecodeArena::new();
            let back = codec.decode_to_value(root, &wire, &mut arena).unwrap();
            assert!(m.bits_eq(&back), "sint64 {v}");
        }
    }

    #[test]
    fn singular_submessage_is_last_one_wins() {
        let (schema, root, inner) = test_schema();
        let codec = FastCodec::new(&schema);
        let mut first = MessageValue::new(inner);
        first.set_unchecked(1, Value::UInt64(1));
        let mut second = MessageValue::new(inner);
        second.set_unchecked(2, Value::Str("two".into()));
        let mut m1 = MessageValue::new(root);
        m1.set_unchecked(5, Value::Message(first));
        let mut m2 = MessageValue::new(root);
        m2.set_unchecked(5, Value::Message(second.clone()));
        let mut wire = codec.encode_value(&m1).unwrap();
        wire.extend_from_slice(&codec.encode_value(&m2).unwrap());
        let mut arena = DecodeArena::new();
        let back = codec.decode_to_value(root, &wire, &mut arena).unwrap();
        let expected = {
            let mut m = MessageValue::new(root);
            m.set_unchecked(5, Value::Message(second));
            m
        };
        assert!(expected.bits_eq(&back), "second arrival must win, no merge");
    }

    #[test]
    fn depth_limit_is_enforced() {
        let mut b = SchemaBuilder::new();
        let node = b.declare("Node");
        b.message(node)
            .optional("next", FieldType::Message(node), 1);
        let schema = b.build().unwrap();
        let codec = FastCodec::new(&schema);
        // 150 nested frames: key 0x0a + length prefix each.
        let mut wire = Vec::new();
        for _ in 0..150 {
            let mut next = vec![0x0a];
            protoacc_wire::varint::encode(wire.len() as u64, &mut next);
            next.extend_from_slice(&wire);
            wire = next;
        }
        let mut arena = DecodeArena::new();
        let err = codec.decode(node, &wire, &mut arena).unwrap_err();
        assert!(matches!(err, RuntimeError::DepthExceeded { .. }), "{err:?}");
    }

    #[test]
    fn unknown_fields_are_skipped_and_groups_rejected() {
        let (schema, root, _) = test_schema();
        let codec = FastCodec::new(&schema);
        // Unknown field 100 (varint), then known field 1.
        let mut wire = Vec::new();
        protoacc_wire::varint::encode(100 << 3, &mut wire);
        wire.push(0x7f);
        wire.extend_from_slice(&[0x08, 0x05]);
        let mut arena = DecodeArena::new();
        let back = codec.decode_to_value(root, &wire, &mut arena).unwrap();
        assert_eq!(back.get_single(1), Some(&Value::Int32(5)));
        // Unknown field with a group wire type is InvalidWireType.
        let mut wire = Vec::new();
        protoacc_wire::varint::encode(100 << 3 | 3, &mut wire);
        let err = codec.decode(root, &wire, &mut arena).unwrap_err();
        assert!(
            matches!(err, RuntimeError::Wire(WireError::InvalidWireType { .. })),
            "{err:?}"
        );
    }
}
