//! Accelerator-vs-CPU differential verdicts: the same bytes through the
//! accelerator model and the CPU reference decoder must produce the same
//! accept/reject verdict, with rejections in the same
//! [`protoacc::DecodeFault`] class.
//!
//! This is the contract that makes the accelerator a drop-in replacement
//! even on hostile input: an application that swaps the software parser for
//! the hardware one must see the same messages accepted and the same error
//! class on the ones rejected — never an accept on one side and a reject on
//! the other.

use protoacc::{AccelConfig, DecodeFault, ProtoAccelerator};
use protoacc_cpu::{CostTable, SoftwareCodec};
use protoacc_mem::{MemConfig, Memory};
use protoacc_runtime::{write_adts, AdtTables, BumpArena, MessageLayouts};
use protoacc_schema::{MessageId, Schema};

/// Guest memory map for one harness (all regions disjoint by construction).
const SETUP_BASE: u64 = 0x1_0000;
const SETUP_LEN: u64 = 1 << 22;
const INPUT_BASE: u64 = 0x60_0000;
const ACCEL_ARENA_BASE: u64 = 0x100_0000;
const ACCEL_ARENA_LEN: u64 = 1 << 22;
const CPU_ARENA_BASE: u64 = 0x200_0000;
const CPU_ARENA_LEN: u64 = 1 << 22;

/// One decoder's answer for one input.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Verdict {
    /// The input decoded successfully.
    Accept,
    /// The input was rejected with this fault class.
    Reject(DecodeFault),
}

impl Verdict {
    /// Whether this verdict is an accept.
    pub fn is_accept(self) -> bool {
        matches!(self, Verdict::Accept)
    }
}

/// One input on which the two decoders disagreed.
#[derive(Debug, Clone)]
pub struct VerdictMismatch {
    /// Caller-supplied label (fault class, trial number, ...).
    pub label: String,
    /// What the accelerator said.
    pub accel: Verdict,
    /// What the CPU reference said.
    pub cpu: Verdict,
    /// The offending bytes, for replay.
    pub input: Vec<u8>,
}

/// Tally of a differential run.
#[derive(Debug, Clone, Default)]
pub struct DiffReport {
    /// Inputs examined.
    pub trials: usize,
    /// Inputs both decoders accepted.
    pub accepted: usize,
    /// Inputs both decoders rejected with the same fault class.
    pub rejected: usize,
    /// Disagreements (verdict or fault class).
    pub mismatches: Vec<VerdictMismatch>,
}

impl DiffReport {
    /// True when every trial agreed.
    pub fn is_clean(&self) -> bool {
        self.mismatches.is_empty()
    }

    /// One-line summary for test failure messages.
    pub fn summary(&self) -> String {
        format!(
            "{} trials: {} accepted, {} rejected, {} mismatches{}",
            self.trials,
            self.accepted,
            self.rejected,
            self.mismatches.len(),
            self.mismatches
                .first()
                .map(|m| format!(
                    " (first: {} accel={:?} cpu={:?} input={:02x?})",
                    m.label,
                    m.accel,
                    m.cpu,
                    &m.input[..m.input.len().min(48)]
                ))
                .unwrap_or_default()
        )
    }
}

/// Runs the same bytes through a fresh accelerator and the CPU reference
/// decoder and compares verdicts.
///
/// The guest memory, ADT tables, and destination objects are staged once at
/// construction; each trial restages only the input bytes and resets the
/// decode arenas, so a 10k-mutation sweep stays cheap and every trial is
/// independent of the last.
pub struct DifferentialHarness {
    schema: Schema,
    layouts: MessageLayouts,
    type_id: MessageId,
    cost: CostTable,
    mem: Memory,
    adts: AdtTables,
    dest_accel: u64,
    dest_cpu: u64,
    cpu_arena: BumpArena,
}

impl DifferentialHarness {
    /// Stages a harness for `type_id` of `schema`.
    ///
    /// # Panics
    ///
    /// Panics if the schema's ADT tables or two destination objects do not
    /// fit the setup region — only plausible for schemas far beyond the
    /// benchmark suite's size.
    pub fn new(schema: &Schema, type_id: MessageId) -> Self {
        let layouts = MessageLayouts::compute(schema);
        let mut mem = Memory::new(MemConfig::default());
        let mut setup = BumpArena::new(SETUP_BASE, SETUP_LEN);
        let adts = write_adts(schema, &layouts, &mut mem.data, &mut setup)
            .expect("ADT tables fit the setup region");
        let object_size = layouts.layout(type_id).object_size();
        let dest_accel = setup.alloc(object_size, 8).expect("accel dest object fits");
        let dest_cpu = setup.alloc(object_size, 8).expect("cpu dest object fits");
        DifferentialHarness {
            schema: schema.clone(),
            layouts,
            type_id,
            cost: CostTable::boom(),
            mem,
            adts,
            dest_accel,
            dest_cpu,
            cpu_arena: BumpArena::new(CPU_ARENA_BASE, CPU_ARENA_LEN),
        }
    }

    /// Decodes `bytes` on both sides and returns `(accelerator, cpu)`
    /// verdicts. Never panics, whatever the bytes.
    pub fn verdicts(&mut self, bytes: &[u8]) -> (Verdict, Verdict) {
        (self.accel_verdict(bytes), self.cpu_verdict(bytes))
    }

    /// The accelerator model's verdict for `bytes`: fresh frontend,
    /// re-assigned arena, never panics.
    pub fn accel_verdict(&mut self, bytes: &[u8]) -> Verdict {
        self.mem.data.write_bytes(INPUT_BASE, bytes);
        let mut accel = ProtoAccelerator::new(AccelConfig::default());
        accel.deser_assign_arena(ACCEL_ARENA_BASE, ACCEL_ARENA_LEN);
        accel.deser_info(self.adts.addr(self.type_id), self.dest_accel);
        let min_field = self.layouts.layout(self.type_id).min_field();
        match accel.do_proto_deser(&mut self.mem, INPUT_BASE, bytes.len() as u64, min_field) {
            Ok(_) => Verdict::Accept,
            Err(e) => Verdict::Reject(DecodeFault::classify(&e)),
        }
    }

    /// The CPU reference codec's verdict for `bytes`: fresh arena, never
    /// panics. This is the oracle side for both the accelerator model and
    /// the native fast-path codec.
    pub fn cpu_verdict(&mut self, bytes: &[u8]) -> Verdict {
        self.mem.data.write_bytes(INPUT_BASE, bytes);
        self.cpu_arena.reset();
        let codec = SoftwareCodec::new(&self.cost);
        let (_, result) = codec.try_deserialize(
            &mut self.mem,
            &self.schema,
            &self.layouts,
            self.type_id,
            INPUT_BASE,
            bytes.len() as u64,
            self.dest_cpu,
            &mut self.cpu_arena,
        );
        match result {
            Ok(_) => Verdict::Accept,
            Err(e) => Verdict::Reject(DecodeFault::from_runtime(&e)),
        }
    }

    /// Runs one trial and tallies it into `report`; mismatching inputs are
    /// captured for replay.
    pub fn observe(&mut self, label: &str, bytes: &[u8], report: &mut DiffReport) {
        let (accel, cpu) = self.verdicts(bytes);
        report.trials += 1;
        if accel == cpu {
            if accel.is_accept() {
                report.accepted += 1;
            } else {
                report.rejected += 1;
            }
        } else {
            report.mismatches.push(VerdictMismatch {
                label: label.to_owned(),
                accel,
                cpu,
                input: bytes.to_vec(),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::{corrupt, WIRE_FAULTS};
    use protoacc_runtime::{reference, MessageValue, Value};
    use protoacc_schema::{FieldType, SchemaBuilder};
    use xrand::StdRng;

    fn setup() -> (Schema, MessageId, Vec<u8>) {
        let mut b = SchemaBuilder::new();
        let root = b.declare("Root");
        b.message(root)
            .optional("n", FieldType::UInt64, 1)
            .optional("s", FieldType::String, 2)
            .repeated("r", FieldType::Int32, 3);
        let schema = b.build().unwrap();
        let mut m = MessageValue::new(root);
        m.set_unchecked(1, Value::UInt64(77));
        m.set_unchecked(2, Value::Str("differential".into()));
        m.set_repeated(3, vec![Value::Int32(-4), Value::Int32(19)]);
        let wire = reference::encode(&m, &schema).unwrap();
        (schema, root, wire)
    }

    #[test]
    fn clean_input_accepts_on_both_sides() {
        let (schema, root, wire) = setup();
        let mut h = DifferentialHarness::new(&schema, root);
        assert_eq!(h.verdicts(&wire), (Verdict::Accept, Verdict::Accept));
    }

    #[test]
    fn every_wire_fault_class_agrees_on_a_small_sweep() {
        let (schema, root, wire) = setup();
        let mut h = DifferentialHarness::new(&schema, root);
        let mut rng = StdRng::seed_from_u64(0xD1FF);
        let mut report = DiffReport::default();
        for fault in WIRE_FAULTS {
            for _ in 0..64 {
                let mutated = corrupt(&wire, fault, &mut rng);
                h.observe(fault.label(), &mutated, &mut report);
            }
        }
        assert!(report.is_clean(), "{}", report.summary());
        assert_eq!(report.trials, 64 * WIRE_FAULTS.len());
        assert!(report.rejected > 0, "sweep never produced a rejection");
    }

    #[test]
    fn trials_are_independent() {
        let (schema, root, wire) = setup();
        let mut h = DifferentialHarness::new(&schema, root);
        // A hostile input must not poison the verdict on a clean one.
        let _ = h.verdicts(&[0xFF; 32]);
        assert_eq!(h.verdicts(&wire), (Verdict::Accept, Verdict::Accept));
        assert_eq!(h.verdicts(&[]), (Verdict::Accept, Verdict::Accept));
    }
}
