//! End-to-end determinism of the serving model: the full fleet-traffic →
//! staging → multi-instance cluster pipeline must produce byte-identical
//! reports when replayed with the same seeds. This is the property the
//! `serve_tail_latency --smoke` CI gate enforces; here it is pinned as a
//! cargo test over the library APIs.

use protoacc::{DispatchPolicy, Request, RequestOp, ServeCluster, ServeConfig};
use protoacc_fleet::traffic::TrafficMix;
use protoacc_mem::{MemConfig, Memory};
use protoacc_runtime::{object, reference, write_adts, BumpArena, MessageLayouts};
use xrand::StdRng;

/// Runs one seeded stream through a fresh memory image + cluster and
/// renders everything observable into one report string.
fn serve_report(instances: usize, policy: DispatchPolicy) -> String {
    let mut rng = StdRng::seed_from_u64(0xD0D0);
    let mix = TrafficMix::build(&mut rng, 8);
    let mut srng = StdRng::seed_from_u64(0x5EED);
    let events = mix.stream(&mut srng, 64, 2_000.0);

    let mut mem = Memory::new(MemConfig::default());
    let layouts = MessageLayouts::compute(&mix.schema);
    let mut setup = BumpArena::new(0x1_0000, 1 << 26);
    let adts = write_adts(&mix.schema, &layouts, &mut mem.data, &mut setup).unwrap();
    let mut objects = BumpArena::new(0x8000_0000, 1 << 30);
    let mut input_cursor = 0x2000_0000u64;
    let staged: Vec<_> = mix
        .prototypes
        .iter()
        .map(|p| {
            let wire = reference::encode(&p.message, &mix.schema).unwrap();
            let input_addr = input_cursor;
            mem.data.write_bytes(input_addr, &wire);
            input_cursor += wire.len() as u64 + 64;
            let obj_ptr = object::write_message(
                &mut mem.data,
                &mix.schema,
                &layouts,
                &mut objects,
                &p.message,
            )
            .unwrap();
            let layout = layouts.layout(p.type_id);
            let dest_obj = objects.alloc(layout.object_size(), 8).unwrap();
            (p.type_id, wire.len() as u64, input_addr, obj_ptr, dest_obj)
        })
        .collect();

    let requests: Vec<Request> = events
        .iter()
        .map(|e| {
            let (type_id, input_len, input_addr, obj_ptr, dest_obj) = staged[e.prototype];
            let layout = layouts.layout(type_id);
            Request {
                arrival: e.arrival,
                watchdog: None,
                deadline: None,
                cost: None,
                op: if e.deser {
                    RequestOp::Deserialize {
                        adt_ptr: adts.addr(type_id),
                        input_addr,
                        input_len,
                        dest_obj,
                        min_field: layout.min_field(),
                    }
                } else {
                    RequestOp::Serialize {
                        adt_ptr: adts.addr(type_id),
                        obj_ptr,
                        hasbits_offset: layout.hasbits_offset(),
                        min_field: layout.min_field(),
                        max_field: layout.max_field(),
                    }
                },
            }
        })
        .collect();

    let mut cluster = ServeCluster::new(
        ServeConfig {
            instances,
            queue_depth: 32,
            policy,
            ..ServeConfig::default()
        },
        0x1_0000_0000,
        1 << 25,
    );
    cluster.run(&mut mem, &requests).unwrap();
    cluster.check_invariants().unwrap();

    let mut report = String::new();
    for r in cluster.records() {
        report.push_str(&format!(
            "{} {} {} {} {} {} {} {} {}\n",
            r.seq,
            r.enqueue,
            r.dispatch,
            r.complete,
            r.service,
            r.instance,
            r.wire_bytes,
            r.deser,
            r.sharers
        ));
    }
    report.push_str(&format!(
        "dropped={} makespan={} bytes={} gbits={:.9} p50={} p95={} p99={}\n",
        cluster.dropped(),
        cluster.makespan(),
        cluster.completed_wire_bytes(),
        cluster.throughput_gbits(),
        cluster.latency_percentile(50.0),
        cluster.latency_percentile(95.0),
        cluster.latency_percentile(99.0),
    ));
    for i in 0..instances {
        let s = cluster.instance_mem_stats(&mem, i);
        report.push_str(&format!(
            "inst{i} accesses={} bytes={} l1={} l2={} llc={} dram={}\n",
            s.accesses, s.bytes, s.l1_hits, s.l2_hits, s.llc_hits, s.dram_accesses
        ));
    }
    report
}

#[test]
fn multi_instance_serve_runs_are_byte_identical() {
    for policy in [DispatchPolicy::Fifo, DispatchPolicy::RoundRobin] {
        let a = serve_report(4, policy);
        let b = serve_report(4, policy);
        assert_eq!(a, b, "serving replay diverged under {}", policy.label());
        assert!(a.lines().count() > 10, "report covers the stream");
    }
}

#[test]
fn single_and_multi_instance_complete_the_same_offered_work() {
    // Same stream, different cluster widths: accounting must balance in
    // both (completed + dropped == offered == 64) and the wider cluster
    // must not lose requests the narrow one served.
    let narrow = serve_report(1, DispatchPolicy::Fifo);
    let wide = serve_report(8, DispatchPolicy::Fifo);
    let completed = |rep: &str| {
        rep.lines()
            .take_while(|l| !l.starts_with("dropped="))
            .count()
    };
    let dropped = |rep: &str| -> u64 {
        rep.lines()
            .find(|l| l.starts_with("dropped="))
            .and_then(|l| l.split(['=', ' ']).nth(1))
            .and_then(|v| v.parse().ok())
            .unwrap()
    };
    assert_eq!(completed(&narrow) as u64 + dropped(&narrow), 64);
    assert_eq!(completed(&wide) as u64 + dropped(&wide), 64);
    assert!(completed(&wide) >= completed(&narrow));
}
