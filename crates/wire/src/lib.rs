//! Protocol Buffers (proto2) wire-format primitives.
//!
//! This crate implements the byte-level encoding layer everything else in the
//! workspace builds on: base-128 varints, zigzag transforms for signed types,
//! field keys (field number + wire type), and a complete reference
//! encoder/decoder over byte buffers.
//!
//! Two views of the same algorithms are provided:
//!
//! * **Software view** ([`varint`], [`reader`], [`writer`]): the byte-at-a-time
//!   loops a CPU executes, used by the reference codec and the instrumented
//!   CPU baseline models.
//! * **Hardware view** ([`hw`]): combinational single-cycle varint
//!   encode/decode over a fixed 10-byte window, exactly the unit the paper's
//!   field-handler FSM instantiates (Section 4.4.4: "fixed-function hardware
//!   can easily handle varint encoding/decoding in a single cycle").
//!
//! # Example
//!
//! ```rust
//! use protoacc_wire::varint;
//!
//! let mut buf = Vec::new();
//! varint::encode(300, &mut buf);
//! assert_eq!(buf, [0b1010_1100, 0b0000_0010]);
//! let (value, len) = varint::decode(&buf)?;
//! assert_eq!((value, len), (300, 2));
//! # Ok::<(), protoacc_wire::WireError>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod hw;
pub mod key;
pub mod reader;
pub mod varint;
pub mod writer;
pub mod zigzag;

mod error;

pub use error::WireError;
pub use key::{FieldKey, WireType};
pub use reader::WireReader;
pub use writer::WireWriter;

/// Largest number of bytes a single varint may occupy on the wire.
///
/// A 64-bit value yields up to ten 7-bit groups.
pub const MAX_VARINT_LEN: usize = 10;

/// Largest field number the proto2 language permits (2^29 - 1).
pub const MAX_FIELD_NUMBER: u32 = (1 << 29) - 1;

/// Smallest valid field number. Field number zero is reserved; the paper's
/// serializer frontend uses it as an end-of-message sentinel (Section 4.5.3).
pub const MIN_FIELD_NUMBER: u32 = 1;

/// First field number of the range the protobuf language reserves for the
/// implementation (19000–19999). Schemas must not define fields here.
pub const FIRST_RESERVED_FIELD_NUMBER: u32 = 19_000;

/// Last field number of the implementation-reserved range (inclusive).
pub const LAST_RESERVED_FIELD_NUMBER: u32 = 19_999;

/// Whether `number` falls inside the implementation-reserved 19000–19999
/// range. The wire layer itself stays permissive (unknown fields with any
/// number must still be skippable); the schema layer rejects definitions.
#[must_use]
pub fn is_reserved_field_number(number: u32) -> bool {
    (FIRST_RESERVED_FIELD_NUMBER..=LAST_RESERVED_FIELD_NUMBER).contains(&number)
}
