//! Ablation: number of parallel field serializer units (§4.5.4).
//!
//! Sweeps the FSU count and reports serialization throughput on a
//! field-dense workload plus the ASIC cost of each point.

use hyperprotobench::{Generator, ServiceProfile};
use protoacc::asic::serializer_estimate;
use protoacc::AccelConfig;
use protoacc_bench::{measure_accel_config, Direction, Workload};

fn main() {
    // analytics-rows: wide records, many handle-field-ops per message.
    let bench = Generator::new(ServiceProfile::bench(5), 0xAB1).generate(48);
    let workload = Workload {
        name: bench.profile.label(),
        schema: bench.schema,
        type_id: bench.type_id,
        messages: bench.messages,
    };
    println!("Ablation: field serializer unit count (serialization, bench5)");
    println!(
        "{:<8} {:>14} {:>12} {:>12}",
        "FSUs", "ser Gbits/s", "area mm^2", "freq GHz"
    );
    for fsus in [1usize, 2, 4, 8, 16] {
        let config = AccelConfig {
            field_serializers: fsus,
            ..AccelConfig::default()
        };
        let m = measure_accel_config(&config, &workload, Direction::Serialize);
        let est = serializer_estimate(&config);
        println!(
            "{fsus:<8} {:>14.3} {:>12.3} {:>12.2}",
            m.gbits, est.area_mm2, est.freq_ghz
        );
    }
}
