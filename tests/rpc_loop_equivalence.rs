//! Open-loop vs closed-loop equivalence at low load.
//!
//! The two traffic disciplines answer different questions under overload
//! (offered load vs self-throttling), but at low utilization they must
//! describe the *same* system: with the queues nearly empty, a request's
//! latency is dominated by its own service time regardless of how its
//! arrival was generated. This test pins that equivalence at ~30%
//! utilization — median latency statistically indistinguishable between
//! disciplines — and pins both disciplines' determinism: same seeds, same
//! fingerprint, replay after replay.

use protoacc_suite::absint::Envelope;
use protoacc_suite::accel::serve::RequestOp;
use protoacc_suite::accel::{AccelConfig, DispatchPolicy, ServeConfig};
use protoacc_suite::fleet::traffic::{ClosedLoop, TrafficMix};
use protoacc_suite::mem::{Cycles, MemConfig, Memory};
use protoacc_suite::rpc::{encode_frame, IncomingFrame, Method, RpcConfig, RpcHeader, RpcServer};
use protoacc_suite::runtime::{object, reference, write_adts, BumpArena, MessageLayouts};
use protoacc_suite::xrand::StdRng;

const MIX_SEED: u64 = 0xF1EE7;
const STREAM_SEED: u64 = 0x10AD;
const INSTANCES: usize = 4;
/// Target utilization: low enough that queueing is negligible and the
/// disciplines converge.
const RHO: f64 = 0.3;
/// Requests per cell. Large enough that the served-latency median is
/// stable against the seeded arrival noise.
const REQUESTS: usize = 400;

/// Stages the mix as an RPC method table in a fresh memory image (the
/// integration-test twin of the `serve_rpc` bench staging).
fn stage_methods(mix: &TrafficMix, mem: &mut Memory) -> Vec<Method> {
    let layouts = MessageLayouts::compute(&mix.schema);
    let accel = AccelConfig::default();
    let mem_cfg = MemConfig::default();
    let mut setup = BumpArena::new(0x1_0000, 1 << 26);
    let adts = write_adts(&mix.schema, &layouts, &mut mem.data, &mut setup).unwrap();
    let mut input_cursor = 0x2000_0000u64;
    let mut objects = BumpArena::new(0x8000_0000, 1 << 30);
    mix.prototypes
        .iter()
        .map(|p| {
            let wire = reference::encode(&p.message, &mix.schema).unwrap();
            let input_addr = input_cursor;
            mem.data.write_bytes(input_addr, &wire);
            input_cursor += wire.len() as u64 + 64;
            let obj_ptr = object::write_message(
                &mut mem.data,
                &mix.schema,
                &layouts,
                &mut objects,
                &p.message,
            )
            .unwrap();
            let layout = layouts.layout(p.type_id);
            let dest_obj = objects.alloc(layout.object_size(), 8).unwrap();
            let deser_env = Envelope::deser(&mix.schema, &layouts, p.type_id, &accel, &mem_cfg);
            let ser_env = Envelope::ser(&mix.schema, &layouts, p.type_id, &accel, &mem_cfg);
            Method::from_envelopes(
                RequestOp::Deserialize {
                    adt_ptr: adts.addr(p.type_id),
                    input_addr,
                    input_len: wire.len() as u64,
                    dest_obj,
                    min_field: layout.min_field(),
                },
                RequestOp::Serialize {
                    adt_ptr: adts.addr(p.type_id),
                    obj_ptr,
                    hasbits_offset: layout.hasbits_offset(),
                    min_field: layout.min_field(),
                    max_field: layout.max_field(),
                },
                &deser_env,
                &ser_env,
                wire.len() as u64,
                wire.len() as u64,
            )
        })
        .collect()
}

fn server(methods: Vec<Method>) -> RpcServer {
    RpcServer::new(
        ServeConfig {
            instances: INSTANCES,
            queue_depth: 256,
            policy: DispatchPolicy::Fifo,
            ..ServeConfig::default()
        },
        RpcConfig {
            window: 16,
            ..RpcConfig::default()
        },
        methods,
        0x1_0000_0000,
        1 << 26,
    )
}

/// No-deadline request frame: the equivalence study wants pure queueing
/// behavior, with admission control out of the picture.
fn request_frame(method: usize, deser: bool) -> Vec<u8> {
    let header = RpcHeader {
        method: method as u32,
        deser,
        deadline: None,
    };
    encode_frame(false, &header.to_payload()).expect("request header fits the frame ceiling")
}

/// One cell's observable outcome: served count plus the sorted latency
/// distribution (the fingerprint for determinism, the data for p50).
#[derive(PartialEq, Eq, Debug)]
struct Outcome {
    served: u64,
    latencies: Vec<Cycles>,
}

impl Outcome {
    fn p50(&self) -> Cycles {
        self.latencies[protoacc_suite::trace::nearest_rank(50.0, self.latencies.len())]
    }
}

fn outcome(srv: &RpcServer) -> Outcome {
    let mut latencies: Vec<Cycles> = srv
        .cluster()
        .records()
        .iter()
        .map(protoacc_suite::accel::serve::CommandRecord::latency)
        .collect();
    latencies.sort_unstable();
    Outcome {
        served: srv.cluster().served(),
        latencies,
    }
}

/// Mean uncontended service time, calibrated on a sparse stream.
fn calibrate(mix: &TrafficMix) -> f64 {
    let mut mem = Memory::new(MemConfig::default());
    let methods = stage_methods(mix, &mut mem);
    let mut srng = StdRng::seed_from_u64(STREAM_SEED);
    let events = mix.stream(&mut srng, 64, 10_000_000.0);
    let frames: Vec<IncomingFrame> = events
        .iter()
        .map(|e| IncomingFrame {
            conn: 0,
            arrival: e.arrival,
            bytes: request_frame(e.prototype, e.deser),
        })
        .collect();
    let mut srv = server(methods);
    srv.serve(&mut mem, &frames).unwrap();
    let records = srv.cluster().records();
    records.iter().map(|r| r.service).sum::<u64>() as f64 / records.len() as f64
}

fn open_loop(mix: &TrafficMix, gap: f64) -> Outcome {
    let mut mem = Memory::new(MemConfig::default());
    let methods = stage_methods(mix, &mut mem);
    let mut srng = StdRng::seed_from_u64(STREAM_SEED);
    let events = mix.stream(&mut srng, REQUESTS, gap);
    let frames: Vec<IncomingFrame> = events
        .iter()
        .enumerate()
        .map(|(i, e)| IncomingFrame {
            conn: i % 8,
            arrival: e.arrival,
            bytes: request_frame(e.prototype, e.deser),
        })
        .collect();
    let mut srv = server(methods);
    srv.serve(&mut mem, &frames).unwrap();
    outcome(&srv)
}

fn closed_loop(mix: &TrafficMix, users: usize, think: f64) -> Outcome {
    let mut mem = Memory::new(MemConfig::default());
    let methods = stage_methods(mix, &mut mem);
    let mut srv = server(methods.clone());
    let mut clients = ClosedLoop::new(users, think);
    let mut rng = StdRng::seed_from_u64(STREAM_SEED);
    for _ in 0..REQUESTS {
        let (user, at) = clients.next_issue().expect("some user is always ready");
        let (prototype, deser) = mix.sample(&mut rng);
        let frame = IncomingFrame {
            conn: user,
            arrival: at,
            bytes: request_frame(prototype, deser),
        };
        let before = srv.cluster().records().len();
        srv.serve(&mut mem, std::slice::from_ref(&frame)).unwrap();
        let completion = srv
            .cluster()
            .records()
            .get(before)
            .map_or(at, |r| r.complete)
            .max(at);
        clients.complete(user, completion, &mut rng);
    }
    outcome(&srv)
}

#[test]
fn loop_disciplines_agree_at_low_load_and_replay_deterministically() {
    let mut rng = StdRng::seed_from_u64(MIX_SEED);
    let mix = TrafficMix::build(&mut rng, 8);
    let service = calibrate(&mix);

    // Open loop at rho = RHO: mean interarrival gap = service / (N * rho).
    let gap = service / (INSTANCES as f64 * RHO);
    // Closed loop at the same utilization: `users` clients cycling through
    // service + think, with think chosen so users/(service+think) equals
    // the open loop's arrival rate: think = service * (users/(N*rho) - 1).
    let users = 6;
    let think = service * (users as f64 / (INSTANCES as f64 * RHO) - 1.0);

    let open = open_loop(&mix, gap);
    let closed = closed_loop(&mix, users, think);

    // Both disciplines served everything: no deadlines, no shedding, and
    // queue depth far above what 30% utilization can accumulate.
    assert_eq!(open.served, REQUESTS as u64);
    assert_eq!(closed.served, REQUESTS as u64);

    // Deterministic fingerprint replay: the full sorted latency
    // distribution is bit-identical run over run.
    assert_eq!(open, open_loop(&mix, gap), "open loop must replay exactly");
    assert_eq!(
        closed,
        closed_loop(&mix, users, think),
        "closed loop must replay exactly"
    );

    // Statistical equivalence of the medians: at 30% utilization queueing
    // is a small correction on top of the same (heavy-tailed) service
    // distribution — Poisson bursts still buy the open loop a fraction of
    // a service time of median wait, so the band is one mean service time.
    // That keeps real discriminating power: under overload the disciplines'
    // medians separate by tens of mean service times.
    let (p50_open, p50_closed) = (open.p50(), closed.p50());
    let diff = p50_open.abs_diff(p50_closed) as f64;
    assert!(
        diff <= service,
        "p50 diverged at low load: open={p50_open} closed={p50_closed} \
         (mean service {service:.0}, allowed {service:.0})"
    );
}
