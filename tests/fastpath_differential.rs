//! Fast-path codec differential suite: `protoacc-fastpath` vs `crates/cpu`
//! (verdicts) and vs the reference encoder (bytes), over every HyperProtoBench
//! suite, every `protos/` schema through both ingestion paths (`.proto` text
//! and `.binpb` descriptor sets), truncation at every offset, and a ≥10k
//! seeded mutation sweep.
//!
//! The contract: the fast path is allowed to be *faster* than the existing
//! engines, never observably different. Encodes must be byte-identical to
//! the reference encoder; decodes must produce value-identical trees on
//! accepts and the same `DecodeFault` class as `crates/cpu` on rejects.

use protoacc_suite::fastpath::{swar, DecodeArena, FastCodec};
use protoacc_suite::faults::{depth_bomb, mutate, DiffReport, FastpathHarness, Verdict};
use protoacc_suite::hyperbench::{generate_suite, populate::populate_messages, ServiceProfile};
use protoacc_suite::runtime::{reference, MessageValue, Value};
use protoacc_suite::schema::{parse_descriptor_set, parse_proto, MessageId, Schema};
use protoacc_suite::xrand::StdRng;

fn load_proto(name: &str) -> Schema {
    let path = format!("{}/protos/{name}", env!("CARGO_MANIFEST_DIR"));
    let source = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{path}: {e}"));
    parse_proto(&source).unwrap_or_else(|e| panic!("{name} must parse: {e}"))
}

fn load_binpb(stem: &str) -> Schema {
    let path = format!("{}/protos/chain/{stem}.binpb", env!("CARGO_MANIFEST_DIR"));
    let bytes = std::fs::read(&path).unwrap_or_else(|e| panic!("{path}: {e}"));
    parse_descriptor_set(&bytes).unwrap_or_else(|e| panic!("{stem}.binpb must parse: {e}"))
}

/// The corpus convention: the last top-level message is the aggregate root.
fn root_of(schema: &Schema) -> MessageId {
    schema
        .iter()
        .filter(|(_, m)| !m.name().contains('.'))
        .map(|(id, _)| id)
        .last()
        .expect("schema has at least one message")
}

/// Byte-identity + value-identity + verdict checks for one (schema, message).
#[track_caller]
fn check_message(label: &str, schema: &Schema, type_id: MessageId, message: &MessageValue) {
    let codec = FastCodec::new(schema);
    let wire = reference::encode(message, schema).expect("corpus message encodes");
    // Encode: byte-identical to the reference (and hence cpu) serializer.
    let fast_wire = codec.encode_value(message).expect("fastpath encodes");
    assert_eq!(fast_wire, wire, "{label}: encode bytes diverge");
    // Decode: value-identical tree, byte-identical arena re-serialization.
    let mut arena = DecodeArena::new();
    let obj = codec
        .decode(type_id, &wire, &mut arena)
        .expect("fastpath decodes its own encoding");
    let back = codec.to_value(type_id, &wire, &arena, obj);
    assert!(back.bits_eq(message), "{label}: decoded tree diverges");
    assert_eq!(
        codec.encode_decoded(type_id, &wire, &arena, obj),
        wire,
        "{label}: arena re-serialization diverges"
    );
}

/// Truncates `wire` at every offset (strided above `max_cuts` for very large
/// messages) and requires verdict agreement with the CPU oracle at each cut.
fn check_truncations(label: &str, h: &mut FastpathHarness, wire: &[u8], max_cuts: usize) {
    let stride = (wire.len() / max_cuts.max(1)).max(1);
    for cut in (0..wire.len()).step_by(stride) {
        let (fast, cpu) = h.verdicts(&wire[..cut]);
        assert_eq!(
            fast,
            cpu,
            "{label} truncated at byte {cut}/{}: fastpath {fast:?} vs cpu {cpu:?}",
            wire.len()
        );
    }
    let (fast, cpu) = h.verdicts(wire);
    assert!(
        fast.is_accept() && cpu.is_accept(),
        "{label}: untruncated wire must decode on both sides ({fast:?} / {cpu:?})"
    );
}

#[test]
fn hyperbench_suites_are_byte_and_value_identical() {
    for bench in generate_suite(8, 0xC0DE) {
        for (mi, message) in bench.messages.iter().enumerate() {
            check_message(
                &format!("{}/m{mi}", bench.profile.name),
                &bench.schema,
                bench.type_id,
                message,
            );
        }
    }
}

#[test]
fn hyperbench_truncation_verdicts_match_the_cpu_oracle() {
    for bench in generate_suite(2, 0xC0DE) {
        let mut h = FastpathHarness::new(&bench.schema, bench.type_id);
        for (mi, message) in bench.messages.iter().enumerate() {
            let wire = reference::encode(message, &bench.schema).unwrap();
            check_truncations(
                &format!("{}/m{mi}", bench.profile.name),
                &mut h,
                &wire,
                1024,
            );
        }
    }
}

/// Text-ingested `.proto` corpus: deterministic handcrafted messages through
/// encode/decode identity plus exhaustive (unstrided) truncation.
#[test]
fn proto_text_corpus_round_trips_and_truncates_cleanly() {
    for (file, message) in corpus_messages() {
        let schema = load_proto(file);
        let type_id = message.type_id();
        check_message(file, &schema, type_id, &message);
        let wire = reference::encode(&message, &schema).unwrap();
        let mut h = FastpathHarness::new(&schema, type_id);
        check_truncations(file, &mut h, &wire, usize::MAX);
    }
}

/// Binary-descriptor-ingested corpus (`protos/chain/*.binpb`): seeded
/// populations through the same identity and truncation gates.
#[test]
fn binpb_corpus_round_trips_and_truncates_cleanly() {
    for stem in ["consensus", "gossip", "state_sync", "transaction"] {
        let schema = load_binpb(stem);
        let root = root_of(&schema);
        let shape = ServiceProfile::bench(4).shape;
        let messages = populate_messages(&schema, root, &shape, 0xB1A9 + stem.len() as u64, 6);
        assert!(!messages.is_empty(), "{stem}: population is empty");
        let mut h = FastpathHarness::new(&schema, root);
        for (mi, message) in messages.iter().enumerate() {
            check_message(&format!("chain/{stem}/m{mi}"), &schema, root, message);
            let wire = reference::encode(message, &schema).unwrap();
            check_truncations(&format!("chain/{stem}/m{mi}"), &mut h, &wire, usize::MAX);
        }
    }
}

/// The ≥10k seeded mutation sweep: every verdict must match the CPU oracle,
/// and the sweep must exercise both accepts and rejects.
#[test]
fn mutation_sweep_verdicts_match_the_cpu_oracle() {
    let mutations_per_message = if cfg!(feature = "slow-tests") {
        210 * 16
    } else {
        210
    };
    let suite = generate_suite(8, 0xC0DE);
    let mut rng = StdRng::seed_from_u64(0xFA57_D1FF);
    let mut report = DiffReport::default();
    for bench in &suite {
        let mut h = FastpathHarness::new(&bench.schema, bench.type_id);
        for (mi, message) in bench.messages.iter().enumerate() {
            let wire = reference::encode(message, &bench.schema).unwrap();
            h.observe(
                &format!("{}/m{mi}/clean", bench.profile.name),
                &wire,
                &mut report,
            );
            for trial in 0..mutations_per_message {
                let (fault, mutated) = mutate(&wire, &mut rng);
                h.observe(
                    &format!("{}/m{mi}/t{trial}/{}", bench.profile.name, fault.label()),
                    &mutated,
                    &mut report,
                );
            }
        }
    }
    assert!(report.is_clean(), "{}", report.summary());
    assert!(
        report.trials >= 10_000,
        "only {} trials — the sweep shrank below its 10k floor",
        report.trials
    );
    assert!(report.accepted > 0, "{}", report.summary());
    assert!(report.rejected > 0, "{}", report.summary());
}

/// Depth bomb through the fast path: typed `DepthExceeded` on both sides,
/// bounded work, no stack exhaustion.
#[test]
fn depth_bomb_is_rejected_with_depth_exceeded_on_both_sides() {
    use protoacc_suite::accel::DecodeFault;
    let schema = load_proto("storage_row.proto");
    let row_id = schema.id_by_name("Row").unwrap();
    let mut h = FastpathHarness::new(&schema, row_id);
    let (fast, cpu) = h.verdicts(&depth_bomb(15, 300));
    assert_eq!(fast, Verdict::Reject(DecodeFault::DepthExceeded));
    assert_eq!(cpu, Verdict::Reject(DecodeFault::DepthExceeded));
    let (fast, cpu) = h.verdicts(&depth_bomb(15, 10));
    assert!(fast.is_accept() && cpu.is_accept(), "{fast:?} / {cpu:?}");
}

/// Minimized regression (divergence sweep): a packed element whose varint
/// runs into the byte after the declared packed body must be `Truncated` on
/// both engines — never completed from the next field's bytes.
#[test]
fn packed_body_clamp_verdicts_agree() {
    let schema =
        parse_proto("message P { repeated sint32 v = 7 [packed = true]; optional int32 a = 1; }")
            .unwrap();
    let type_id = schema.id_by_name("P").unwrap();
    let mut h = FastpathHarness::new(&schema, type_id);
    // key(7, LD)=0x3a, body len 1, element byte 0x96 (continuation bit set),
    // then a valid `a = 5` field the clamped element must NOT consume.
    let bytes = [0x3a, 0x01, 0x96, 0x08, 0x05];
    let (fast, cpu) = h.verdicts(&bytes);
    assert_eq!(fast, cpu, "packed clamp: {fast:?} vs {cpu:?}");
    assert!(
        !fast.is_accept(),
        "a clamped mid-varint element must reject"
    );
    // And the well-formed variant accepts on both.
    let ok = [0x3a, 0x02, 0x96, 0x01, 0x08, 0x05];
    let (fast, cpu) = h.verdicts(&ok);
    assert!(fast.is_accept() && cpu.is_accept(), "{fast:?} / {cpu:?}");
}

/// Minimized regression (divergence sweep): overlong-but-terminated varint
/// field payloads (redundant continuation bytes, 10-byte encodings of small
/// values) must decode to the same value on both engines.
#[test]
fn overlong_varint_payloads_agree() {
    let schema = parse_proto("message O { optional uint64 v = 1; optional int32 w = 2; }").unwrap();
    let type_id = schema.id_by_name("O").unwrap();
    let codec = FastCodec::new(&schema);
    let mut h = FastpathHarness::new(&schema, type_id);
    // v = 5 encoded in exactly 10 bytes, then w = -1 sign-extended (always
    // 10 bytes on the wire).
    let mut wire = vec![
        0x08, 0x85, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x00,
    ];
    wire.extend_from_slice(&[0x10]);
    wire.extend_from_slice(&[0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01]);
    let (fast, cpu) = h.verdicts(&wire);
    assert!(fast.is_accept() && cpu.is_accept(), "{fast:?} / {cpu:?}");
    let mut arena = DecodeArena::new();
    let back = codec.decode_to_value(type_id, &wire, &mut arena).unwrap();
    assert_eq!(back.get_single(1), Some(&Value::UInt64(5)));
    assert_eq!(back.get_single(2), Some(&Value::Int32(-1)));
}

/// Minimized regression (divergence sweep): zigzag sign-extension extremes
/// stay byte- and value-identical across both engines at i32/i64 bounds.
#[test]
fn zigzag_extremes_are_byte_identical() {
    let schema = parse_proto(
        "message Z { optional sint32 a = 1; optional sint64 b = 2; \
         repeated sint32 pa = 3 [packed = true]; repeated sint64 pb = 4 [packed = true]; }",
    )
    .unwrap();
    let type_id = schema.id_by_name("Z").unwrap();
    let codec = FastCodec::new(&schema);
    let mut h = FastpathHarness::new(&schema, type_id);
    let mut m = MessageValue::new(type_id);
    m.set_unchecked(1, Value::SInt32(i32::MIN));
    m.set_unchecked(2, Value::SInt64(i64::MIN));
    m.set_repeated(
        3,
        vec![
            Value::SInt32(i32::MIN),
            Value::SInt32(i32::MAX),
            Value::SInt32(-1),
            Value::SInt32(0),
        ],
    );
    m.set_repeated(
        4,
        vec![
            Value::SInt64(i64::MIN),
            Value::SInt64(i64::MAX),
            Value::SInt64(-1),
        ],
    );
    let wire = reference::encode(&m, &schema).unwrap();
    assert_eq!(codec.encode_value(&m).unwrap(), wire);
    let (fast, cpu) = h.verdicts(&wire);
    assert!(fast.is_accept() && cpu.is_accept(), "{fast:?} / {cpu:?}");
    let mut arena = DecodeArena::new();
    let back = codec.decode_to_value(type_id, &wire, &mut arena).unwrap();
    assert!(back.bits_eq(&m), "zigzag extremes diverge after round trip");
}

/// The SWAR decoder reached through the facade agrees with the scalar
/// decoder on a quick spot check (the exhaustive sweep lives in
/// `tests/varint_boundary.rs`).
#[test]
fn facade_exports_the_swar_decoder() {
    use protoacc_suite::wire::varint;
    let buf = [0x96, 0x01, 0xde];
    assert_eq!(swar::decode(&buf).unwrap(), (150, 2));
    assert_eq!(swar::decode(&buf), varint::decode(&buf));
}

/// Deterministic handcrafted messages for each text `.proto` schema
/// (compact versions of the `proto_corpus` builders).
fn corpus_messages() -> Vec<(&'static str, MessageValue)> {
    let mut out = Vec::new();

    let schema = load_proto("addressbook.proto");
    let phone_id = schema.id_by_name("Person.PhoneNumber").unwrap();
    let person_id = schema.id_by_name("Person").unwrap();
    let book_id = schema.id_by_name("AddressBook").unwrap();
    let mut phone = MessageValue::new(phone_id);
    phone.set_unchecked(1, Value::Str("+1-555-0001".into()));
    phone.set_unchecked(2, Value::Enum(1));
    let mut person = MessageValue::new(person_id);
    person.set_unchecked(1, Value::Str("Ada Lovelace".into()));
    person.set_unchecked(2, Value::Int32(-7));
    person.set_repeated(4, vec![Value::Message(phone)]);
    let mut book = MessageValue::new(book_id);
    book.set_repeated(1, vec![Value::Message(person)]);
    out.push(("addressbook.proto", book));

    let schema = load_proto("telemetry.proto");
    let point_id = schema.id_by_name("Point").unwrap();
    let series_id = schema.id_by_name("TimeSeries").unwrap();
    let batch_id = schema.id_by_name("ScrapeBatch").unwrap();
    let points = (0..5)
        .map(|i| {
            let mut p = MessageValue::new(point_id);
            p.set_unchecked(1, Value::Fixed64(1_000_000 + i));
            p.set_unchecked(2, Value::Double(i as f64 * 1.5));
            p.set_unchecked(4, Value::SInt64(-(i as i64)));
            Value::Message(p)
        })
        .collect();
    let mut series = MessageValue::new(series_id);
    series.set_unchecked(1, Value::Str("cpu.utilization".into()));
    series.set_repeated(3, points);
    series.set_repeated(12, vec![Value::Double(0.5), Value::Double(0.99)]);
    series.set_repeated(13, (0..4).map(Value::Int64).collect());
    series.set_unchecked(120, Value::Bool(true));
    let mut batch = MessageValue::new(batch_id);
    batch.set_unchecked(1, Value::Fixed64(999));
    batch.set_repeated(2, vec![Value::Message(series)]);
    batch.set_unchecked(4, Value::Bytes(vec![0xde, 0xad, 0xbe, 0xef]));
    out.push(("telemetry.proto", batch));

    let schema = load_proto("storage_row.proto");
    let cell_id = schema.id_by_name("Cell").unwrap();
    let family_id = schema.id_by_name("ColumnFamily").unwrap();
    let row_id = schema.id_by_name("Row").unwrap();
    let tablet_id = schema.id_by_name("Tablet").unwrap();
    let mut cell = MessageValue::new(cell_id);
    cell.set_unchecked(1, Value::Bytes(vec![0x5a; 96]));
    cell.set_unchecked(2, Value::UInt64(1001));
    let mut family = MessageValue::new(family_id);
    family.set_unchecked(1, Value::Str("cf".into()));
    family.set_repeated(2, vec![Value::Message(cell)]);
    let mut shadow = MessageValue::new(row_id);
    shadow.set_unchecked(1, Value::Bytes(b"shadow".to_vec()));
    let mut row = MessageValue::new(row_id);
    row.set_unchecked(1, Value::Bytes(b"row-0".to_vec()));
    row.set_repeated(2, vec![Value::Message(family)]);
    row.set_unchecked(15, Value::Message(shadow));
    let mut tablet = MessageValue::new(tablet_id);
    tablet.set_unchecked(1, Value::Str("metrics_table".into()));
    tablet.set_repeated(2, vec![Value::Message(row)]);
    tablet.set_unchecked(4, Value::Fixed64(77));
    out.push(("storage_row.proto", tablet));

    out
}
