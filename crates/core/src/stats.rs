//! Accelerator statistics counters.

use protoacc_mem::Cycles;

/// Counters accumulated across accelerator operations.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AccelStats {
    /// Total cycles spent in the deserializer unit.
    pub deser_cycles: Cycles,
    /// Total cycles spent in the serializer unit.
    pub ser_cycles: Cycles,
    /// Deserialization operations completed.
    pub deser_ops: u64,
    /// Serialization operations completed.
    pub ser_ops: u64,
    /// Wire bytes consumed by deserialization.
    pub deser_wire_bytes: u64,
    /// Wire bytes produced by serialization.
    pub ser_wire_bytes: u64,
    /// Fields handled (both directions, sub-messages counted recursively).
    pub fields: u64,
    /// Varints decoded or encoded by the combinational units.
    pub varints: u64,
    /// In-accelerator allocations performed (strings, sub-messages,
    /// repeated regions).
    pub allocs: u64,
    /// Sub-message stack pushes.
    pub stack_pushes: u64,
    /// Stack pushes that spilled past the on-chip depth.
    pub stack_spills: u64,
    /// ADT entry loads that missed the accelerator's small ADT cache.
    pub adt_misses: u64,
    /// Merge operations completed (Section 7 future-work unit).
    pub merge_ops: u64,
    /// Copy operations completed.
    pub copy_ops: u64,
    /// Clear operations completed.
    pub clear_ops: u64,
}

impl AccelStats {
    /// Merges another stats block into this one.
    pub fn merge(&mut self, other: &AccelStats) {
        self.deser_cycles += other.deser_cycles;
        self.ser_cycles += other.ser_cycles;
        self.deser_ops += other.deser_ops;
        self.ser_ops += other.ser_ops;
        self.deser_wire_bytes += other.deser_wire_bytes;
        self.ser_wire_bytes += other.ser_wire_bytes;
        self.fields += other.fields;
        self.varints += other.varints;
        self.allocs += other.allocs;
        self.stack_pushes += other.stack_pushes;
        self.stack_spills += other.stack_spills;
        self.adt_misses += other.adt_misses;
        self.merge_ops += other.merge_ops;
        self.copy_ops += other.copy_ops;
        self.clear_ops += other.clear_ops;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_adds_counters() {
        let mut a = AccelStats {
            deser_cycles: 10,
            fields: 2,
            ..Default::default()
        };
        let b = AccelStats {
            deser_cycles: 5,
            fields: 3,
            varints: 7,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.deser_cycles, 15);
        assert_eq!(a.fields, 5);
        assert_eq!(a.varints, 7);
    }
}
