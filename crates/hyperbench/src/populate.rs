//! Populating messages for *arbitrary* schemas (user-provided `.proto`
//! files), as the benchmark CLI needs — distinct from [`crate::Generator`],
//! which synthesizes its own schema.

use protoacc_runtime::{MessageValue, Value};
use protoacc_schema::{FieldType, MessageId, Schema};
use xrand::{Rng, StdRng};

use crate::ShapeParams;

/// Bound on population recursion for recursive schemas.
const MAX_DEPTH: usize = 8;

/// Populates `count` messages of `root` in `schema`, drawing presence,
/// sizes, and values from `params`. Deterministic in `seed`.
pub fn populate_messages(
    schema: &Schema,
    root: MessageId,
    params: &ShapeParams,
    seed: u64,
    count: usize,
) -> Vec<MessageValue> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count)
        .map(|_| populate_one(schema, root, params, &mut rng, 1))
        .collect()
}

fn populate_one(
    schema: &Schema,
    type_id: MessageId,
    params: &ShapeParams,
    rng: &mut StdRng,
    depth: usize,
) -> MessageValue {
    let mut m = MessageValue::new(type_id);
    let descriptor = schema.message(type_id);
    for field in descriptor.fields() {
        let required = field.label() == protoacc_schema::Label::Required;
        let present = required || rng.gen_bool(params.populated_fraction.clamp(0.05, 1.0));
        if !present {
            continue;
        }
        // Recursion guard: optional recursive fields stop at the depth cap.
        if field.field_type().is_message() && depth >= MAX_DEPTH && !required {
            continue;
        }
        if field.is_repeated() {
            let len = (params.mean_repeated_len.max(1.0) * rng.gen_range(0.5f64..1.5))
                .round()
                .max(1.0) as usize;
            let values = (0..len)
                .map(|_| sample_value(schema, field.field_type(), params, rng, depth))
                .collect();
            m.set_repeated(field.number(), values);
        } else {
            let value = sample_value(schema, field.field_type(), params, rng, depth);
            m.set_unchecked(field.number(), value);
        }
    }
    m
}

fn sample_value(
    schema: &Schema,
    field_type: FieldType,
    params: &ShapeParams,
    rng: &mut StdRng,
    depth: usize,
) -> Value {
    match field_type {
        FieldType::Bool => Value::Bool(rng.gen()),
        FieldType::Int32 => Value::Int32(rng.gen::<i32>() >> rng.gen_range(0..24)),
        FieldType::Int64 => Value::Int64(rng.gen::<i64>() >> rng.gen_range(0..48)),
        FieldType::UInt32 => Value::UInt32(rng.gen::<u32>() >> rng.gen_range(0..24)),
        FieldType::UInt64 => Value::UInt64(rng.gen::<u64>() >> rng.gen_range(0..48)),
        FieldType::SInt32 => Value::SInt32(rng.gen::<i32>() >> rng.gen_range(0..24)),
        FieldType::SInt64 => Value::SInt64(rng.gen::<i64>() >> rng.gen_range(0..48)),
        FieldType::Fixed32 => Value::Fixed32(rng.gen()),
        FieldType::Fixed64 => Value::Fixed64(rng.gen()),
        FieldType::SFixed32 => Value::SFixed32(rng.gen()),
        FieldType::SFixed64 => Value::SFixed64(rng.gen()),
        FieldType::Float => Value::Float(rng.gen::<f32>() * 1e3),
        FieldType::Double => Value::Double(rng.gen::<f64>() * 1e3),
        FieldType::Enum => Value::Enum(rng.gen_range(0..8)),
        FieldType::String => {
            let len = sample_len(params, rng);
            Value::Str(
                (0..len)
                    .map(|_| rng.gen_range(b'a'..=b'z') as char)
                    .collect(),
            )
        }
        FieldType::Bytes => {
            let len = sample_len(params, rng);
            let mut buf = vec![0u8; len];
            rng.fill(&mut buf[..]);
            Value::Bytes(buf)
        }
        FieldType::Message(sub) => {
            Value::Message(populate_one(schema, sub, params, rng, depth + 1))
        }
    }
}

fn sample_len(params: &ShapeParams, rng: &mut StdRng) -> usize {
    let mean = if rng.gen_bool(params.long_string_fraction.clamp(0.0, 1.0)) {
        params.mean_string_len * 32.0
    } else {
        params.mean_string_len
    };
    let u: f64 = rng.gen_range(0.05f64..1.0);
    ((-u.ln()) * mean.max(1.0)).round().clamp(0.0, 1_000_000.0) as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ServiceProfile;
    use protoacc_runtime::reference;
    use protoacc_schema::parse_proto;

    const SOURCE: &str = r#"
        syntax = "proto2";
        message Leaf { optional bytes payload = 1; }
        message Node {
            required int64 id = 1;
            optional string name = 2;
            repeated Leaf leaves = 3;
            optional Node next = 4;
        }
    "#;

    #[test]
    fn populates_arbitrary_schema_with_valid_messages() {
        let schema = parse_proto(SOURCE).unwrap();
        let root = schema.id_by_name("Node").unwrap();
        let params = ServiceProfile::bench(4).shape;
        let messages = populate_messages(&schema, root, &params, 11, 12);
        assert_eq!(messages.len(), 12);
        for m in &messages {
            m.validate(&schema).expect("populated message validates");
            let wire = reference::encode(m, &schema).unwrap();
            let back = reference::decode(&wire, root, &schema).unwrap();
            assert!(back.bits_eq(m));
        }
    }

    #[test]
    fn recursion_is_bounded() {
        let schema = parse_proto(SOURCE).unwrap();
        let root = schema.id_by_name("Node").unwrap();
        let mut params = ServiceProfile::bench(0).shape;
        params.populated_fraction = 1.0; // force the recursive field on
        let messages = populate_messages(&schema, root, &params, 3, 4);
        for m in &messages {
            assert!(m.depth() <= MAX_DEPTH + 1, "depth {}", m.depth());
        }
    }

    #[test]
    fn required_fields_are_always_present() {
        let schema = parse_proto(SOURCE).unwrap();
        let root = schema.id_by_name("Node").unwrap();
        let mut params = ServiceProfile::bench(0).shape;
        params.populated_fraction = 0.05;
        for m in populate_messages(&schema, root, &params, 5, 20) {
            assert!(m.get_i64(1).is_some(), "required id always set");
        }
    }

    #[test]
    fn deterministic_in_seed() {
        let schema = parse_proto(SOURCE).unwrap();
        let root = schema.id_by_name("Node").unwrap();
        let params = ServiceProfile::bench(2).shape;
        let a = populate_messages(&schema, root, &params, 9, 6);
        let b = populate_messages(&schema, root, &params, 9, 6);
        assert!(a.iter().zip(&b).all(|(x, y)| x.bits_eq(y)));
    }
}
