//! C++-ABI-like in-memory object layouts for message types.
//!
//! Section 2.1.3: users expect protobuf messages as ordinary C++ objects —
//! scalars as primitives, strings as `std::string`, repeated fields as
//! vectors, sub-messages behind pointers. The layout engine computes, per
//! message type, where each of those lives inside the object, plus the
//! sparse hasbits array the accelerator indexes directly (Section 4.2).
//!
//! Object layout (all little-endian, 8-byte aligned overall):
//!
//! ```text
//! +0              vptr (8 B, points at the type's ADT in this model)
//! +8              hasbits array, ceil(span/8) bytes, padded to 8 B
//! +hasbits_end    field slots in ascending field-number order, naturally
//!                 aligned: inline scalars by value; string/bytes, repeated,
//!                 and sub-message fields as 8 B pointers
//! ```

use std::collections::HashMap;

use protoacc_schema::{FieldType, MessageDescriptor, MessageId, ScalarKind, Schema};

/// Size of the modeled `std::string` object (libstdc++ ABI: pointer, size,
/// 16-byte union of capacity and SSO buffer).
pub const STRING_OBJECT_BYTES: u64 = 32;

/// Longest string stored inline in the SSO buffer (15 chars + NUL).
pub const STRING_SSO_CAPACITY: usize = 15;

/// Size of the modeled repeated-field header (element pointer, length in
/// elements, capacity in elements).
pub const REPEATED_HEADER_BYTES: u64 = 24;

/// Size of the vptr slot at offset 0 of every message object.
pub const VPTR_BYTES: u64 = 8;

/// What occupies a field's slot inside the message object.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SlotKind {
    /// Inline scalar of the given width.
    Scalar(ScalarKind),
    /// 8-byte pointer to a 32-byte string object.
    StringPtr,
    /// 8-byte pointer to a sub-message object.
    MessagePtr,
    /// 8-byte pointer to a repeated-field header.
    RepeatedPtr,
}

impl SlotKind {
    /// Bytes the slot itself occupies inside the object.
    pub fn size(self) -> u64 {
        match self {
            SlotKind::Scalar(k) => k.size() as u64,
            SlotKind::StringPtr | SlotKind::MessagePtr | SlotKind::RepeatedPtr => 8,
        }
    }

    /// Natural alignment of the slot.
    pub fn align(self) -> u64 {
        self.size().max(1)
    }
}

/// One field's location inside its message object.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FieldSlot {
    /// Byte offset from the start of the object.
    pub offset: u64,
    /// What lives there.
    pub kind: SlotKind,
}

/// Computed layout of one message type.
#[derive(Debug, Clone)]
pub struct MessageLayout {
    type_id: MessageId,
    object_size: u64,
    hasbits_offset: u64,
    hasbits_bytes: u64,
    min_field: u32,
    max_field: u32,
    slots: HashMap<u32, FieldSlot>,
}

impl MessageLayout {
    /// Computes the layout for one message type.
    pub fn compute(type_id: MessageId, descriptor: &MessageDescriptor) -> Self {
        let span = descriptor.field_number_span() as u64;
        let hasbits_bytes = span.div_ceil(8).div_ceil(8) * 8; // pad to 8 B
        let hasbits_offset = VPTR_BYTES;
        let mut cursor = hasbits_offset + hasbits_bytes;
        let mut slots = HashMap::with_capacity(descriptor.fields().len());
        for field in descriptor.fields() {
            let kind = if field.is_repeated() {
                SlotKind::RepeatedPtr
            } else {
                match field.field_type() {
                    FieldType::String | FieldType::Bytes => SlotKind::StringPtr,
                    FieldType::Message(_) => SlotKind::MessagePtr,
                    scalar => {
                        SlotKind::Scalar(scalar.scalar_kind().expect("non-scalar handled above"))
                    }
                }
            };
            let align = kind.align();
            cursor = cursor.div_ceil(align) * align;
            slots.insert(
                field.number(),
                FieldSlot {
                    offset: cursor,
                    kind,
                },
            );
            cursor += kind.size();
        }
        let object_size = cursor.div_ceil(8) * 8;
        MessageLayout {
            type_id,
            object_size,
            hasbits_offset,
            hasbits_bytes,
            min_field: descriptor.min_field_number().unwrap_or(1),
            max_field: descriptor.max_field_number().unwrap_or(0),
            slots,
        }
    }

    /// The message type this layout describes.
    pub fn type_id(&self) -> MessageId {
        self.type_id
    }

    /// Total object size in bytes (8-byte aligned).
    pub fn object_size(&self) -> u64 {
        self.object_size
    }

    /// Offset of the hasbits array inside the object.
    pub fn hasbits_offset(&self) -> u64 {
        self.hasbits_offset
    }

    /// Bytes occupied by the (padded) hasbits array.
    pub fn hasbits_bytes(&self) -> u64 {
        self.hasbits_bytes
    }

    /// Smallest defined field number (hasbits/ADT indexing base).
    pub fn min_field(&self) -> u32 {
        self.min_field
    }

    /// Largest defined field number.
    pub fn max_field(&self) -> u32 {
        self.max_field
    }

    /// Number of defined fields in this message type.
    pub fn defined_fields(&self) -> u64 {
        self.slots.len() as u64
    }

    /// The slot for a field number, if defined.
    pub fn slot(&self, field_number: u32) -> Option<FieldSlot> {
        self.slots.get(&field_number).copied()
    }

    /// Defined field numbers in ascending order. Software walks these
    /// instead of scanning the full `min..=max` span, which for
    /// near-maximum field numbers covers half a billion slots.
    pub fn field_numbers(&self) -> Vec<u32> {
        let mut numbers: Vec<u32> = self.slots.keys().copied().collect();
        numbers.sort_unstable();
        numbers
    }

    /// Every `(field_number, slot)` pair in ascending field-number order —
    /// the verifier's view of the layout for overlap/bounds auditing.
    pub fn slots(&self) -> Vec<(u32, FieldSlot)> {
        let mut pairs: Vec<(u32, FieldSlot)> = self.slots.iter().map(|(n, s)| (*n, *s)).collect();
        pairs.sort_unstable_by_key(|(n, _)| *n);
        pairs
    }

    /// Sparse hasbits position of a field: `(byte offset within the hasbits
    /// array, bit index)`. The accelerator indexes the array directly by
    /// `field_number - min_field` (Section 4.2).
    pub fn hasbit_position(&self, field_number: u32) -> (u64, u8) {
        debug_assert!(field_number >= self.min_field);
        let bit = u64::from(field_number - self.min_field);
        (bit / 8, (bit % 8) as u8)
    }

    /// Field-number span the sparse hasbits array covers
    /// (`max_field - min_field + 1`, 0 for an empty message).
    pub fn field_number_span(&self) -> u64 {
        if self.max_field < self.min_field {
            0
        } else {
            u64::from(self.max_field - self.min_field) + 1
        }
    }

    /// Static field-number density: defined fields over the span the
    /// hasbits array must cover. Sparse numbering (density well below 1)
    /// wastes hasbits bytes and ADT entries; the Section 3.7 crossover
    /// against prior work's 64-bit-per-field metadata sits at 1/64.
    pub fn static_density(&self) -> f64 {
        let span = self.field_number_span();
        if span == 0 {
            1.0
        } else {
            #[allow(clippy::cast_precision_loss)] // spans are far below 2^52
            {
                self.defined_fields() as f64 / span as f64
            }
        }
    }

    /// Distinct descriptor-table addresses the accelerator touches while
    /// processing one message of this type: the ADT header plus one field
    /// entry per defined field. This is the unit the ADT cache
    /// (`AccelConfig::adt_cache_entries`) is sized in.
    pub fn adt_cache_lines(&self) -> u64 {
        1 + self.defined_fields()
    }
}

/// Layouts for every message type in a schema.
#[derive(Debug, Clone)]
pub struct MessageLayouts {
    layouts: Vec<MessageLayout>,
}

impl MessageLayouts {
    /// Computes layouts for all message types in `schema`.
    pub fn compute(schema: &Schema) -> Self {
        MessageLayouts {
            layouts: schema
                .iter()
                .map(|(id, m)| MessageLayout::compute(id, m))
                .collect(),
        }
    }

    /// The layout of one message type.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not from the schema these layouts were computed for.
    pub fn layout(&self, id: MessageId) -> &MessageLayout {
        &self.layouts[id.index()]
    }

    /// Iterates all layouts.
    pub fn iter(&self) -> impl Iterator<Item = &MessageLayout> {
        self.layouts.iter()
    }

    /// Total descriptor-table working set (in ADT cache lines — header plus
    /// defined-field entries per type) for a message of type `root`,
    /// counting every type reachable from it. When this exceeds
    /// `AccelConfig::adt_cache_entries`, descriptor fetches thrash to the
    /// L2 mid-message.
    pub fn adt_working_set(&self, schema: &Schema, root: MessageId) -> u64 {
        schema
            .reachable(root)
            .into_iter()
            .map(|id| self.layout(id).adt_cache_lines())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use protoacc_schema::{FieldType, SchemaBuilder};

    fn layout_for(build: impl FnOnce(&mut protoacc_schema::MessageBuilder<'_>)) -> MessageLayout {
        let mut b = SchemaBuilder::new();
        let id = b.define("M", build);
        let schema = b.build().unwrap();
        MessageLayout::compute(id, schema.message_by_name("M").unwrap())
    }

    #[test]
    fn vptr_then_hasbits_then_fields() {
        let l = layout_for(|m| {
            m.optional("a", FieldType::Int64, 1)
                .optional("b", FieldType::Int32, 2);
        });
        assert_eq!(l.hasbits_offset(), 8);
        assert_eq!(l.hasbits_bytes(), 8); // span 2 -> 1 byte -> padded to 8
        assert_eq!(l.slot(1).unwrap().offset, 16);
        assert_eq!(l.slot(2).unwrap().offset, 24);
        assert_eq!(l.object_size(), 32);
    }

    #[test]
    fn scalars_are_naturally_aligned() {
        let l = layout_for(|m| {
            m.optional("flag", FieldType::Bool, 1)
                .optional("wide", FieldType::Double, 2)
                .optional("narrow", FieldType::Int32, 3);
        });
        let flag = l.slot(1).unwrap();
        let wide = l.slot(2).unwrap();
        let narrow = l.slot(3).unwrap();
        assert_eq!(
            flag.kind,
            SlotKind::Scalar(protoacc_schema::ScalarKind::Bool)
        );
        assert_eq!(wide.offset % 8, 0);
        assert_eq!(narrow.offset % 4, 0);
        assert!(flag.offset < wide.offset && wide.offset < narrow.offset);
    }

    #[test]
    fn pointer_slots_for_outofline_fields() {
        let mut b = SchemaBuilder::new();
        let inner = b.declare("Inner");
        b.message(inner).optional("x", FieldType::Bool, 1);
        let outer = b.declare("Outer");
        b.message(outer)
            .optional("s", FieldType::String, 1)
            .optional("sub", FieldType::Message(inner), 2)
            .repeated("r", FieldType::Int32, 3)
            .repeated("rs", FieldType::String, 4);
        let schema = b.build().unwrap();
        let l = MessageLayout::compute(outer, schema.message(outer));
        assert_eq!(l.slot(1).unwrap().kind, SlotKind::StringPtr);
        assert_eq!(l.slot(2).unwrap().kind, SlotKind::MessagePtr);
        assert_eq!(l.slot(3).unwrap().kind, SlotKind::RepeatedPtr);
        assert_eq!(l.slot(4).unwrap().kind, SlotKind::RepeatedPtr);
        for n in 1..=4 {
            assert_eq!(l.slot(n).unwrap().kind.size(), 8);
        }
    }

    #[test]
    fn sparse_hasbits_indexed_from_min_field() {
        // Fields 1000..1008: hasbits are offset against min (Section 4.2:
        // "to save memory in the common case where field numbers are
        // contiguous but start at a large number").
        let l = layout_for(|m| {
            for n in 1000..1009 {
                m.optional(&format!("f{n}"), FieldType::Bool, n);
            }
        });
        assert_eq!(l.min_field(), 1000);
        assert_eq!(l.hasbit_position(1000), (0, 0));
        assert_eq!(l.hasbit_position(1007), (0, 7));
        assert_eq!(l.hasbit_position(1008), (1, 0));
        assert_eq!(l.hasbits_bytes(), 8); // span 9 -> 2 bytes -> padded to 8
    }

    #[test]
    fn wide_field_span_grows_hasbits() {
        let l = layout_for(|m| {
            m.optional("lo", FieldType::Bool, 1)
                .optional("hi", FieldType::Bool, 129);
        });
        // span 129 -> 17 bytes -> padded to 24.
        assert_eq!(l.hasbits_bytes(), 24);
        assert_eq!(l.hasbit_position(129), (16, 0));
    }

    #[test]
    fn object_size_is_eight_byte_aligned() {
        let l = layout_for(|m| {
            m.optional("flag", FieldType::Bool, 1);
        });
        assert_eq!(l.object_size() % 8, 0);
        // vptr 8 + hasbits 8 + bool 1 -> padded to 24.
        assert_eq!(l.object_size(), 24);
    }

    #[test]
    fn layouts_for_whole_schema() {
        let mut b = SchemaBuilder::new();
        b.define("A", |m| {
            m.optional("x", FieldType::Int32, 1);
        });
        b.define("B", |m| {
            m.optional("y", FieldType::Double, 5);
        });
        let schema = b.build().unwrap();
        let layouts = MessageLayouts::compute(&schema);
        assert_eq!(layouts.iter().count(), 2);
        let b_id = schema.id_by_name("B").unwrap();
        assert_eq!(layouts.layout(b_id).min_field(), 5);
    }
}
