//! Accelerator configuration knobs.

use protoacc_mem::Cycles;

/// Parameters of the modeled accelerator.
///
/// Defaults match the paper's evaluated configuration: 2 GHz clock (the SoC
/// clock; Section 5.3 shows the units close timing at 1.84-1.95 GHz in
/// 22 nm), a 16-byte memloader consumer window, and on-chip sub-message
/// metadata stacks of depth 25, which cover 99.999% of fleet message bytes
/// (Section 3.8).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AccelConfig {
    /// Accelerator clock in GHz.
    pub freq_ghz: f64,
    /// Memloader consumer window width in bytes (data exposed per cycle).
    pub window_bytes: usize,
    /// Number of parallel field serializer units (Section 4.5.4).
    pub field_serializers: usize,
    /// On-chip sub-message metadata stack depth; deeper nesting spills to
    /// DRAM (Section 3.8).
    pub stack_depth: usize,
    /// Extra cycles per stack push/pop once spilled to DRAM.
    pub stack_spill_cycles: Cycles,
    /// Cycles to dispatch one RoCC instruction from the core ("ones-of-
    /// cycles", Section 4.1).
    pub rocc_dispatch_cycles: Cycles,
    /// Entries in the accelerator's small ADT-entry cache (repeatedly
    /// touched message types hit here instead of the L2).
    pub adt_cache_entries: usize,
    /// Validate UTF-8 on string fields during deserialization — the one
    /// change Section 7 identifies for proto3 support. Off for proto2.
    pub validate_utf8: bool,
    /// Model upstream protoc's *dense* hasbits packing instead of the
    /// paper's sparse one — the rejected alternative of Section 4.2, which
    /// "would require significant overhead (e.g. a mapping table indexed by
    /// field number, introducing an additional 32-bit read per-field)".
    /// Used by the hasbits ablation; off in the evaluated design.
    pub dense_hasbits: bool,
}

impl Default for AccelConfig {
    fn default() -> Self {
        AccelConfig {
            freq_ghz: 2.0,
            window_bytes: 16,
            field_serializers: 4,
            stack_depth: 25,
            stack_spill_cycles: 40,
            rocc_dispatch_cycles: 4,
            adt_cache_entries: 128,
            validate_utf8: false,
            dense_hasbits: false,
        }
    }
}

impl AccelConfig {
    /// Throughput in Gbits/s for `bytes` processed in `cycles` at this clock.
    pub fn gbits_per_sec(&self, bytes: u64, cycles: Cycles) -> f64 {
        if cycles == 0 {
            return 0.0;
        }
        (bytes as f64 * 8.0) * self.freq_ghz / cycles as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_configuration() {
        let c = AccelConfig::default();
        assert_eq!(c.freq_ghz, 2.0);
        assert_eq!(c.window_bytes, 16);
        assert_eq!(c.stack_depth, 25);
    }

    #[test]
    fn throughput_conversion() {
        let c = AccelConfig::default();
        // 16 B/cycle at 2 GHz = 256 Gbit/s peak.
        let g = c.gbits_per_sec(16, 1);
        assert!((g - 256.0).abs() < 1e-9);
        assert_eq!(c.gbits_per_sec(16, 0), 0.0);
    }
}
