//! Regenerates Figure 5: estimated fleet-wide deserialization time by
//! field type and size, via the 24-slice model of §3.6.4.

use protoacc_cpu::CostTable;
use protoacc_fleet::model24::Model24;
use protoacc_fleet::protobufz::ShapeModel;

fn main() {
    let model = Model24::build(&ShapeModel::google_2021(), &CostTable::boom());
    let shares = model.deser_time_shares();
    println!("Figure 5: estimated deserialization time by field type, fleet-wide");
    println!(
        "{:<24} {:>10} {:>12} {:>14}",
        "Slice", "% bytes", "% of time", "Gbits/s"
    );
    for (slice, share) in model.slices().iter().zip(shares.iter()) {
        println!(
            "{:<24} {:>9.2}% {:>11.2}% {:>14.3}",
            slice.label,
            slice.bytes_fraction * 100.0,
            share * 100.0,
            model.deser_gbits(slice)
        );
    }
    println!();
    println!(
        "time spent on data deserialized faster than 1 GB/s: {:.1}% (paper: 14%)",
        model.deser_time_fraction_above(8.0) * 100.0
    );
}
