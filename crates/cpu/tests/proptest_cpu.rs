//! Property tests: the instrumented CPU codec agrees with the reference
//! codec on arbitrary messages, in both directions, on both machines.

use proptest::prelude::*;
use protoacc_cpu::{CostTable, SoftwareCodec};
use protoacc_mem::Memory;
use protoacc_runtime::{object, reference, BumpArena, MessageLayouts, MessageValue, Value};
use protoacc_schema::{FieldType, MessageId, Schema, SchemaBuilder};

fn test_schema() -> (Schema, MessageId) {
    let mut b = SchemaBuilder::new();
    let id = b.define("M", |m| {
        m.optional("i", FieldType::Int32, 1)
            .optional("u", FieldType::UInt64, 2)
            .optional("s", FieldType::SInt64, 3)
            .optional("f", FieldType::Float, 4)
            .optional("d", FieldType::Double, 5)
            .optional("t", FieldType::String, 6)
            .optional("y", FieldType::Bytes, 7)
            .repeated("r", FieldType::Int64, 8)
            .packed("p", FieldType::Fixed32, 9);
    });
    (b.build().unwrap(), id)
}

fn message_strategy(id: MessageId) -> impl Strategy<Value = MessageValue> {
    (
        prop::option::of(any::<i32>()),
        prop::option::of(any::<u64>()),
        prop::option::of(any::<i64>()),
        prop::option::of(any::<f32>()),
        prop::option::of(any::<f64>()),
        prop::option::of("[ -~]{0,48}"),
        prop::option::of(prop::collection::vec(any::<u8>(), 0..48)),
        prop::collection::vec(any::<i64>(), 0..6),
        prop::collection::vec(any::<u32>(), 0..6),
    )
        .prop_map(move |(i, u, s, f, d, t, y, r, p)| {
            let mut m = MessageValue::new(id);
            if let Some(v) = i {
                m.set_unchecked(1, Value::Int32(v));
            }
            if let Some(v) = u {
                m.set_unchecked(2, Value::UInt64(v));
            }
            if let Some(v) = s {
                m.set_unchecked(3, Value::SInt64(v));
            }
            if let Some(v) = f {
                m.set_unchecked(4, Value::Float(v));
            }
            if let Some(v) = d {
                m.set_unchecked(5, Value::Double(v));
            }
            if let Some(v) = t {
                m.set_unchecked(6, Value::Str(v));
            }
            if let Some(v) = y {
                m.set_unchecked(7, Value::Bytes(v));
            }
            if !r.is_empty() {
                m.set_repeated(8, r.into_iter().map(Value::Int64).collect());
            }
            if !p.is_empty() {
                m.set_repeated(9, p.into_iter().map(Value::Fixed32).collect());
            }
            m
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn cpu_codec_round_trips_on_both_machines(m in {
        let (_, id) = test_schema();
        message_strategy(id)
    }) {
        let (schema, id) = test_schema();
        let layouts = MessageLayouts::compute(&schema);
        let expect = reference::encode(&m, &schema).unwrap();
        for cost in [CostTable::boom(), CostTable::xeon()] {
            let codec = SoftwareCodec::new(&cost);
            let mut mem = Memory::new(cost.mem);
            let mut arena = BumpArena::new(0x1000_0000, 1 << 26);
            // Serialize from a materialized object: byte-identical.
            let obj = object::write_message(&mut mem.data, &schema, &layouts, &mut arena, &m)
                .unwrap();
            let (_, len) = codec
                .serialize(&mut mem, &schema, &layouts, id, obj, 0x2000_0000)
                .unwrap();
            prop_assert_eq!(mem.data.read_vec(0x2000_0000, len as usize), expect.clone());
            // Deserialize back: same object graph.
            let dest = arena.alloc(layouts.layout(id).object_size(), 8).unwrap();
            codec
                .deserialize(&mut mem, &schema, &layouts, id, 0x2000_0000, len, dest, &mut arena)
                .unwrap();
            let back = object::read_message(&mem.data, &schema, &layouts, id, dest).unwrap();
            prop_assert!(back.bits_eq(&m), "{}", cost.name);
        }
    }

    #[test]
    fn cpu_deser_survives_arbitrary_input(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        let (schema, id) = test_schema();
        let layouts = MessageLayouts::compute(&schema);
        let cost = CostTable::boom();
        let codec = SoftwareCodec::new(&cost);
        let mut mem = Memory::new(cost.mem);
        let mut arena = BumpArena::new(0x1000_0000, 1 << 24);
        mem.data.write_bytes(0x2000_0000, &bytes);
        let dest = arena.alloc(layouts.layout(id).object_size(), 8).unwrap();
        let _ = codec.deserialize(
            &mut mem, &schema, &layouts, id, 0x2000_0000, bytes.len() as u64, dest, &mut arena,
        );
    }
}
