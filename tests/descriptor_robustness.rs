//! Robustness gate for the binary descriptor-set decoder.
//!
//! A descriptor set is *runtime input*: the analyzer ingests schemas it has
//! never seen, so `parse_descriptor_set` must be total — every byte string
//! yields either a `Schema` or a typed [`SchemaError`], never a panic, a
//! hang, or a stack overflow. This suite drives the decoder with the same
//! seeded corruption generators the serve cluster's fault plane uses
//! (`crates/faults`), applied to the checked-in corpus fixtures:
//!
//! * truncation at **every** byte offset of every fixture;
//! * seeded bit flips and each structured wire fault in
//!   [`WIRE_FAULTS`](protoacc_suite::faults::WIRE_FAULTS);
//! * a descriptor-shaped depth bomb (`nested_type` frames all the way
//!   down), which must hit the `MAX_DESCRIPTOR_NESTING` guard, not the
//!   call stack.

use std::path::{Path, PathBuf};

use protoacc_suite::faults::{depth_bomb, WIRE_FAULTS};
use protoacc_suite::schema::{parse_descriptor_set, SchemaError, MAX_DESCRIPTOR_NESTING};
use protoacc_suite::wire::WireWriter;
use protoacc_suite::xrand::{Rng, StdRng};

fn fixture_bytes() -> Vec<(PathBuf, Vec<u8>)> {
    let chain = Path::new(env!("CARGO_MANIFEST_DIR")).join("protos/chain");
    let mut entries: Vec<PathBuf> = std::fs::read_dir(&chain)
        .unwrap()
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "binpb"))
        .collect();
    entries.sort();
    assert_eq!(entries.len(), 4, "expected 4 corpus fixtures in {chain:?}");
    entries
        .into_iter()
        .map(|p| {
            let bytes = std::fs::read(&p).unwrap();
            (p, bytes)
        })
        .collect()
}

/// Feeds one mutated input through the decoder and asserts totality: the
/// only acceptable failure mode is a typed error whose `Display` renders.
fn assert_total(input: &[u8], context: &str) {
    match parse_descriptor_set(input) {
        Ok(schema) => {
            // A mutation can land in skipped unknown fields and still yield
            // a valid schema; that is fine as long as the result is sound.
            assert!(schema.validate().is_ok(), "{context}: unsound Ok schema");
        }
        Err(e) => {
            assert!(!e.to_string().is_empty(), "{context}: blank error display");
        }
    }
}

/// Every prefix of every fixture decodes or fails with a typed error —
/// truncation can cut a varint, a length header, a UTF-8 string, or a
/// nested frame at any byte, and none of those may escape the error type.
#[test]
fn truncation_at_every_offset_is_total() {
    for (path, bytes) in fixture_bytes() {
        for cut in 0..bytes.len() {
            assert_total(
                &bytes[..cut],
                &format!("{} truncated to {cut} bytes", path.display()),
            );
        }
        // The empty set is a valid (empty) schema edge, checked above at
        // cut = 0; the full fixture must still parse cleanly.
        assert!(
            parse_descriptor_set(&bytes).is_ok(),
            "{}: pristine fixture must parse",
            path.display()
        );
    }
}

/// Seeded structured corruption: every wire fault class from the serve
/// cluster's fault plane, applied at many seeds, never breaks totality.
#[test]
fn seeded_wire_faults_yield_typed_errors_only() {
    let mut rng = StdRng::seed_from_u64(0xDE5C_0DE5);
    for (path, bytes) in fixture_bytes() {
        for fault in WIRE_FAULTS {
            for round in 0..64 {
                let mutated = protoacc_suite::faults::wire::corrupt(&bytes, fault, &mut rng);
                assert_total(
                    &mutated,
                    &format!("{} {fault:?} round {round}", path.display()),
                );
            }
        }
    }
}

/// Dense random bit flips (up to several per input) on top of the
/// structured faults — the classic storage/transport corruption model.
#[test]
fn seeded_bit_flips_yield_typed_errors_only() {
    let mut rng = StdRng::seed_from_u64(0xB17_F11B5);
    for (path, bytes) in fixture_bytes() {
        for round in 0..256 {
            let mut mutated = bytes.clone();
            for _ in 0..rng.gen_range(1usize..=4) {
                let at = rng.gen_range(0..mutated.len());
                mutated[at] ^= 1 << rng.gen_range(0u8..8);
            }
            assert_total(
                &mutated,
                &format!("{} bit-flip round {round}", path.display()),
            );
        }
    }
}

/// A `FileDescriptorSet` whose message carries `nested_type` frames nested
/// far past [`MAX_DESCRIPTOR_NESTING`] is rejected by the depth guard with
/// a typed error — the decoder's recursion is bounded by the guard, not by
/// the thread's stack.
#[test]
fn descriptor_depth_bomb_is_rejected_not_overflowed() {
    // Field 3 of DescriptorProto is `nested_type`, so the generic wire-level
    // depth bomb from the fault plane is, byte for byte, a descriptor whose
    // message nesting equals the bomb depth.
    let bomb = depth_bomb(3, MAX_DESCRIPTOR_NESTING * 64);
    let mut file = WireWriter::new();
    file.write_length_delimited_field(4, &bomb).unwrap(); // message_type
    let mut set = WireWriter::new();
    set.write_length_delimited_field(1, file.as_bytes())
        .unwrap(); // file
    let err = parse_descriptor_set(set.as_bytes()).unwrap_err();
    assert!(
        matches!(err, SchemaError::Descriptor { .. }),
        "expected a typed descriptor error, got: {err}"
    );
    assert!(
        err.to_string().contains("depth"),
        "depth-guard error should mention depth: {err}"
    );
}
