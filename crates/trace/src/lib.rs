//! Structured tracing and metrics for the protoacc behavioral model.
//!
//! Every unit of the model — memloader, field-handler FSM, ADT cache,
//! serializer FSU pool, memwriter, the serve cluster, and the memory
//! system — emits typed [`TraceEvent`]s with cycle timestamps into an
//! optional [`Tracer`]. The design contract is **zero behavioral cost when
//! disabled**: instrumentation never participates in cycle arithmetic, so a
//! run with no tracer attached is bit-identical to a run that predates the
//! tracing layer, and a run with a tracer attached produces the exact same
//! cycle counts as one without.
//!
//! Two sinks ship with the crate:
//!
//! * [`chrome`] — a Chrome-trace-event JSON exporter (loadable in Perfetto
//!   / `chrome://tracing`), one track per accelerator instance, one per
//!   serializer FSU, and one for the memory system, plus a parser for the
//!   same format so CI can round-trip a trace file.
//! * [`audit`] — an aggregating profile reporter whose per-type cycle
//!   breakdowns are cross-checked against `AccelStats`: the traced
//!   [`TraceEvent::DeserOp`]/[`TraceEvent::SerOp`] spans must sum *exactly*
//!   to the cycles the stats counters report, a built-in accounting audit.
//!
//! [`MetricsRegistry`] aggregates counters and log-2-bucketed latency
//! histograms from event streams; its percentile rule is shared (via
//! [`nearest_rank`]) with `ServeCluster::latency_percentile` so the two
//! paths cannot disagree by more than one histogram bucket.

#![warn(missing_docs)]

use std::cell::RefCell;
use std::rc::Rc;

pub mod audit;
pub mod chrome;
pub mod metrics;
pub mod stitch;

pub use audit::{audit, render_profile, AuditReport, ExpectedStats, InstanceAudit};
pub use metrics::{Histogram, MetricsRegistry};
pub use stitch::{event_time, retag, stitch, ShardTags};

/// Cycle count. Mirrors `protoacc_mem::Cycles`; redeclared here so the
/// trace crate has no dependencies and can sit below every model crate.
pub type Cycles = u64;

/// Instance id used for serve-layer events that ran on the CPU fallback
/// path rather than an accelerator instance.
pub const FALLBACK_TRACK: usize = usize::MAX;

/// States of the deserializer's field-handler FSM surfaced as
/// [`TraceEvent::FsmTransition`] instants.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsmState {
    /// Decoding the field key varint (field number + wire type).
    ParseKey,
    /// Looking up the field's ADT type-info entry.
    TypeInfo,
    /// Writing a decoded scalar/string/bytes value into the object.
    Write,
    /// Pushing a sub-message frame (descending into a nested message).
    OpenFrame,
    /// Popping a completed sub-message frame.
    CloseFrame,
    /// Skipping an unknown or unrepresentable field.
    Skip,
}

impl FsmState {
    /// Stable lowercase label used by exporters.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            FsmState::ParseKey => "parse_key",
            FsmState::TypeInfo => "type_info",
            FsmState::Write => "write",
            FsmState::OpenFrame => "open_frame",
            FsmState::CloseFrame => "close_frame",
            FsmState::Skip => "skip",
        }
    }

    fn from_label(s: &str) -> Option<FsmState> {
        Some(match s {
            "parse_key" => FsmState::ParseKey,
            "type_info" => FsmState::TypeInfo,
            "write" => FsmState::Write,
            "open_frame" => FsmState::OpenFrame,
            "close_frame" => FsmState::CloseFrame,
            "skip" => FsmState::Skip,
            _ => return None,
        })
    }
}

/// Which unit performed an ADT-cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdtUnit {
    /// The deserializer's ADT cache.
    Deser,
    /// The serializer's ADT cache.
    Ser,
}

impl AdtUnit {
    /// Stable lowercase label used by exporters.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            AdtUnit::Deser => "deser",
            AdtUnit::Ser => "ser",
        }
    }

    fn from_label(s: &str) -> Option<AdtUnit> {
        Some(match s {
            "deser" => AdtUnit::Deser,
            "ser" => AdtUnit::Ser,
            _ => return None,
        })
    }
}

/// Access pattern of a memory-system transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemAccessMode {
    /// Blocking per-line probe sequence (`MemSystem::access`).
    Blocking,
    /// Streaming burst with overlap and bus modeling (`MemSystem::stream`).
    Stream,
    /// Pipelined burst hidden behind compute (`MemSystem::pipelined`).
    Pipelined,
}

impl MemAccessMode {
    /// Stable lowercase label used by exporters.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            MemAccessMode::Blocking => "blocking",
            MemAccessMode::Stream => "stream",
            MemAccessMode::Pipelined => "pipelined",
        }
    }

    fn from_label(s: &str) -> Option<MemAccessMode> {
        Some(match s {
            "blocking" => MemAccessMode::Blocking,
            "stream" => MemAccessMode::Stream,
            "pipelined" => MemAccessMode::Pipelined,
            _ => return None,
        })
    }
}

/// Terminal outcome of a serve-cluster command, mirroring the serve
/// layer's `CommandStatus` discriminants without depending on it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmdOutcome {
    /// Served by an accelerator instance.
    Ok,
    /// Served by the CPU software fallback.
    Fallback,
    /// Deterministically rejected (malformed input).
    Rejected,
    /// Failed after exhausting retries and the fallback ladder.
    Failed,
    /// Shed by admission control before enqueue: the envelope cost
    /// estimate predicted the request's deadline would be blown.
    Shed,
}

impl CmdOutcome {
    /// Stable lowercase label used by exporters.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            CmdOutcome::Ok => "ok",
            CmdOutcome::Fallback => "fallback",
            CmdOutcome::Rejected => "rejected",
            CmdOutcome::Failed => "failed",
            CmdOutcome::Shed => "shed",
        }
    }

    fn from_label(s: &str) -> Option<CmdOutcome> {
        Some(match s {
            "ok" => CmdOutcome::Ok,
            "fallback" => CmdOutcome::Fallback,
            "rejected" => CmdOutcome::Rejected,
            "failed" => CmdOutcome::Failed,
            "shed" => CmdOutcome::Shed,
            _ => return None,
        })
    }
}

/// One typed trace event. Span events carry an absolute `start` (in the
/// serve cluster's queue clock when emitted under `ServeCluster`, or in the
/// unit's own op-relative clock when driven standalone) plus a duration in
/// `cycles`; instant events carry a single `at` timestamp.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEvent {
    /// A request was admitted to the serve queue.
    CmdEnqueue {
        /// Command sequence number.
        seq: usize,
        /// Queue-clock admission time.
        at: Cycles,
        /// Wire bytes the command moves.
        wire_bytes: u64,
        /// `true` for deserialize, `false` for serialize.
        deser: bool,
    },
    /// A request was shed because the bounded queue was full.
    CmdDrop {
        /// Command sequence number.
        seq: usize,
        /// Queue-clock drop time.
        at: Cycles,
    },
    /// A request was shed by admission control before enqueue: the
    /// envelope-derived cost estimate predicted its deadline would be
    /// blown. A matching [`TraceEvent::CmdComplete`] with
    /// [`CmdOutcome::Shed`] follows, so span/record accounting stays 1:1.
    CmdShed {
        /// Command sequence number.
        seq: usize,
        /// Queue-clock shed time (the request's arrival).
        at: Cycles,
        /// Absolute deadline the request carried.
        deadline: Cycles,
        /// Envelope-derived completion estimate that blew the deadline.
        estimate: Cycles,
    },
    /// One RPC frame was decoded (or rejected) at the framed transport in
    /// front of the serve queue.
    FrameDecode {
        /// Connection index the frame arrived on.
        conn: usize,
        /// Queue-clock decode time.
        at: Cycles,
        /// Declared payload length from the 5-byte prefix (0 when the
        /// prefix itself was truncated).
        len: u64,
        /// `true` for a clean decode, `false` for a typed `FrameError`.
        ok: bool,
    },
    /// A command attempt was dispatched to an instance.
    CmdDispatch {
        /// Command sequence number.
        seq: usize,
        /// Queue-clock dispatch time of this attempt.
        at: Cycles,
        /// Instance the attempt ran on ([`FALLBACK_TRACK`] for CPU).
        instance: usize,
        /// 1-based attempt number.
        attempt: u32,
    },
    /// A command attempt failed retryably and will be redispatched.
    CmdRetry {
        /// Command sequence number.
        seq: usize,
        /// Queue-clock time the failed attempt resolved.
        at: Cycles,
        /// Instance the failed attempt ran on.
        instance: usize,
        /// 1-based number of the attempt that failed.
        attempt: u32,
    },
    /// A command fell off the retry ladder onto the CPU fallback path.
    CmdFallback {
        /// Command sequence number.
        seq: usize,
        /// Queue-clock time the fallback was taken.
        at: Cycles,
    },
    /// A command reached a terminal state; carries the full
    /// `CommandRecord` image so sanitizers can run off the trace alone.
    CmdComplete {
        /// Command sequence number.
        seq: usize,
        /// Queue-clock admission time.
        enqueue: Cycles,
        /// Queue-clock dispatch time of the final attempt.
        dispatch: Cycles,
        /// Queue-clock completion time (`dispatch + service`).
        complete: Cycles,
        /// Service cycles of the final attempt.
        service: Cycles,
        /// Instance the final attempt ran on ([`FALLBACK_TRACK`] for CPU).
        instance: usize,
        /// Wire bytes the command moved.
        wire_bytes: u64,
        /// `true` for deserialize, `false` for serialize.
        deser: bool,
        /// Memory-system sharers during the final attempt.
        sharers: usize,
        /// Total attempts consumed.
        attempts: u32,
        /// Terminal outcome.
        outcome: CmdOutcome,
    },
    /// Audit span for one complete `do_proto_deser` op. Emitted exactly
    /// where `AccelStats::deser_cycles` is accumulated, so the sum of
    /// these spans' `cycles` equals the stats counter by construction.
    DeserOp {
        /// Accelerator instance.
        instance: usize,
        /// Span start (dispatch time of the op).
        start: Cycles,
        /// Total op cycles (== the amount added to `deser_cycles`).
        cycles: Cycles,
        /// Field-handler FSM component of the op.
        fsm_cycles: Cycles,
        /// Memloader stream component of the op.
        stream_cycles: Cycles,
        /// Wire bytes consumed.
        wire_bytes: u64,
        /// Fields decoded.
        fields: u64,
    },
    /// Audit span for one complete `do_proto_ser` op. Emitted exactly
    /// where `AccelStats::ser_cycles` is accumulated.
    SerOp {
        /// Accelerator instance.
        instance: usize,
        /// Span start (dispatch time of the op).
        start: Cycles,
        /// Total op cycles (== the amount added to `ser_cycles`).
        cycles: Cycles,
        /// Frontend (field walk) component.
        frontend_cycles: Cycles,
        /// Bottleneck FSU occupancy component.
        fsu_cycles: Cycles,
        /// Memwriter output-port component.
        memwriter_cycles: Cycles,
        /// Serialized output bytes.
        out_len: u64,
        /// Fields encoded.
        fields: u64,
    },
    /// The memloader's up-front streaming prefetch of the wire input.
    MemloaderStream {
        /// Accelerator instance.
        instance: usize,
        /// Span start.
        start: Cycles,
        /// Stream cycles (the memloader bound on the op).
        cycles: Cycles,
        /// Bytes fetched.
        bytes: u64,
        /// 16-byte windows presented to the FSM.
        windows: u64,
    },
    /// Field-handler FSM state-transition instant.
    FsmTransition {
        /// Accelerator instance.
        instance: usize,
        /// FSM-clock timestamp of the transition.
        at: Cycles,
        /// State entered.
        state: FsmState,
        /// Field number being handled (0 at frame boundaries).
        field_number: u32,
    },
    /// Span covering the full handling of one wire-format field.
    Field {
        /// Accelerator instance.
        instance: usize,
        /// Span start (FSM clock at key parse).
        start: Cycles,
        /// FSM cycles spent on this field.
        cycles: Cycles,
        /// Field number.
        field_number: u32,
    },
    /// One ADT-cache lookup.
    AdtAccess {
        /// Accelerator instance.
        instance: usize,
        /// Timestamp of the lookup.
        at: Cycles,
        /// Which unit's cache.
        unit: AdtUnit,
        /// `true` on hit, `false` on miss.
        hit: bool,
        /// Cycles the lookup cost (1 on hit, 1 + memory on miss).
        cycles: Cycles,
    },
    /// Occupancy span of one field-serialization unit (FSU).
    FsuOp {
        /// Accelerator instance.
        instance: usize,
        /// FSU index within the pool.
        unit: usize,
        /// Span start (the unit's busy-cycle watermark at dispatch).
        start: Cycles,
        /// Cycles this field occupied the unit.
        cycles: Cycles,
        /// Field number serialized.
        field_number: u32,
    },
    /// Memwriter output-port span for one serialize op (reverse writer).
    MemwriterFlush {
        /// Accelerator instance.
        instance: usize,
        /// Span start.
        start: Cycles,
        /// Output-port occupancy cycles.
        cycles: Cycles,
        /// Bytes written.
        bytes: u64,
    },
    /// One memory-system transaction with its cache-level breakdown.
    MemAccess {
        /// Requester id (instance, or `instances` for the CPU fallback).
        requester: usize,
        /// Timestamp (memory clock shifted to the configured origin).
        at: Cycles,
        /// Cycles charged for the transaction.
        cycles: Cycles,
        /// Base address.
        addr: u64,
        /// Length in bytes.
        len: u64,
        /// `true` for writes.
        write: bool,
        /// Access pattern.
        mode: MemAccessMode,
        /// Cycles spent in TLB page walks.
        tlb_walk_cycles: Cycles,
        /// Lines served from L1.
        l1_hits: u64,
        /// Lines served from L2.
        l2_hits: u64,
        /// Lines served from the LLC.
        llc_hits: u64,
        /// Lines that went to DRAM.
        dram_accesses: u64,
    },
}

impl TraceEvent {
    /// Stable lowercase kind tag used by exporters.
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            TraceEvent::CmdEnqueue { .. } => "cmd_enqueue",
            TraceEvent::CmdDrop { .. } => "cmd_drop",
            TraceEvent::CmdShed { .. } => "cmd_shed",
            TraceEvent::FrameDecode { .. } => "frame_decode",
            TraceEvent::CmdDispatch { .. } => "cmd_dispatch",
            TraceEvent::CmdRetry { .. } => "cmd_retry",
            TraceEvent::CmdFallback { .. } => "cmd_fallback",
            TraceEvent::CmdComplete { .. } => "cmd_complete",
            TraceEvent::DeserOp { .. } => "deser_op",
            TraceEvent::SerOp { .. } => "ser_op",
            TraceEvent::MemloaderStream { .. } => "memloader_stream",
            TraceEvent::FsmTransition { .. } => "fsm_transition",
            TraceEvent::Field { .. } => "field",
            TraceEvent::AdtAccess { .. } => "adt_access",
            TraceEvent::FsuOp { .. } => "fsu_op",
            TraceEvent::MemwriterFlush { .. } => "memwriter_flush",
            TraceEvent::MemAccess { .. } => "mem_access",
        }
    }
}

/// Sink for trace events. Implementations must not feed anything back into
/// the model — tracing is strictly observational.
pub trait Tracer: std::fmt::Debug {
    /// Records one event.
    fn record(&mut self, event: TraceEvent);
}

/// Shared, dynamically-dispatched tracer handle. Model structs hold an
/// `Option<SharedTracer>`; `Rc` sharing keeps `Clone` working on structs
/// that carry one and lets the caller retain a handle to drain events.
pub type SharedTracer = Rc<RefCell<dyn Tracer>>;

/// Tracer that discards every event.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoopTracer;

impl Tracer for NoopTracer {
    fn record(&mut self, _event: TraceEvent) {}
}

/// Tracer that collects every event in order.
#[derive(Debug, Default)]
pub struct TraceLog {
    /// Recorded events, in emission order.
    pub events: Vec<TraceEvent>,
}

impl TraceLog {
    /// Creates an empty shared log. Keep the returned concrete handle to
    /// drain events; pass `clone` coerced to [`SharedTracer`] into the
    /// model via the `set_tracer` setters.
    #[must_use]
    pub fn shared() -> Rc<RefCell<TraceLog>> {
        Rc::new(RefCell::new(TraceLog::default()))
    }
}

impl Tracer for TraceLog {
    fn record(&mut self, event: TraceEvent) {
        self.events.push(event);
    }
}

/// Nearest-rank index for a percentile over `len` sorted samples: the
/// single percentile rule shared by `ServeCluster::latency_percentile` and
/// [`Histogram::percentile`] so the exact and histogram paths always land
/// on the same rank (and therefore in the same log-2 bucket).
///
/// `NaN` maps to 0, the percentile is clamped to `[0, 100]`, and the rank
/// is `round(p/100 * (len-1))`, clamped into range. Returns 0 for empty
/// inputs.
#[must_use]
pub fn nearest_rank(percentile: f64, len: usize) -> usize {
    if len == 0 {
        return 0;
    }
    let p = if percentile.is_nan() {
        0.0
    } else {
        percentile.clamp(0.0, 100.0)
    };
    let rank = ((p / 100.0) * (len - 1) as f64).round() as usize;
    rank.min(len - 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nearest_rank_handles_degenerate_inputs() {
        assert_eq!(nearest_rank(50.0, 0), 0);
        assert_eq!(nearest_rank(f64::NAN, 10), 0);
        assert_eq!(nearest_rank(-5.0, 10), 0);
        assert_eq!(nearest_rank(250.0, 10), 9);
        // Two records: p50 rounds up to the second element.
        assert_eq!(nearest_rank(50.0, 2), 1);
        assert_eq!(nearest_rank(100.0, 7), 6);
        assert_eq!(nearest_rank(0.0, 7), 0);
    }

    #[test]
    fn trace_log_collects_in_order() {
        let log = TraceLog::shared();
        let tracer: SharedTracer = log.clone();
        tracer
            .borrow_mut()
            .record(TraceEvent::CmdDrop { seq: 3, at: 7 });
        tracer.borrow_mut().record(TraceEvent::CmdEnqueue {
            seq: 4,
            at: 9,
            wire_bytes: 100,
            deser: true,
        });
        let events = &log.borrow().events;
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].kind(), "cmd_drop");
        assert_eq!(events[1].kind(), "cmd_enqueue");
    }

    #[test]
    fn labels_round_trip() {
        for s in [
            FsmState::ParseKey,
            FsmState::TypeInfo,
            FsmState::Write,
            FsmState::OpenFrame,
            FsmState::CloseFrame,
            FsmState::Skip,
        ] {
            assert_eq!(FsmState::from_label(s.label()), Some(s));
        }
        for u in [AdtUnit::Deser, AdtUnit::Ser] {
            assert_eq!(AdtUnit::from_label(u.label()), Some(u));
        }
        for m in [
            MemAccessMode::Blocking,
            MemAccessMode::Stream,
            MemAccessMode::Pipelined,
        ] {
            assert_eq!(MemAccessMode::from_label(m.label()), Some(m));
        }
        for o in [
            CmdOutcome::Ok,
            CmdOutcome::Fallback,
            CmdOutcome::Rejected,
            CmdOutcome::Failed,
            CmdOutcome::Shed,
        ] {
            assert_eq!(CmdOutcome::from_label(o.label()), Some(o));
        }
        assert!(FsmState::from_label("bogus").is_none());
    }
}
