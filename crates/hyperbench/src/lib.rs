//! HyperProtoBench-style synthetic benchmark generation (§5.2).
//!
//! The paper's HyperProtoBench is built by collecting message "shape" data
//! from the fleet's heaviest serialization/deserialization users, fitting a
//! distribution per service, and sampling from it to produce a benchmark
//! representative of that service — six benchmarks (bench0..bench5) covering
//! over 13% of fleet deserialization and 18% of fleet serialization cycles.
//!
//! This crate reruns the same methodology with synthetic service profiles:
//!
//! * [`ShapeParams`] — the fitted distribution: field-type mix, field
//!   counts, string/bytes sizes, repeated lengths, sub-message probability
//!   and depth, and presence sparsity. [`ShapeParams::fit`] re-fits
//!   parameters from an observed message population, mirroring the paper's
//!   internal generator.
//! * [`ServiceProfile`] — the six service parameterizations, each stressing
//!   the mix its namesake workload class is known for.
//! * [`Generator`] — deterministic schema synthesis + message population:
//!   `(ServiceProfile, seed) → (Schema, Vec<MessageValue>)`.
//!
//! # Example
//!
//! ```rust
//! use hyperprotobench::{Generator, ServiceProfile};
//!
//! let bench = Generator::new(ServiceProfile::bench(0), 42).generate(16);
//! assert_eq!(bench.messages.len(), 16);
//! assert!(bench.schema.len() >= 1);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod generator;
pub mod populate;
pub mod services;
pub mod shape;

pub use generator::{GeneratedBench, Generator};
pub use services::ServiceProfile;
pub use shape::ShapeParams;

/// Number of benchmarks in the suite (bench0..bench5).
pub const BENCH_COUNT: usize = 6;

/// Generates the full suite with a fixed base seed.
pub fn generate_suite(messages_per_bench: usize, base_seed: u64) -> Vec<GeneratedBench> {
    (0..BENCH_COUNT)
        .map(|i| {
            Generator::new(ServiceProfile::bench(i), base_seed.wrapping_add(i as u64))
                .generate(messages_per_bench)
        })
        .collect()
}
