//! # protoacc-fastpath
//!
//! A second, genuinely fast software protobuf engine for the suite — the
//! host-CPU counterpart the paper's accelerator is benchmarked against, built
//! from the same three ideas the hardware exploits (Sections 4.4–4.5, 5.2):
//!
//! * **SWAR varint decode** ([`swar`]): one 8-byte load + a parallel
//!   mask-and-shift fold instead of the byte-at-a-time loop, with a 10-byte
//!   slow path that preserves the scalar decoder's exact error
//!   classification.
//! * **Precompiled branchless dispatch** ([`dispatch`]): per-schema tables
//!   mapping field number → flat decode micro-op, the software analogue of
//!   the accelerator's field-number→FSM-state descriptor lookup.
//! * **Arena decode + reverse-order serialization** ([`arena`],
//!   [`reverse`]): decoded objects bump-allocated in the exact ADT layouts
//!   the simulator uses, strings borrowed zero-copy from the input, and
//!   serialization running back-to-front so nested length prefixes need no
//!   ByteSize pass (the memwriter trick).
//!
//! [`FastCodec`] ties these together behind a `Codec`-shaped API and is held
//! to `crates/cpu`'s exact observable semantics by the differential suite:
//! byte-identical encodes, identical decode verdicts on every corruption
//! class, identical value trees on accepts.

pub mod arena;
pub mod codec;
pub mod dispatch;
pub mod reverse;
pub mod swar;

pub use arena::{pack_str, unpack_str, DecodeArena};
pub use codec::FastCodec;
pub use dispatch::{
    encoded_key, CompiledMessage, CompiledSchema, FieldEntry, Op, TableImage, TableKind,
    DENSE_SPAN_LIMIT,
};
pub use reverse::ReverseWriter;
