//! Differential gate for binary descriptor-set ingestion.
//!
//! The whole point of `protoacc_schema::fdset` is that a schema produces
//! the *same* analysis whichever front-end ingested it: `.proto` text
//! through `parser.rs`, or a binary `FileDescriptorSet` through the wire
//! decoder. This suite holds the two paths together:
//!
//! * every `.proto` under `protos/` (the legacy suites and the
//!   blockchain-flavored unseen-schema corpus) must produce **byte-identical
//!   lint + absint JSON** after a round trip through the binary encoder and
//!   decoder;
//! * the checked-in `.binpb` fixtures must stay in sync with their `.proto`
//!   siblings (re-bless with `PROTOACC_FDSET_BLESS=1`);
//! * the corpus must deliberately trip each of the whole-schema analyses
//!   PA011–PA015;
//! * rendering an ingested schema back to `.proto` text must re-parse to an
//!   equivalent `Schema` (lowering-drift canary between the front-ends).

use std::path::{Path, PathBuf};

use protoacc_suite::lint::{lint_schema, lint_schema_verified, DiagCode, LintConfig, LintReport};
use protoacc_suite::schema::{
    encode_descriptor_set, parse_descriptor_set, parse_proto, render_proto, Schema,
};

fn repo_path(rel: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join(rel)
}

/// Every `.proto` under `protos/`, recursively, in sorted order.
fn all_protos() -> Vec<PathBuf> {
    fn walk(dir: &Path, out: &mut Vec<PathBuf>) {
        let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)
            .unwrap()
            .filter_map(Result::ok)
            .map(|e| e.path())
            .collect();
        entries.sort();
        for e in entries {
            if e.is_dir() {
                walk(&e, out);
            } else if e.extension().is_some_and(|x| x == "proto") {
                out.push(e);
            }
        }
    }
    let mut out = Vec::new();
    walk(&repo_path("protos"), &mut out);
    assert!(out.len() >= 7, "proto corpus went missing: {out:?}");
    out
}

fn load_text(path: &Path) -> Schema {
    let src = std::fs::read_to_string(path).unwrap();
    parse_proto(&src).unwrap_or_else(|e| panic!("{}: {e}", path.display()))
}

fn file_name(path: &Path) -> String {
    path.file_name().unwrap().to_string_lossy().into_owned()
}

fn assert_schemas_equivalent(a: &Schema, b: &Schema, context: &str) {
    assert_eq!(a.len(), b.len(), "{context}: type count differs");
    for ((ia, ma), (ib, mb)) in a.iter().zip(b.iter()) {
        assert_eq!(ia, ib, "{context}: MessageId order differs");
        assert_eq!(ma, mb, "{context}: descriptor for `{}` differs", ma.name());
    }
}

/// The tentpole acceptance gate: for every schema in `protos/`, the lint
/// report (all PA001–PA015 findings plus the absint envelopes, ceilings and
/// amplification figures in the JSON) is byte-identical between the
/// text-parsed and the binary-ingested schema — under the default config
/// *and* under a watchdog budget that arms PA010/PA015.
#[test]
fn text_and_binary_ingestion_produce_byte_identical_reports() {
    let budgeted = LintConfig {
        watchdog_budget: Some(10_500_000),
        ..LintConfig::default()
    };
    for path in all_protos() {
        let text_schema = load_text(&path);
        let bytes = encode_descriptor_set(&text_schema, &file_name(&path));
        let bin_schema = parse_descriptor_set(&bytes)
            .unwrap_or_else(|e| panic!("{}: re-ingestion failed: {e}", path.display()));
        assert_schemas_equivalent(&text_schema, &bin_schema, &file_name(&path));
        for config in [&LintConfig::default(), &budgeted] {
            let text_json = lint_schema(&text_schema, config).render_json();
            let bin_json = lint_schema(&bin_schema, config).render_json();
            assert_eq!(
                text_json,
                bin_json,
                "{}: lint JSON differs between front-ends",
                path.display()
            );
        }
    }
}

/// The checked-in binary fixtures are exactly what the in-tree encoder
/// produces from their `.proto` siblings, so `--descriptor-set` runs in CI
/// analyze the same schemas the text gate does. Re-bless after an
/// intentional schema or encoder change:
///
/// ```text
/// PROTOACC_FDSET_BLESS=1 cargo test --test descriptor_ingestion
/// ```
#[test]
fn checked_in_binpb_fixtures_match_their_proto_siblings() {
    let mut seen = 0;
    for path in all_protos() {
        if !path.parent().is_some_and(|p| p.ends_with("chain")) {
            continue;
        }
        seen += 1;
        let schema = load_text(&path);
        let bytes = encode_descriptor_set(&schema, &file_name(&path));
        let binpb = path.with_extension("binpb");
        if std::env::var_os("PROTOACC_FDSET_BLESS").is_some() {
            std::fs::write(&binpb, &bytes).unwrap();
            continue;
        }
        let checked_in = std::fs::read(&binpb).unwrap_or_else(|e| {
            panic!(
                "{}: missing fixture ({e}); bless with PROTOACC_FDSET_BLESS=1",
                binpb.display()
            )
        });
        assert_eq!(
            checked_in,
            bytes,
            "{}: fixture drifted from its .proto sibling; re-bless if intentional",
            binpb.display()
        );
        // And the fixture ingests back to the same schema.
        let bin_schema = parse_descriptor_set(&checked_in).unwrap();
        assert_schemas_equivalent(&schema, &bin_schema, &file_name(&path));
    }
    assert_eq!(seen, 4, "expected 4 chain corpus fixtures");
}

/// Each of the new whole-schema analyses has at least one deliberate
/// tripwire in the unseen-schema corpus, loaded through the *binary*
/// front-end (the schemas the analyzer has never seen at build time).
#[test]
fn corpus_trips_every_new_analysis_code() {
    let mut merged = LintReport::default();
    let mut consensus = None;
    for path in all_protos() {
        if !path.parent().is_some_and(|p| p.ends_with("chain")) {
            continue;
        }
        let schema =
            parse_descriptor_set(&encode_descriptor_set(&load_text(&path), &file_name(&path)))
                .unwrap();
        if file_name(&path) == "consensus.proto" {
            consensus = Some(schema.clone());
        }
        merged.merge(lint_schema(&schema, &LintConfig::default()));
    }
    for (code, expected_type) in [
        (DiagCode::RecursionCycle, "GossipEnvelope"),
        (DiagCode::WireAmplification, "StateChunk"),
        (DiagCode::FieldFragmentation, "Vote"),
        (DiagCode::UnpackedRepeated, "Transaction"),
    ] {
        assert!(
            merged
                .with_code(code)
                .any(|d| d.message_type == expected_type),
            "{code} missing its deliberate corpus tripwire on {expected_type}: {:?}",
            merged.diagnostics
        );
    }
    // Nothing in the corpus denies under the default config — the CI gate
    // over protos/ must keep passing.
    assert_eq!(merged.deny_count(), 0, "{:?}", merged.diagnostics);

    // PA015: Block's own ceiling fits a budget its composition exceeds.
    let consensus = consensus.expect("consensus.proto present in the chain corpus");
    let base = lint_schema(&consensus, &LintConfig::default());
    let block = base.types.iter().find(|t| t.type_name == "Block").unwrap();
    assert!(
        block.composed_ceiling > block.watchdog_ceiling,
        "Block must have a composition gap"
    );
    let armed = lint_schema(
        &consensus,
        &LintConfig {
            watchdog_budget: Some(block.watchdog_ceiling),
            ..LintConfig::default()
        },
    );
    assert!(
        armed
            .with_code(DiagCode::ComposedEnvelope)
            .any(|d| d.message_type == "Block"),
        "PA015 missing on Block at budget {}: {:?}",
        block.watchdog_ceiling,
        armed.diagnostics
    );
}

/// PA016–PA020 over every checked-in `protos/chain/*.binpb`: the
/// translation validator re-proves the compiled artifact plane for every
/// binary-ingested corpus schema, silently (the compiler's real output is
/// correct), and its `--verify` JSON is byte-identical between the
/// text-parsed and descriptor-set front-ends — including under a table
/// budget tight enough to arm PA020 on the fragmented `Vote` type.
#[test]
fn verifier_runs_clean_and_identically_over_binpb_fixtures() {
    // chain/Vote's hardware ADT footprint is ~4 MiB (span 250000); a 1 MiB
    // budget arms PA020 there while the default 8 MiB stays silent.
    let tight = LintConfig {
        dense_table_budget: 1 << 20,
        ..LintConfig::default()
    };
    let mut seen = 0;
    let mut pa020_fired = false;
    for path in all_protos() {
        if !path.parent().is_some_and(|p| p.ends_with("chain")) {
            continue;
        }
        seen += 1;
        let name = file_name(&path);
        let text_schema = load_text(&path);
        let binpb = path.with_extension("binpb");
        let bin_schema = parse_descriptor_set(&std::fs::read(&binpb).unwrap()).unwrap();

        let default_report = lint_schema_verified(&bin_schema, &LintConfig::default());
        for code in [
            DiagCode::SlotOverlap,
            DiagCode::DispatchTotality,
            DiagCode::EntryConsistency,
            DiagCode::AdtEquivalence,
            DiagCode::TableBlowup,
        ] {
            assert_eq!(
                default_report.with_code(code).count(),
                0,
                "{name}: {code} fired on a clean binary-ingested schema"
            );
        }
        for config in [&LintConfig::default(), &tight] {
            let text_json = lint_schema_verified(&text_schema, config).render_json();
            let bin_json = lint_schema_verified(&bin_schema, config).render_json();
            assert_eq!(
                text_json, bin_json,
                "{name}: --verify JSON differs between front-ends"
            );
        }
        pa020_fired |= lint_schema_verified(&bin_schema, &tight)
            .with_code(DiagCode::TableBlowup)
            .any(|d| d.message_type == "Vote");
    }
    assert_eq!(seen, 4, "expected 4 chain corpus fixtures");
    assert!(
        pa020_fired,
        "PA020 must arm on Vote under the 1 MiB table budget"
    );
}

/// Satellite: rendering a binary-ingested schema back to `.proto` text and
/// re-parsing it through `parser.rs` reproduces an equivalent `Schema` —
/// any lowering drift between the two front-ends breaks this loop.
#[test]
fn ingested_schemas_survive_the_render_reparse_round_trip() {
    for path in all_protos() {
        let name = file_name(&path);
        let bytes = encode_descriptor_set(&load_text(&path), &name);
        let ingested = parse_descriptor_set(&bytes).unwrap();
        let rendered = render_proto(&ingested);
        let reparsed = parse_proto(&rendered)
            .unwrap_or_else(|e| panic!("{name}: rendered text failed to re-parse: {e}"));
        assert_schemas_equivalent(&ingested, &reparsed, &format!("{name} (render loop)"));
    }
}
