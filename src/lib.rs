//! # protoacc-suite
//!
//! Facade crate for the Rust reproduction of *A Hardware Accelerator for
//! Protocol Buffers* (MICRO 2021). Re-exports the public API of every
//! workspace crate so examples and downstream users need a single dependency.
//!
//! See the repository README for a quickstart and DESIGN.md for the full
//! system inventory.
//!
//! ```rust
//! use protoacc_suite::accel::{AccelConfig, ProtoAccelerator};
//! use protoacc_suite::mem::{MemConfig, Memory};
//! use protoacc_suite::runtime::{object, reference, write_adts, BumpArena, MessageLayouts, MessageValue, Value};
//! use protoacc_suite::schema::parse_proto;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let schema = parse_proto("message Ping { required uint64 seq = 1; }")?;
//! let id = schema.id_by_name("Ping").unwrap();
//! let layouts = MessageLayouts::compute(&schema);
//! let mut mem = Memory::new(MemConfig::default());
//! let mut arena = BumpArena::new(0x1_0000, 1 << 20);
//! let adts = write_adts(&schema, &layouts, &mut mem.data, &mut arena)?;
//!
//! let mut ping = MessageValue::new(id);
//! ping.set(1, Value::UInt64(41))?;
//! let wire = reference::encode(&ping, &schema)?;
//! mem.data.write_bytes(0x10_0000, &wire);
//!
//! let mut accel = ProtoAccelerator::new(AccelConfig::default());
//! accel.deser_assign_arena(0x20_0000, 1 << 20);
//! let dest = arena.alloc(layouts.layout(id).object_size(), 8)?;
//! accel.deser_info(adts.addr(id), dest);
//! let run = accel.do_proto_deser(&mut mem, 0x10_0000, wire.len() as u64, 1)?;
//! assert!(run.cycles > 0);
//! let back = object::read_message(&mem.data, &schema, &layouts, id, dest)?;
//! assert!(back.bits_eq(&ping));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]

pub use hyperprotobench as hyperbench;
pub use protoacc as accel;
pub use protoacc_absint as absint;
pub use protoacc_bench as bench;
pub use protoacc_cpu as cpu;
pub use protoacc_fastpath as fastpath;
pub use protoacc_faults as faults;
pub use protoacc_fleet as fleet;
pub use protoacc_lint as lint;
pub use protoacc_mem as mem;
pub use protoacc_rpc as rpc;
pub use protoacc_runtime as runtime;
pub use protoacc_schema as schema;
pub use protoacc_trace as trace;
pub use protoacc_verify as verify;
pub use protoacc_wire as wire;
pub use xrand;
