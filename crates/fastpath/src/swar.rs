//! SWAR (SIMD-within-a-register) varint decoding.
//!
//! The byte-at-a-time loop in [`protoacc_wire::varint::decode`] spends one
//! dependent branch per encoded byte — the serial bottleneck Figure 2 of the
//! paper attributes most deserialization cycles to. This module replaces it
//! with a word-at-a-time decoder: one 8-byte little-endian load, a single
//! `trailing_zeros` over the inverted continuation-bit mask to find the
//! terminator, and a three-step parallel fold that compacts the eight 7-bit
//! payload groups into a value — no per-byte loop for varints up to 8 bytes
//! (values below 2^56, i.e. effectively all field keys, lengths, and the
//! vast majority of scalar payloads in fleet traffic).
//!
//! Varints of 9–10 bytes and buffers shorter than a full word fall back to
//! the scalar path so that the error classification — `Truncated` when the
//! buffer ends mid-varint, `VarintOverflow` when ten continuation bytes
//! appear — is *identical* to [`protoacc_wire::varint::decode`] and the
//! hardware model's windowed decoder. That three-way agreement is locked in
//! by `tests/varint_boundary.rs`.

use protoacc_wire::{varint, WireError};

/// MSB (continuation bit) of every byte lane.
const CONT_MASK: u64 = 0x8080_8080_8080_8080;

/// Compacts eight 7-bit payload groups (one per byte lane, continuation
/// bits already cleared or about to be masked) into a single value.
///
/// Each fold step merges adjacent lanes: 7-bit groups into 14-bit groups,
/// then 28-bit, then the final 56-bit value. All lanes move in parallel —
/// the software analogue of the paper's masked OR tree that settles in one
/// clock.
#[inline]
fn fold(word: u64) -> u64 {
    let x = word & !CONT_MASK;
    let x = (x & 0x007f_007f_007f_007f) | ((x & 0x7f00_7f00_7f00_7f00) >> 1);
    let x = (x & 0x0000_3fff_0000_3fff) | ((x & 0x3fff_0000_3fff_0000) >> 2);
    (x & 0x0fff_ffff) | ((x & 0x0fff_ffff_0000_0000) >> 4)
}

/// Decodes a varint from the front of `input`, word-at-a-time.
///
/// Drop-in replacement for [`protoacc_wire::varint::decode`]: same values
/// (bits beyond the 64th silently discarded, as upstream protobuf does),
/// same byte counts, and the same error classification at every buffer
/// boundary.
///
/// # Errors
///
/// * [`WireError::Truncated`] if `input` ends mid-varint.
/// * [`WireError::VarintOverflow`] if no terminating byte appears within the
///   10-byte maximum.
#[inline]
pub fn decode(input: &[u8]) -> Result<(u64, usize), WireError> {
    let Some(first8) = input.first_chunk::<8>() else {
        // Fewer than 8 bytes left: the scalar loop is already cheap here and
        // owns the Truncated-vs-value classification at the buffer end.
        return varint::decode(input);
    };
    let word = u64::from_le_bytes(*first8);
    if word & 0x80 == 0 {
        // Single-byte fast path: the overwhelmingly common case (field keys
        // and small scalars).
        return Ok((word & 0x7f, 1));
    }
    let stops = !word & CONT_MASK;
    if stops != 0 {
        // Terminator within the loaded word. trailing_zeros finds the first
        // clear continuation bit; /8 converts to a byte lane index.
        let n = (stops.trailing_zeros() as usize) / 8 + 1;
        let masked = if n == 8 {
            word
        } else {
            word & ((1u64 << (8 * n)) - 1)
        };
        return Ok((fold(masked), n));
    }
    // All 8 loaded bytes carry continuation bits: 9- or 10-byte slow path.
    let low = fold(word);
    if let Some(&b8) = input.get(8) {
        // Byte 8 contributes bits 56..=62.
        let value = low | (u64::from(b8 & 0x7f) << 56);
        if b8 & 0x80 == 0 {
            return Ok((value, 9));
        }
        if let Some(&b9) = input.get(9) {
            // Byte 9 contributes only bit 63; higher bits are discarded,
            // matching the scalar decoder and upstream protobuf.
            let value = value | (u64::from(b9 & 0x7f) << 63);
            if b9 & 0x80 == 0 {
                return Ok((value, 10));
            }
            return Err(WireError::VarintOverflow { offset: 0 });
        }
    }
    Err(WireError::Truncated {
        offset: input.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use protoacc_wire::MAX_VARINT_LEN;
    use xrand::{Rng, StdRng};

    /// Exhaustive agreement with the scalar decoder over boundary-heavy
    /// alphabets and every length 0..=6.
    #[test]
    fn agrees_with_scalar_decoder_exhaustively_short() {
        let alphabet = [0x00u8, 0x01, 0x7f, 0x80, 0x81, 0xff];
        for len in 0..=6usize {
            let mut buf = vec![0u8; len];
            let mut counters = vec![0usize; len];
            'odometer: loop {
                for (b, &c) in buf.iter_mut().zip(&counters) {
                    *b = alphabet[c];
                }
                assert_eq!(decode(&buf), varint::decode(&buf), "input {buf:02x?}");
                // Odometer increment over the alphabet.
                let mut i = 0;
                loop {
                    if i == len {
                        break 'odometer;
                    }
                    counters[i] += 1;
                    if counters[i] < alphabet.len() {
                        break;
                    }
                    counters[i] = 0;
                    i += 1;
                }
            }
        }
    }

    /// Continuation-run patterns around the 8/9/10-byte edges where the SWAR
    /// word boundary and the varint length limit interact.
    #[test]
    fn agrees_with_scalar_decoder_at_word_boundaries() {
        for len in 7..=12usize {
            for tail in [0x00u8, 0x7f, 0x80, 0xff] {
                for pattern in 0..(1u32 << (len - 1)) {
                    let mut buf = vec![0u8; len];
                    for (i, b) in buf.iter_mut().enumerate().take(len - 1) {
                        *b = if pattern >> i & 1 == 1 { 0xff } else { 0x80 };
                    }
                    buf[len - 1] = tail;
                    assert_eq!(decode(&buf), varint::decode(&buf), "input {buf:02x?}");
                }
            }
        }
    }

    #[test]
    fn round_trips_every_length_bucket() {
        for k in 0..=9 {
            for v in [
                (1u64 << (7 * k)).wrapping_sub(1),
                1u64 << (7 * k),
                u64::MAX >> (63 - 7 * k.min(9)),
            ] {
                let mut buf = Vec::new();
                let n = varint::encode(v, &mut buf);
                // Trailing garbage must not perturb the decoded prefix.
                buf.extend_from_slice(&[0xde, 0xad, 0xbe, 0xef]);
                assert_eq!(decode(&buf).unwrap(), (v, n), "value {v:#x}");
            }
        }
    }

    #[test]
    fn discards_bits_past_64_like_the_scalar_decoder() {
        let buf = [0x81, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x7f];
        assert_eq!(decode(&buf).unwrap(), ((1u64 << 63) | 1, 10));
        assert_eq!(decode(&buf).unwrap(), varint::decode(&buf).unwrap());
    }

    #[test]
    fn classifies_truncation_and_overflow() {
        assert_eq!(decode(&[]), Err(WireError::Truncated { offset: 0 }));
        assert_eq!(decode(&[0x80]), Err(WireError::Truncated { offset: 1 }));
        assert_eq!(decode(&[0x80; 9]), Err(WireError::Truncated { offset: 9 }));
        assert_eq!(
            decode(&[0xff; MAX_VARINT_LEN]),
            Err(WireError::VarintOverflow { offset: 0 })
        );
        assert_eq!(
            decode(&[0xff; 16]),
            Err(WireError::VarintOverflow { offset: 0 })
        );
    }

    #[test]
    fn seeded_random_sweep_matches_scalar_decoder() {
        let mut rng = StdRng::seed_from_u64(0x05AA_B1E5);
        for _ in 0..20_000 {
            let len = rng.gen_range(0usize..14);
            let mut buf = vec![0u8; len];
            rng.fill(&mut buf[..]);
            assert_eq!(decode(&buf), varint::decode(&buf), "input {buf:02x?}");
        }
    }
}
