//! The deserializer unit (Section 4.4).
//!
//! Receives a pointer to a serialized protobuf and populates a C++ object of
//! the message's type, working entirely from the Accelerator Descriptor
//! Table: the field-handler FSM loops through parseKey → typeInfo → a
//! per-type write state, with a combinational varint decoder servicing keys
//! and varint values in a single cycle, a hasbits-writer unit marking field
//! presence, and in-accelerator arena allocation for strings, sub-messages,
//! and repeated fields. Sub-messages are tracked on message-level metadata
//! stacks with a configurable on-chip depth (Section 3.8); deeper nesting
//! spills to DRAM.

pub mod memloader;

use std::collections::BTreeMap;

use protoacc_mem::{AccessKind, Cycles, Memory};
use protoacc_runtime::{
    reference, AdtLayout, BumpArena, FieldEntry, TypeCode, ADT_ENTRY_BYTES, REPEATED_HEADER_BYTES,
    STRING_OBJECT_BYTES, STRING_SSO_CAPACITY,
};
use protoacc_wire::hw::{CombVarintDecoder, DecodedVarint, Utf8Validator};
use protoacc_wire::{FieldKey, WireError, WireType, MAX_VARINT_LEN};

use crate::adtcache::AdtCache;
use crate::{AccelConfig, AccelError, AccelStats};
use memloader::Memloader;

/// Outcome of one deserialization operation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DeserRun {
    /// Total cycles charged (RoCC dispatch + the larger of the FSM pipeline
    /// and the memloader's streaming bandwidth bound).
    pub cycles: Cycles,
    /// Cycles the field-handler FSM and write path were busy.
    pub fsm_cycles: Cycles,
    /// Cycles the memloader's input streaming occupied the bus.
    pub stream_cycles: Cycles,
    /// Wire bytes consumed.
    pub wire_bytes: u64,
    /// Fields handled (recursively).
    pub fields: u64,
}

/// Accumulator for one repeated field while its allocation region is open
/// (Section 4.4.8).
#[derive(Debug)]
struct RepeatedRegion {
    entry: FieldEntry,
    scalars: Vec<u64>,
    ptrs: Vec<u64>,
}

impl RepeatedRegion {
    fn new(entry: FieldEntry) -> Self {
        RepeatedRegion {
            entry,
            scalars: Vec::new(),
            ptrs: Vec::new(),
        }
    }
}

/// Message-level metadata for one level of sub-message nesting
/// (Section 4.4.9).
#[derive(Debug)]
struct Frame {
    adt: AdtLayout,
    obj: u64,
    /// Absolute input offset at which this (sub-)message ends.
    end: usize,
    /// When this frame closes, append `obj` to the parent's repeated region
    /// for this field number (used for repeated sub-messages).
    close_into_parent_repeated: Option<u32>,
    regions: BTreeMap<u32, RepeatedRegion>,
}

/// The deserializer unit.
#[derive(Debug)]
pub struct DeserUnit {
    config: AccelConfig,
    adt_cache: AdtCache,
    tracer: Option<protoacc_trace::SharedTracer>,
    trace_instance: usize,
    trace_origin: Cycles,
}

impl DeserUnit {
    /// Creates a deserializer unit with cold internal state.
    pub fn new(config: AccelConfig) -> Self {
        DeserUnit {
            adt_cache: AdtCache::new(config.adt_cache_entries),
            config,
            tracer: None,
            trace_instance: 0,
            trace_origin: 0,
        }
    }

    /// Attaches (or detaches) a structured event tracer. Tracing is purely
    /// observational: cycle results are identical with and without it.
    pub fn set_tracer(&mut self, tracer: Option<protoacc_trace::SharedTracer>) {
        self.tracer = tracer;
    }

    /// Instance id stamped on emitted events.
    pub fn set_trace_instance(&mut self, instance: usize) {
        self.trace_instance = instance;
    }

    /// Base timestamp for the next op's events (e.g. its dispatch time on
    /// the serve cluster's queue clock); FSM-relative offsets are added.
    pub fn set_trace_origin(&mut self, origin: Cycles) {
        self.trace_origin = origin;
    }

    fn emit(&self, event: protoacc_trace::TraceEvent) {
        if let Some(t) = &self.tracer {
            t.borrow_mut().record(event);
        }
    }

    fn emit_fsm(&self, fsm: Cycles, state: protoacc_trace::FsmState, field_number: u32) {
        if self.tracer.is_some() {
            self.emit(protoacc_trace::TraceEvent::FsmTransition {
                instance: self.trace_instance,
                at: self.trace_origin + fsm,
                state,
                field_number,
            });
        }
    }

    fn emit_adt(&self, fsm: Cycles, hit: bool, cycles: Cycles) {
        if self.tracer.is_some() {
            self.emit(protoacc_trace::TraceEvent::AdtAccess {
                instance: self.trace_instance,
                at: self.trace_origin + fsm,
                unit: protoacc_trace::AdtUnit::Deser,
                hit,
                cycles,
            });
        }
    }

    /// Closes the span of the previously opened field, if any, and opens
    /// one for `field_number` at FSM time `fsm`.
    fn roll_field_span(&self, pending: &mut Option<(u32, Cycles)>, next: Option<u32>, fsm: Cycles) {
        if self.tracer.is_none() {
            return;
        }
        if let Some((field_number, start)) = pending.take() {
            self.emit(protoacc_trace::TraceEvent::Field {
                instance: self.trace_instance,
                start: self.trace_origin + start,
                cycles: fsm - start,
                field_number,
            });
        }
        *pending = next.map(|f| (f, fsm));
    }

    /// Executes one deserialization: input at `input_addr`/`input_len`,
    /// message type described by the ADT at `adt_ptr`, output into the
    /// caller-allocated object at `dest_obj`, internal allocations from
    /// `arena`.
    ///
    /// # Errors
    ///
    /// Malformed wire input, incompatible wire types, or arena exhaustion.
    #[allow(clippy::too_many_arguments)]
    pub fn run(
        &mut self,
        mem: &mut Memory,
        arena: &mut BumpArena,
        adt_ptr: u64,
        dest_obj: u64,
        input_addr: u64,
        input_len: u64,
        stats: &mut AccelStats,
    ) -> Result<DeserRun, AccelError> {
        let mut fsm: Cycles = 0;
        let mut fields: u64 = 0;

        // Memloader prefetch: the streaming bandwidth bound for the whole
        // input; FSM work overlaps with it (decoupled interface).
        let stream_cycles = mem
            .system
            .stream(input_addr, input_len as usize, AccessKind::Read);
        if self.tracer.is_some() {
            self.emit(protoacc_trace::TraceEvent::MemloaderStream {
                instance: self.trace_instance,
                start: self.trace_origin,
                cycles: stream_cycles,
                bytes: input_len,
                windows: input_len.div_ceil(memloader::WINDOW_BYTES as u64),
            });
        }
        let input = mem.data.read_vec(input_addr, input_len as usize);
        let mut loader = Memloader::new(input, input_addr);
        // Span bookkeeping for the per-field trace: `(field_number, fsm at
        // key parse)` of the field currently being handled. Only ever
        // `Some` while a tracer is attached.
        let mut open_field: Option<(u32, Cycles)> = None;

        let root_adt = self.load_adt_header(mem, adt_ptr, &mut fsm);
        let mut frames = vec![Frame {
            adt: root_adt,
            obj: dest_obj,
            end: loader.len(),
            close_into_parent_repeated: None,
            regions: BTreeMap::new(),
        }];

        while !frames.is_empty() {
            let top = frames.len() - 1;
            let frame_end = frames[top].end;
            if loader.position() >= frame_end {
                // End of (sub-)message: close regions and pop the stack.
                let frame = frames.pop().expect("frame present");
                fsm += 1;
                self.roll_field_span(&mut open_field, None, fsm);
                self.emit_fsm(fsm, protoacc_trace::FsmState::CloseFrame, 0);
                self.close_frame(mem, arena, frame, &mut frames, &mut fsm, stats)?;
                if frames.len() >= self.config.stack_depth {
                    fsm += self.config.stack_spill_cycles;
                }
                continue;
            }

            // --- parseKey state: combinational varint decode of the key ---
            let fsm_at_key = fsm;
            let decoded = varint_at(&loader, frame_end)?;
            loader.consume(decoded.len);
            fsm += 1;
            stats.varints += 1;
            let key = FieldKey::from_encoded(decoded.value)?;
            fields += 1;
            self.roll_field_span(&mut open_field, Some(key.field_number()), fsm_at_key);
            self.emit_fsm(fsm, protoacc_trace::FsmState::ParseKey, key.field_number());

            let Some(entry_addr) = frames[top].adt.entry_addr(key.field_number()) else {
                // Field number outside the defined range: skip the value.
                self.emit_fsm(fsm, protoacc_trace::FsmState::Skip, key.field_number());
                self.skip_value(&mut loader, key.wire_type(), frame_end, &mut fsm)?;
                continue;
            };

            // --- typeInfo state: block for the ADT loader response ---
            let (adt_cost, adt_hit) =
                self.adt_cache
                    .load(&mut mem.system, entry_addr, ADT_ENTRY_BYTES as usize);
            fsm += adt_cost;
            self.emit_adt(fsm, adt_hit, adt_cost);
            self.emit_fsm(fsm, protoacc_trace::FsmState::TypeInfo, key.field_number());
            let mut entry_bytes = [0u8; ADT_ENTRY_BYTES as usize];
            mem.data.read_bytes(entry_addr, &mut entry_bytes);
            let entry = FieldEntry::from_bytes(&entry_bytes);
            if !entry.is_defined() {
                self.emit_fsm(fsm, protoacc_trace::FsmState::Skip, key.field_number());
                self.skip_value(&mut loader, key.wire_type(), frame_end, &mut fsm)?;
                continue;
            }

            // Hasbits writer: dispatched at parseKey; the write itself is
            // pipelined through the memory interface wrapper.
            {
                let frame = &frames[top];
                let bit = u64::from(key.field_number() - frame.adt.min_field);
                let hb_addr = frame.obj + frame.adt.hasbits_offset + bit / 8;
                if self.config.dense_hasbits {
                    // Rejected alternative (Section 4.2): a dense packing
                    // needs a mapping table indexed by field number — an
                    // additional blocking 32-bit read per field.
                    fsm += mem
                        .system
                        .access(frame.adt.base + 4096 + bit * 4, 4, AccessKind::Read);
                }
                let old = mem.data.read_u8(hb_addr);
                mem.data.write_u8(hb_addr, old | (1 << (bit % 8)));
                fsm += mem.system.pipelined(hb_addr, 1, AccessKind::Write);
            }

            // Packed arrival only for repeated packable scalars — the same
            // predicate the CPU reference decoder applies, so corrupted keys
            // that turn a scalar field length-delimited reject identically
            // on both paths (`scalar_size().is_some()` is the ADT-level
            // equivalent of `FieldType::is_packable`).
            let expected_wire = entry.type_code.wire_type();
            let packed_arrival = key.wire_type() == WireType::LengthDelimited
                && expected_wire != WireType::LengthDelimited
                && entry.repeated
                && entry.type_code.scalar_size().is_some();
            if !packed_arrival && key.wire_type() != expected_wire {
                // FSM error state: a defined field whose arriving wire type
                // contradicts its descriptor (same verdict class as the CPU
                // reference decoder).
                return Err(AccelError::Runtime(
                    protoacc_runtime::RuntimeError::WireTypeMismatch {
                        field_number: key.field_number(),
                    },
                ));
            }

            match entry.type_code {
                TypeCode::Str | TypeCode::Bytes => {
                    self.emit_fsm(fsm, protoacc_trace::FsmState::Write, key.field_number());
                    let len = self.read_length(&mut loader, frame_end, &mut fsm, stats)?;
                    let payload = loader
                        .peek_bytes(len, frame_end)
                        .ok_or(AccelError::Wire(WireError::LengthOutOfBounds {
                            declared: len as u64,
                            remaining: frame_end - loader.position(),
                        }))?
                        .to_vec();
                    let string_obj = self.alloc_string(
                        mem,
                        arena,
                        payload,
                        entry.type_code == TypeCode::Str,
                        key.field_number(),
                        &mut fsm,
                        stats,
                    )?;
                    loader.consume(len);
                    if entry.repeated {
                        frames[top]
                            .regions
                            .entry(key.field_number())
                            .or_insert_with(|| RepeatedRegion::new(entry))
                            .ptrs
                            .push(string_obj);
                        fsm += 1;
                    } else {
                        let slot = frames[top].obj + u64::from(entry.offset);
                        mem.data.write_u64(slot, string_obj);
                        fsm += mem.system.pipelined(slot, 8, AccessKind::Write);
                    }
                }
                TypeCode::Message => {
                    self.emit_fsm(fsm, protoacc_trace::FsmState::OpenFrame, key.field_number());
                    let len = self.read_length(&mut loader, frame_end, &mut fsm, stats)?;
                    // Compared as a subtraction so an adversarial 64-bit
                    // declared length cannot overflow the position addition.
                    if len > frame_end - loader.position() {
                        return Err(AccelError::Wire(WireError::LengthOutOfBounds {
                            declared: len as u64,
                            remaining: frame_end - loader.position(),
                        }));
                    }
                    let sub_adt = self.load_adt_header(mem, entry.sub_adt, &mut fsm);
                    // Allocate and zero-initialize the sub-message object.
                    let sub_obj = arena.alloc(sub_adt.object_size, 8)?;
                    stats.allocs += 1;
                    fsm += 1;
                    mem.data
                        .write_bytes(sub_obj, &vec![0u8; sub_adt.object_size as usize]);
                    fsm += mem.system.pipelined(
                        sub_obj,
                        sub_adt.object_size as usize,
                        AccessKind::Write,
                    );
                    let close_into = if entry.repeated {
                        frames[top]
                            .regions
                            .entry(key.field_number())
                            .or_insert_with(|| RepeatedRegion::new(entry));
                        Some(key.field_number())
                    } else {
                        let slot = frames[top].obj + u64::from(entry.offset);
                        mem.data.write_u64(slot, sub_obj);
                        fsm += mem.system.pipelined(slot, 8, AccessKind::Write);
                        None
                    };
                    // FSM error state: sub-message nesting past the decode
                    // depth limit (the new frame would sit at depth
                    // `frames.len()`, with the root at 0 — the same count
                    // the CPU reference decoder guards at message entry).
                    if frames.len() > reference::MAX_DECODE_DEPTH {
                        return Err(AccelError::Runtime(
                            protoacc_runtime::RuntimeError::DepthExceeded {
                                limit: reference::MAX_DECODE_DEPTH,
                            },
                        ));
                    }
                    // Push message-level metadata (Section 4.4.9).
                    let end = loader.position() + len;
                    stats.stack_pushes += 1;
                    fsm += 1;
                    if frames.len() >= self.config.stack_depth {
                        stats.stack_spills += 1;
                        fsm += self.config.stack_spill_cycles;
                    }
                    frames.push(Frame {
                        adt: sub_adt,
                        obj: sub_obj,
                        end,
                        close_into_parent_repeated: close_into,
                        regions: BTreeMap::new(),
                    });
                }
                _scalar => {
                    self.emit_fsm(fsm, protoacc_trace::FsmState::Write, key.field_number());
                    if packed_arrival {
                        let len = self.read_length(&mut loader, frame_end, &mut fsm, stats)?;
                        if len > frame_end - loader.position() {
                            return Err(AccelError::Wire(WireError::LengthOutOfBounds {
                                declared: len as u64,
                                remaining: frame_end - loader.position(),
                            }));
                        }
                        let body_end = loader.position() + len;
                        // Fixed-width packed bodies stream at full window
                        // width; varint bodies decode one element per cycle.
                        while loader.position() < body_end {
                            let bits = decode_scalar(
                                &mut loader,
                                entry.type_code,
                                body_end,
                                &mut fsm,
                                stats,
                            )?;
                            frames[top]
                                .regions
                                .entry(key.field_number())
                                .or_insert_with(|| RepeatedRegion::new(entry))
                                .scalars
                                .push(bits);
                        }
                    } else {
                        let bits = decode_scalar(
                            &mut loader,
                            entry.type_code,
                            frame_end,
                            &mut fsm,
                            stats,
                        )?;
                        if entry.repeated {
                            frames[top]
                                .regions
                                .entry(key.field_number())
                                .or_insert_with(|| RepeatedRegion::new(entry))
                                .scalars
                                .push(bits);
                            fsm += 1;
                        } else {
                            let size = entry.type_code.scalar_size().expect("scalar type") as usize;
                            let slot = frames[top].obj + u64::from(entry.offset);
                            mem.data.write_bytes(slot, &bits.to_le_bytes()[..size]);
                            fsm += mem.system.pipelined(slot, size, AccessKind::Write);
                        }
                    }
                }
            }
        }

        self.roll_field_span(&mut open_field, None, fsm);
        stats.fields += fields;
        let cycles = self.config.rocc_dispatch_cycles + fsm.max(stream_cycles);
        Ok(DeserRun {
            cycles,
            fsm_cycles: fsm,
            stream_cycles,
            wire_bytes: input_len,
            fields,
        })
    }

    /// ADT-misses counter (for reporting).
    pub fn adt_misses(&self) -> u64 {
        self.adt_cache.misses()
    }

    /// Drops cached ADT state (e.g. between benchmark phases).
    pub fn reset_caches(&mut self) {
        self.adt_cache.clear();
    }

    fn load_adt_header(&mut self, mem: &mut Memory, adt_ptr: u64, fsm: &mut Cycles) -> AdtLayout {
        let (cost, hit) = self.adt_cache.load(&mut mem.system, adt_ptr, 64);
        *fsm += cost;
        self.emit_adt(*fsm, hit, cost);
        AdtLayout::read(&mem.data, adt_ptr)
    }

    fn read_length(
        &mut self,
        loader: &mut Memloader,
        limit: usize,
        fsm: &mut Cycles,
        stats: &mut AccelStats,
    ) -> Result<usize, AccelError> {
        let decoded = varint_at(loader, limit)?;
        loader.consume(decoded.len);
        *fsm += 1;
        stats.varints += 1;
        Ok(decoded.value as usize)
    }

    /// String allocation and copy states (Section 4.4.7): construct a
    /// libstdc++-compatible string object and copy the payload.
    #[allow(clippy::too_many_arguments)]
    fn alloc_string(
        &mut self,
        mem: &mut Memory,
        arena: &mut BumpArena,
        payload: Vec<u8>,
        is_text: bool,
        field_number: u32,
        fsm: &mut Cycles,
        stats: &mut AccelStats,
    ) -> Result<u64, AccelError> {
        if self.config.validate_utf8 && is_text {
            // Proto3 support (Section 7): the validator checks one window
            // per cycle, overlapped with the copy; only the final-window
            // verdict adds a cycle beyond the copy itself.
            match Utf8Validator::validate(&payload, self.config.window_bytes) {
                Some(_cycles) => *fsm += 1,
                None => {
                    return Err(AccelError::Runtime(
                        protoacc_runtime::RuntimeError::InvalidUtf8 { field_number },
                    ))
                }
            }
        }
        let obj = arena.alloc(STRING_OBJECT_BYTES, 8)?;
        stats.allocs += 1;
        *fsm += 1; // arena bump is a pointer increment
                   // Consuming the payload through the memloader window: any window
                   // narrower than the 16 B bus adds cycles beyond the bus occupancy
                   // already charged with the output write below.
        let bus_cycles = payload.len().div_ceil(protoacc_mem::BUS_WIDTH_BYTES);
        let window_cycles = payload.len().div_ceil(self.config.window_bytes);
        *fsm += window_cycles.saturating_sub(bus_cycles) as u64;
        mem.data.write_u64(obj + 8, payload.len() as u64);
        if payload.len() <= STRING_SSO_CAPACITY {
            mem.data.write_u64(obj, obj + 16);
            mem.data.write_bytes(obj + 16, &payload);
            *fsm += mem
                .system
                .pipelined(obj, STRING_OBJECT_BYTES as usize, AccessKind::Write);
        } else {
            let buf = arena.alloc(payload.len() as u64 + 1, 8)?;
            stats.allocs += 1;
            mem.data.write_u64(obj, buf);
            mem.data.write_u64(obj + 16, payload.len() as u64 + 1);
            mem.data.write_bytes(buf, &payload);
            *fsm += mem
                .system
                .pipelined(obj, STRING_OBJECT_BYTES as usize, AccessKind::Write);
            // The bulk copy: consumes from the memloader and streams out.
            *fsm += mem.system.pipelined(buf, payload.len(), AccessKind::Write);
        }
        Ok(obj)
    }

    fn skip_value(
        &mut self,
        loader: &mut Memloader,
        wire_type: WireType,
        limit: usize,
        fsm: &mut Cycles,
    ) -> Result<usize, AccelError> {
        let consumed = match wire_type {
            WireType::Varint => varint_at(loader, limit)?.len,
            WireType::Bits32 => 4,
            WireType::Bits64 => 8,
            WireType::LengthDelimited => {
                let d = varint_at(loader, limit)?;
                // A declared 64-bit length near usize::MAX must reject as
                // truncation, not overflow the addition.
                d.len
                    .checked_add(d.value as usize)
                    .ok_or(AccelError::Wire(WireError::Truncated { offset: limit }))?
            }
            WireType::StartGroup | WireType::EndGroup => {
                return Err(AccelError::Wire(WireError::InvalidWireType {
                    raw: wire_type.as_raw(),
                }))
            }
        };
        if consumed > limit.saturating_sub(loader.position()) {
            return Err(AccelError::Wire(WireError::Truncated { offset: limit }));
        }
        loader.consume(consumed);
        // Discarding streams through the window at full width.
        *fsm += 1 + consumed.div_ceil(self.config.window_bytes) as u64;
        Ok(consumed)
    }

    /// Closes out a frame's open allocation regions (writing headers,
    /// element arrays, and final lengths) and applies its close-into-parent
    /// action for repeated sub-messages.
    fn close_frame(
        &mut self,
        mem: &mut Memory,
        arena: &mut BumpArena,
        frame: Frame,
        frames: &mut [Frame],
        fsm: &mut Cycles,
        stats: &mut AccelStats,
    ) -> Result<(), AccelError> {
        for region in frame.regions.values() {
            let (count, elem_size, elems_are_ptrs) = if region.ptrs.is_empty() {
                (
                    region.scalars.len() as u64,
                    region.entry.type_code.scalar_size().unwrap_or(8),
                    false,
                )
            } else {
                (region.ptrs.len() as u64, 8, true)
            };
            if count == 0 {
                continue;
            }
            let header = arena.alloc(REPEATED_HEADER_BYTES, 8)?;
            let data = arena.alloc(count * elem_size, 8)?;
            stats.allocs += 2;
            *fsm += 1;
            mem.data.write_u64(header, data);
            mem.data.write_u64(header + 8, count);
            mem.data.write_u64(header + 16, count);
            *fsm += mem
                .system
                .pipelined(header, REPEATED_HEADER_BYTES as usize, AccessKind::Write);
            if elems_are_ptrs {
                for (i, &p) in region.ptrs.iter().enumerate() {
                    mem.data.write_u64(data + i as u64 * 8, p);
                }
            } else {
                for (i, &bits) in region.scalars.iter().enumerate() {
                    mem.data.write_bytes(
                        data + i as u64 * elem_size,
                        &bits.to_le_bytes()[..elem_size as usize],
                    );
                }
            }
            *fsm += mem
                .system
                .pipelined(data, (count * elem_size) as usize, AccessKind::Write);
            let slot = frame.obj + u64::from(region.entry.offset);
            mem.data.write_u64(slot, header);
            *fsm += mem.system.pipelined(slot, 8, AccessKind::Write);
        }
        if let Some(field_number) = frame.close_into_parent_repeated {
            let parent = frames.last_mut().expect("parent frame for repeated sub");
            parent
                .regions
                .get_mut(&field_number)
                .expect("region opened at push")
                .ptrs
                .push(frame.obj);
        }
        Ok(())
    }
}

/// Decodes the varint at the loader cursor, distinguishing a genuinely
/// non-terminating varint (a full 10-byte window with every continuation bit
/// set — `VarintOverflow`, matching the software reference decoder) from one
/// cut short by the frame or buffer end (`Truncated`).
fn varint_at(loader: &Memloader, limit: usize) -> Result<DecodedVarint, AccelError> {
    let window = loader.peek_varint_window(limit);
    CombVarintDecoder::decode_avail(window).ok_or(AccelError::Wire(
        if window.len() >= MAX_VARINT_LEN {
            WireError::VarintOverflow {
                offset: loader.position(),
            }
        } else {
            WireError::Truncated {
                offset: loader.position() + window.len(),
            }
        },
    ))
}

/// Decodes one scalar (varint or fixed) value, returning its in-memory bits.
fn decode_scalar(
    loader: &mut Memloader,
    type_code: TypeCode,
    limit: usize,
    fsm: &mut Cycles,
    stats: &mut AccelStats,
) -> Result<u64, AccelError> {
    match type_code.wire_type() {
        WireType::Varint => {
            let decoded = varint_at(loader, limit)?;
            loader.consume(decoded.len);
            *fsm += 1; // single-cycle combinational decode (+ zigzag stage)
            stats.varints += 1;
            Ok(type_code.bits_from_wire_varint(decoded.value))
        }
        WireType::Bits32 => {
            let bits = {
                let bytes = loader
                    .peek_bytes(4, limit)
                    .ok_or(AccelError::Wire(WireError::Truncated { offset: limit }))?;
                u32::from_le_bytes(bytes.try_into().expect("4 bytes"))
            };
            loader.consume(4);
            *fsm += 1;
            Ok(u64::from(bits))
        }
        WireType::Bits64 => {
            let bits = {
                let bytes = loader
                    .peek_bytes(8, limit)
                    .ok_or(AccelError::Wire(WireError::Truncated { offset: limit }))?;
                u64::from_le_bytes(bytes.try_into().expect("8 bytes"))
            };
            loader.consume(8);
            *fsm += 1;
            Ok(bits)
        }
        _ => unreachable!("length-delimited handled by the FSM"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use protoacc_mem::MemConfig;
    use protoacc_runtime::{object, reference, write_adts, MessageLayouts, MessageValue};
    use protoacc_schema::{FieldType, SchemaBuilder};

    fn unit_harness() -> (
        protoacc_schema::Schema,
        MessageLayouts,
        Memory,
        protoacc_runtime::AdtTables,
        BumpArena,
        protoacc_schema::MessageId,
    ) {
        let mut b = SchemaBuilder::new();
        let id = b.define("U", |m| {
            m.optional("v", FieldType::UInt64, 1)
                .optional("s", FieldType::String, 2)
                .packed("p", FieldType::UInt32, 3);
        });
        let schema = b.build().unwrap();
        let layouts = MessageLayouts::compute(&schema);
        let mut mem = Memory::new(MemConfig::default());
        let mut arena = BumpArena::new(0x1_0000, 1 << 22);
        let adts = write_adts(&schema, &layouts, &mut mem.data, &mut arena).unwrap();
        (schema, layouts, mem, adts, arena, id)
    }

    #[test]
    fn run_reports_cycle_breakdown() {
        let (schema, layouts, mut mem, adts, mut arena, id) = unit_harness();
        let mut m = MessageValue::new(id);
        m.set_unchecked(1, protoacc_runtime::Value::UInt64(300));
        m.set_unchecked(2, protoacc_runtime::Value::Str("breakdown".into()));
        let wire = reference::encode(&m, &schema).unwrap();
        mem.data.write_bytes(0x20_0000, &wire);
        let dest = arena.alloc(layouts.layout(id).object_size(), 8).unwrap();
        let mut unit = DeserUnit::new(AccelConfig::default());
        let mut stats = AccelStats::default();
        let mut accel_arena = BumpArena::new(0x100_0000, 1 << 20);
        let run = unit
            .run(
                &mut mem,
                &mut accel_arena,
                adts.addr(id),
                dest,
                0x20_0000,
                wire.len() as u64,
                &mut stats,
            )
            .unwrap();
        // Total = dispatch + max(fsm, stream); both components populated.
        assert!(run.fsm_cycles > 0);
        assert!(run.stream_cycles > 0);
        assert_eq!(
            run.cycles,
            AccelConfig::default().rocc_dispatch_cycles + run.fsm_cycles.max(run.stream_cycles)
        );
        assert_eq!(run.wire_bytes, wire.len() as u64);
        assert_eq!(run.fields, 2);
        assert!(stats.varints >= 3, "key + value + length varints");
        let back = object::read_message(&mem.data, &schema, &layouts, id, dest).unwrap();
        assert!(back.bits_eq(&m));
    }

    #[test]
    fn adt_cache_warms_across_operations() {
        let (schema, layouts, mut mem, adts, mut arena, id) = unit_harness();
        let mut m = MessageValue::new(id);
        m.set_unchecked(1, protoacc_runtime::Value::UInt64(1));
        let wire = reference::encode(&m, &schema).unwrap();
        mem.data.write_bytes(0x20_0000, &wire);
        let mut unit = DeserUnit::new(AccelConfig::default());
        let mut stats = AccelStats::default();
        let mut accel_arena = BumpArena::new(0x100_0000, 1 << 20);
        let run_once = |unit: &mut DeserUnit,
                        mem: &mut Memory,
                        arena: &mut BumpArena,
                        accel_arena: &mut BumpArena,
                        stats: &mut AccelStats| {
            let dest = arena.alloc(layouts.layout(id).object_size(), 8).unwrap();
            unit.run(
                mem,
                accel_arena,
                adts.addr(id),
                dest,
                0x20_0000,
                wire.len() as u64,
                stats,
            )
            .unwrap()
            .fsm_cycles
        };
        let cold = run_once(
            &mut unit,
            &mut mem,
            &mut arena,
            &mut accel_arena,
            &mut stats,
        );
        let warm = run_once(
            &mut unit,
            &mut mem,
            &mut arena,
            &mut accel_arena,
            &mut stats,
        );
        assert!(warm <= cold, "warm {warm} cold {cold}");
        let misses_after_two = unit.adt_misses();
        run_once(
            &mut unit,
            &mut mem,
            &mut arena,
            &mut accel_arena,
            &mut stats,
        );
        assert_eq!(
            unit.adt_misses(),
            misses_after_two,
            "third run fully cached"
        );
    }

    #[test]
    fn packed_body_with_trailing_garbage_length_fails() {
        let (_, layouts, mut mem, adts, mut arena, id) = unit_harness();
        // Packed field 3 declaring 5 bytes with only 2 available.
        let mut w = protoacc_wire::WireWriter::new();
        w.write_key(3, WireType::LengthDelimited).unwrap();
        w.write_raw_varint(5);
        w.write_raw_bytes(&[0x01, 0x02]);
        let wire = w.into_bytes();
        mem.data.write_bytes(0x20_0000, &wire);
        let dest = arena.alloc(layouts.layout(id).object_size(), 8).unwrap();
        let mut unit = DeserUnit::new(AccelConfig::default());
        let mut stats = AccelStats::default();
        let mut accel_arena = BumpArena::new(0x100_0000, 1 << 20);
        let result = unit.run(
            &mut mem,
            &mut accel_arena,
            adts.addr(id),
            dest,
            0x20_0000,
            wire.len() as u64,
            &mut stats,
        );
        assert!(matches!(
            result,
            Err(AccelError::Wire(WireError::LengthOutOfBounds { .. }))
        ));
    }
}
