//! Quickstart: define a schema, run both accelerator units, verify against
//! the reference codec, and inspect cycle counts.
//!
//! Run with: `cargo run --example quickstart`

use protoacc_suite::accel::{AccelConfig, ProtoAccelerator};
use protoacc_suite::mem::{MemConfig, Memory};
use protoacc_suite::runtime::{
    object, reference, write_adts, BumpArena, MessageLayouts, MessageValue, Value,
};
use protoacc_suite::schema::parse_proto;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A schema, straight from proto2 source.
    let schema = parse_proto(
        r#"
        syntax = "proto2";
        message Point {
            required sint32 x = 1;
            required sint32 y = 2;
            optional string label = 3;
        }
        message Route {
            optional string name = 1;
            repeated Point points = 2;
            optional uint64 version = 15;
        }
        "#,
    )?;
    let route_id = schema.id_by_name("Route").expect("Route defined");
    let point_id = schema.id_by_name("Point").expect("Point defined");
    let layouts = MessageLayouts::compute(&schema);

    // 2. A message, as an application would build it.
    let mut route = MessageValue::new(route_id);
    route.set(1, Value::Str("bay-loop".into()))?;
    route.set(15, Value::UInt64(7))?;
    let mut points = Vec::new();
    for (x, y, label) in [(0, 0, "start"), (-120, 44, "midpoint"), (3, -9, "end")] {
        let mut p = MessageValue::new(point_id);
        p.set(1, Value::SInt32(x))?;
        p.set(2, Value::SInt32(y))?;
        p.set(3, Value::Str(label.into()))?;
        points.push(Value::Message(p));
    }
    route.set_repeated(2, points);
    route.validate(&schema)?;

    // 3. The simulated SoC: guest memory + the load-time ADTs the modified
    //    protoc generates (Section 4.2 of the paper).
    let mut mem = Memory::new(MemConfig::default());
    let mut setup_arena = BumpArena::new(0x1_0000, 1 << 22);
    let adts = write_adts(&schema, &layouts, &mut mem.data, &mut setup_arena)?;
    println!(
        "ADTs for {} message types occupy {} bytes",
        schema.len(),
        adts.total_bytes()
    );

    // 4. Serialize on the accelerator: materialize the C++-like object
    //    graph, then issue the RoCC instruction sequence.
    let obj = object::write_message(&mut mem.data, &schema, &layouts, &mut setup_arena, &route)?;
    let mut accel = ProtoAccelerator::new(AccelConfig::default());
    accel.ser_assign_arena(0x40_0000, 1 << 20, 0x60_0000, 1 << 12);
    let layout = layouts.layout(route_id);
    accel.ser_info(
        layout.hasbits_offset(),
        layout.min_field(),
        layout.max_field(),
    );
    let ser_run = accel.do_proto_ser(&mut mem, adts.addr(route_id), obj)?;
    accel.block_for_ser_completion();
    let wire = mem
        .data
        .read_vec(ser_run.out_addr, ser_run.out_len as usize);
    println!(
        "serialized {} bytes in {} accelerator cycles ({:.2} Gbit/s at 2 GHz)",
        ser_run.out_len,
        ser_run.cycles,
        accel
            .config()
            .gbits_per_sec(ser_run.out_len, ser_run.cycles)
    );

    // Wire-compatible with standard protobufs: the reference encoder
    // produces the identical bytes.
    assert_eq!(wire, reference::encode(&route, &schema)?);

    // 5. Deserialize the same bytes on the accelerator.
    accel.deser_assign_arena(0x100_0000, 1 << 22);
    let dest = setup_arena.alloc(layout.object_size(), 8)?;
    accel.deser_info(adts.addr(route_id), dest);
    let deser_run = accel.do_proto_deser(
        &mut mem,
        ser_run.out_addr,
        ser_run.out_len,
        layout.min_field(),
    )?;
    accel.block_for_deser_completion();
    println!(
        "deserialized in {} accelerator cycles ({} fields, {} varints decoded)",
        deser_run.cycles,
        deser_run.fields,
        accel.stats().varints
    );

    let back = object::read_message(&mem.data, &schema, &layouts, route_id, dest)?;
    assert!(back.bits_eq(&route), "round trip must be lossless");
    println!("round trip verified: accelerator output matches the original message");
    Ok(())
}
