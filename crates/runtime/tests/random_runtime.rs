//! Randomized tests: arbitrary messages survive both the wire codec and the
//! guest-memory object graph. Driven by the workspace's deterministic PRNG
//! (`xrand`); enable the `slow-tests` feature to multiply the iteration
//! counts.

use protoacc_mem::GuestMemory;
use protoacc_runtime::{object, reference, BumpArena, MessageLayouts, MessageValue, Value};
use protoacc_schema::{FieldType, MessageId, Schema, SchemaBuilder};
use xrand::{Rng, StdRng};

/// Iteration count, scaled up under `--features slow-tests`.
fn cases(default: usize) -> usize {
    if cfg!(feature = "slow-tests") {
        default * 16
    } else {
        default
    }
}

fn test_schema() -> (Schema, MessageId, MessageId) {
    let mut b = SchemaBuilder::new();
    let inner = b.declare("Inner");
    b.message(inner)
        .optional("flag", FieldType::Bool, 1)
        .optional("note", FieldType::String, 2)
        .optional("count", FieldType::UInt64, 3);
    let outer = b.declare("Outer");
    b.message(outer)
        .optional("i32", FieldType::Int32, 1)
        .optional("s64", FieldType::SInt64, 2)
        .optional("dbl", FieldType::Double, 3)
        .optional("flt", FieldType::Float, 4)
        .optional("fx32", FieldType::Fixed32, 5)
        .optional("fx64", FieldType::Fixed64, 6)
        .optional("text", FieldType::String, 7)
        .optional("blob", FieldType::Bytes, 8)
        .optional("sub", FieldType::Message(inner), 9)
        .repeated("ri", FieldType::Int64, 10)
        .packed("pu", FieldType::UInt32, 11)
        .repeated("rstr", FieldType::String, 12)
        .repeated("rsub", FieldType::Message(inner), 13);
    (b.build().unwrap(), outer, inner)
}

fn lowercase_string(rng: &mut StdRng, max_len: usize) -> String {
    (0..rng.gen_range(0..=max_len))
        .map(|_| char::from(rng.gen_range(b'a'..=b'z')))
        .collect()
}

fn random_inner(rng: &mut StdRng, inner: MessageId) -> MessageValue {
    let mut m = MessageValue::new(inner);
    if rng.gen_bool(0.5) {
        m.set_unchecked(1, Value::Bool(rng.gen()));
    }
    if rng.gen_bool(0.5) {
        m.set_unchecked(2, Value::Str(lowercase_string(rng, 40)));
    }
    if rng.gen_bool(0.5) {
        m.set_unchecked(3, Value::UInt64(rng.gen()));
    }
    m
}

fn random_outer(rng: &mut StdRng, outer: MessageId, inner: MessageId) -> MessageValue {
    let mut m = MessageValue::new(outer);
    if rng.gen_bool(0.5) {
        m.set_unchecked(1, Value::Int32(rng.gen()));
    }
    if rng.gen_bool(0.5) {
        m.set_unchecked(2, Value::SInt64(rng.gen()));
    }
    if rng.gen_bool(0.5) {
        m.set_unchecked(3, Value::Double(rng.gen()));
    }
    if rng.gen_bool(0.5) {
        m.set_unchecked(4, Value::Float(rng.gen()));
    }
    if rng.gen_bool(0.5) {
        m.set_unchecked(5, Value::Fixed32(rng.gen()));
    }
    if rng.gen_bool(0.5) {
        m.set_unchecked(6, Value::Fixed64(rng.gen()));
    }
    if rng.gen_bool(0.5) {
        let text: String = (0..rng.gen_range(0u32..64))
            .map(|_| char::from(rng.gen_range(b' '..=b'~')))
            .collect();
        m.set_unchecked(7, Value::Str(text));
    }
    if rng.gen_bool(0.5) {
        let mut bytes = vec![0u8; rng.gen_range(0usize..64)];
        rng.fill(&mut bytes);
        m.set_unchecked(8, Value::Bytes(bytes));
    }
    if rng.gen_bool(0.5) {
        m.set_unchecked(9, Value::Message(random_inner(rng, inner)));
    }
    let ri: Vec<Value> = (0..rng.gen_range(0u32..8))
        .map(|_| Value::Int64(rng.gen()))
        .collect();
    if !ri.is_empty() {
        m.set_repeated(10, ri);
    }
    let pu: Vec<Value> = (0..rng.gen_range(0u32..8))
        .map(|_| Value::UInt32(rng.gen()))
        .collect();
    if !pu.is_empty() {
        m.set_repeated(11, pu);
    }
    let rstr: Vec<Value> = (0..rng.gen_range(0u32..4))
        .map(|_| Value::Str(lowercase_string(rng, 20)))
        .collect();
    if !rstr.is_empty() {
        m.set_repeated(12, rstr);
    }
    let rsub: Vec<Value> = (0..rng.gen_range(0u32..3))
        .map(|_| Value::Message(random_inner(rng, inner)))
        .collect();
    if !rsub.is_empty() {
        m.set_repeated(13, rsub);
    }
    m
}

#[test]
fn wire_round_trip() {
    let mut rng = StdRng::seed_from_u64(0x27_0001);
    let (schema, outer, inner) = test_schema();
    for _ in 0..cases(128) {
        let m = random_outer(&mut rng, outer, inner);
        let bytes = reference::encode(&m, &schema).unwrap();
        assert_eq!(bytes.len(), reference::encoded_len(&m, &schema).unwrap());
        let back = reference::decode(&bytes, m.type_id(), &schema).unwrap();
        assert!(back.bits_eq(&m));
    }
}

#[test]
fn object_graph_round_trip() {
    let mut rng = StdRng::seed_from_u64(0x27_0002);
    let (schema, outer, inner) = test_schema();
    let layouts = MessageLayouts::compute(&schema);
    for _ in 0..cases(128) {
        let m = random_outer(&mut rng, outer, inner);
        let mut mem = GuestMemory::new();
        let mut arena = BumpArena::new(0x10_0000, 1 << 24);
        let addr = object::write_message(&mut mem, &schema, &layouts, &mut arena, &m).unwrap();
        let back = object::read_message(&mem, &schema, &layouts, m.type_id(), addr).unwrap();
        // Empty repeated fields read back as absent; normalize.
        assert!(back.bits_eq(&m));
    }
}

#[test]
fn decoding_arbitrary_bytes_never_panics() {
    let mut rng = StdRng::seed_from_u64(0x27_0003);
    let (schema, outer, _) = test_schema();
    for _ in 0..cases(256) {
        let mut bytes = vec![0u8; rng.gen_range(0usize..256)];
        rng.fill(&mut bytes);
        let _ = reference::decode(&bytes, outer, &schema);
    }
}
