//! Benchmark *your own* `.proto` file on all three systems — the adoption
//! path for downstream users.
//!
//! Usage:
//!
//! ```text
//! bench_proto_file --proto protos/telemetry.proto [--root ScrapeBatch]
//!                  [--count 32] [--seed 42]
//! ```
//!
//! Parses the schema, populates a deterministic message population (sized
//! by the rpc-metadata shape profile unless the schema's own strings say
//! otherwise), and prints deserialization and serialization throughput for
//! riscv-boom, Xeon, and riscv-boom-accel.

use hyperprotobench::{populate::populate_messages, ServiceProfile};
use protoacc_bench::{measure, Direction, SystemKind, Workload};
use protoacc_schema::parse_proto;

fn arg(name: &str) -> Option<String> {
    std::env::args().skip_while(|a| a != name).nth(1)
}

fn main() {
    let Some(path) = arg("--proto") else {
        eprintln!("usage: bench_proto_file --proto <file.proto> [--root <Message>] [--count N] [--seed S]");
        std::process::exit(2);
    };
    let source = match std::fs::read_to_string(&path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("{path}: {e}");
            std::process::exit(2);
        }
    };
    let schema = match parse_proto(&source) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("{path}: {e}");
            std::process::exit(2);
        }
    };
    // Root: --root by name, else the last top-level message (files
    // conventionally build up to their aggregate type).
    let root = match arg("--root") {
        Some(name) => schema.id_by_name(&name).unwrap_or_else(|| {
            eprintln!("message `{name}` not found in {path}");
            std::process::exit(2);
        }),
        None => schema
            .iter()
            .filter(|(_, m)| !m.name().contains('.'))
            .map(|(id, _)| id)
            .last()
            .expect("schema has at least one message"),
    };
    let count: usize = arg("--count").and_then(|v| v.parse().ok()).unwrap_or(32);
    let seed: u64 = arg("--seed").and_then(|v| v.parse().ok()).unwrap_or(42);

    let params = ServiceProfile::bench(4).shape; // balanced default mix
    let messages = populate_messages(&schema, root, &params, seed, count);
    let workload = Workload {
        name: schema.message(root).name().to_owned(),
        schema,
        type_id: root,
        messages,
    };
    println!(
        "{}: {} messages, {} wire bytes per pass",
        workload.name,
        workload.messages.len(),
        workload.wire_bytes()
    );
    println!(
        "{:<20} {:>16} {:>16}",
        "System", "deser Gbits/s", "ser Gbits/s"
    );
    for system in SystemKind::ALL {
        let d = measure(system, &workload, Direction::Deserialize);
        let s = measure(system, &workload, Direction::Serialize);
        println!("{:<20} {:>16.3} {:>16.3}", system.label(), d.gbits, s.gbits);
    }
}
