//! Abstract interpretation of the protoacc behavioral model.
//!
//! The simulator charges every accelerator action from fixed cost tables
//! ([`protoacc::AccelConfig`], [`protoacc_mem::MemConfig`]), so each state of
//! the field-handler FSM (parseKey → typeInfo → per-type write states,
//! Section 3 of the paper) has a knowable per-visit cycle minimum and
//! maximum. This crate runs an *interval-domain* abstract interpreter over
//! the schema: every field contributes an interval of per-record costs, and
//! the per-message join composes a two-sided **cycle envelope**
//! `[lower, upper]` as a function of wire length — without running the
//! simulator.
//!
//! * The **lower** bound sharpens `protoacc-lint`'s floor: on top of the
//!   stream-bandwidth and max-record-size floors it charges the mandatory
//!   per-record FSM states (key parse, typeInfo lookup, hasbits write, value
//!   commit) plus the root ADT load and frame close.
//! * The **upper** bound is a sound static ceiling: every ADT-cache access
//!   misses, every cache probe goes to DRAM, every TLB translation walks,
//!   every varint is maximally wide, every stack push/pop spills, and every
//!   streaming transfer sees the worst alignment. Soundness is
//!   cross-validated against the simulator in the suite's
//!   `envelope_soundness` tests.
//!
//! # Scope
//!
//! The *deserialization lower bound* assumes schema-conformant input (every
//! record's field number is defined in the schema): a single huge *unknown*
//! length-delimited record is skipped in bulk and can undercut the
//! per-record floor. The upper bound holds for arbitrary well-formed wire
//! input, unknown fields included. The *serialization* envelope assumes
//! objects written by the runtime (no hasbits set in field-number gaps).
//!
//! # Sanitizer
//!
//! On top of the envelope, this crate checks dynamic traces of the
//! multi-instance serving model ([`protoacc::ServeCluster`]) and reports
//! [`Finding`]s in three categories, surfaced by `protoacc-lint` as
//! diagnostics:
//!
//! | Code  | Kind                       | Check                                           |
//! |-------|----------------------------|--------------------------------------------------|
//! | PA007 | [`FindingKind::Envelope`]  | measured service cycles inside the static envelope |
//! | PA008 | [`FindingKind::Lifecycle`] | happens-before on enqueue → dispatch → complete  |
//! | PA009 | [`FindingKind::Aliasing`]  | no overlapping buffers among in-flight commands  |

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod from_trace;

use std::collections::HashMap;

use protoacc::serve::CommandFootprint;
use protoacc::{AccelConfig, CommandRecord};
use protoacc_mem::{Cycles, MemConfig, BUS_WIDTH_BYTES, PAGE_SIZE};
use protoacc_runtime::{AdtLayout, MessageLayouts};
use protoacc_schema::{FieldType, MessageId, Schema};
use protoacc_wire::{FieldKey, MAX_VARINT_LEN};

// ---------------------------------------------------------------------------
// Worst-case memory-system geometry
// ---------------------------------------------------------------------------

/// Bus occupancy in cycles for `len` bytes over the 16-byte TileLink bus.
#[must_use]
pub fn bus_cycles(len: u64) -> Cycles {
    len.div_ceil(BUS_WIDTH_BYTES as u64)
}

/// Worst-case number of cache lines an extent of `len` bytes can touch,
/// over all alignments: starting one byte before a line boundary, the extent
/// spans `floor((len + line - 2) / line) + 1` lines.
#[must_use]
pub fn lines_upper(mem: &MemConfig, len: u64) -> u64 {
    let line = mem.l1.line_bytes as u64;
    if len == 0 {
        0
    } else {
        len.saturating_add(line - 2) / line + 1
    }
}

/// Worst-case number of pages an extent of `len` bytes can touch (one TLB
/// translation is charged per touched page).
#[must_use]
pub fn pages_upper(len: u64) -> u64 {
    let page = PAGE_SIZE as u64;
    if len == 0 {
        0
    } else {
        len.saturating_add(page - 2) / page + 1
    }
}

/// The latency-overlap factor streams see with `sharers` active requesters;
/// mirrors `MemSystem::effective_overlap` exactly.
#[must_use]
pub fn overlap_floor(mem: &MemConfig, sharers: usize) -> u64 {
    (mem.max_outstanding.max(1) as u64 / sharers.max(1) as u64).max(1)
}

/// Ceiling on `MemSystem::access`: every touched page walks the page table,
/// every touched line probes all the way to DRAM.
#[must_use]
pub fn access_upper(mem: &MemConfig, len: u64) -> Cycles {
    pages_upper(len)
        .saturating_mul(mem.tlb.walk_cycles)
        .saturating_add(lines_upper(mem, len).saturating_mul(mem.dram_latency))
}

/// Ceiling on `MemSystem::pipelined`: worst TLB + bus occupancy (scaled by
/// `sharers`) + all line probes missing to DRAM, amortized over the
/// outstanding-request window.
#[must_use]
pub fn pipelined_upper(mem: &MemConfig, len: u64, sharers: usize) -> Cycles {
    let probes =
        lines_upper(mem, len).saturating_mul(mem.dram_latency) / overlap_floor(mem, sharers);
    pages_upper(len)
        .saturating_mul(mem.tlb.walk_cycles)
        .saturating_add(bus_cycles(len).saturating_mul(sharers.max(1) as u64))
        .saturating_add(probes)
}

/// Ceiling on `MemSystem::stream`: worst TLB + one exposed DRAM latency +
/// the remaining misses amortized + bus occupancy scaled by `sharers`.
#[must_use]
pub fn stream_upper(mem: &MemConfig, len: u64, sharers: usize) -> Cycles {
    if len == 0 {
        return 0;
    }
    let hidden =
        (lines_upper(mem, len) - 1).saturating_mul(mem.dram_latency) / overlap_floor(mem, sharers);
    pages_upper(len)
        .saturating_mul(mem.tlb.walk_cycles)
        .saturating_add(mem.dram_latency)
        .saturating_add(hidden)
        .saturating_add(bus_cycles(len).saturating_mul(sharers.max(1) as u64))
}

/// Floor on `MemSystem::stream`: at least one line probe (an L1 hit at
/// best) plus un-hideable bus occupancy. Valid for any sharer count, since
/// sharing only inflates the cost.
#[must_use]
pub fn stream_lower(mem: &MemConfig, len: u64) -> Cycles {
    if len == 0 {
        0
    } else {
        mem.l1_latency.saturating_add(bus_cycles(len))
    }
}

// ---------------------------------------------------------------------------
// Interval domain
// ---------------------------------------------------------------------------

/// A closed cycle interval `[lower, upper]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interval {
    /// Inclusive minimum.
    pub lower: Cycles,
    /// Inclusive maximum.
    pub upper: Cycles,
}

impl Interval {
    /// Whether `cycles` lies inside the interval.
    #[must_use]
    pub fn contains(&self, cycles: Cycles) -> bool {
        self.lower <= cycles && cycles <= self.upper
    }

    /// Envelope tightness: `upper / lower` (infinite if `lower` is 0).
    #[must_use]
    pub fn ratio(&self) -> f64 {
        if self.lower == 0 {
            f64::INFINITY
        } else {
            self.upper as f64 / self.lower as f64
        }
    }
}

/// Which accelerator unit an envelope models.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// The deserializer unit (wire → object graph).
    Deserialize,
    /// The serializer unit (object graph → wire).
    Serialize,
}

// ---------------------------------------------------------------------------
// Envelope
// ---------------------------------------------------------------------------

/// A static two-sided cycle envelope for one message type, one direction.
///
/// Built once per `(schema, root)` by abstractly interpreting the
/// field-handler FSM over the interval domain; evaluated per wire length in
/// O(1). Bounds are *unit-level* — they bound the cycles returned by
/// `block_for_{deser,ser}_completion`, which include one RoCC dispatch. For
/// the serving model's per-command service time (which pays a second
/// dispatch) use [`Envelope::service_bounds`].
#[derive(Debug, Clone)]
pub struct Envelope {
    direction: Direction,
    accel: AccelConfig,
    mem: MemConfig,
    /// Largest wire size of a single schema-conformant record, when bounded.
    max_record_bytes: Option<u64>,
    has_scalar: bool,
    has_repeated_scalar: bool,
    has_packed: bool,
    has_strings: bool,
    has_messages: bool,
    /// Any repeated or packed field reachable: repeated regions exist.
    has_regions: bool,
    max_object_size: u64,
    hasbits_bytes_max: u64,
    span_words_max: u64,
    repeated_fields_max: u64,
}

impl Envelope {
    /// Builds the deserialization envelope for messages rooted at `root`.
    #[must_use]
    pub fn deser(
        schema: &Schema,
        layouts: &MessageLayouts,
        root: MessageId,
        accel: &AccelConfig,
        mem: &MemConfig,
    ) -> Self {
        Self::analyze(schema, layouts, root, accel, mem, Direction::Deserialize)
    }

    /// Builds the serialization envelope for messages rooted at `root`.
    #[must_use]
    pub fn ser(
        schema: &Schema,
        layouts: &MessageLayouts,
        root: MessageId,
        accel: &AccelConfig,
        mem: &MemConfig,
    ) -> Self {
        Self::analyze(schema, layouts, root, accel, mem, Direction::Serialize)
    }

    fn analyze(
        schema: &Schema,
        layouts: &MessageLayouts,
        root: MessageId,
        accel: &AccelConfig,
        mem: &MemConfig,
        direction: Direction,
    ) -> Self {
        let mut e = Envelope {
            direction,
            accel: *accel,
            mem: *mem,
            max_record_bytes: None,
            has_scalar: false,
            has_repeated_scalar: false,
            has_packed: false,
            has_strings: false,
            has_messages: false,
            has_regions: false,
            max_object_size: 0,
            hasbits_bytes_max: 0,
            span_words_max: 0,
            repeated_fields_max: 0,
        };
        let mut max_record: Option<u64> = Some(0);
        for (_, _, f) in schema.walk_fields(root) {
            let value_bytes: Option<u64> = if f.is_packed() {
                None
            } else {
                match f.field_type() {
                    FieldType::Double | FieldType::Fixed64 | FieldType::SFixed64 => Some(8),
                    FieldType::Float | FieldType::Fixed32 | FieldType::SFixed32 => Some(4),
                    FieldType::String | FieldType::Bytes | FieldType::Message(_) => None,
                    // Every varint-encoded type can legally occupy the full
                    // 10-byte wire varint.
                    _ => Some(MAX_VARINT_LEN as u64),
                }
            };
            if let (Some(m), Some(v)) = (max_record, value_bytes) {
                let key = FieldKey::new(f.number(), f.field_type().wire_type())
                    .map_or(MAX_VARINT_LEN, FieldKey::encoded_len) as u64;
                max_record = Some(m.max(key + v));
            } else {
                max_record = None;
            }
            let repeated = f.is_repeated() || f.is_packed();
            if repeated {
                e.has_regions = true;
            }
            match f.field_type() {
                FieldType::String | FieldType::Bytes => e.has_strings = true,
                FieldType::Message(_) => e.has_messages = true,
                _ if f.is_packed() => e.has_packed = true,
                _ if repeated => e.has_repeated_scalar = true,
                _ => e.has_scalar = true,
            }
        }
        // A schema with no fields bounds every record at 0 bytes; such
        // messages carry no records, so leave the bound unset.
        e.max_record_bytes = max_record.filter(|m| *m > 0);
        for id in schema.reachable(root) {
            let l = layouts.layout(id);
            e.max_object_size = e.max_object_size.max(l.object_size());
            let span = l.field_number_span();
            e.hasbits_bytes_max = e.hasbits_bytes_max.max(span.div_ceil(8));
            e.span_words_max = e.span_words_max.max(span.div_ceil(64));
            let reps = schema
                .message(id)
                .fields()
                .iter()
                .filter(|f| f.is_repeated() || f.is_packed())
                .count() as u64;
            e.repeated_fields_max = e.repeated_fields_max.max(reps);
        }
        e
    }

    /// The direction this envelope models.
    #[must_use]
    pub fn direction(&self) -> Direction {
        self.direction
    }

    /// Unit-level cycle lower bound for a `wire_len`-byte message
    /// (deserialization input length, or serialization output length).
    ///
    /// Valid for any sharer count: contention only inflates cost.
    #[must_use]
    pub fn lower_bound(&self, wire_len: u64) -> Cycles {
        match self.direction {
            Direction::Deserialize => self.deser_lower(wire_len),
            Direction::Serialize => self.ser_lower(wire_len),
        }
    }

    /// Unit-level cycle upper bound for a `wire_len`-byte message processed
    /// while `sharers` requesters contend for the memory interface.
    #[must_use]
    pub fn upper_bound(&self, wire_len: u64, sharers: usize) -> Cycles {
        match self.direction {
            Direction::Deserialize => self.deser_upper(wire_len, sharers),
            Direction::Serialize => self.ser_upper(wire_len, sharers),
        }
    }

    /// Unit-level `[lower, upper]` envelope.
    #[must_use]
    pub fn bounds(&self, wire_len: u64, sharers: usize) -> Interval {
        Interval {
            lower: self.lower_bound(wire_len),
            upper: self.upper_bound(wire_len, sharers),
        }
    }

    /// Envelope for a serving-model command's *service* time, which pays one
    /// extra RoCC dispatch on top of the unit run
    /// (`service = rocc_dispatch + unit_cycles`).
    #[must_use]
    pub fn service_bounds(&self, wire_len: u64, sharers: usize) -> Interval {
        let b = self.bounds(wire_len, sharers);
        Interval {
            lower: b.lower.saturating_add(self.accel.rocc_dispatch_cycles),
            upper: b.upper.saturating_add(self.accel.rocc_dispatch_cycles),
        }
    }

    fn au(&self, len: u64) -> Cycles {
        access_upper(&self.mem, len)
    }

    fn pu(&self, len: u64, sharers: usize) -> Cycles {
        pipelined_upper(&self.mem, len, sharers)
    }

    /// Worst-case close cost attributable to one repeated-region record:
    /// close op + header writeback + final-slot writeback + the fold slack
    /// of merging this region's element bytes into the global
    /// `pipelined(8·L)` charge.
    fn region_ovh(&self, s: usize) -> Cycles {
        4 + self.pu(24, s) + 2 * self.pu(8, s)
    }

    /// Largest per-record FSM cost over every field kind present in the
    /// schema (the interval join), excluding per-byte charges which are
    /// accounted once, globally.
    fn record_cost_max(&self, s: usize) -> Cycles {
        // Every defined record: parseKey, typeInfo ADT-cache miss, hasbits
        // write, plus the dense-packing table read when modeled, plus one
        // cycle of slack for the skip op of unknown records.
        let mut common = 1 + 1 + self.au(16) + self.pu(1, s) + 1;
        if self.accel.dense_hasbits {
            common += self.au(4);
        }
        let region_elem = 2 + self.pu(8, s) + self.region_ovh(s);
        let mut extra: Cycles = 0;
        if self.has_scalar {
            extra = extra.max(1 + self.pu(8, s));
        }
        if self.has_repeated_scalar {
            extra = extra.max(2 + self.pu(8, s) + self.region_ovh(s));
        }
        if self.has_packed {
            extra = extra.max(1 + self.region_ovh(s));
        }
        if self.has_strings {
            // read_len + utf8 + alloc + window-stall slack, the 32-byte
            // string object write, fold slack for the payload-byte charge,
            // then either the scalar slot or the repeated-region path.
            let tail = self.pu(8, s).max(region_elem);
            extra = extra.max(4 + self.pu(32, s) + self.pu(16, s) + tail);
        }
        if self.has_messages {
            let sub = 1 // read_len
                + 1 + self.au(64) // sub-ADT header load (cache miss)
                + 1 // arena alloc
                + self.pu(self.max_object_size, s) // zero-init
                + self.pu(8, s).max(region_elem) // parent slot or region
                + 1 + self.accel.stack_spill_cycles // push (spilled)
                + 1 + self.accel.stack_spill_cycles // close + pop (spilled)
                + 2; // close-into-parent bookkeeping
            extra = extra.max(sub);
        }
        common + extra
    }

    fn deser_upper(&self, len: u64, sharers: usize) -> Cycles {
        let s = sharers.max(1);
        let w = self.accel.window_bytes as u64;
        // Root ADT load (miss), root close + final op, spill slack.
        let fixed = 1 + self.au(64) + 2 + self.accel.stack_spill_cycles;
        let mut fsm = fixed.saturating_add(self.record_cost_max(s).saturating_mul(len));
        if self.has_strings {
            // All string payload bytes, written once, charged as one
            // worst-case pipelined transfer (fold slack is per-record).
            fsm = fsm.saturating_add(self.pu(len, s));
        }
        if self.has_regions {
            // Repeated-region element arrays: every element is at most
            // 8 bytes in memory (scalars or pointers) and consumed at least
            // one wire byte.
            fsm = fsm.saturating_add(self.pu(len.saturating_mul(8), s));
        }
        // Wire slack: per-byte packed decode plus window-rate streaming of
        // string payloads and skipped records (disjoint byte populations).
        fsm = fsm.saturating_add(len).saturating_add(len.div_ceil(w));
        self.accel
            .rocc_dispatch_cycles
            .saturating_add(fsm.max(stream_upper(&self.mem, len, s)))
    }

    fn deser_lower(&self, len: u64) -> Cycles {
        let rocc = self.accel.rocc_dispatch_cycles;
        if len == 0 {
            // Root ADT load (hit) + root close.
            return rocc + 2;
        }
        // Schema-conformant records cannot exceed max_record_bytes, so at
        // least ceil(len / max_record) records exist; each costs at least
        // 4 cycles (key, typeInfo hit, hasbits bus slot, value commit).
        let n_min = match self.max_record_bytes {
            Some(r) => len.div_ceil(r),
            None => 1,
        };
        let fsm = 2u64.saturating_add(4u64.saturating_mul(n_min));
        rocc.saturating_add(fsm.max(stream_lower(&self.mem, len)))
    }

    /// Worst-case overhead of one memwriter prepend beyond its
    /// data-proportional share: op cost, window slack, and the fold slack of
    /// merging its cursor bytes into the global `pipelined(L)` charge (a
    /// key or injected length is at most 10 bytes).
    fn prepend_ovh(&self, s: usize) -> Cycles {
        let w = self.accel.window_bytes as u64;
        3 + 10u64.div_ceil(w) + self.pu(10, s)
    }

    /// Worst-case per-set-field serializer cost (frontend scan entry, ADT
    /// entry miss, FSU dispatch, slot reads, key/len prepends), excluding
    /// per-byte charges.
    fn ser_field_cost(&self, s: usize) -> Cycles {
        let dense = if self.accel.dense_hasbits {
            self.au(4)
        } else {
            0
        };
        2 + self.au(16) + dense + 1 + 3 * self.au(8) + 10 + 3 * self.prepend_ovh(s)
    }

    /// Worst-case per-element serializer cost (pointer/slot reads and
    /// per-element prepend overhead), excluding element payload bytes.
    fn ser_elem_cost(&self, s: usize) -> Cycles {
        3 * self.au(8) + self.pu(8, s) + 1 + 10 + 2 * self.prepend_ovh(s)
    }

    /// Worst-case per-emission serializer cost: ADT header miss, hasbits +
    /// is_submessage scans, word scan, sub-message bookkeeping and length
    /// injection, plus present-but-empty repeated fields (which emit no
    /// bytes yet still cost their field scan and header reads).
    fn ser_msg_cost(&self, s: usize) -> Cycles {
        let empty_repeated = self
            .repeated_fields_max
            .saturating_mul(self.ser_field_cost(s) + 3 * (self.pu(8, s) + 1));
        (1 + self.au(64))
            .saturating_add(self.pu(self.hasbits_bytes_max, s))
            .saturating_add(self.span_words_max)
            .saturating_add(1 + self.accel.stack_spill_cycles)
            .saturating_add(3 * (self.pu(8, s) + 1))
            .saturating_add(2 * self.prepend_ovh(s))
            .saturating_add(4)
            .saturating_add(empty_repeated)
    }

    fn ser_upper(&self, len: u64, sharers: usize) -> Cycles {
        let s = sharers.max(1);
        let w = self.accel.window_bytes as u64;
        // Every non-root emission injects its own key and length bytes
        // (at least 2), so emissions ≤ 1 + len/2; every emitting field
        // produces at least 2 output bytes; every element at least 1.
        let emissions = 1 + len / 2;
        let mut total = self.ser_msg_cost(s).saturating_mul(emissions);
        total = total.saturating_add(self.ser_field_cost(s).saturating_mul(len / 2 + 1));
        total = total.saturating_add(self.ser_elem_cost(s).saturating_mul(len));
        // Output bytes: memwriter window rate, cursor writeback, and string
        // payload reads, each charged once globally.
        total = total
            .saturating_add(len.div_ceil(w))
            .saturating_add(2 * self.pu(len, s));
        if self.has_packed || self.has_repeated_scalar {
            // Packed and repeated scalar element arrays are read in bulk:
            // at most 8 bytes of memory per emitted wire byte.
            total = total.saturating_add(self.au(len.saturating_mul(8)));
        }
        self.accel.rocc_dispatch_cycles.saturating_add(total)
    }

    fn ser_lower(&self, len: u64) -> Cycles {
        let rocc = self.accel.rocc_dispatch_cycles;
        if len == 0 {
            // The frontend still loads the root ADT header.
            return rocc + 1;
        }
        let w = self.accel.window_bytes as u64;
        // Every output byte passes through the memwriter: at least one
        // prepend op, window-rate staging, and bus occupancy on the cursor.
        let memwriter = 1u64
            .saturating_add(len.div_ceil(w))
            .saturating_add(bus_cycles(len));
        rocc.saturating_add(memwriter)
    }
}

// ---------------------------------------------------------------------------
// Wire amplification (PA012) and cross-message composition (PA015)
// ---------------------------------------------------------------------------

/// Affine upper bound on the decoded in-memory footprint of one message as a
/// function of its wire length: `footprint ≤ base_bytes + per_wire_byte · L`.
///
/// `base_bytes` is the root object the runtime materializes before reading a
/// single wire byte; `per_wire_byte` is the steepest bytes-per-wire-byte
/// slope any schema-conformant record can achieve (the *wire amplification
/// factor* — the static twin of a decompression bomb). A two-byte record
/// `key + len(0)` referencing a message type, for example, forces allocation
/// and zero-initialization of the entire child object.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AmplificationBound {
    /// Root object size materialized at wire length zero.
    pub base_bytes: u64,
    /// Worst-case decoded bytes added per wire byte consumed.
    pub per_wire_byte: f64,
}

impl AmplificationBound {
    /// Evaluates the footprint ceiling for a `wire_len`-byte message.
    #[must_use]
    pub fn footprint_upper(&self, wire_len: u64) -> u64 {
        #[allow(clippy::cast_precision_loss, clippy::cast_possible_truncation)]
        #[allow(clippy::cast_sign_loss)]
        let slope_bytes = (self.per_wire_byte * wire_len as f64).ceil() as u64;
        self.base_bytes.saturating_add(slope_bytes)
    }
}

/// Span-proportional memory cost of one message type's compiled dispatch
/// artifacts — the static twin of the blowup PA013 warns about, sharpened
/// from "span looks wide" to "these many bytes of table memory".
///
/// Two structures scale with the *field-number span* rather than the defined
/// field count: the fast path's dense dispatch table (one slot per number in
/// `min..=max`) and the hardware ADT image (header + a 16-byte entry per
/// span slot + the is_submessage bit field, [`AdtLayout::footprint`]). The
/// verifier's PA020 check evaluates this model per type against a byte
/// budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TableFootprint {
    /// Field-number span (`max - min + 1`, 0 for an empty message).
    pub span: u64,
    /// Software dense dispatch table bytes; 0 when the fast path falls back
    /// to a sparse (field-count-proportional) table for this span.
    pub sw_table_bytes: u64,
    /// Hardware ADT image bytes — always span-proportional; the simulated
    /// accelerator has no sparse fallback (Section 4.2).
    pub hw_adt_bytes: u64,
}

impl TableFootprint {
    /// The larger of the two span-proportional costs — what PA020 compares
    /// against its budget.
    #[must_use]
    pub fn worst_bytes(&self) -> u64 {
        self.sw_table_bytes.max(self.hw_adt_bytes)
    }
}

/// Evaluates the [`TableFootprint`] model for a message spanning `span`
/// field numbers, with `sw_entry_bytes` per software dense-table slot and a
/// dense-table eligibility limit of `dense_limit` (the fast path's
/// `DENSE_SPAN_LIMIT`).
#[must_use]
pub fn table_footprint(span: u64, sw_entry_bytes: u64, dense_limit: u64) -> TableFootprint {
    let sw_table_bytes = if span <= dense_limit {
        span.saturating_mul(sw_entry_bytes)
    } else {
        0
    };
    TableFootprint {
        span,
        sw_table_bytes,
        hw_adt_bytes: AdtLayout::footprint(span),
    }
}

/// Smallest wire size of one value of `ft` (packed elements have no key).
fn min_value_wire_bytes(ft: FieldType) -> u64 {
    match ft {
        FieldType::Double | FieldType::Fixed64 | FieldType::SFixed64 => 8,
        FieldType::Float | FieldType::Fixed32 | FieldType::SFixed32 => 4,
        // Varint-encoded types and length-delimited types (empty payload
        // after a 1-byte length) bottom out at one byte.
        _ => 1,
    }
}

/// Computes the [`AmplificationBound`] for messages rooted at `root` by
/// joining the per-record footprint/wire ratio over every reachable field.
///
/// Per-field slopes (key = encoded key length, `v` = minimal value bytes):
///
/// * scalar: an 8-byte slot rewritten per record → `8 / (key + v)`;
/// * repeated scalar: an 8-byte element appended per record → same ratio;
/// * packed scalar: 8 bytes of element storage per `v` payload bytes;
/// * string/bytes: a [`STRING_OBJECT_BYTES`]-byte object (+8-byte element
///   slot) per empty record, plus one heap byte per payload byte;
/// * message: the child's entire zero-initialized object (+8-byte slot) per
///   empty record — the dominant amplifier for large child types.
///
/// [`STRING_OBJECT_BYTES`]: protoacc_runtime::STRING_OBJECT_BYTES
#[must_use]
pub fn amplification_bound(
    schema: &Schema,
    layouts: &MessageLayouts,
    root: MessageId,
) -> AmplificationBound {
    let mut slope = 0.0f64;
    for (_, _, f) in schema.walk_fields(root) {
        let key = FieldKey::new(f.number(), f.field_type().wire_type())
            .map_or(MAX_VARINT_LEN, FieldKey::encoded_len) as u64;
        let v = min_value_wire_bytes(f.field_type());
        let (mem, wire) = match f.field_type() {
            FieldType::String | FieldType::Bytes => {
                (protoacc_runtime::STRING_OBJECT_BYTES + 8, key + 1)
            }
            FieldType::Message(sub) => (layouts.layout(sub).object_size() + 8, key + 1),
            _ if f.is_packed() => (8, v),
            _ => (8, key + v),
        };
        #[allow(clippy::cast_precision_loss)]
        let mut ratio = mem as f64 / wire as f64;
        if matches!(f.field_type(), FieldType::String | FieldType::Bytes) {
            // Payload bytes land in heap storage one-for-one on top of the
            // per-record object cost.
            ratio += 1.0;
        }
        slope = slope.max(ratio);
    }
    AmplificationBound {
        base_bytes: layouts.layout(root).object_size(),
        per_wire_byte: slope,
    }
}

/// Static ceiling on the *composed* service time of one `root`-typed
/// command: the deserialization service ceiling for a `max_wire_bytes`-long
/// input **plus** the worst-case sub-object machinery for every reachable
/// child type (sub-ADT header miss, zero-init of the child object, spilled
/// stack push/pop, close bookkeeping).
///
/// The per-type envelope already charges the worst single record cost per
/// wire byte, but it joins over field kinds — it never has to pay *every*
/// child type's object at once. A parent whose children individually pass
/// the PA010 watchdog check can still compose past the budget; this sum is
/// the deny test PA015 applies.
#[must_use]
pub fn composed_service_ceiling(
    schema: &Schema,
    layouts: &MessageLayouts,
    root: MessageId,
    accel: &AccelConfig,
    mem: &MemConfig,
    max_wire_bytes: u64,
) -> Cycles {
    let env = Envelope::deser(schema, layouts, root, accel, mem);
    let mut total = env.service_bounds(max_wire_bytes, 1).upper;
    for id in schema.reachable(root) {
        if id == root {
            continue;
        }
        let sub = (1 + access_upper(mem, 64))
            .saturating_add(pipelined_upper(mem, layouts.layout(id).object_size(), 1))
            .saturating_add(2 * (1 + accel.stack_spill_cycles))
            .saturating_add(2);
        total = total.saturating_add(sub);
    }
    total
}

// ---------------------------------------------------------------------------
// Sanitizer
// ---------------------------------------------------------------------------

/// Category of a dynamic sanitizer finding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FindingKind {
    /// PA007: measured service cycles fell outside the static envelope.
    Envelope,
    /// PA008: command-lifecycle ordering violated (happens-before,
    /// per-instance serialization, or accounting).
    Lifecycle,
    /// PA009: two concurrently in-flight commands touched overlapping
    /// arena byte ranges, at least one writing.
    Aliasing,
    /// PA010: a command's measured service time exceeded the configured
    /// watchdog cycle budget — the serve layer would have killed it.
    Watchdog,
}

impl FindingKind {
    /// Stable diagnostic code, aligned with `protoacc-lint`.
    #[must_use]
    pub fn code(self) -> &'static str {
        match self {
            FindingKind::Envelope => "PA007",
            FindingKind::Lifecycle => "PA008",
            FindingKind::Aliasing => "PA009",
            FindingKind::Watchdog => "PA010",
        }
    }
}

/// One sanitizer finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// What kind of violation this is.
    pub kind: FindingKind,
    /// The offending command's sequence number, when attributable.
    pub seq: Option<usize>,
    /// Human-readable description.
    pub detail: String,
}

/// Static service-time envelope for one serving-model command, matched to
/// its [`CommandRecord`] by sequence number.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServiceBounds {
    /// Sequence number of the command this bounds.
    pub seq: usize,
    /// Inclusive service-cycle minimum.
    pub lower: Cycles,
    /// Inclusive service-cycle maximum.
    pub upper: Cycles,
}

/// Checks happens-before on the command lifecycle: per-command ordering
/// (`enqueue ≤ dispatch`, `complete = dispatch + service`), per-instance
/// serialization (an instance never runs two commands at once, in seq
/// order), sharers sanity, and offered/completed/dropped accounting.
#[must_use]
pub fn check_lifecycle(
    records: &[CommandRecord],
    instances: usize,
    offered: u64,
    dropped: u64,
) -> Vec<Finding> {
    let mut findings = Vec::new();
    let mut push = |seq: Option<usize>, detail: String| {
        findings.push(Finding {
            kind: FindingKind::Lifecycle,
            seq,
            detail,
        });
    };
    if records.len() as u64 + dropped != offered {
        push(
            None,
            format!(
                "accounting: {} completed + {dropped} dropped != {offered} offered",
                records.len()
            ),
        );
    }
    let mut seen = std::collections::HashSet::new();
    for r in records {
        if !seen.insert(r.seq) {
            push(Some(r.seq), format!("duplicate sequence number {}", r.seq));
        }
        if r.instance >= instances {
            push(
                Some(r.seq),
                format!(
                    "instance {} out of range (cluster has {instances})",
                    r.instance
                ),
            );
        }
        if r.dispatch < r.enqueue {
            push(
                Some(r.seq),
                format!(
                    "dispatched at {} before enqueue at {}",
                    r.dispatch, r.enqueue
                ),
            );
        }
        if r.complete != r.dispatch + r.service {
            push(
                Some(r.seq),
                format!(
                    "complete {} != dispatch {} + service {}",
                    r.complete, r.dispatch, r.service
                ),
            );
        }
        if r.sharers < 1 || r.sharers > instances.max(1) {
            push(
                Some(r.seq),
                format!("sharers {} outside [1, {instances}]", r.sharers),
            );
        }
    }
    for inst in 0..instances {
        let mut mine: Vec<&CommandRecord> = records.iter().filter(|r| r.instance == inst).collect();
        mine.sort_by_key(|r| r.seq);
        for pair in mine.windows(2) {
            let (a, b) = (pair[0], pair[1]);
            if b.dispatch < a.complete {
                push(
                    Some(b.seq),
                    format!(
                        "instance {inst} dispatched command {} at {} before command {} completed at {}",
                        b.seq, b.dispatch, a.seq, a.complete
                    ),
                );
            }
        }
    }
    findings
}

fn ranges_conflict(a: &[(u64, u64)], b: &[(u64, u64)]) -> Option<(u64, u64)> {
    for &(alo, ahi) in a {
        for &(blo, bhi) in b {
            if alo < bhi && blo < ahi {
                return Some((alo.max(blo), ahi.min(bhi)));
            }
        }
    }
    None
}

/// Checks that no two commands in flight at the same time touched
/// overlapping byte ranges with at least one writer (the buffer-aliasing
/// hazard the serving model otherwise leaves to `arena_stride` being "big
/// enough"). Footprints are matched to records by sequence number; commands
/// without a footprint are skipped.
#[must_use]
pub fn check_aliasing(records: &[CommandRecord], footprints: &[CommandFootprint]) -> Vec<Finding> {
    let by_seq: HashMap<usize, &CommandFootprint> = footprints.iter().map(|f| (f.seq, f)).collect();
    let mut findings = Vec::new();
    for (i, a) in records.iter().enumerate() {
        let Some(fa) = by_seq.get(&a.seq) else {
            continue;
        };
        for b in &records[i + 1..] {
            // In-flight windows are [dispatch, complete).
            if !(a.dispatch < b.complete && b.dispatch < a.complete) {
                continue;
            }
            let Some(fb) = by_seq.get(&b.seq) else {
                continue;
            };
            let conflict = ranges_conflict(&fa.writes, &fb.writes)
                .or_else(|| ranges_conflict(&fa.writes, &fb.reads))
                .or_else(|| ranges_conflict(&fa.reads, &fb.writes));
            if let Some((lo, hi)) = conflict {
                findings.push(Finding {
                    kind: FindingKind::Aliasing,
                    seq: Some(a.seq),
                    detail: format!(
                        "commands {} and {} are concurrently in flight and both touch bytes [{lo:#x}, {hi:#x}) with at least one write",
                        a.seq, b.seq
                    ),
                });
            }
        }
    }
    findings
}

/// Checks every command's measured service cycles against its static
/// envelope. Bounds are matched by sequence number; commands without bounds
/// are skipped.
#[must_use]
pub fn check_envelopes(records: &[CommandRecord], bounds: &[ServiceBounds]) -> Vec<Finding> {
    let by_seq: HashMap<usize, &ServiceBounds> = bounds.iter().map(|b| (b.seq, b)).collect();
    let mut findings = Vec::new();
    for r in records {
        let Some(b) = by_seq.get(&r.seq) else {
            continue;
        };
        if r.service < b.lower || r.service > b.upper {
            findings.push(Finding {
                kind: FindingKind::Envelope,
                seq: Some(r.seq),
                detail: format!(
                    "command {} measured {} service cycles, outside its static envelope [{}, {}]",
                    r.seq, r.service, b.lower, b.upper
                ),
            });
        }
    }
    findings
}

/// Checks every command's measured service cycles against a watchdog cycle
/// budget. A clean serve run never trips this: the serve layer clamps any
/// attempt at its watchdog ceiling, so a record over `budget` means the
/// configured ceiling and the budget disagree (or the watchdog was left
/// disabled on a workload that needed it).
#[must_use]
pub fn check_watchdog(records: &[CommandRecord], budget: Cycles) -> Vec<Finding> {
    records
        .iter()
        .filter(|r| r.service > budget)
        .map(|r| Finding {
            kind: FindingKind::Watchdog,
            seq: Some(r.seq),
            detail: format!(
                "command {} measured {} service cycles, over the {budget}-cycle watchdog budget",
                r.seq, r.service
            ),
        })
        .collect()
}

/// Runs all three sanitizer checks and concatenates their findings.
#[must_use]
pub fn sanitize(
    records: &[CommandRecord],
    footprints: &[CommandFootprint],
    instances: usize,
    offered: u64,
    dropped: u64,
    bounds: &[ServiceBounds],
) -> Vec<Finding> {
    let mut findings = check_lifecycle(records, instances, offered, dropped);
    findings.extend(check_aliasing(records, footprints));
    findings.extend(check_envelopes(records, bounds));
    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use protoacc_schema::parse_proto;

    fn mem() -> MemConfig {
        MemConfig::default()
    }

    #[test]
    fn geometry_bounds_dominate_every_alignment() {
        let m = mem();
        let line = m.l1.line_bytes as u64;
        assert_eq!(lines_upper(&m, 0), 0);
        assert_eq!(lines_upper(&m, 1), 1);
        assert_eq!(pages_upper(1), 1);
        for len in 1..=3 * line {
            let bound = lines_upper(&m, len);
            for offset in 0..line {
                let touched = (offset + len - 1) / line + 1;
                assert!(
                    touched <= bound,
                    "len {len} offset {offset}: {touched} lines > bound {bound}"
                );
            }
            // The bound is exact: some alignment reaches it.
            let worst = ((line - 1) + len - 1) / line + 1;
            assert_eq!(worst, bound, "len {len}");
        }
    }

    #[test]
    fn overlap_floor_matches_model_semantics() {
        let m = mem();
        assert_eq!(overlap_floor(&m, 1), m.max_outstanding.max(1) as u64);
        assert_eq!(overlap_floor(&m, usize::MAX), 1);
        assert!(overlap_floor(&m, 4) >= 1);
    }

    fn fixture() -> (Schema, MessageLayouts) {
        let schema = parse_proto(
            "message Phone { optional string number = 1; optional int32 kind = 2; }\n\
             message Person {\n\
               required string name = 1;\n\
               required int64 id = 2;\n\
               repeated Phone phones = 3;\n\
               repeated fixed64 tags = 4 [packed=true];\n\
             }",
        )
        .unwrap();
        let layouts = MessageLayouts::compute(&schema);
        (schema, layouts)
    }

    #[test]
    fn envelope_is_two_sided_and_monotone() {
        let (schema, layouts) = fixture();
        let root = schema.id_by_name("Person").unwrap();
        let accel = AccelConfig::default();
        let m = mem();
        for env in [
            Envelope::deser(&schema, &layouts, root, &accel, &m),
            Envelope::ser(&schema, &layouts, root, &accel, &m),
        ] {
            let mut prev_lower = 0;
            for len in [0u64, 1, 2, 15, 16, 17, 64, 255, 256, 4096, 1 << 20] {
                let b = env.bounds(len, 1);
                assert!(b.lower <= b.upper, "len {len}: {b:?}");
                assert!(b.lower >= prev_lower, "lower not monotone at {len}");
                prev_lower = b.lower;
                // More sharers can only raise the ceiling.
                assert!(env.upper_bound(len, 4) >= b.upper);
                let svc = env.service_bounds(len, 1);
                assert_eq!(svc.lower, b.lower + accel.rocc_dispatch_cycles);
                assert_eq!(svc.upper, b.upper + accel.rocc_dispatch_cycles);
            }
        }
    }

    #[test]
    fn deser_lower_uses_record_floor_when_bounded() {
        let schema = parse_proto("message Ints { required int64 a = 1; }").unwrap();
        let layouts = MessageLayouts::compute(&schema);
        let root = schema.id_by_name("Ints").unwrap();
        let accel = AccelConfig::default();
        let env = Envelope::deser(&schema, &layouts, root, &accel, &mem());
        // Records are at most 11 bytes (1-byte key + 10-byte varint), so a
        // 1100-byte input has at least 100 records at 4 cycles each.
        let lower = env.lower_bound(1100);
        assert!(
            lower >= accel.rocc_dispatch_cycles + 2 + 4 * 100,
            "lower {lower}"
        );
    }

    #[test]
    fn amplification_bound_tracks_the_dominant_field() {
        let (schema, layouts) = fixture();
        let person = schema.id_by_name("Person").unwrap();
        let phone = schema.id_by_name("Phone").unwrap();
        let b = amplification_bound(&schema, &layouts, person);
        assert_eq!(b.base_bytes, layouts.layout(person).object_size());
        // The string fields materialize a 32-byte object plus an 8-byte slot
        // per 2-byte empty record, plus a heap byte per payload byte — a
        // steeper slope than the 40-byte Phone object per empty record.
        let expected = f64::from(u32::try_from(protoacc_runtime::STRING_OBJECT_BYTES + 8).unwrap())
            / 2.0
            + 1.0;
        let phone_slope =
            f64::from(u32::try_from(layouts.layout(phone).object_size() + 8).unwrap()) / 2.0;
        assert!(expected > phone_slope);
        assert!(
            (b.per_wire_byte - expected).abs() < 1e-9,
            "slope {} expected {expected}",
            b.per_wire_byte
        );
        assert_eq!(b.footprint_upper(0), b.base_bytes);
        assert!(b.footprint_upper(100) > b.footprint_upper(10));
        // A packed-only message amplifies at exactly 8 bytes per wire byte.
        let s = parse_proto("message P { repeated uint64 v = 1 [packed=true]; }").unwrap();
        let l = MessageLayouts::compute(&s);
        let p = amplification_bound(&s, &l, s.id_by_name("P").unwrap());
        assert!((p.per_wire_byte - 8.0).abs() < 1e-9, "{}", p.per_wire_byte);
    }

    #[test]
    fn composed_ceiling_dominates_the_plain_service_ceiling() {
        let (schema, layouts) = fixture();
        let root = schema.id_by_name("Person").unwrap();
        let accel = AccelConfig::default();
        let m = mem();
        let env = Envelope::deser(&schema, &layouts, root, &accel, &m);
        let plain = env.service_bounds(4096, 1).upper;
        let composed = composed_service_ceiling(&schema, &layouts, root, &accel, &m, 4096);
        // Person reaches Phone, so the composed ceiling strictly exceeds the
        // per-type one; a leaf type composes to exactly its own ceiling.
        assert!(composed > plain, "composed {composed} plain {plain}");
        let leaf = schema.id_by_name("Phone").unwrap();
        let leaf_env = Envelope::deser(&schema, &layouts, leaf, &accel, &m);
        assert_eq!(
            composed_service_ceiling(&schema, &layouts, leaf, &accel, &m, 4096),
            leaf_env.service_bounds(4096, 1).upper
        );
    }

    fn record(
        seq: usize,
        instance: usize,
        enqueue: Cycles,
        dispatch: Cycles,
        service: Cycles,
    ) -> CommandRecord {
        CommandRecord {
            seq,
            enqueue,
            dispatch,
            complete: dispatch + service,
            service,
            instance,
            wire_bytes: 64,
            deser: true,
            sharers: 1,
            status: protoacc::CommandStatus::Ok,
            attempts: 1,
        }
    }

    #[test]
    fn lifecycle_clean_run_has_no_findings() {
        let records = [
            record(0, 0, 0, 0, 100),
            record(1, 1, 5, 5, 80),
            record(2, 0, 50, 100, 60),
        ];
        assert!(check_lifecycle(&records, 2, 3, 0).is_empty());
    }

    #[test]
    fn lifecycle_detects_overlap_and_accounting() {
        // Command 2 dispatches on instance 0 before command 0 completes.
        let records = [record(0, 0, 0, 0, 100), record(2, 0, 50, 60, 60)];
        let findings = check_lifecycle(&records, 1, 2, 0);
        assert!(findings.iter().any(|f| f.detail.contains("before command")));
        let bad_accounting = check_lifecycle(&records, 1, 5, 1);
        assert!(bad_accounting
            .iter()
            .any(|f| f.detail.contains("accounting")));
    }

    #[test]
    fn aliasing_requires_time_overlap_and_a_writer() {
        let a = record(0, 0, 0, 0, 100);
        let b = record(1, 1, 0, 50, 100);
        let c = record(2, 0, 0, 200, 50); // after a completes
        let fp = |seq: usize, reads: Vec<(u64, u64)>, writes: Vec<(u64, u64)>| CommandFootprint {
            seq,
            reads,
            writes,
        };
        // Read-read overlap: fine.
        let fps = [
            fp(0, vec![(0x1000, 0x1100)], vec![(0x8000, 0x8100)]),
            fp(1, vec![(0x1000, 0x1100)], vec![(0x9000, 0x9100)]),
        ];
        assert!(check_aliasing(&[a, b], &fps).is_empty());
        // Write-write overlap while concurrent: finding.
        let fps = [
            fp(0, vec![], vec![(0x8000, 0x8100)]),
            fp(1, vec![], vec![(0x80f0, 0x8200)]),
        ];
        let findings = check_aliasing(&[a, b], &fps);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].kind, FindingKind::Aliasing);
        // Same ranges but disjoint in time: fine.
        let fps = [
            fp(0, vec![], vec![(0x8000, 0x8100)]),
            fp(2, vec![], vec![(0x8000, 0x8100)]),
        ];
        assert!(check_aliasing(&[a, c], &fps).is_empty());
    }

    #[test]
    fn envelope_check_flags_out_of_bounds_service() {
        let r = record(0, 0, 0, 0, 100);
        let ok = [ServiceBounds {
            seq: 0,
            lower: 50,
            upper: 150,
        }];
        assert!(check_envelopes(&[r], &ok).is_empty());
        let tight = [ServiceBounds {
            seq: 0,
            lower: 101,
            upper: 150,
        }];
        let findings = check_envelopes(&[r], &tight);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].kind, FindingKind::Envelope);
        assert_eq!(findings[0].kind.code(), "PA007");
    }
}
