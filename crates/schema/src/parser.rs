//! A small `.proto` (proto2) text parser.
//!
//! Supports the subset of the proto2 language the paper's workloads exercise:
//! `syntax`/`package`/`option` headers, nested `message` definitions,
//! `enum` definitions (fields of enum types map to [`FieldType::Enum`]),
//! `optional`/`required`/`repeated` fields of every scalar type, `[packed =
//! true]` options, and sub-message fields referenced by (possibly nested)
//! type name with C++-style innermost-scope-outward resolution.

use std::collections::HashMap;

use crate::{FieldDescriptor, FieldType, Label, MessageDescriptor, Schema, SchemaError};

/// Parses proto2 source text into a [`Schema`].
///
/// Nested message types are registered under their fully-qualified
/// `Outer.Inner` names.
///
/// # Errors
///
/// [`SchemaError::Parse`] with a line number for syntax errors, plus any
/// semantic validation errors (duplicate numbers, unknown types, invalid
/// packing).
///
/// ```rust
/// use protoacc_schema::{parse_proto, FieldType};
/// let schema = parse_proto(r#"
///     message Outer {
///         message Inner { optional bool flag = 1; }
///         optional Inner inner = 1;
///         repeated int32 values = 2 [packed = true];
///     }
/// "#)?;
/// assert!(schema.message_by_name("Outer.Inner").is_some());
/// # Ok::<(), protoacc_schema::SchemaError>(())
/// ```
pub fn parse_proto(source: &str) -> Result<Schema, SchemaError> {
    let tokens = tokenize(source)?;
    let mut parser = Parser {
        tokens: &tokens,
        pos: 0,
    };
    let ast = parser.parse_file()?;

    // Pass 1: assign ids to all (nested) messages and collect enum names.
    let mut builder = Resolver::default();
    for item in &ast {
        builder.collect(item, "");
    }
    // Pass 2: resolve field types and build descriptors.
    let mut schema = Schema::new();
    let mut descriptors: Vec<Option<MessageDescriptor>> = vec![None; builder.order.len()];
    for item in &ast {
        builder.lower(item, "", &mut descriptors)?;
    }
    for descriptor in descriptors.into_iter().flatten() {
        schema.add_message(descriptor)?;
    }
    schema.validate()?;
    Ok(schema)
}

#[derive(Debug, Clone, PartialEq)]
struct Token {
    text: String,
    line: usize,
}

fn tokenize(source: &str) -> Result<Vec<Token>, SchemaError> {
    let mut tokens = Vec::new();
    let mut chars = source.char_indices().peekable();
    let mut line = 1;
    while let Some((_, c)) = chars.next() {
        match c {
            '\n' => line += 1,
            c if c.is_whitespace() => {}
            '/' => match chars.peek() {
                Some((_, '/')) => {
                    for (_, c2) in chars.by_ref() {
                        if c2 == '\n' {
                            line += 1;
                            break;
                        }
                    }
                }
                Some((_, '*')) => {
                    chars.next();
                    let mut prev = ' ';
                    let mut closed = false;
                    for (_, c2) in chars.by_ref() {
                        if c2 == '\n' {
                            line += 1;
                        }
                        if prev == '*' && c2 == '/' {
                            closed = true;
                            break;
                        }
                        prev = c2;
                    }
                    if !closed {
                        return Err(SchemaError::Parse {
                            line,
                            message: "unterminated block comment".into(),
                        });
                    }
                }
                _ => {
                    return Err(SchemaError::Parse {
                        line,
                        message: "unexpected `/`".into(),
                    })
                }
            },
            '"' => {
                let mut text = String::from("\"");
                let mut closed = false;
                for (_, c2) in chars.by_ref() {
                    if c2 == '"' {
                        closed = true;
                        break;
                    }
                    if c2 == '\n' {
                        line += 1;
                    }
                    text.push(c2);
                }
                if !closed {
                    return Err(SchemaError::Parse {
                        line,
                        message: "unterminated string literal".into(),
                    });
                }
                text.push('"');
                tokens.push(Token { text, line });
            }
            '{' | '}' | '=' | ';' | '[' | ']' | ',' => tokens.push(Token {
                text: c.to_string(),
                line,
            }),
            c if c.is_ascii_alphanumeric() || c == '_' || c == '.' || c == '-' => {
                let mut text = String::new();
                text.push(c);
                while let Some(&(_, c2)) = chars.peek() {
                    if c2.is_ascii_alphanumeric() || c2 == '_' || c2 == '.' {
                        text.push(c2);
                        chars.next();
                    } else {
                        break;
                    }
                }
                tokens.push(Token { text, line });
            }
            other => {
                return Err(SchemaError::Parse {
                    line,
                    message: format!("unexpected character `{other}`"),
                })
            }
        }
    }
    Ok(tokens)
}

#[derive(Debug)]
enum Item {
    Message {
        name: String,
        fields: Vec<RawField>,
        nested: Vec<Item>,
    },
    Enum {
        name: String,
    },
}

#[derive(Debug)]
struct RawField {
    label: Label,
    type_name: String,
    name: String,
    number: u32,
    packed: bool,
    line: usize,
}

struct Parser<'a> {
    tokens: &'a [Token],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        self.pos += 1;
        t
    }

    fn line(&self) -> usize {
        self.tokens
            .get(self.pos.min(self.tokens.len().saturating_sub(1)))
            .map_or(0, |t| t.line)
    }

    fn error(&self, message: impl Into<String>) -> SchemaError {
        SchemaError::Parse {
            line: self.line(),
            message: message.into(),
        }
    }

    fn expect(&mut self, text: &str) -> Result<(), SchemaError> {
        match self.next() {
            Some(t) if t.text == text => Ok(()),
            Some(t) => Err(SchemaError::Parse {
                line: t.line,
                message: format!("expected `{text}`, found `{}`", t.text),
            }),
            None => Err(SchemaError::Parse {
                line: 0,
                message: format!("expected `{text}`, found end of input"),
            }),
        }
    }

    fn parse_file(&mut self) -> Result<Vec<Item>, SchemaError> {
        let mut items = Vec::new();
        while let Some(t) = self.peek() {
            match t.text.as_str() {
                "syntax" => {
                    self.next();
                    self.expect("=")?;
                    let value = self.next().ok_or_else(|| self.error("missing syntax"))?;
                    let value_text = value.text.clone();
                    let value_line = value.line;
                    self.expect(";")?;
                    if value_text != "\"proto2\"" {
                        return Err(SchemaError::Parse {
                            line: value_line,
                            message: format!(
                                "only proto2 is supported (the accelerator targets proto2, \
                                 Section 3.3), found {value_text}"
                            ),
                        });
                    }
                }
                "package" | "option" | "import" => {
                    // Consume through the terminating semicolon.
                    while let Some(t) = self.next() {
                        if t.text == ";" {
                            break;
                        }
                    }
                }
                "message" => items.push(self.parse_message()?),
                "enum" => items.push(self.parse_enum()?),
                other => {
                    let msg = format!("unexpected top-level token `{other}`");
                    return Err(self.error(msg));
                }
            }
        }
        Ok(items)
    }

    fn parse_message(&mut self) -> Result<Item, SchemaError> {
        self.expect("message")?;
        let name = self
            .next()
            .ok_or_else(|| self.error("missing message name"))?
            .text
            .clone();
        self.expect("{")?;
        let mut fields = Vec::new();
        let mut nested = Vec::new();
        loop {
            let t = self.peek().ok_or_else(|| self.error("unclosed message"))?;
            match t.text.as_str() {
                "}" => {
                    self.next();
                    break;
                }
                "message" => nested.push(self.parse_message()?),
                "enum" => nested.push(self.parse_enum()?),
                "reserved" | "extensions" | "option" => {
                    while let Some(t) = self.next() {
                        if t.text == ";" {
                            break;
                        }
                    }
                }
                _ => fields.push(self.parse_field()?),
            }
        }
        Ok(Item::Message {
            name,
            fields,
            nested,
        })
    }

    fn parse_enum(&mut self) -> Result<Item, SchemaError> {
        self.expect("enum")?;
        let name = self
            .next()
            .ok_or_else(|| self.error("missing enum name"))?
            .text
            .clone();
        self.expect("{")?;
        let mut depth = 1;
        while depth > 0 {
            match self.next() {
                Some(t) if t.text == "{" => depth += 1,
                Some(t) if t.text == "}" => depth -= 1,
                Some(_) => {}
                None => return Err(self.error("unclosed enum")),
            }
        }
        Ok(Item::Enum { name })
    }

    fn parse_field(&mut self) -> Result<RawField, SchemaError> {
        let label_tok = self.next().ok_or_else(|| self.error("missing field"))?;
        let line = label_tok.line;
        let label = match label_tok.text.as_str() {
            "optional" => Label::Optional,
            "required" => Label::Required,
            "repeated" => Label::Repeated,
            other => {
                return Err(SchemaError::Parse {
                    line,
                    message: format!("proto2 fields need an explicit label; found `{other}`"),
                })
            }
        };
        let type_name = self
            .next()
            .ok_or_else(|| self.error("missing field type"))?
            .text
            .clone();
        let name = self
            .next()
            .ok_or_else(|| self.error("missing field name"))?
            .text
            .clone();
        self.expect("=")?;
        let number_tok = self
            .next()
            .ok_or_else(|| self.error("missing field number"))?;
        let number: u32 = number_tok.text.parse().map_err(|_| SchemaError::Parse {
            line: number_tok.line,
            message: format!("invalid field number `{}`", number_tok.text),
        })?;
        // Optional bracketed options: only `packed` and `default` are
        // recognized; `default` values are consumed and ignored.
        let mut packed = false;
        if self.peek().is_some_and(|t| t.text == "[") {
            self.next();
            loop {
                let key = self.next().ok_or_else(|| self.error("unclosed options"))?;
                let key_text = key.text.clone();
                self.expect("=")?;
                let value = self
                    .next()
                    .ok_or_else(|| self.error("missing option value"))?;
                if key_text == "packed" {
                    packed = value.text == "true";
                }
                match self.next().map(|t| t.text) {
                    Some(t) if t == "," => continue,
                    Some(t) if t == "]" => break,
                    _ => return Err(self.error("malformed field options")),
                }
            }
        }
        self.expect(";")?;
        Ok(RawField {
            label,
            type_name,
            name,
            number,
            packed,
            line,
        })
    }
}

/// Resolves type names across nested scopes and lowers AST items to
/// descriptors.
#[derive(Debug, Default)]
struct Resolver {
    /// Fully-qualified message name → schema slot, in declaration order.
    message_ids: HashMap<String, usize>,
    order: Vec<String>,
    enums: Vec<String>,
}

impl Resolver {
    fn collect(&mut self, item: &Item, scope: &str) {
        match item {
            Item::Message { name, nested, .. } => {
                let full = qualify(scope, name);
                let slot = self.order.len();
                self.message_ids.insert(full.clone(), slot);
                self.order.push(full.clone());
                for n in nested {
                    self.collect(n, &full);
                }
            }
            Item::Enum { name } => {
                self.enums.push(qualify(scope, name));
            }
        }
    }

    fn lower(
        &self,
        item: &Item,
        scope: &str,
        out: &mut Vec<Option<MessageDescriptor>>,
    ) -> Result<(), SchemaError> {
        if let Item::Message {
            name,
            fields,
            nested,
        } = item
        {
            let full = qualify(scope, name);
            let slot = self.message_ids[&full];
            let mut descriptors = Vec::with_capacity(fields.len());
            for rf in fields {
                let field_type =
                    self.resolve_type(&rf.type_name, &full)
                        .ok_or_else(|| SchemaError::Parse {
                            line: rf.line,
                            message: format!("unknown type `{}`", rf.type_name),
                        })?;
                descriptors.push(FieldDescriptor::new(
                    rf.name.clone(),
                    rf.number,
                    field_type,
                    rf.label,
                    rf.packed,
                )?);
            }
            out[slot] = Some(MessageDescriptor::new(full.clone(), descriptors)?);
            for n in nested {
                self.lower(n, &full, out)?;
            }
        }
        Ok(())
    }

    /// Resolves a type name from innermost scope outward (C++ scoping rules).
    fn resolve_type(&self, type_name: &str, scope: &str) -> Option<FieldType> {
        if let Some(ft) = builtin_type(type_name) {
            return Some(ft);
        }
        let mut scope = scope.to_owned();
        loop {
            let candidate = qualify(&scope, type_name);
            if let Some(&slot) = self.message_ids.get(&candidate) {
                return Some(FieldType::Message(crate::MessageId::new(slot)));
            }
            if self.enums.contains(&candidate) {
                return Some(FieldType::Enum);
            }
            match scope.rfind('.') {
                Some(dot) => scope.truncate(dot),
                None if !scope.is_empty() => scope.clear(),
                None => return None,
            }
        }
    }
}

fn qualify(scope: &str, name: &str) -> String {
    if scope.is_empty() {
        name.to_owned()
    } else {
        format!("{scope}.{name}")
    }
}

fn builtin_type(name: &str) -> Option<FieldType> {
    Some(match name {
        "double" => FieldType::Double,
        "float" => FieldType::Float,
        "int32" => FieldType::Int32,
        "int64" => FieldType::Int64,
        "uint32" => FieldType::UInt32,
        "uint64" => FieldType::UInt64,
        "sint32" => FieldType::SInt32,
        "sint64" => FieldType::SInt64,
        "fixed32" => FieldType::Fixed32,
        "fixed64" => FieldType::Fixed64,
        "sfixed32" => FieldType::SFixed32,
        "sfixed64" => FieldType::SFixed64,
        "bool" => FieldType::Bool,
        "string" => FieldType::String,
        "bytes" => FieldType::Bytes,
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PerfClass;

    #[test]
    fn parses_every_scalar_type() {
        let mut source = String::from("message AllTypes {\n");
        for (i, kw) in [
            "double", "float", "int32", "int64", "uint32", "uint64", "sint32", "sint64", "fixed32",
            "fixed64", "sfixed32", "sfixed64", "bool", "string", "bytes",
        ]
        .iter()
        .enumerate()
        {
            source.push_str(&format!("  optional {kw} f{i} = {};\n", i + 1));
        }
        source.push('}');
        let schema = parse_proto(&source).unwrap();
        let m = schema.message_by_name("AllTypes").unwrap();
        assert_eq!(m.fields().len(), 15);
        assert_eq!(
            m.field_by_name("f0").unwrap().field_type(),
            FieldType::Double
        );
        assert_eq!(
            m.field_by_name("f14").unwrap().field_type(),
            FieldType::Bytes
        );
    }

    #[test]
    fn parses_figure1_style_recursive_message() {
        // Paper Figure 1 shows repeated + recursive types.
        let schema = parse_proto(
            r#"
            syntax = "proto2";
            message Node {
                optional int64 value = 1;
                repeated Node children = 2;
            }
            "#,
        )
        .unwrap();
        let node = schema.message_by_name("Node").unwrap();
        let children = node.field_by_name("children").unwrap();
        assert!(children.is_repeated());
        assert_eq!(
            children.field_type(),
            FieldType::Message(schema.id_by_name("Node").unwrap())
        );
    }

    #[test]
    fn nested_messages_get_qualified_names_and_scoped_resolution() {
        let schema = parse_proto(
            r#"
            message A {
                message B {
                    message C { optional bool x = 1; }
                    optional C c = 1;
                }
                optional B b = 1;
                optional B.C deep = 2;
            }
            "#,
        )
        .unwrap();
        assert!(schema.message_by_name("A.B.C").is_some());
        let a = schema.message_by_name("A").unwrap();
        assert_eq!(
            a.field_by_name("deep").unwrap().field_type(),
            FieldType::Message(schema.id_by_name("A.B.C").unwrap())
        );
    }

    #[test]
    fn enum_fields_map_to_enum_type() {
        let schema = parse_proto(
            r#"
            message M {
                enum Color { RED = 0; GREEN = 1; }
                optional Color color = 1;
            }
            "#,
        )
        .unwrap();
        let f = schema
            .message_by_name("M")
            .unwrap()
            .field_by_name("color")
            .unwrap();
        assert_eq!(f.field_type(), FieldType::Enum);
        assert_eq!(f.field_type().perf_class(), Some(PerfClass::VarintLike));
    }

    #[test]
    fn packed_option_is_honored() {
        let schema = parse_proto(
            "message M { repeated int32 xs = 1 [packed = true]; repeated int32 ys = 2; }",
        )
        .unwrap();
        let m = schema.message_by_name("M").unwrap();
        assert!(m.field_by_name("xs").unwrap().is_packed());
        assert!(!m.field_by_name("ys").unwrap().is_packed());
    }

    #[test]
    fn default_option_is_ignored() {
        let schema = parse_proto("message M { optional int32 x = 1 [default = -5]; }").unwrap();
        assert!(schema.message_by_name("M").is_some());
    }

    #[test]
    fn comments_and_headers_are_skipped() {
        let schema = parse_proto(
            r#"
            // line comment
            syntax = "proto2";
            package foo.bar;
            option java_package = "com.example";
            /* block
               comment */
            message M { optional bool x = 1; } // trailing
            "#,
        )
        .unwrap();
        assert_eq!(schema.len(), 1);
    }

    #[test]
    fn proto3_is_rejected() {
        let err =
            parse_proto(r#"syntax = "proto3"; message M { optional bool x = 1; }"#).unwrap_err();
        assert!(matches!(err, SchemaError::Parse { .. }));
    }

    #[test]
    fn missing_label_is_rejected() {
        let err = parse_proto("message M { int32 x = 1; }").unwrap_err();
        assert!(matches!(err, SchemaError::Parse { .. }));
    }

    #[test]
    fn unknown_type_is_reported_with_line() {
        let err = parse_proto("message M {\n  optional Missing x = 1;\n}").unwrap_err();
        match err {
            SchemaError::Parse { line, message } => {
                assert_eq!(line, 2);
                assert!(message.contains("Missing"));
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn syntax_errors_are_reported() {
        assert!(parse_proto("message {").is_err());
        assert!(parse_proto("message M { optional int32 x 1; }").is_err());
        assert!(parse_proto("message M { optional int32 x = abc; }").is_err());
        assert!(parse_proto("garbage").is_err());
        assert!(parse_proto("/* unterminated").is_err());
        assert!(parse_proto(r#"message M { optional string s = 1 [default = "x]; }"#).is_err());
    }

    #[test]
    fn packed_string_is_rejected_semantically() {
        let err = parse_proto("message M { repeated string s = 1 [packed = true]; }").unwrap_err();
        assert!(matches!(err, SchemaError::InvalidPacked { .. }));
    }
}
