//! RoCC instruction encodings and the command router.
//!
//! The RoCC interface lets the core place custom instructions directly in
//! its instruction stream; each carries two 64-bit source registers
//! (Section 4.1). This module pins down a concrete encoding for the
//! accelerator's instruction set — the RISC-V *custom0* major opcode with
//! the operation selected by `funct7` — and a [`ProtoAccelerator::execute`]
//! entry point that decodes and routes exactly like the CMD router block in
//! Figures 9 and 10.
//!
//! Operand packing (the paper's instructions sometimes name three values;
//! RoCC provides two registers):
//!
//! | instruction | rs1 | rs2 |
//! |---|---|---|
//! | `deser_assign_arena` | arena base | arena length |
//! | `deser_info` | ADT pointer | destination object pointer |
//! | `do_proto_deser` | input pointer | length (low 48 bits) \| min field (high 16) |
//! | `block_for_deser_completion` | — | — |
//! | `ser_assign_arena_out` | output base | output length |
//! | `ser_assign_arena_ptr` | pointer-buffer base | pointer-buffer length |
//! | `ser_info` | hasbits offset | min field (low 32) \| max field (high 32) |
//! | `do_proto_ser` | ADT pointer | object pointer |
//! | `block_for_ser_completion` | — | — |
//! | `do_proto_merge` / `do_proto_copy` | ADT pointer | dst (low 32 = offset from merge window…) |
//!
//! Merge/copy need three pointers; the model stages the destination with
//! `deser_info` (reusing its slot) and passes ADT + source here.

use protoacc_mem::{Cycles, Memory};

use crate::{AccelError, ProtoAccelerator};

/// The RISC-V custom0 major opcode (0x0B), used by RoCC accelerators.
pub const CUSTOM0_OPCODE: u32 = 0x0B;

/// Operation selector values (funct7) for the accelerator's instructions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum Funct7 {
    /// Assign the deserializer arena.
    DeserAssignArena = 0x00,
    /// Stage ADT + destination for the next deserialization.
    DeserInfo = 0x01,
    /// Kick off a deserialization.
    DoProtoDeser = 0x02,
    /// Fence on in-flight deserializations.
    BlockForDeserCompletion = 0x03,
    /// Assign the serializer output region.
    SerAssignArenaOut = 0x10,
    /// Assign the serializer pointer-buffer region.
    SerAssignArenaPtr = 0x11,
    /// Stage hasbits offset + field range for the next serialization.
    SerInfo = 0x12,
    /// Kick off a serialization.
    DoProtoSer = 0x13,
    /// Fence on in-flight serializations.
    BlockForSerCompletion = 0x14,
    /// Merge source into the staged destination (Section 7).
    DoProtoMerge = 0x20,
    /// Deep-copy source over the staged destination (Section 7).
    DoProtoCopy = 0x21,
    /// Clear the object in rs2 (Section 7).
    DoProtoClear = 0x22,
    /// Fence on in-flight merge/copy/clear operations.
    BlockForOpsCompletion = 0x23,
}

impl Funct7 {
    /// Decodes a raw funct7 value.
    pub fn from_raw(raw: u8) -> Option<Self> {
        Some(match raw {
            0x00 => Funct7::DeserAssignArena,
            0x01 => Funct7::DeserInfo,
            0x02 => Funct7::DoProtoDeser,
            0x03 => Funct7::BlockForDeserCompletion,
            0x10 => Funct7::SerAssignArenaOut,
            0x11 => Funct7::SerAssignArenaPtr,
            0x12 => Funct7::SerInfo,
            0x13 => Funct7::DoProtoSer,
            0x14 => Funct7::BlockForSerCompletion,
            0x20 => Funct7::DoProtoMerge,
            0x21 => Funct7::DoProtoCopy,
            0x22 => Funct7::DoProtoClear,
            0x23 => Funct7::BlockForOpsCompletion,
            _ => return None,
        })
    }
}

/// A decoded RoCC instruction word.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RoccInstruction {
    /// Operation selector.
    pub funct7: Funct7,
    /// Source register 1 index (architectural; operand values travel
    /// separately on the RoCC request).
    pub rs1: u8,
    /// Source register 2 index.
    pub rs2: u8,
    /// Destination register index (completion fences write their cycle
    /// counts here).
    pub rd: u8,
}

impl RoccInstruction {
    /// Builds an instruction with register fields.
    pub fn new(funct7: Funct7, rd: u8, rs1: u8, rs2: u8) -> Self {
        RoccInstruction {
            funct7,
            rs1: rs1 & 0x1f,
            rs2: rs2 & 0x1f,
            rd: rd & 0x1f,
        }
    }

    /// Encodes to the 32-bit R-format instruction word:
    /// `funct7[31:25] rs2[24:20] rs1[19:15] xd/xs1/xs2[14:12] rd[11:7]
    /// opcode[6:0]` with all x-bits set (registers always exchanged).
    pub fn encode(self) -> u32 {
        (u32::from(self.funct7 as u8) << 25)
            | (u32::from(self.rs2) << 20)
            | (u32::from(self.rs1) << 15)
            | (0b111 << 12)
            | (u32::from(self.rd) << 7)
            | CUSTOM0_OPCODE
    }

    /// Decodes an instruction word.
    ///
    /// Returns `None` for the wrong major opcode or an unknown funct7.
    pub fn decode(word: u32) -> Option<Self> {
        if word & 0x7f != CUSTOM0_OPCODE {
            return None;
        }
        let funct7 = Funct7::from_raw((word >> 25) as u8)?;
        Some(RoccInstruction {
            funct7,
            rs2: ((word >> 20) & 0x1f) as u8,
            rs1: ((word >> 15) & 0x1f) as u8,
            rd: ((word >> 7) & 0x1f) as u8,
        })
    }
}

/// Packs `do_proto_deser`'s rs2 operand: input length (≤ 2^48) in the low
/// bits, minimum field number in the high 16.
pub fn pack_deser_rs2(input_len: u64, min_field: u32) -> u64 {
    debug_assert!(input_len < (1 << 48), "length exceeds the packed field");
    debug_assert!(min_field < (1 << 16), "min field exceeds the packed field");
    input_len | (u64::from(min_field) << 48)
}

/// Packs `ser_info`'s rs2 operand: min field in the low 32 bits, max in the
/// high 32.
pub fn pack_ser_info_rs2(min_field: u32, max_field: u32) -> u64 {
    u64::from(min_field) | (u64::from(max_field) << 32)
}

/// Result of executing one RoCC instruction: cycles consumed by fences, if
/// the instruction writes rd.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecuteResult {
    /// Instruction retired with no register writeback.
    Done,
    /// Fence retired; the cycle count is written to rd.
    Cycles(Cycles),
}

impl ProtoAccelerator {
    /// Decodes and executes one RoCC request — the CMD-router path of
    /// Figures 9 and 10. `rs1` and `rs2` are the operand *values* the core
    /// sent with the request.
    ///
    /// # Errors
    ///
    /// [`AccelError::Wire`]/[`AccelError::Arena`]/protocol errors exactly as
    /// the typed methods return them; undecodable words report
    /// [`AccelError::MissingInfo`] with the offending stage.
    pub fn execute(
        &mut self,
        mem: &mut Memory,
        word: u32,
        rs1: u64,
        rs2: u64,
    ) -> Result<ExecuteResult, AccelError> {
        let inst = RoccInstruction::decode(word).ok_or(AccelError::MissingInfo {
            instruction: "undecodable RoCC instruction word",
        })?;
        match inst.funct7 {
            Funct7::DeserAssignArena => {
                self.deser_assign_arena(rs1, rs2);
                Ok(ExecuteResult::Done)
            }
            Funct7::DeserInfo => {
                self.deser_info(rs1, rs2);
                Ok(ExecuteResult::Done)
            }
            Funct7::DoProtoDeser => {
                let len = rs2 & 0xffff_ffff_ffff;
                let min_field = (rs2 >> 48) as u32;
                self.do_proto_deser(mem, rs1, len, min_field)?;
                Ok(ExecuteResult::Done)
            }
            Funct7::BlockForDeserCompletion => {
                Ok(ExecuteResult::Cycles(self.block_for_deser_completion()))
            }
            Funct7::SerAssignArenaOut => {
                self.stage_ser_out(rs1, rs2);
                Ok(ExecuteResult::Done)
            }
            Funct7::SerAssignArenaPtr => {
                self.stage_ser_ptr(rs1, rs2);
                Ok(ExecuteResult::Done)
            }
            Funct7::SerInfo => {
                self.ser_info(rs1, (rs2 & 0xffff_ffff) as u32, (rs2 >> 32) as u32);
                Ok(ExecuteResult::Done)
            }
            Funct7::DoProtoSer => {
                self.do_proto_ser(mem, rs1, rs2)?;
                Ok(ExecuteResult::Done)
            }
            Funct7::BlockForSerCompletion => {
                Ok(ExecuteResult::Cycles(self.block_for_ser_completion()))
            }
            Funct7::DoProtoMerge => {
                let dst = self.staged_dest().ok_or(AccelError::MissingInfo {
                    instruction: "deser_info (stages the merge destination)",
                })?;
                self.do_proto_merge(mem, rs1, dst, rs2)?;
                Ok(ExecuteResult::Done)
            }
            Funct7::DoProtoCopy => {
                let dst = self.staged_dest().ok_or(AccelError::MissingInfo {
                    instruction: "deser_info (stages the copy destination)",
                })?;
                self.do_proto_copy(mem, rs1, dst, rs2)?;
                Ok(ExecuteResult::Done)
            }
            Funct7::DoProtoClear => {
                self.do_proto_clear(mem, rs1, rs2)?;
                Ok(ExecuteResult::Done)
            }
            Funct7::BlockForOpsCompletion => {
                Ok(ExecuteResult::Cycles(self.block_for_ops_completion()))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AccelConfig;
    use protoacc_mem::MemConfig;
    use protoacc_runtime::{
        object, reference, write_adts, BumpArena, MessageLayouts, MessageValue, Value,
    };
    use protoacc_schema::{FieldType, SchemaBuilder};

    #[test]
    fn instruction_words_round_trip() {
        for funct7 in [
            Funct7::DeserAssignArena,
            Funct7::DeserInfo,
            Funct7::DoProtoDeser,
            Funct7::BlockForDeserCompletion,
            Funct7::SerAssignArenaOut,
            Funct7::SerAssignArenaPtr,
            Funct7::SerInfo,
            Funct7::DoProtoSer,
            Funct7::BlockForSerCompletion,
            Funct7::DoProtoMerge,
            Funct7::DoProtoCopy,
            Funct7::DoProtoClear,
            Funct7::BlockForOpsCompletion,
        ] {
            let inst = RoccInstruction::new(funct7, 5, 10, 11);
            let back = RoccInstruction::decode(inst.encode()).expect("decodes");
            assert_eq!(back, inst);
            assert_eq!(inst.encode() & 0x7f, CUSTOM0_OPCODE);
        }
    }

    #[test]
    fn wrong_opcode_and_unknown_funct7_rejected() {
        assert_eq!(RoccInstruction::decode(0x0000_0033), None); // OP opcode
                                                                // custom0 with funct7 = 0x7f (unassigned)
        let word = (0x7fu32 << 25) | CUSTOM0_OPCODE;
        assert_eq!(RoccInstruction::decode(word), None);
    }

    #[test]
    fn operand_packing() {
        let rs2 = pack_deser_rs2(123_456, 7);
        assert_eq!(rs2 & 0xffff_ffff_ffff, 123_456);
        assert_eq!(rs2 >> 48, 7);
        let rs2 = pack_ser_info_rs2(3, 900);
        assert_eq!(rs2 & 0xffff_ffff, 3);
        assert_eq!(rs2 >> 32, 900);
    }

    #[test]
    fn full_instruction_stream_round_trips_a_message() {
        // Drive the accelerator purely through encoded instruction words.
        let mut b = SchemaBuilder::new();
        let id = b.define("P", |m| {
            m.required("x", FieldType::Int32, 1)
                .optional("s", FieldType::String, 2);
        });
        let schema = b.build().unwrap();
        let layouts = MessageLayouts::compute(&schema);
        let mut mem = Memory::new(MemConfig::default());
        let mut arena = BumpArena::new(0x1_0000, 1 << 22);
        let adts = write_adts(&schema, &layouts, &mut mem.data, &mut arena).unwrap();
        let mut m = MessageValue::new(id);
        m.set(1, Value::Int32(-9)).unwrap();
        m.set(2, Value::Str("via the ISA".into())).unwrap();
        let obj = object::write_message(&mut mem.data, &schema, &layouts, &mut arena, &m).unwrap();
        let layout = layouts.layout(id);

        let mut accel = crate::ProtoAccelerator::new(AccelConfig::default());
        let word = |f: Funct7| RoccInstruction::new(f, 1, 2, 3).encode();
        // Serialize.
        accel
            .execute(
                &mut mem,
                word(Funct7::SerAssignArenaOut),
                0x40_0000,
                1 << 20,
            )
            .unwrap();
        accel
            .execute(
                &mut mem,
                word(Funct7::SerAssignArenaPtr),
                0x60_0000,
                1 << 12,
            )
            .unwrap();
        accel
            .execute(
                &mut mem,
                word(Funct7::SerInfo),
                layout.hasbits_offset(),
                pack_ser_info_rs2(layout.min_field(), layout.max_field()),
            )
            .unwrap();
        accel
            .execute(&mut mem, word(Funct7::DoProtoSer), adts.addr(id), obj)
            .unwrap();
        let fence = accel
            .execute(&mut mem, word(Funct7::BlockForSerCompletion), 0, 0)
            .unwrap();
        assert!(matches!(fence, ExecuteResult::Cycles(c) if c > 0));
        let (out_addr, out_len) = accel.serialized_output(&mem, 0).unwrap();
        assert_eq!(
            mem.data.read_vec(out_addr, out_len as usize),
            reference::encode(&m, &schema).unwrap()
        );

        // Deserialize the bytes back through the ISA.
        let dest = arena.alloc(layout.object_size(), 8).unwrap();
        accel
            .execute(
                &mut mem,
                word(Funct7::DeserAssignArena),
                0x100_0000,
                1 << 22,
            )
            .unwrap();
        accel
            .execute(&mut mem, word(Funct7::DeserInfo), adts.addr(id), dest)
            .unwrap();
        accel
            .execute(
                &mut mem,
                word(Funct7::DoProtoDeser),
                out_addr,
                pack_deser_rs2(out_len, layout.min_field()),
            )
            .unwrap();
        let fence = accel
            .execute(&mut mem, word(Funct7::BlockForDeserCompletion), 0, 0)
            .unwrap();
        assert!(matches!(fence, ExecuteResult::Cycles(c) if c > 0));
        let back = object::read_message(&mem.data, &schema, &layouts, id, dest).unwrap();
        assert!(back.bits_eq(&m));
    }

    #[test]
    fn merge_via_isa_requires_staged_destination() {
        let mut mem = Memory::new(MemConfig::default());
        let mut accel = crate::ProtoAccelerator::new(AccelConfig::default());
        accel.deser_assign_arena(0x100_0000, 1 << 20);
        let word = RoccInstruction::new(Funct7::DoProtoMerge, 0, 1, 2).encode();
        assert!(matches!(
            accel.execute(&mut mem, word, 0x1000, 0x2000),
            Err(AccelError::MissingInfo { .. })
        ));
    }
}
