//! Lint-vs-measurement report: runs the static analyzer over every
//! microbenchmark workload, measures the accelerator on the same
//! workloads, and prints how much headroom the simulated cycles leave over
//! the provable static floor (`headroom = measured / floor`, always >= 1).
//!
//! Usage: `lint_report`

use protoacc_bench::lintrep::{format_lint_table, lint_workload};
use protoacc_bench::systems::{measure, Direction, SystemKind};
use protoacc_bench::ubench::{alloc_workloads, nonalloc_workloads};
use protoacc_lint::LintConfig;

fn main() {
    let config = LintConfig::default();
    for (title, workloads) in [
        ("non-allocating microbenchmarks", nonalloc_workloads()),
        ("allocating microbenchmarks", alloc_workloads()),
    ] {
        println!("== {title} ==");
        let rows: Vec<_> = workloads
            .iter()
            .map(|w| {
                let m = measure(SystemKind::RiscvBoomAccel, w, Direction::Deserialize);
                lint_workload(w, &m, &config)
            })
            .collect();
        print!("{}", format_lint_table(&rows));
        let violations = rows.iter().filter(|r| r.headroom < 1.0).count();
        println!("floor violations: {violations}\n");
        assert_eq!(violations, 0, "a measurement beat the static lower bound");
    }
}
