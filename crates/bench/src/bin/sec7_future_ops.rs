//! Section 7 extension: merge / copy / clear on the future-work ops unit
//! vs the software baselines.
//!
//! The paper estimates these operations add another 17.1% of fleet-wide C++
//! protobuf cycles to the accelerator's addressable pool; this binary
//! measures the modeled speedups and extends the fleet-savings
//! extrapolation accordingly.

use hyperprotobench::{Generator, ServiceProfile};
use protoacc::{AccelConfig, ProtoAccelerator};
use protoacc_bench::geomean;
use protoacc_cpu::{CostTable, SoftwareCodec};
use protoacc_fleet::gwp::{FleetProfile, ProtoOp};
use protoacc_mem::{MemConfig, Memory};
use protoacc_runtime::{object, write_adts, BumpArena, MessageLayouts};

#[derive(Debug, Clone, Copy)]
enum Op {
    Merge,
    Copy,
    Clear,
}

fn main() {
    println!("Section 7: merge / copy / clear (cycles per operation, lower is better)");
    println!(
        "{:<10} {:<10} {:>14} {:>14} {:>14} {:>10}",
        "Bench", "Op", "riscv-boom", "Xeon", "accel", "speedup"
    );
    let mut speedups = Vec::new();
    for service in [0usize, 3, 5] {
        for op in [Op::Merge, Op::Copy, Op::Clear] {
            let boom = run_software(&CostTable::boom(), service, op);
            let xeon = run_software(&CostTable::xeon(), service, op);
            let accel = run_accel(service, op);
            let speedup = boom as f64 / accel as f64;
            speedups.push(speedup);
            println!(
                "bench{service:<5} {:<10} {boom:>14} {xeon:>14} {accel:>14} {speedup:>9.2}x",
                format!("{op:?}")
            );
        }
    }
    let overall = geomean(&speedups);
    println!();
    println!("geomean speedup vs riscv-boom: {overall:.2}x");
    let profile = FleetProfile::google_2021();
    let base = profile.acceleration_opportunity();
    let extra = profile.protobuf_fraction_of_fleet
        * profile.cpp_fraction_of_protobuf
        * profile.merge_copy_clear_share();
    let savings = base * (1.0 - 1.0 / 7.0) + extra * (1.0 - 1.0 / overall);
    println!(
        "addressable fleet cycles grow from {:.2}% (ser+deser) to {:.2}% with merge/copy/clear \
         (paper: +17.1% of protobuf cycles)",
        base * 100.0,
        (base + extra) * 100.0
    );
    println!(
        "extended fleet-savings extrapolation: {:.2}% of fleet cycles",
        savings * 100.0
    );
    let _ = ProtoOp::Merge;
}

/// Cycles for one pass of the op over a generated population (software).
fn run_software(cost: &CostTable, service: usize, op: Op) -> u64 {
    let bench = Generator::new(ServiceProfile::bench(service), 0x5EC7).generate(12);
    let layouts = MessageLayouts::compute(&bench.schema);
    let mut mem = Memory::new(cost.mem);
    let mut arena = BumpArena::new(0x1_0000_0000, 1 << 28);
    let codec = SoftwareCodec::new(cost);
    let objects: Vec<(u64, u64)> = bench
        .messages
        .chunks(2)
        .filter(|c| c.len() == 2)
        .map(|pair| {
            let dst =
                object::write_message(&mut mem.data, &bench.schema, &layouts, &mut arena, &pair[0])
                    .unwrap();
            let src =
                object::write_message(&mut mem.data, &bench.schema, &layouts, &mut arena, &pair[1])
                    .unwrap();
            (dst, src)
        })
        .collect();
    let mut cycles = 0;
    for &(dst, src) in &objects {
        let run = match op {
            Op::Merge => codec
                .merge(
                    &mut mem,
                    &bench.schema,
                    &layouts,
                    bench.type_id,
                    dst,
                    src,
                    &mut arena,
                )
                .unwrap(),
            Op::Copy => codec
                .copy(
                    &mut mem,
                    &bench.schema,
                    &layouts,
                    bench.type_id,
                    dst,
                    src,
                    &mut arena,
                )
                .unwrap(),
            Op::Clear => codec.clear(&mut mem, &layouts, bench.type_id, dst).unwrap(),
        };
        cycles += run.cycles;
    }
    cycles / objects.len() as u64
}

/// Cycles for one pass of the op on the accelerator's ops unit.
fn run_accel(service: usize, op: Op) -> u64 {
    let bench = Generator::new(ServiceProfile::bench(service), 0x5EC7).generate(12);
    let layouts = MessageLayouts::compute(&bench.schema);
    let mut mem = Memory::new(MemConfig::default());
    let mut setup = BumpArena::new(0x1_0000, 1 << 26);
    let adts = write_adts(&bench.schema, &layouts, &mut mem.data, &mut setup).unwrap();
    let mut accel = ProtoAccelerator::new(AccelConfig::default());
    accel.deser_assign_arena(0x1_0000_0000, 1 << 28);
    let objects: Vec<(u64, u64)> = bench
        .messages
        .chunks(2)
        .filter(|c| c.len() == 2)
        .map(|pair| {
            let dst =
                object::write_message(&mut mem.data, &bench.schema, &layouts, &mut setup, &pair[0])
                    .unwrap();
            let src =
                object::write_message(&mut mem.data, &bench.schema, &layouts, &mut setup, &pair[1])
                    .unwrap();
            (dst, src)
        })
        .collect();
    let adt = adts.addr(bench.type_id);
    let mut cycles = 0;
    for &(dst, src) in &objects {
        let run = match op {
            Op::Merge => accel.do_proto_merge(&mut mem, adt, dst, src).unwrap(),
            Op::Copy => accel.do_proto_copy(&mut mem, adt, dst, src).unwrap(),
            Op::Clear => accel.do_proto_clear(&mut mem, adt, dst).unwrap(),
        };
        cycles += run.cycles;
    }
    cycles / objects.len() as u64
}
