//! Proto2 field types and the performance-similar classes of Table 1.

use protoacc_wire::WireType;

use crate::descriptor::MessageId;

/// A proto2 field type.
///
/// All scalar types plus `string`/`bytes` and user-defined sub-message types.
/// Groups are deprecated and not modeled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FieldType {
    /// 64-bit IEEE-754, fixed 8 bytes on the wire.
    Double,
    /// 32-bit IEEE-754, fixed 4 bytes on the wire.
    Float,
    /// Variable-length signed 32-bit (two's-complement varint; negative
    /// values take 10 bytes).
    Int32,
    /// Variable-length signed 64-bit.
    Int64,
    /// Variable-length unsigned 32-bit.
    UInt32,
    /// Variable-length unsigned 64-bit.
    UInt64,
    /// Zigzag-then-varint signed 32-bit.
    SInt32,
    /// Zigzag-then-varint signed 64-bit.
    SInt64,
    /// Fixed 4-byte unsigned.
    Fixed32,
    /// Fixed 8-byte unsigned.
    Fixed64,
    /// Fixed 4-byte signed.
    SFixed32,
    /// Fixed 8-byte signed.
    SFixed64,
    /// Varint-encoded boolean.
    Bool,
    /// Varint-encoded enumeration value.
    Enum,
    /// Length-delimited UTF-8 text.
    String,
    /// Length-delimited opaque bytes.
    Bytes,
    /// A user-defined sub-message type, resolved to its schema slot.
    Message(MessageId),
}

/// The "performance-similar" classes of Table 1, used throughout the paper's
/// profiling analysis (Figures 4-6) to group field types that require a
/// similar amount of work to serialize or deserialize.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum PerfClass {
    /// `bytes`, `string` (sizes bucketed as in Figure 4c).
    BytesLike,
    /// `{s,u}int{64,32}`, `int{64,32}`, `enum`, `bool` (1-10 bytes, by 1).
    VarintLike,
    /// `float` (4 bytes).
    FloatLike,
    /// `double` (8 bytes).
    DoubleLike,
    /// `fixed32`, `sfixed32` (4 bytes).
    Fixed32Like,
    /// `fixed64`, `sfixed64` (8 bytes).
    Fixed64Like,
}

impl PerfClass {
    /// All classes, in Table 1 order.
    pub const ALL: [PerfClass; 6] = [
        PerfClass::BytesLike,
        PerfClass::VarintLike,
        PerfClass::FloatLike,
        PerfClass::DoubleLike,
        PerfClass::Fixed32Like,
        PerfClass::Fixed64Like,
    ];

    /// Human-readable label matching the paper's tables.
    pub fn label(self) -> &'static str {
        match self {
            PerfClass::BytesLike => "bytes-like",
            PerfClass::VarintLike => "varint-like",
            PerfClass::FloatLike => "float-like",
            PerfClass::DoubleLike => "double-like",
            PerfClass::Fixed32Like => "fixed32-like",
            PerfClass::Fixed64Like => "fixed64-like",
        }
    }
}

impl std::fmt::Display for PerfClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// How a scalar value is represented in the C++-like in-memory object,
/// used by the layout engine and the accelerator's final write states.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ScalarKind {
    /// 1-byte boolean.
    Bool,
    /// 4-byte integer (signedness tracked by the field type).
    I32,
    /// 8-byte integer.
    I64,
    /// 4-byte float.
    F32,
    /// 8-byte float.
    F64,
}

impl ScalarKind {
    /// In-memory size in bytes.
    pub fn size(self) -> usize {
        match self {
            ScalarKind::Bool => 1,
            ScalarKind::I32 | ScalarKind::F32 => 4,
            ScalarKind::I64 | ScalarKind::F64 => 8,
        }
    }
}

impl FieldType {
    /// The wire type this field uses when not packed (Section 2.1.2).
    pub fn wire_type(self) -> WireType {
        match self {
            FieldType::Double | FieldType::Fixed64 | FieldType::SFixed64 => WireType::Bits64,
            FieldType::Float | FieldType::Fixed32 | FieldType::SFixed32 => WireType::Bits32,
            FieldType::Int32
            | FieldType::Int64
            | FieldType::UInt32
            | FieldType::UInt64
            | FieldType::SInt32
            | FieldType::SInt64
            | FieldType::Bool
            | FieldType::Enum => WireType::Varint,
            FieldType::String | FieldType::Bytes | FieldType::Message(_) => {
                WireType::LengthDelimited
            }
        }
    }

    /// The Table 1 performance-similar class this type belongs to.
    ///
    /// Sub-messages have no class of their own: the paper accounts for them
    /// via the primitive fields they contain (Section 3.6.1), so this returns
    /// `None` for `Message`.
    pub fn perf_class(self) -> Option<PerfClass> {
        match self {
            FieldType::Bytes | FieldType::String => Some(PerfClass::BytesLike),
            FieldType::Int32
            | FieldType::Int64
            | FieldType::UInt32
            | FieldType::UInt64
            | FieldType::SInt32
            | FieldType::SInt64
            | FieldType::Bool
            | FieldType::Enum => Some(PerfClass::VarintLike),
            FieldType::Float => Some(PerfClass::FloatLike),
            FieldType::Double => Some(PerfClass::DoubleLike),
            FieldType::Fixed32 | FieldType::SFixed32 => Some(PerfClass::Fixed32Like),
            FieldType::Fixed64 | FieldType::SFixed64 => Some(PerfClass::Fixed64Like),
            FieldType::Message(_) => None,
        }
    }

    /// The in-memory scalar representation, or `None` for string/bytes and
    /// sub-message types (which are stored out-of-line behind pointers).
    pub fn scalar_kind(self) -> Option<ScalarKind> {
        match self {
            FieldType::Bool => Some(ScalarKind::Bool),
            FieldType::Int32
            | FieldType::UInt32
            | FieldType::SInt32
            | FieldType::Fixed32
            | FieldType::SFixed32
            | FieldType::Enum => Some(ScalarKind::I32),
            FieldType::Int64
            | FieldType::UInt64
            | FieldType::SInt64
            | FieldType::Fixed64
            | FieldType::SFixed64 => Some(ScalarKind::I64),
            FieldType::Float => Some(ScalarKind::F32),
            FieldType::Double => Some(ScalarKind::F64),
            FieldType::String | FieldType::Bytes | FieldType::Message(_) => None,
        }
    }

    /// Whether values of this type use zigzag encoding before the varint.
    pub fn is_zigzag(self) -> bool {
        matches!(self, FieldType::SInt32 | FieldType::SInt64)
    }

    /// Whether this type may appear in a packed repeated field.
    ///
    /// Proto2 allows packing for all scalar numeric types; strings, bytes,
    /// and messages cannot be packed.
    pub fn is_packable(self) -> bool {
        !matches!(
            self,
            FieldType::String | FieldType::Bytes | FieldType::Message(_)
        )
    }

    /// Whether this is a sub-message type.
    pub fn is_message(self) -> bool {
        matches!(self, FieldType::Message(_))
    }

    /// Whether this type is stored "inline" in the C++ message object
    /// (Section 5.1.2's distinction): scalars are inline; strings, bytes,
    /// sub-messages, and anything repeated live behind pointers.
    pub fn is_inline_scalar(self) -> bool {
        self.scalar_kind().is_some()
    }

    /// The keyword used in `.proto` source for this type, or `None` for
    /// message types (which use their type name).
    pub fn keyword(self) -> Option<&'static str> {
        Some(match self {
            FieldType::Double => "double",
            FieldType::Float => "float",
            FieldType::Int32 => "int32",
            FieldType::Int64 => "int64",
            FieldType::UInt32 => "uint32",
            FieldType::UInt64 => "uint64",
            FieldType::SInt32 => "sint32",
            FieldType::SInt64 => "sint64",
            FieldType::Fixed32 => "fixed32",
            FieldType::Fixed64 => "fixed64",
            FieldType::SFixed32 => "sfixed32",
            FieldType::SFixed64 => "sfixed64",
            FieldType::Bool => "bool",
            FieldType::Enum => "enum",
            FieldType::String => "string",
            FieldType::Bytes => "bytes",
            FieldType::Message(_) => return None,
        })
    }

    /// All non-message field types.
    pub const SCALARS: [FieldType; 16] = [
        FieldType::Double,
        FieldType::Float,
        FieldType::Int32,
        FieldType::Int64,
        FieldType::UInt32,
        FieldType::UInt64,
        FieldType::SInt32,
        FieldType::SInt64,
        FieldType::Fixed32,
        FieldType::Fixed64,
        FieldType::SFixed32,
        FieldType::SFixed64,
        FieldType::Bool,
        FieldType::Enum,
        FieldType::String,
        FieldType::Bytes,
    ];
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_classification_is_complete() {
        // Every non-message type maps to exactly one Table 1 class.
        for ft in FieldType::SCALARS {
            assert!(ft.perf_class().is_some(), "{ft:?} must be classified");
        }
        assert_eq!(FieldType::Message(MessageId::new(0)).perf_class(), None);
    }

    #[test]
    fn table1_varint_group_matches_paper() {
        // Table 1: {s,u}int{64,32}, int{64,32}, enum, bool are varint-like.
        for ft in [
            FieldType::Int32,
            FieldType::Int64,
            FieldType::UInt32,
            FieldType::UInt64,
            FieldType::SInt32,
            FieldType::SInt64,
            FieldType::Enum,
            FieldType::Bool,
        ] {
            assert_eq!(ft.perf_class(), Some(PerfClass::VarintLike));
        }
    }

    #[test]
    fn table1_fixed_groups_match_paper() {
        assert_eq!(
            FieldType::Fixed32.perf_class(),
            Some(PerfClass::Fixed32Like)
        );
        assert_eq!(
            FieldType::SFixed32.perf_class(),
            Some(PerfClass::Fixed32Like)
        );
        assert_eq!(
            FieldType::Fixed64.perf_class(),
            Some(PerfClass::Fixed64Like)
        );
        assert_eq!(
            FieldType::SFixed64.perf_class(),
            Some(PerfClass::Fixed64Like)
        );
        assert_eq!(FieldType::Float.perf_class(), Some(PerfClass::FloatLike));
        assert_eq!(FieldType::Double.perf_class(), Some(PerfClass::DoubleLike));
        assert_eq!(FieldType::String.perf_class(), Some(PerfClass::BytesLike));
        assert_eq!(FieldType::Bytes.perf_class(), Some(PerfClass::BytesLike));
    }

    #[test]
    fn wire_type_mapping_matches_spec() {
        assert_eq!(FieldType::Double.wire_type(), WireType::Bits64);
        assert_eq!(FieldType::Float.wire_type(), WireType::Bits32);
        assert_eq!(FieldType::Int64.wire_type(), WireType::Varint);
        assert_eq!(FieldType::Bool.wire_type(), WireType::Varint);
        assert_eq!(FieldType::String.wire_type(), WireType::LengthDelimited);
        assert_eq!(
            FieldType::Message(MessageId::new(3)).wire_type(),
            WireType::LengthDelimited
        );
    }

    #[test]
    fn scalar_kinds_and_sizes() {
        assert_eq!(FieldType::Bool.scalar_kind(), Some(ScalarKind::Bool));
        assert_eq!(ScalarKind::Bool.size(), 1);
        assert_eq!(FieldType::Int32.scalar_kind(), Some(ScalarKind::I32));
        assert_eq!(ScalarKind::I32.size(), 4);
        assert_eq!(FieldType::Double.scalar_kind(), Some(ScalarKind::F64));
        assert_eq!(ScalarKind::F64.size(), 8);
        assert_eq!(FieldType::String.scalar_kind(), None);
    }

    #[test]
    fn packability() {
        assert!(FieldType::Int32.is_packable());
        assert!(FieldType::Double.is_packable());
        assert!(!FieldType::String.is_packable());
        assert!(!FieldType::Bytes.is_packable());
        assert!(!FieldType::Message(MessageId::new(0)).is_packable());
    }

    #[test]
    fn zigzag_only_for_sint() {
        assert!(FieldType::SInt32.is_zigzag());
        assert!(FieldType::SInt64.is_zigzag());
        assert!(!FieldType::Int32.is_zigzag());
        assert!(!FieldType::Int64.is_zigzag());
    }

    #[test]
    fn keywords_round_trip_through_parser_table() {
        for ft in FieldType::SCALARS {
            let kw = ft.keyword().unwrap();
            assert!(!kw.is_empty());
        }
        assert_eq!(FieldType::Message(MessageId::new(1)).keyword(), None);
    }

    #[test]
    fn perf_class_labels_are_stable() {
        let labels: Vec<&str> = PerfClass::ALL.iter().map(|c| c.label()).collect();
        assert_eq!(
            labels,
            [
                "bytes-like",
                "varint-like",
                "float-like",
                "double-like",
                "fixed32-like",
                "fixed64-like"
            ]
        );
    }
}
