//! End-to-end integration: proto2 source text → schema → layouts → ADTs →
//! accelerator round trips, plus performance-ordering sanity across the
//! three systems.

use protoacc_suite::accel::{AccelConfig, ProtoAccelerator};
use protoacc_suite::bench::{measure, Direction, SystemKind, Workload};
use protoacc_suite::mem::{MemConfig, Memory};
use protoacc_suite::runtime::{
    object, reference, write_adts, BumpArena, MessageLayouts, MessageValue, Value,
};
use protoacc_suite::schema::parse_proto;

const PROTO_SOURCE: &str = r#"
    syntax = "proto2";
    package acme.telemetry;

    message Sample {
        required fixed64 timestamp_us = 1;
        required double value = 2;
        optional string unit = 3;
    }

    message Series {
        required string metric = 1;
        repeated Sample samples = 2;
        repeated int64 tags = 3 [packed = true];
        optional Series child = 9;
    }
"#;

fn build_series(schema: &protoacc_suite::schema::Schema, depth: usize) -> MessageValue {
    let series_id = schema.id_by_name("Series").unwrap();
    let sample_id = schema.id_by_name("Sample").unwrap();
    let mut series = MessageValue::new(series_id);
    series.set_unchecked(1, Value::Str(format!("cpu.util.depth{depth}")));
    let samples = (0..4)
        .map(|i| {
            let mut s = MessageValue::new(sample_id);
            s.set_unchecked(1, Value::Fixed64(1_700_000_000_000 + i));
            s.set_unchecked(2, Value::Double(i as f64 * 0.25));
            if i % 2 == 0 {
                s.set_unchecked(3, Value::Str("percent".into()));
            }
            Value::Message(s)
        })
        .collect();
    series.set_repeated(2, samples);
    series.set_repeated(3, (0..6).map(|i| Value::Int64(i * 1000 - 3)).collect());
    if depth > 0 {
        series.set_unchecked(9, Value::Message(build_series(schema, depth - 1)));
    }
    series
}

#[test]
fn proto_text_to_accelerator_round_trip() {
    let schema = parse_proto(PROTO_SOURCE).unwrap();
    let layouts = MessageLayouts::compute(&schema);
    let series_id = schema.id_by_name("Series").unwrap();
    let message = build_series(&schema, 3);
    message.validate(&schema).unwrap();

    let mut mem = Memory::new(MemConfig::default());
    let mut setup = BumpArena::new(0x1_0000, 1 << 24);
    let adts = write_adts(&schema, &layouts, &mut mem.data, &mut setup).unwrap();
    let mut accel = ProtoAccelerator::new(AccelConfig::default());
    accel.ser_assign_arena(0x4000_0000, 1 << 24, 0x7000_0000, 1 << 14);
    accel.deser_assign_arena(0x8000_0000, 1 << 24);

    // Serialize on the accelerator; verify byte identity with the reference.
    let obj =
        object::write_message(&mut mem.data, &schema, &layouts, &mut setup, &message).unwrap();
    let layout = layouts.layout(series_id);
    accel.ser_info(
        layout.hasbits_offset(),
        layout.min_field(),
        layout.max_field(),
    );
    let ser = accel
        .do_proto_ser(&mut mem, adts.addr(series_id), obj)
        .unwrap();
    let expect = reference::encode(&message, &schema).unwrap();
    assert_eq!(
        mem.data.read_vec(ser.out_addr, ser.out_len as usize),
        expect
    );

    // Deserialize the accelerator's own output back.
    let dest = setup.alloc(layout.object_size(), 8).unwrap();
    accel.deser_info(adts.addr(series_id), dest);
    accel
        .do_proto_deser(&mut mem, ser.out_addr, ser.out_len, layout.min_field())
        .unwrap();
    let back = object::read_message(&mem.data, &schema, &layouts, series_id, dest).unwrap();
    assert!(back.bits_eq(&message));

    // Stats reflect the work: nested series means stack pushes.
    let stats = accel.stats();
    assert!(stats.stack_pushes > 0);
    assert!(stats.varints > 0);
    assert_eq!(stats.ser_ops, 1);
    assert_eq!(stats.deser_ops, 1);
}

#[test]
fn performance_ordering_holds_on_a_representative_workload() {
    let schema = parse_proto(PROTO_SOURCE).unwrap();
    let series_id = schema.id_by_name("Series").unwrap();
    let messages = (0..12).map(|_| build_series(&schema, 1)).collect();
    let workload = Workload {
        name: "telemetry".into(),
        schema,
        type_id: series_id,
        messages,
    };
    for direction in [Direction::Deserialize, Direction::Serialize] {
        let boom = measure(SystemKind::RiscvBoom, &workload, direction);
        let xeon = measure(SystemKind::Xeon, &workload, direction);
        let accel = measure(SystemKind::RiscvBoomAccel, &workload, direction);
        // The paper's Figure 11/12/13 ordering on varint/submessage-heavy
        // workloads: accel > Xeon > BOOM.
        assert!(
            accel.gbits > xeon.gbits && xeon.gbits > boom.gbits,
            "{direction:?}: accel {:.2} xeon {:.2} boom {:.2}",
            accel.gbits,
            xeon.gbits,
            boom.gbits
        );
        // And the accelerated speedup is in the paper's order of magnitude.
        let speedup = accel.gbits / boom.gbits;
        assert!(
            (3.0..40.0).contains(&speedup),
            "{direction:?} speedup {speedup:.2}"
        );
    }
}

#[test]
fn batching_deserializations_matches_paper_api_flow() {
    // §4.4.1: the CPU can issue several deser_info/do_proto_deser pairs and
    // fence once with block_for_deser_completion.
    let schema = parse_proto(PROTO_SOURCE).unwrap();
    let layouts = MessageLayouts::compute(&schema);
    let series_id = schema.id_by_name("Series").unwrap();
    let layout = layouts.layout(series_id);
    let mut mem = Memory::new(MemConfig::default());
    let mut setup = BumpArena::new(0x1_0000, 1 << 24);
    let adts = write_adts(&schema, &layouts, &mut mem.data, &mut setup).unwrap();
    let mut accel = ProtoAccelerator::new(AccelConfig::default());
    accel.deser_assign_arena(0x8000_0000, 1 << 24);

    let mut inputs = Vec::new();
    let mut originals = Vec::new();
    let mut cursor = 0x2000_0000u64;
    for depth in 0..5 {
        let m = build_series(&schema, depth);
        let wire = reference::encode(&m, &schema).unwrap();
        mem.data.write_bytes(cursor, &wire);
        inputs.push((cursor, wire.len() as u64));
        originals.push(m);
        cursor += wire.len() as u64 + 32;
    }
    let mut dests = Vec::new();
    for &(addr, len) in &inputs {
        let dest = setup.alloc(layout.object_size(), 8).unwrap();
        accel.deser_info(adts.addr(series_id), dest);
        accel
            .do_proto_deser(&mut mem, addr, len, layout.min_field())
            .unwrap();
        dests.push(dest);
    }
    let total = accel.block_for_deser_completion();
    assert!(total > 0);
    assert_eq!(accel.block_for_deser_completion(), 0, "fence drains");
    for (dest, original) in dests.iter().zip(&originals) {
        let back = object::read_message(&mem.data, &schema, &layouts, series_id, *dest).unwrap();
        assert!(back.bits_eq(original));
    }
}
