//! The serializer unit (Section 4.5).
//!
//! Converts a populated C++ protobuf object into the wire format. The
//! frontend walks the `hasbits` and `is_submessage` bit fields, issuing one
//! handle-field-op per present field; ops are dispatched round-robin to
//! parallel field serializer units that load field data and encode it; the
//! memwriter sequences their output into one stream written from high to low
//! addresses, injecting each (sub-)message's key and length once all of its
//! fields have been seen (Section 4.5.1) — byte-identical to a software
//! serializer that writes forward in increasing field-number order.

pub mod fsu;
pub mod memwriter;

use protoacc_mem::{AccessKind, Cycles, Memory};
use protoacc_runtime::{AdtLayout, FieldEntry, TypeCode, ADT_ENTRY_BYTES};
use protoacc_wire::hw::CombVarintEncoder;
use protoacc_wire::{FieldKey, WireType};

use crate::adtcache::AdtCache;
use crate::{AccelConfig, AccelError, AccelStats};
use fsu::FsuPool;
use memwriter::ReverseWriter;

/// Outcome of one serialization operation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SerRun {
    /// Total cycles charged (RoCC dispatch + the slowest pipeline stage).
    pub cycles: Cycles,
    /// Cycles the frontend spent scanning bit fields and issuing ops.
    pub frontend_cycles: Cycles,
    /// Busy time of the most-loaded field serializer unit.
    pub fsu_cycles: Cycles,
    /// Memwriter output-port occupancy.
    pub memwriter_cycles: Cycles,
    /// Guest address of the first byte of the serialized output.
    pub out_addr: u64,
    /// Serialized length in bytes.
    pub out_len: u64,
    /// Fields serialized (recursively).
    pub fields: u64,
}

/// The serializer unit.
#[derive(Debug)]
pub struct SerUnit {
    config: AccelConfig,
    adt_cache: AdtCache,
    tracer: Option<protoacc_trace::SharedTracer>,
    trace_instance: usize,
    trace_origin: Cycles,
}

impl SerUnit {
    /// Creates a serializer unit with cold internal state.
    pub fn new(config: AccelConfig) -> Self {
        SerUnit {
            adt_cache: AdtCache::new(config.adt_cache_entries),
            config,
            tracer: None,
            trace_instance: 0,
            trace_origin: 0,
        }
    }

    /// Attaches (or detaches, with `None`) a structured-event tracer.
    /// Tracing is a pure observer: it never changes cycle accounting.
    pub fn set_tracer(&mut self, tracer: Option<protoacc_trace::SharedTracer>) {
        self.tracer = tracer;
    }

    /// Sets the instance id stamped onto emitted events.
    pub fn set_trace_instance(&mut self, instance: usize) {
        self.trace_instance = instance;
    }

    /// Sets the cluster-cycle origin that unit-relative timestamps are
    /// rebased onto.
    pub fn set_trace_origin(&mut self, origin: Cycles) {
        self.trace_origin = origin;
    }

    fn emit(&self, event: protoacc_trace::TraceEvent) {
        if let Some(t) = &self.tracer {
            t.borrow_mut().record(event);
        }
    }

    fn emit_adt(&self, frontend: Cycles, hit: bool, cycles: Cycles) {
        if self.tracer.is_some() {
            self.emit(protoacc_trace::TraceEvent::AdtAccess {
                instance: self.trace_instance,
                at: self.trace_origin + frontend,
                unit: protoacc_trace::AdtUnit::Ser,
                hit,
                cycles,
            });
        }
    }

    /// Serializes the object at `obj_ptr` (type described by the ADT at
    /// `adt_ptr`) through `writer`.
    ///
    /// # Errors
    ///
    /// Output-region overflow or malformed ADT state.
    pub fn run(
        &mut self,
        mem: &mut Memory,
        writer: &mut ReverseWriter,
        adt_ptr: u64,
        obj_ptr: u64,
        stats: &mut AccelStats,
    ) -> Result<SerRun, AccelError> {
        let mut frontend: Cycles = 0;
        let mut pool = FsuPool::new(self.config.field_serializers);
        let mut fields: u64 = 0;
        let writer_cycles_before = writer.cycles();
        let cursor_before = writer.cursor();

        self.ser_message(
            mem,
            writer,
            &mut pool,
            adt_ptr,
            obj_ptr,
            &mut frontend,
            &mut fields,
            stats,
            0,
        )?;

        let out_addr = writer.cursor();
        let out_len = cursor_before - out_addr;
        let memwriter_cycles = writer.cycles() - writer_cycles_before;
        let fsu_cycles = pool.max_busy();
        if self.tracer.is_some() && memwriter_cycles > 0 {
            self.emit(protoacc_trace::TraceEvent::MemwriterFlush {
                instance: self.trace_instance,
                start: self.trace_origin,
                cycles: memwriter_cycles,
                bytes: out_len,
            });
        }
        stats.fields += fields;
        let cycles =
            self.config.rocc_dispatch_cycles + frontend.max(fsu_cycles).max(memwriter_cycles);
        Ok(SerRun {
            cycles,
            frontend_cycles: frontend,
            fsu_cycles,
            memwriter_cycles,
            out_addr,
            out_len,
            fields,
        })
    }

    /// Drops cached ADT state.
    pub fn reset_caches(&mut self) {
        self.adt_cache.clear();
    }

    /// ADT-misses counter (for reporting).
    pub fn adt_misses(&self) -> u64 {
        self.adt_cache.misses()
    }

    /// Serializes one (sub-)message in reverse field-number order.
    #[allow(clippy::too_many_arguments)]
    fn ser_message(
        &mut self,
        mem: &mut Memory,
        writer: &mut ReverseWriter,
        pool: &mut FsuPool,
        adt_ptr: u64,
        obj_ptr: u64,
        frontend: &mut Cycles,
        fields: &mut u64,
        stats: &mut AccelStats,
        depth: usize,
    ) -> Result<(), AccelError> {
        let (adt_cost, adt_hit) = self.adt_cache.load(&mut mem.system, adt_ptr, 64);
        *frontend += adt_cost;
        self.emit_adt(*frontend, adt_hit, adt_cost);
        let adt = AdtLayout::read(&mem.data, adt_ptr);
        let span = adt.span();
        if span == 0 {
            return Ok(());
        }
        // Frontend loads hasbits and is_submessage bit fields in parallel
        // (Section 4.5.3) and scans word-by-word.
        let hasbits_addr = obj_ptr + adt.hasbits_offset;
        let hasbits_bytes = span.div_ceil(8) as usize;
        let hb_cost = mem
            .system
            .pipelined(hasbits_addr, hasbits_bytes, AccessKind::Read);
        let sub_cost = mem
            .system
            .pipelined(adt.is_submessage, hasbits_bytes, AccessKind::Read);
        *frontend += hb_cost.max(sub_cost) + span.div_ceil(64);

        // Reverse field-number order (Section 4.5.1).
        for number in (adt.min_field..=adt.max_field).rev() {
            let bit = u64::from(number - adt.min_field);
            let set = mem.data.read_u8(hasbits_addr + bit / 8) & (1 << (bit % 8)) != 0;
            if !set {
                continue;
            }
            *frontend += 1; // issue the handle-field-op
            if self.config.dense_hasbits {
                // Rejected alternative (Section 4.2): dense hasbits need a
                // field-number -> dense-bit mapping read per present field.
                *frontend += mem
                    .system
                    .access(adt.base + 4096 + bit * 4, 4, AccessKind::Read);
            }
            let entry_addr = adt.entries + bit * ADT_ENTRY_BYTES;
            let (entry_cost, entry_hit) =
                self.adt_cache
                    .load(&mut mem.system, entry_addr, ADT_ENTRY_BYTES as usize);
            *frontend += entry_cost;
            self.emit_adt(*frontend, entry_hit, entry_cost);
            let mut entry_bytes = [0u8; ADT_ENTRY_BYTES as usize];
            mem.data.read_bytes(entry_addr, &mut entry_bytes);
            let entry = FieldEntry::from_bytes(&entry_bytes);
            if !entry.is_defined() {
                continue; // stray hasbit in a field-number gap
            }
            *fields += 1;
            let slot = obj_ptr + u64::from(entry.offset);

            if entry.type_code == TypeCode::Message {
                // Context switch into the sub-message (the is_submessage bit
                // told the frontend this without waiting for the full entry).
                *frontend += 1;
                if depth + 1 >= self.config.stack_depth {
                    stats.stack_spills += 1;
                    *frontend += self.config.stack_spill_cycles;
                }
                stats.stack_pushes += 1;
                if entry.repeated {
                    let header = read_timed_u64(mem, slot, frontend);
                    let data = read_timed_u64(mem, header, frontend);
                    let count = read_timed_u64(mem, header + 8, frontend);
                    for i in (0..count).rev() {
                        let elem_ptr = read_timed_u64(mem, data + i * 8, frontend);
                        let before = writer.cursor();
                        self.ser_message(
                            mem,
                            writer,
                            pool,
                            entry.sub_adt,
                            elem_ptr,
                            frontend,
                            fields,
                            stats,
                            depth + 1,
                        )?;
                        let len = before - writer.cursor();
                        self.inject_length_delimited_key(mem, writer, number, len)?;
                    }
                } else {
                    let sub_obj = read_timed_u64(mem, slot, frontend);
                    let before = writer.cursor();
                    self.ser_message(
                        mem,
                        writer,
                        pool,
                        entry.sub_adt,
                        sub_obj,
                        frontend,
                        fields,
                        stats,
                        depth + 1,
                    )?;
                    let len = before - writer.cursor();
                    self.inject_length_delimited_key(mem, writer, number, len)?;
                }
                continue;
            }

            // Non-sub-message field: one handle-field-op to an FSU.
            let fsu_cost = self.ser_field(mem, writer, entry, number, slot, stats)?;
            let (unit, start_busy) = pool.dispatch(fsu_cost);
            if self.tracer.is_some() {
                self.emit(protoacc_trace::TraceEvent::FsuOp {
                    instance: self.trace_instance,
                    unit,
                    start: self.trace_origin + start_busy,
                    cycles: fsu_cost,
                    field_number: number,
                });
            }
        }
        Ok(())
    }

    /// Serializes one non-message field, returning the FSU busy cycles.
    fn ser_field(
        &mut self,
        mem: &mut Memory,
        writer: &mut ReverseWriter,
        entry: FieldEntry,
        number: u32,
        slot: u64,
        stats: &mut AccelStats,
    ) -> Result<Cycles, AccelError> {
        let mut cost: Cycles = 1; // encode cycle
        match entry.type_code {
            TypeCode::Str | TypeCode::Bytes => {
                if entry.repeated {
                    let header = slot_read(mem, slot, &mut cost);
                    let data = slot_read(mem, header, &mut cost);
                    let count = slot_read(mem, header + 8, &mut cost);
                    for i in (0..count).rev() {
                        let str_obj = slot_read(mem, data + i * 8, &mut cost);
                        cost += self.emit_string(mem, writer, str_obj, number, stats)?;
                    }
                } else {
                    let str_obj = slot_read(mem, slot, &mut cost);
                    cost += self.emit_string(mem, writer, str_obj, number, stats)?;
                }
            }
            scalar => {
                let size = scalar.scalar_size().expect("scalar type code");
                if entry.repeated {
                    let header = slot_read(mem, slot, &mut cost);
                    let data = slot_read(mem, header, &mut cost);
                    let count = slot_read(mem, header + 8, &mut cost);
                    cost += mem
                        .system
                        .access(data, (count * size) as usize, AccessKind::Read);
                    if entry.packed {
                        let before = writer.cursor();
                        for i in (0..count).rev() {
                            let bits = read_scalar_bits(mem, data + i * size, size);
                            cost += self.emit_packed_element(mem, writer, scalar, bits, stats)?;
                        }
                        let body_len = before - writer.cursor();
                        writer.prepend_varint(&mut *mem, body_len)?;
                        let key = FieldKey::new(number, WireType::LengthDelimited)
                            .expect("valid field number");
                        let encoded = CombVarintEncoder::encode(key.encoded());
                        writer.prepend(mem, encoded.as_slice())?;
                        stats.varints += 2;
                        cost += 2;
                    } else {
                        for i in (0..count).rev() {
                            let bits = read_scalar_bits(mem, data + i * size, size);
                            cost += self
                                .emit_scalar_with_key(mem, writer, scalar, number, bits, stats)?;
                        }
                    }
                } else {
                    cost += mem.system.access(slot, size as usize, AccessKind::Read);
                    let bits = read_scalar_bits(mem, slot, size);
                    cost += self.emit_scalar_with_key(mem, writer, scalar, number, bits, stats)?;
                }
            }
        }
        Ok(cost)
    }

    /// Emits `[key][value]` for a scalar field (value first: the writer
    /// prepends).
    fn emit_scalar_with_key(
        &mut self,
        mem: &mut Memory,
        writer: &mut ReverseWriter,
        type_code: TypeCode,
        number: u32,
        bits: u64,
        stats: &mut AccelStats,
    ) -> Result<Cycles, AccelError> {
        let cost = self.emit_packed_element(mem, writer, type_code, bits, stats)?;
        let key = FieldKey::new(number, type_code.wire_type()).expect("valid field number");
        let encoded = CombVarintEncoder::encode(key.encoded());
        writer.prepend(mem, encoded.as_slice())?;
        stats.varints += 1;
        Ok(cost + 1)
    }

    /// Emits just a scalar value (no key), as inside packed bodies.
    fn emit_packed_element(
        &mut self,
        mem: &mut Memory,
        writer: &mut ReverseWriter,
        type_code: TypeCode,
        bits: u64,
        stats: &mut AccelStats,
    ) -> Result<Cycles, AccelError> {
        match type_code.wire_type() {
            WireType::Varint => {
                let raw = type_code.wire_varint_from_bits(bits);
                let encoded = CombVarintEncoder::encode(raw);
                writer.prepend(mem, encoded.as_slice())?;
                stats.varints += 1;
                Ok(1) // single-cycle combinational encode
            }
            WireType::Bits32 => {
                writer.prepend(mem, &(bits as u32).to_le_bytes())?;
                Ok(1)
            }
            WireType::Bits64 => {
                writer.prepend(mem, &bits.to_le_bytes())?;
                Ok(1)
            }
            _ => unreachable!("length-delimited handled elsewhere"),
        }
    }

    /// Emits `[key][len][payload]` for a string/bytes field.
    fn emit_string(
        &mut self,
        mem: &mut Memory,
        writer: &mut ReverseWriter,
        string_obj: u64,
        number: u32,
        stats: &mut AccelStats,
    ) -> Result<Cycles, AccelError> {
        let mut cost: Cycles = 0;
        let data_ptr = slot_read(mem, string_obj, &mut cost);
        let len = slot_read(mem, string_obj + 8, &mut cost);
        cost += mem
            .system
            .pipelined(data_ptr, len as usize, AccessKind::Read);
        let payload = mem.data.read_vec(data_ptr, len as usize);
        writer.prepend(mem, &payload)?;
        writer.prepend_varint(&mut *mem, len)?;
        let key = FieldKey::new(number, WireType::LengthDelimited).expect("valid field number");
        let encoded = CombVarintEncoder::encode(key.encoded());
        writer.prepend(mem, encoded.as_slice())?;
        stats.varints += 2;
        Ok(cost + 2)
    }

    /// The memwriter's end-of-message action: inject the sub-message's
    /// length and key below its fields.
    fn inject_length_delimited_key(
        &mut self,
        mem: &mut Memory,
        writer: &mut ReverseWriter,
        number: u32,
        len: u64,
    ) -> Result<(), AccelError> {
        writer.prepend_varint(mem, len)?;
        let key = FieldKey::new(number, WireType::LengthDelimited).expect("valid field number");
        let encoded = CombVarintEncoder::encode(key.encoded());
        writer.prepend(mem, encoded.as_slice())?;
        Ok(())
    }
}

fn read_timed_u64(mem: &mut Memory, addr: u64, cycles: &mut Cycles) -> u64 {
    *cycles += mem.system.pipelined(addr, 8, AccessKind::Read);
    mem.data.read_u64(addr)
}

fn slot_read(mem: &mut Memory, addr: u64, cost: &mut Cycles) -> u64 {
    // The FSU blocks on its own loads; running several FSUs in parallel is
    // what hides this latency (Section 4.5.4).
    *cost += mem.system.access(addr, 8, AccessKind::Read);
    mem.data.read_u64(addr)
}

fn read_scalar_bits(mem: &Memory, addr: u64, size: u64) -> u64 {
    match size {
        1 => u64::from(mem.data.read_u8(addr)),
        4 => u64::from(mem.data.read_u32(addr)),
        8 => mem.data.read_u64(addr),
        other => unreachable!("no {other}-byte scalars"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use protoacc_mem::{MemConfig, Memory};
    use protoacc_runtime::{
        object, reference, write_adts, BumpArena, MessageLayouts, MessageValue, Value,
    };
    use protoacc_schema::{FieldType, SchemaBuilder};

    fn unit_harness() -> (
        protoacc_schema::Schema,
        MessageLayouts,
        Memory,
        protoacc_runtime::AdtTables,
        BumpArena,
        protoacc_schema::MessageId,
    ) {
        let mut b = SchemaBuilder::new();
        let id = b.define("U", |m| {
            m.optional("a", FieldType::UInt64, 1)
                .optional("b", FieldType::Double, 3)
                .optional("s", FieldType::String, 7);
        });
        let schema = b.build().unwrap();
        let layouts = MessageLayouts::compute(&schema);
        let mut mem = Memory::new(MemConfig::default());
        let mut arena = BumpArena::new(0x1_0000, 1 << 22);
        let adts = write_adts(&schema, &layouts, &mut mem.data, &mut arena).unwrap();
        (schema, layouts, mem, adts, arena, id)
    }

    #[test]
    fn run_reports_stage_breakdown_and_matches_reference() {
        let (schema, layouts, mut mem, adts, mut arena, id) = unit_harness();
        let mut m = MessageValue::new(id);
        m.set_unchecked(1, Value::UInt64(u64::MAX));
        m.set_unchecked(3, Value::Double(2.5));
        m.set_unchecked(7, Value::Str("stage breakdown".into()));
        let obj = object::write_message(&mut mem.data, &schema, &layouts, &mut arena, &m).unwrap();
        let mut unit = SerUnit::new(AccelConfig::default());
        let mut writer = ReverseWriter::new(0x40_0000, 1 << 16, 16);
        let mut stats = AccelStats::default();
        let run = unit
            .run(&mut mem, &mut writer, adts.addr(id), obj, &mut stats)
            .unwrap();
        assert!(run.frontend_cycles > 0);
        assert!(run.fsu_cycles > 0);
        assert!(run.memwriter_cycles > 0);
        assert_eq!(
            run.cycles,
            AccelConfig::default().rocc_dispatch_cycles
                + run
                    .frontend_cycles
                    .max(run.fsu_cycles)
                    .max(run.memwriter_cycles)
        );
        assert_eq!(run.fields, 3);
        assert_eq!(
            mem.data.read_vec(run.out_addr, run.out_len as usize),
            reference::encode(&m, &schema).unwrap()
        );
    }

    #[test]
    fn empty_object_serializes_to_nothing() {
        let (schema, layouts, mut mem, adts, mut arena, id) = unit_harness();
        let obj = object::write_message(
            &mut mem.data,
            &schema,
            &layouts,
            &mut arena,
            &MessageValue::new(id),
        )
        .unwrap();
        let mut unit = SerUnit::new(AccelConfig::default());
        let mut writer = ReverseWriter::new(0x40_0000, 1 << 16, 16);
        let mut stats = AccelStats::default();
        let run = unit
            .run(&mut mem, &mut writer, adts.addr(id), obj, &mut stats)
            .unwrap();
        assert_eq!(run.out_len, 0);
        assert_eq!(run.fields, 0);
    }

    #[test]
    fn output_region_overflow_is_detected() {
        let (schema, layouts, mut mem, adts, mut arena, id) = unit_harness();
        let mut m = MessageValue::new(id);
        m.set_unchecked(7, Value::Str("far too long for the region".into()));
        let obj = object::write_message(&mut mem.data, &schema, &layouts, &mut arena, &m).unwrap();
        let mut unit = SerUnit::new(AccelConfig::default());
        let mut writer = ReverseWriter::new(0x40_0000, 8, 16); // 8-byte region
        let mut stats = AccelStats::default();
        assert!(matches!(
            unit.run(&mut mem, &mut writer, adts.addr(id), obj, &mut stats),
            Err(AccelError::OutputOverflow)
        ));
    }

    #[test]
    fn consecutive_outputs_pack_downward() {
        let (schema, layouts, mut mem, adts, mut arena, id) = unit_harness();
        let mut m = MessageValue::new(id);
        m.set_unchecked(1, Value::UInt64(7));
        let obj = object::write_message(&mut mem.data, &schema, &layouts, &mut arena, &m).unwrap();
        let mut unit = SerUnit::new(AccelConfig::default());
        let mut writer = ReverseWriter::new(0x40_0000, 1 << 12, 16);
        let mut stats = AccelStats::default();
        let first = unit
            .run(&mut mem, &mut writer, adts.addr(id), obj, &mut stats)
            .unwrap();
        let second = unit
            .run(&mut mem, &mut writer, adts.addr(id), obj, &mut stats)
            .unwrap();
        assert_eq!(second.out_addr + second.out_len, first.out_addr);
        assert_eq!(
            mem.data.read_vec(second.out_addr, second.out_len as usize),
            mem.data.read_vec(first.out_addr, first.out_len as usize)
        );
    }
}
