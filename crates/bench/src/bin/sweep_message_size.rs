//! Offload-granularity sweep (§3.5's question: "what is the granularity of
//! operations the accelerator needs to handle?").
//!
//! Sweeps total message size across the Figure 3 buckets with a fixed
//! varint/string mix and reports throughput per system — showing that the
//! near-core accelerator wins even at the 8-byte messages that dominate the
//! fleet, where any PCIe-attached design would drown in offload overhead.

use protoacc_bench::{measure, Direction, SystemKind, Workload};
use protoacc_runtime::{MessageValue, Value};
use protoacc_schema::{FieldType, SchemaBuilder};

fn workload_of_size(target_bytes: usize) -> Workload {
    let mut b = SchemaBuilder::new();
    let id = b.define("Sized", |m| {
        m.optional("a", FieldType::UInt64, 1)
            .optional("b", FieldType::UInt64, 2)
            .optional("payload", FieldType::Bytes, 3);
    });
    let schema = b.build().expect("sweep schema");
    // Two 3-byte varints + key/len overhead; remainder is payload.
    let overhead = 2 * (1 + 3) + 2;
    let payload = target_bytes.saturating_sub(overhead);
    let messages = (0..16)
        .map(|_| {
            let mut m = MessageValue::new(id);
            m.set_unchecked(1, Value::UInt64(1 << 14));
            m.set_unchecked(2, Value::UInt64(1 << 15));
            if payload > 0 {
                m.set_unchecked(3, Value::Bytes(vec![0x5a; payload]));
            }
            m
        })
        .collect();
    Workload {
        name: format!("{target_bytes}B"),
        schema,
        type_id: id,
        messages,
    }
}

fn main() {
    println!("Message-size sweep (deserialization throughput, Gbits/s)");
    println!(
        "{:<12} {:>14} {:>14} {:>18} {:>10}",
        "msg bytes", "riscv-boom", "Xeon", "riscv-boom-accel", "accel/boom"
    );
    for size in [8usize, 32, 64, 128, 256, 512, 1024, 4096, 32768, 131072] {
        let w = workload_of_size(size);
        let boom = measure(SystemKind::RiscvBoom, &w, Direction::Deserialize);
        let xeon = measure(SystemKind::Xeon, &w, Direction::Deserialize);
        let accel = measure(SystemKind::RiscvBoomAccel, &w, Direction::Deserialize);
        println!(
            "{size:<12} {:>14.3} {:>14.3} {:>18.3} {:>9.2}x",
            boom.gbits,
            xeon.gbits,
            accel.gbits,
            accel.gbits / boom.gbits
        );
    }
    println!();
    println!(
        "(per §3.5, 56% of fleet messages are <=32 B: the speedup at the small end is the\n\
         case a PCIe-attached accelerator cannot win, motivating near-core placement)"
    );
}
