use std::error::Error;
use std::fmt;

/// Error produced while encoding or decoding the protobuf wire format.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum WireError {
    /// The input ended before a complete value could be decoded.
    Truncated {
        /// Byte offset at which more input was needed.
        offset: usize,
    },
    /// A varint ran past the 10-byte maximum without a terminating byte.
    VarintOverflow {
        /// Byte offset of the first byte of the offending varint.
        offset: usize,
    },
    /// A field key carried a wire type that proto2 does not define or that
    /// this implementation does not accept (the deprecated group types).
    InvalidWireType {
        /// The raw 3-bit wire-type value.
        raw: u8,
    },
    /// A field key decoded to field number zero, which the specification
    /// reserves.
    ZeroFieldNumber,
    /// A field number exceeded the proto2 maximum of 2^29 - 1.
    FieldNumberOutOfRange {
        /// The decoded (invalid) field number.
        number: u64,
    },
    /// A length-delimited field declared more bytes than remain in the input.
    LengthOutOfBounds {
        /// Declared length in bytes.
        declared: u64,
        /// Bytes actually remaining.
        remaining: usize,
    },
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated { offset } => {
                write!(f, "input truncated at byte offset {offset}")
            }
            WireError::VarintOverflow { offset } => {
                write!(f, "varint longer than 10 bytes at offset {offset}")
            }
            WireError::InvalidWireType { raw } => {
                write!(f, "invalid or unsupported wire type {raw}")
            }
            WireError::ZeroFieldNumber => write!(f, "field number zero is reserved"),
            WireError::FieldNumberOutOfRange { number } => {
                write!(f, "field number {number} exceeds the proto2 maximum")
            }
            WireError::LengthOutOfBounds {
                declared,
                remaining,
            } => write!(
                f,
                "length-delimited field declares {declared} bytes but only {remaining} remain"
            ),
        }
    }
}

impl Error for WireError {}
