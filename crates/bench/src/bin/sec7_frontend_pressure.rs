//! Section 7 study: instruction-cache and branch-predictor pressure.
//!
//! "protoc generates large amounts of branch-heavy code ... a call to
//! serialize or deserialize can even effectively act like an I$ and branch
//! predictor flush. Offloading ... eliminates both of these pressures. This
//! can save significant CPU cycles, potentially as many as accelerating
//! protobufs itself."
//!
//! The study re-runs the Figure 11a set with a per-call frontend-refill tax
//! on the software baselines (the accelerator's RoCC path has no generated
//! code to refill) and reports how the speedup grows with the assumed
//! refill cost.

use protoacc_bench::ubench::nonalloc_workloads;
use protoacc_bench::{geomean, measure, Direction, SystemKind, Workload};
use protoacc_cpu::{CostTable, SoftwareCodec};
use protoacc_mem::Memory;
use protoacc_runtime::{BumpArena, MessageLayouts};

/// Measures the boom baseline with a given frontend-flush tax.
fn boom_with_flush(workload: &Workload, flush: u64) -> f64 {
    let cost = CostTable {
        frontend_flush_cycles: flush,
        ..CostTable::boom()
    };
    let layouts = MessageLayouts::compute(&workload.schema);
    let mut mem = Memory::new(cost.mem);
    let codec = SoftwareCodec::new(&cost);
    let mut arena = BumpArena::new(0x1_0000_0000, 1 << 28);
    // Stage inputs.
    let mut inputs = Vec::new();
    let mut cursor = 0x2000_0000u64;
    for m in &workload.messages {
        let wire = protoacc_runtime::reference::encode(m, &workload.schema).unwrap();
        mem.data.write_bytes(cursor, &wire);
        inputs.push((cursor, wire.len() as u64));
        cursor += wire.len() as u64 + 16;
    }
    let mut cycles = 0u64;
    let mut bytes = 0u64;
    for _ in 0..8 {
        for &(addr, len) in &inputs {
            let dest = arena
                .alloc(layouts.layout(workload.type_id).object_size(), 8)
                .unwrap();
            let run = codec
                .deserialize(
                    &mut mem,
                    &workload.schema,
                    &layouts,
                    workload.type_id,
                    addr,
                    len,
                    dest,
                    &mut arena,
                )
                .unwrap();
            cycles += run.cycles;
            bytes += len;
        }
        arena.reset();
    }
    bytes as f64 * 8.0 * cost.freq_ghz / cycles as f64
}

fn main() {
    let workloads = nonalloc_workloads();
    println!("Section 7: frontend (I$/BPU) pressure study — Fig 11a set, deserialization");
    println!(
        "{:<22} {:>16} {:>16}",
        "flush cycles/call", "boom geomean Gb/s", "accel speedup"
    );
    let accel: Vec<f64> = workloads
        .iter()
        .map(|w| measure(SystemKind::RiscvBoomAccel, w, Direction::Deserialize).gbits)
        .collect();
    let accel_geo = geomean(&accel);
    let mut base_speedup = 0.0;
    for flush in [0u64, 500, 1000, 2000, 4000] {
        let boom: Vec<f64> = workloads
            .iter()
            .map(|w| boom_with_flush(w, flush))
            .collect();
        let boom_geo = geomean(&boom);
        let speedup = accel_geo / boom_geo;
        if flush == 0 {
            base_speedup = speedup;
        }
        println!("{flush:<22} {boom_geo:>16.3} {speedup:>15.2}x");
    }
    println!();
    println!(
        "the paper's point: under frontend pressure the effective speedup grows well past \
         the warm-cache {base_speedup:.1}x, because offloading also removes the generated \
         code's I$/BPU footprint"
    );
}
