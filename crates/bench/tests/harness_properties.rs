//! Properties of the measurement harness itself: determinism, and the
//! paper's headline shape facts that must hold on every build.

use protoacc_bench::ubench::{alloc_workloads, nonalloc_workloads};
use protoacc_bench::{measure, Direction, SystemKind};

/// The whole simulator is deterministic: measuring the same cell twice
/// produces the identical simulated cycle count (the FireSim-like
/// repeatability claim in the README).
#[test]
fn measurements_are_deterministic() {
    let workloads = nonalloc_workloads();
    let w = &workloads[5]; // varint-5
    for system in SystemKind::ALL {
        let a = measure(system, w, Direction::Deserialize);
        let b = measure(system, w, Direction::Deserialize);
        assert_eq!(a.cycles, b.cycles, "{}", system.label());
        assert_eq!(a.wire_bytes, b.wire_bytes);
    }
}

/// Figure 11a/b shape: varint throughput rises with varint size on the
/// accelerated system.
#[test]
fn accel_varint_throughput_rises_with_size() {
    let workloads = nonalloc_workloads();
    let small = measure(
        SystemKind::RiscvBoomAccel,
        &workloads[1],
        Direction::Deserialize,
    );
    let large = measure(
        SystemKind::RiscvBoomAccel,
        &workloads[10],
        Direction::Deserialize,
    );
    assert!(
        large.gbits > 2.0 * small.gbits,
        "varint-10 {:.2} vs varint-1 {:.2}",
        large.gbits,
        small.gbits
    );
}

/// Figure 11d shape: on very-long-string *serialization* the Xeon nearly
/// closes the gap with the accelerator (both are memcpy-bound), while the
/// accelerator keeps a clear deserialization lead (it also allocates).
#[test]
fn xeon_closes_gap_on_very_long_string_serialization() {
    let workloads = alloc_workloads();
    let very_long = workloads
        .iter()
        .find(|w| w.name == "string_very_long")
        .expect("workload defined");
    let ser_xeon = measure(SystemKind::Xeon, very_long, Direction::Serialize);
    let ser_accel = measure(SystemKind::RiscvBoomAccel, very_long, Direction::Serialize);
    let ratio = ser_accel.gbits / ser_xeon.gbits;
    assert!(
        (0.7..1.6).contains(&ratio),
        "ser accel/xeon ratio {ratio:.2} should be near parity"
    );
    let deser_xeon = measure(SystemKind::Xeon, very_long, Direction::Deserialize);
    let deser_accel = measure(
        SystemKind::RiscvBoomAccel,
        very_long,
        Direction::Deserialize,
    );
    assert!(
        deser_accel.gbits > 1.2 * deser_xeon.gbits,
        "deser accel {:.2} vs xeon {:.2}",
        deser_accel.gbits,
        deser_xeon.gbits
    );
}

/// The sub-message microbenchmarks are the slowest class on every system
/// (per-byte overhead of nesting), matching Figure 11c's left-to-right
/// profile.
#[test]
fn submessage_benchmarks_are_slowest_per_byte() {
    let workloads = alloc_workloads();
    let bool_sub = workloads.iter().find(|w| w.name == "bool-SUB").unwrap();
    let plain = &nonalloc_workloads()[5];
    for system in SystemKind::ALL {
        let sub = measure(system, bool_sub, Direction::Deserialize);
        let flat = measure(system, plain, Direction::Deserialize);
        assert!(
            sub.gbits < flat.gbits,
            "{}: bool-SUB {:.2} should trail varint-5 {:.2}",
            system.label(),
            sub.gbits,
            flat.gbits
        );
    }
}
