//! Reference wire-format reader over a byte slice.

use crate::{varint, FieldKey, WireError, WireType};

/// Streaming decoder over a serialized protobuf buffer.
///
/// Deserialization is inherently serial (Section 2.2): the key of the Nth
/// field must be decoded before the (N+1)th field's location is known. The
/// reader models exactly that cursor.
///
/// ```rust
/// use protoacc_wire::{WireReader, WireType};
/// let buf = [0x08, 0x96, 0x01];
/// let mut r = WireReader::new(&buf);
/// let key = r.read_key()?;
/// assert_eq!(key.field_number(), 1);
/// assert_eq!(r.read_varint()?, 150);
/// assert!(r.is_at_end());
/// # Ok::<(), protoacc_wire::WireError>(())
/// ```
#[derive(Debug, Clone)]
pub struct WireReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> WireReader<'a> {
    /// Creates a reader positioned at the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        WireReader { buf, pos: 0 }
    }

    /// Current byte offset from the start of the buffer.
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Whether the cursor has reached the end of the buffer.
    pub fn is_at_end(&self) -> bool {
        self.pos == self.buf.len()
    }

    /// Reads a raw varint.
    ///
    /// # Errors
    ///
    /// Propagates [`varint::decode`] failures with offsets rebased to this
    /// buffer.
    pub fn read_varint(&mut self) -> Result<u64, WireError> {
        let (value, len) = varint::decode(&self.buf[self.pos..]).map_err(|e| match e {
            WireError::Truncated { offset } => WireError::Truncated {
                offset: self.pos + offset,
            },
            WireError::VarintOverflow { .. } => WireError::VarintOverflow { offset: self.pos },
            other => other,
        })?;
        self.pos += len;
        Ok(value)
    }

    /// Reads and validates a field key.
    ///
    /// # Errors
    ///
    /// Fails on truncation, invalid wire types, or invalid field numbers.
    pub fn read_key(&mut self) -> Result<FieldKey, WireError> {
        let encoded = self.read_varint()?;
        FieldKey::from_encoded(encoded)
    }

    /// Reads a fixed 64-bit little-endian value.
    ///
    /// # Errors
    ///
    /// [`WireError::Truncated`] if fewer than 8 bytes remain.
    pub fn read_fixed64(&mut self) -> Result<u64, WireError> {
        let bytes = self.take(8)?;
        Ok(u64::from_le_bytes(bytes.try_into().expect("8-byte slice")))
    }

    /// Reads a fixed 32-bit little-endian value.
    ///
    /// # Errors
    ///
    /// [`WireError::Truncated`] if fewer than 4 bytes remain.
    pub fn read_fixed32(&mut self) -> Result<u32, WireError> {
        let bytes = self.take(4)?;
        Ok(u32::from_le_bytes(bytes.try_into().expect("4-byte slice")))
    }

    /// Reads a length-delimited payload: varint length followed by that many
    /// bytes, returned as a sub-slice.
    ///
    /// # Errors
    ///
    /// [`WireError::LengthOutOfBounds`] if the declared length exceeds the
    /// remaining input.
    pub fn read_length_delimited(&mut self) -> Result<&'a [u8], WireError> {
        let declared = self.read_varint()?;
        let remaining = self.remaining();
        if declared > remaining as u64 {
            return Err(WireError::LengthOutOfBounds {
                declared,
                remaining,
            });
        }
        self.take(declared as usize)
    }

    /// Skips over the payload of a field with the given wire type, without
    /// interpreting it.
    ///
    /// # Errors
    ///
    /// Fails on truncation or on the deprecated group wire types, which
    /// cannot be skipped without tracking nesting.
    pub fn skip_value(&mut self, wire_type: WireType) -> Result<(), WireError> {
        match wire_type {
            WireType::Varint => {
                self.read_varint()?;
            }
            WireType::Bits64 => {
                self.take(8)?;
            }
            WireType::Bits32 => {
                self.take(4)?;
            }
            WireType::LengthDelimited => {
                self.read_length_delimited()?;
            }
            WireType::StartGroup | WireType::EndGroup => {
                return Err(WireError::InvalidWireType {
                    raw: wire_type.as_raw(),
                });
            }
        }
        Ok(())
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::Truncated {
                offset: self.buf.len(),
            });
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::WireWriter;

    #[test]
    fn reads_back_what_writer_wrote() {
        let mut w = WireWriter::new();
        w.write_varint_field(1, 42).unwrap();
        w.write_fixed64_field(2, 0xdead_beef).unwrap();
        w.write_length_delimited_field(3, b"hi").unwrap();
        w.write_fixed32_field(4, 7).unwrap();
        let buf = w.into_bytes();

        let mut r = WireReader::new(&buf);
        let k1 = r.read_key().unwrap();
        assert_eq!((k1.field_number(), k1.wire_type()), (1, WireType::Varint));
        assert_eq!(r.read_varint().unwrap(), 42);
        let k2 = r.read_key().unwrap();
        assert_eq!((k2.field_number(), k2.wire_type()), (2, WireType::Bits64));
        assert_eq!(r.read_fixed64().unwrap(), 0xdead_beef);
        let k3 = r.read_key().unwrap();
        assert_eq!(k3.wire_type(), WireType::LengthDelimited);
        assert_eq!(r.read_length_delimited().unwrap(), b"hi");
        let k4 = r.read_key().unwrap();
        assert_eq!(k4.wire_type(), WireType::Bits32);
        assert_eq!(r.read_fixed32().unwrap(), 7);
        assert!(r.is_at_end());
    }

    #[test]
    fn truncated_fixed_reads_fail() {
        let mut r = WireReader::new(&[1, 2, 3]);
        assert!(r.read_fixed64().is_err());
        let mut r = WireReader::new(&[1, 2, 3]);
        assert!(r.read_fixed32().is_err());
    }

    #[test]
    fn length_overrun_is_reported_precisely() {
        // Declares 5 payload bytes, provides 2.
        let buf = [0x05, 0xaa, 0xbb];
        let mut r = WireReader::new(&buf);
        assert_eq!(
            r.read_length_delimited(),
            Err(WireError::LengthOutOfBounds {
                declared: 5,
                remaining: 2
            })
        );
    }

    #[test]
    fn skip_value_advances_over_every_type() {
        let mut w = WireWriter::new();
        w.write_varint_field(1, u64::MAX).unwrap();
        w.write_fixed64_field(2, 1).unwrap();
        w.write_length_delimited_field(3, &[0u8; 100]).unwrap();
        w.write_fixed32_field(4, 1).unwrap();
        let buf = w.into_bytes();
        let mut r = WireReader::new(&buf);
        for _ in 0..4 {
            let key = r.read_key().unwrap();
            r.skip_value(key.wire_type()).unwrap();
        }
        assert!(r.is_at_end());
    }

    #[test]
    fn skip_rejects_group_types() {
        let mut r = WireReader::new(&[]);
        assert!(r.skip_value(WireType::StartGroup).is_err());
        assert!(r.skip_value(WireType::EndGroup).is_err());
    }

    #[test]
    fn varint_error_offsets_are_rebased() {
        // One good field, then a truncated varint at offset 2.
        let buf = [0x08, 0x01, 0x80];
        let mut r = WireReader::new(&buf);
        r.read_key().unwrap();
        r.read_varint().unwrap();
        assert_eq!(r.read_varint(), Err(WireError::Truncated { offset: 3 }));
    }
}
