//! Wall-clock benches, one group per paper table/figure, timing the
//! simulation kernels that regenerate each result (host wall time of the
//! simulator — the figure binaries report the *simulated* cycles).
//!
//! Uses a tiny self-contained timing harness (`harness = false`) instead of
//! an external benchmark framework so `cargo bench` works with no network
//! access. Each kernel is warmed up, then timed over enough iterations to
//! smooth scheduler noise, and reported as ns/iter.

use std::hint::black_box;
use std::time::Instant;

use hyperprotobench::{Generator, ServiceProfile};
use protoacc_bench::ubench::nonalloc_workloads;
use protoacc_bench::{measure, Direction, SystemKind, Workload};
use protoacc_cpu::CostTable;
use protoacc_fleet::gwp::FleetProfile;
use protoacc_fleet::protobufz::{estimate_size_histogram, ShapeModel};
use protoacc_schema::FieldType;
use protoacc_wire::hw::{CombVarintDecoder, CombVarintEncoder};
use protoacc_wire::varint;
use xrand::StdRng;

/// Times `f` and prints a `name ... ns/iter` row. Iteration count adapts so
/// every kernel gets roughly the same (short) wall budget.
fn bench<T>(name: &str, mut f: impl FnMut() -> T) {
    // Warm-up + calibration: find an iteration count worth ~50 ms.
    let start = Instant::now();
    let mut calib_iters: u32 = 0;
    while start.elapsed().as_millis() < 10 || calib_iters < 3 {
        black_box(f());
        calib_iters += 1;
        if calib_iters >= 1_000_000 {
            break;
        }
    }
    let per_iter = start.elapsed().as_nanos().max(1) / u128::from(calib_iters);
    let iters = (50_000_000 / per_iter.max(1)).clamp(3, 1_000_000) as u32;
    let timed = Instant::now();
    for _ in 0..iters {
        black_box(f());
    }
    let ns = timed.elapsed().as_nanos() / u128::from(iters);
    println!("{name:<48} {ns:>12} ns/iter  ({iters} iters)");
}

fn bench_table1() {
    bench("table1/classify_all_field_types", || {
        for ft in FieldType::SCALARS {
            black_box(ft.perf_class());
            black_box(ft.wire_type());
        }
    });
}

fn bench_fig2() {
    let profile = FleetProfile::google_2021();
    bench("fig2/sample_and_estimate_10k_gwp_cycles", || {
        let mut rng = StdRng::seed_from_u64(2);
        let samples = profile.sample_cycles(&mut rng, 10_000);
        black_box(FleetProfile::estimate_shares(&samples));
    });
}

fn bench_fig3_fig4() {
    let model = ShapeModel::google_2021();
    bench("fig3_fig4/sample_1k_messages_and_histogram", || {
        let mut rng = StdRng::seed_from_u64(3);
        let samples = model.sample_population(&mut rng, 1000);
        black_box(estimate_size_histogram(&samples));
    });
}

fn bench_fig5_fig6() {
    // One representative slice measurement (the full model runs 24).
    let cost = CostTable::boom();
    bench("fig5_fig6/measure_varint5_slice_on_boom", || {
        black_box(protoacc_fleet::model24::Model24::build_single_for_bench(
            &cost,
        ))
    });
}

fn bench_fig11() {
    let workloads = nonalloc_workloads();
    let varint5 = workloads
        .iter()
        .find(|w| w.name == "varint-5")
        .expect("varint-5 defined")
        .clone();
    for system in SystemKind::ALL {
        bench(&format!("fig11/varint5_deser_{}", system.label()), || {
            black_box(measure(system, &varint5, Direction::Deserialize))
        });
    }
}

fn bench_fig12_fig13() {
    let bench_set = Generator::new(ServiceProfile::bench(0), 1).generate(8);
    let workload = Workload {
        name: bench_set.profile.label(),
        schema: bench_set.schema,
        type_id: bench_set.type_id,
        messages: bench_set.messages,
    };
    bench("fig12_fig13/bench0_accel_deser", || {
        black_box(measure(
            SystemKind::RiscvBoomAccel,
            &workload,
            Direction::Deserialize,
        ))
    });
    bench("fig12_fig13/bench0_accel_ser", || {
        black_box(measure(
            SystemKind::RiscvBoomAccel,
            &workload,
            Direction::Serialize,
        ))
    });
}

fn bench_sec5_3() {
    let config = protoacc::AccelConfig::default();
    bench("sec5_3/asic_estimates", || {
        black_box(protoacc::asic::deserializer_estimate(&config));
        black_box(protoacc::asic::serializer_estimate(&config));
    });
}

fn bench_sec7() {
    use protoacc::{AccelConfig, ProtoAccelerator};
    use protoacc_mem::Memory;
    use protoacc_runtime::{object, write_adts, BumpArena, MessageLayouts};
    let bench_set = Generator::new(ServiceProfile::bench(0), 7).generate(4);
    let layouts = MessageLayouts::compute(&bench_set.schema);
    bench("sec7/accel_merge_bench0", || {
        let mut mem = Memory::new(protoacc_mem::MemConfig::default());
        let mut setup = BumpArena::new(0x1_0000, 1 << 26);
        let adts = write_adts(&bench_set.schema, &layouts, &mut mem.data, &mut setup).unwrap();
        let dst = object::write_message(
            &mut mem.data,
            &bench_set.schema,
            &layouts,
            &mut setup,
            &bench_set.messages[0],
        )
        .unwrap();
        let src = object::write_message(
            &mut mem.data,
            &bench_set.schema,
            &layouts,
            &mut setup,
            &bench_set.messages[1],
        )
        .unwrap();
        let mut accel = ProtoAccelerator::new(AccelConfig::default());
        accel.deser_assign_arena(0x1_0000_0000, 1 << 26);
        black_box(
            accel
                .do_proto_merge(&mut mem, adts.addr(bench_set.type_id), dst, src)
                .unwrap(),
        )
    });
}

fn bench_kernels() {
    let mut encoded = Vec::new();
    varint::encode(0x0123_4567_89ab, &mut encoded);
    let mut window = [0u8; 10];
    window[..encoded.len()].copy_from_slice(&encoded);
    bench("kernels/varint_software_decode", || {
        black_box(varint::decode(&encoded))
    });
    bench("kernels/varint_comb_decode", || {
        black_box(CombVarintDecoder::decode(&window))
    });
    bench("kernels/varint_comb_encode", || {
        black_box(CombVarintEncoder::encode(0x0123_4567_89ab))
    });
}

fn main() {
    // `cargo bench` passes harness flags like `--bench`; ignore them.
    bench_table1();
    bench_fig2();
    bench_fig3_fig4();
    bench_fig5_fig6();
    bench_fig11();
    bench_fig12_fig13();
    bench_sec5_3();
    bench_sec7();
    bench_kernels();
}
