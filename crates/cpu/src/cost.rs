//! Per-machine cycle cost tables.
//!
//! Constants are calibrated so the simulated baselines land in the
//! throughput regimes Figure 11 reports for `riscv-boom` and `Xeon`:
//! sub-Gbit/s small-varint deserialization on BOOM, single-digit Gbit/s on
//! Xeon, tens of Gbit/s on long-string memcpy paths (where the Xeon's wide
//! vector units shine), with serialization roughly 1.5-3x faster than
//! deserialization per byte.

use protoacc_mem::{CacheConfig, Cycles, MemConfig, TlbConfig};

/// Cycle costs of the primitive operations the software codec executes.
///
/// One table per modeled machine; see [`CostTable::boom`] and
/// [`CostTable::xeon`].
#[derive(Debug, Clone)]
pub struct CostTable {
    /// Human-readable machine name (matches the paper's legend).
    pub name: &'static str,
    /// Core clock in GHz, used to convert cycles to wall time.
    pub freq_ghz: f64,
    /// Per-field dispatch: switch on wire type, bounds checks, call overhead.
    /// protoc-generated parse loops are branchy; this dominates small fields.
    pub field_dispatch: Cycles,
    /// Per byte of the software varint decode loop.
    pub varint_decode_byte: Cycles,
    /// Per byte of the software varint encode loop.
    pub varint_encode_byte: Cycles,
    /// Zigzag transform.
    pub zigzag: Cycles,
    /// Fixed 32/64-bit load-modify-store beyond the memory-system charge.
    pub fixed_op: Cycles,
    /// Fixed overhead of starting a memcpy (call, alignment prologue).
    pub memcpy_setup: Cycles,
    /// Bytes the CPU copies per cycle once a memcpy is streaming
    /// (combining load/store width and ILP; Xeon has AVX).
    pub memcpy_bytes_per_cycle: u64,
    /// Heap allocation (tcmalloc-style fast path).
    pub alloc: Cycles,
    /// Constructing a std::string object around allocated storage.
    pub string_construct: Cycles,
    /// Constructing a sub-message object (ctor call, vptr, field init).
    pub message_construct: Cycles,
    /// Updating a hasbit (read-modify-write plus index math).
    pub hasbits_update: Cycles,
    /// Per-field cost of the ByteSize sizing pass that precedes
    /// serialization (Figure 2 shows ByteSize at 6.0% of protobuf cycles).
    pub byte_size_field: Cycles,
    /// Per-element overhead of appending to a repeated field (bounds check,
    /// size bump, occasional grow amortized separately).
    pub repeated_append: Cycles,
    /// One-time frontend refill charged per top-level (de)serialize call:
    /// protoc-generated code is large and branchy, and §7 notes a call "can
    /// even effectively act like an I$ and branch predictor flush". Zero in
    /// the default tables (the paper's Figure 11 methodology measures warm
    /// batches); the `sec7_frontend_pressure` study turns it on.
    pub frontend_flush_cycles: Cycles,
    /// Whether a bulk copy's load and store streams proceed concurrently
    /// (see [`CostTable::streaming_copy_cycles`]). True for the RISC-V SoC
    /// tables, whose Figure 5 slice costs imply the prefetcher hides the
    /// load stream behind the store stream; false for the Xeon, whose
    /// Figure 11 long-string deserialization throughput implies the two
    /// streams serialize: write-allocate RFO traffic for the cold
    /// destination competes with the payload reads for the same channel.
    pub copy_streams_overlap: bool,
    /// Memory hierarchy seen by this machine.
    pub mem: MemConfig,
}

impl CostTable {
    /// The `riscv-boom` baseline: SonicBOOM-class OoO core at 2 GHz with the
    /// paper's SoC uncore (weaker than the Xeon's, as the paper notes).
    pub fn boom() -> Self {
        CostTable {
            name: "riscv-boom",
            freq_ghz: 2.0,
            field_dispatch: 18,
            varint_decode_byte: 7,
            varint_encode_byte: 5,
            zigzag: 2,
            fixed_op: 4,
            memcpy_setup: 24,
            memcpy_bytes_per_cycle: 8,
            alloc: 96,
            string_construct: 24,
            message_construct: 48,
            hasbits_update: 4,
            byte_size_field: 14,
            repeated_append: 12,
            frontend_flush_cycles: 0,
            copy_streams_overlap: true,
            mem: MemConfig::default(),
        }
    }

    /// The `Xeon` baseline: one core (2 HT) of a Xeon E5-2686 v4 at 2.3 GHz
    /// base / 2.7 GHz turbo (modeled at turbo, as a single-threaded
    /// benchmark would run), with a server-class uncore.
    pub fn xeon() -> Self {
        CostTable {
            name: "Xeon",
            freq_ghz: 2.7,
            field_dispatch: 7,
            varint_decode_byte: 2,
            varint_encode_byte: 2,
            zigzag: 1,
            fixed_op: 2,
            memcpy_setup: 10,
            memcpy_bytes_per_cycle: 32,
            alloc: 32,
            string_construct: 10,
            message_construct: 18,
            hasbits_update: 2,
            byte_size_field: 5,
            repeated_append: 3,
            frontend_flush_cycles: 0,
            copy_streams_overlap: false,
            mem: MemConfig {
                // 32 KiB L1, 256 KiB L2, 45 MiB (modeled 32 MiB) LLC;
                // server DRAM ~80 ns ≈ 216 cycles at 2.7 GHz.
                l1: CacheConfig::new(32 * 1024, 8, 64),
                l2: CacheConfig::new(256 * 1024, 8, 64),
                llc: CacheConfig::new(32 * 1024 * 1024, 16, 64),
                l1_latency: 4,
                l2_latency: 12,
                llc_latency: 44,
                dram_latency: 216,
                tlb: TlbConfig {
                    entries: 64,
                    walk_cycles: 60,
                },
                max_outstanding: 16,
            },
        }
    }

    /// An in-order Rocket-class RISC-V core at 1.5 GHz — the weaker host
    /// the artifact appendix (A.7.1) mentions the accelerator can attach to
    /// instead of BOOM. No out-of-order overlap, so every per-op cost runs
    /// longer.
    pub fn rocket() -> Self {
        CostTable {
            name: "riscv-rocket",
            freq_ghz: 1.5,
            field_dispatch: 45,
            varint_decode_byte: 10,
            varint_encode_byte: 8,
            zigzag: 3,
            fixed_op: 6,
            memcpy_setup: 36,
            memcpy_bytes_per_cycle: 8,
            alloc: 110,
            string_construct: 36,
            message_construct: 60,
            hasbits_update: 6,
            byte_size_field: 22,
            repeated_append: 16,
            frontend_flush_cycles: 0,
            copy_streams_overlap: true,
            mem: MemConfig::default(),
        }
    }

    /// Cycles to copy `len` bytes, excluding the memory-system charge.
    pub fn memcpy_cycles(&self, len: usize) -> Cycles {
        if len == 0 {
            return 0;
        }
        self.memcpy_setup + (len as u64).div_ceil(self.memcpy_bytes_per_cycle)
    }

    /// Cycles for a streaming copy into freshly allocated storage, given the
    /// memory-system charges of the load stream (`read_stream`) and the store
    /// stream (`write_stream`).
    ///
    /// When [`copy_streams_overlap`](CostTable::copy_streams_overlap) is set,
    /// the hardware prefetcher hides the load stream behind the store stream
    /// and the copy loop runs concurrently with both, so the cost is the
    /// slowest of the three plus the fixed memcpy setup — not their sum.
    /// When it is clear, the load and store streams contend for the same
    /// memory channel and serialize against each other (only the copy loop
    /// still overlaps). Serialization's interleaved key/length/payload
    /// stores never get the overlapped treatment; see
    /// `SoftwareCodec::emit_string`.
    pub fn streaming_copy_cycles(
        &self,
        read_stream: Cycles,
        write_stream: Cycles,
        len: usize,
    ) -> Cycles {
        if len == 0 {
            return read_stream + write_stream;
        }
        let loop_cycles = (len as u64).div_ceil(self.memcpy_bytes_per_cycle);
        let streams = if self.copy_streams_overlap {
            read_stream.max(write_stream)
        } else {
            read_stream + write_stream
        };
        self.memcpy_setup + streams.max(loop_cycles)
    }

    /// Converts a cycle count into seconds on this machine.
    pub fn seconds(&self, cycles: Cycles) -> f64 {
        cycles as f64 / (self.freq_ghz * 1e9)
    }

    /// Throughput in Gbits/s for `bytes` of wire data processed in `cycles`.
    pub fn gbits_per_sec(&self, bytes: u64, cycles: Cycles) -> f64 {
        if cycles == 0 {
            return 0.0;
        }
        (bytes as f64 * 8.0) * self.freq_ghz / cycles as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xeon_is_faster_per_primitive() {
        let boom = CostTable::boom();
        let xeon = CostTable::xeon();
        assert!(xeon.field_dispatch < boom.field_dispatch);
        assert!(xeon.varint_decode_byte < boom.varint_decode_byte);
        assert!(xeon.memcpy_bytes_per_cycle > boom.memcpy_bytes_per_cycle);
        assert!(xeon.freq_ghz > boom.freq_ghz);
    }

    #[test]
    fn memcpy_cost_scales_linearly_past_setup() {
        let t = CostTable::boom();
        assert_eq!(t.memcpy_cycles(0), 0);
        let small = t.memcpy_cycles(8);
        let large = t.memcpy_cycles(8000);
        assert!(large > 10 * small);
        assert_eq!(
            t.memcpy_cycles(16) - t.memcpy_cycles(8),
            1,
            "8 more bytes = 1 more cycle at 8 B/cycle"
        );
    }

    #[test]
    fn streaming_copy_overlaps_streams_and_loop() {
        let t = CostTable::boom();
        // Memory-bound: the slower stream dominates; the other stream and the
        // copy loop are hidden behind it.
        let len = 4096usize;
        let loop_cycles = len as u64 / t.memcpy_bytes_per_cycle;
        assert_eq!(
            t.streaming_copy_cycles(3000, 2000, len),
            t.memcpy_setup + 3000
        );
        // Compute-bound: streams cheaper than the copy loop.
        assert_eq!(
            t.streaming_copy_cycles(100, 90, len),
            t.memcpy_setup + loop_cycles
        );
        // Always at most the additive model.
        assert!(t.streaming_copy_cycles(3000, 2000, len) < 3000 + 2000 + t.memcpy_cycles(len));
        // Zero-length copies skip the setup but keep the stream charges.
        assert_eq!(t.streaming_copy_cycles(7, 5, 0), 12);
    }

    #[test]
    fn xeon_copy_streams_serialize() {
        let t = CostTable::xeon();
        assert!(!t.copy_streams_overlap);
        // The load and store streams add; only the copy loop is hidden.
        let len = 4096usize;
        assert_eq!(
            t.streaming_copy_cycles(3000, 2000, len),
            t.memcpy_setup + 5000
        );
        // Compute-bound case still floors at the loop.
        let loop_cycles = len as u64 / t.memcpy_bytes_per_cycle;
        assert_eq!(
            t.streaming_copy_cycles(10, 20, len),
            t.memcpy_setup + loop_cycles
        );
        // Zero-length behavior is unchanged.
        assert_eq!(t.streaming_copy_cycles(7, 5, 0), 12);
    }

    #[test]
    fn throughput_conversion() {
        let t = CostTable::boom(); // 2 GHz
                                   // 1000 bytes in 1000 cycles = 8 bits/cycle = 16 Gbit/s at 2 GHz.
        let g = t.gbits_per_sec(1000, 1000);
        assert!((g - 16.0).abs() < 1e-9);
        assert_eq!(t.gbits_per_sec(100, 0), 0.0);
        // seconds: 2e9 cycles at 2 GHz = 1 s.
        assert!((t.seconds(2_000_000_000) - 1.0).abs() < 1e-12);
    }
}
