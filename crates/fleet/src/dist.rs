//! Discrete probability distributions with deterministic sampling.

use xrand::Rng;

/// A discrete distribution over `0..n` given by (not necessarily
/// normalized) non-negative weights.
#[derive(Debug, Clone)]
pub struct Discrete {
    /// Cumulative weights for inverse-transform sampling.
    cumulative: Vec<f64>,
    weights: Vec<f64>,
    total: f64,
}

impl Discrete {
    /// Builds a distribution from weights.
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty, contains a negative value, or sums to
    /// zero.
    pub fn new(weights: &[f64]) -> Self {
        assert!(!weights.is_empty(), "weights must be non-empty");
        assert!(
            weights.iter().all(|&w| w >= 0.0),
            "weights must be non-negative"
        );
        let total: f64 = weights.iter().sum();
        assert!(total > 0.0, "weights must not all be zero");
        let mut cumulative = Vec::with_capacity(weights.len());
        let mut acc = 0.0;
        for &w in weights {
            acc += w;
            cumulative.push(acc);
        }
        Discrete {
            cumulative,
            weights: weights.to_vec(),
            total,
        }
    }

    /// Number of outcomes.
    pub fn len(&self) -> usize {
        self.weights.len()
    }

    /// Whether the distribution has no outcomes (never true; kept for API
    /// completeness).
    pub fn is_empty(&self) -> bool {
        self.weights.is_empty()
    }

    /// The normalized probability of outcome `i`.
    pub fn probability(&self, i: usize) -> f64 {
        self.weights[i] / self.total
    }

    /// Samples an outcome index.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let x: f64 = rng.gen_range(0.0..self.total);
        self.cumulative
            .iter()
            .position(|&c| x < c)
            .unwrap_or(self.weights.len() - 1)
    }

    /// Estimates the distribution back from observed outcome counts —
    /// the estimation half of the sampling/estimation pipeline.
    pub fn estimate_from_counts(counts: &[u64]) -> Vec<f64> {
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return vec![0.0; counts.len()];
        }
        counts.iter().map(|&c| c as f64 / total as f64).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xrand::StdRng;

    #[test]
    fn probabilities_normalize() {
        let d = Discrete::new(&[1.0, 3.0]);
        assert!((d.probability(0) - 0.25).abs() < 1e-12);
        assert!((d.probability(1) - 0.75).abs() < 1e-12);
        assert_eq!(d.len(), 2);
        assert!(!d.is_empty());
    }

    #[test]
    fn sampling_converges_to_weights() {
        let d = Discrete::new(&[10.0, 30.0, 60.0]);
        let mut rng = StdRng::seed_from_u64(7);
        let mut counts = [0u64; 3];
        for _ in 0..100_000 {
            counts[d.sample(&mut rng)] += 1;
        }
        let est = Discrete::estimate_from_counts(&counts);
        assert!((est[0] - 0.1).abs() < 0.01, "{est:?}");
        assert!((est[1] - 0.3).abs() < 0.01);
        assert!((est[2] - 0.6).abs() < 0.01);
    }

    #[test]
    fn zero_weight_outcomes_never_sampled() {
        let d = Discrete::new(&[0.0, 1.0]);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            assert_eq!(d.sample(&mut rng), 1);
        }
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_weights_panic() {
        Discrete::new(&[1.0, -0.5]);
    }

    #[test]
    fn estimate_of_empty_counts_is_zero() {
        assert_eq!(Discrete::estimate_from_counts(&[0, 0]), vec![0.0, 0.0]);
    }
}
