//! Tests for the Section 7 proto3-support path: UTF-8 validation of string
//! fields during deserialization.

use protoacc::{AccelConfig, AccelError, ProtoAccelerator};
use protoacc_mem::{MemConfig, Memory};
use protoacc_runtime::{object, write_adts, AdtTables, BumpArena, MessageLayouts, RuntimeError};
use protoacc_schema::{FieldType, MessageId, Schema, SchemaBuilder};
use protoacc_wire::WireWriter;

fn rig() -> (
    Schema,
    MessageLayouts,
    Memory,
    AdtTables,
    BumpArena,
    MessageId,
) {
    let mut b = SchemaBuilder::new();
    let id = b.define("M", |m| {
        m.optional("text", FieldType::String, 1)
            .optional("blob", FieldType::Bytes, 2);
    });
    let schema = b.build().unwrap();
    let layouts = MessageLayouts::compute(&schema);
    let mut mem = Memory::new(MemConfig::default());
    let mut arena = BumpArena::new(0x1_0000, 1 << 22);
    let adts = write_adts(&schema, &layouts, &mut mem.data, &mut arena).unwrap();
    (schema, layouts, mem, adts, arena, id)
}

fn deser(
    config: AccelConfig,
    mem: &mut Memory,
    adts: &AdtTables,
    arena: &mut BumpArena,
    layouts: &MessageLayouts,
    id: MessageId,
    wire: &[u8],
) -> Result<u64, AccelError> {
    mem.data.write_bytes(0x20_0000, wire);
    let dest = arena.alloc(layouts.layout(id).object_size(), 8).unwrap();
    let mut accel = ProtoAccelerator::new(config);
    accel.deser_assign_arena(0x100_0000, 1 << 22);
    accel.deser_info(adts.addr(id), dest);
    accel.do_proto_deser(mem, 0x20_0000, wire.len() as u64, 1)?;
    Ok(dest)
}

#[test]
fn proto2_mode_accepts_invalid_utf8_in_strings() {
    let (_, layouts, mut mem, adts, mut arena, id) = rig();
    let mut w = WireWriter::new();
    w.write_length_delimited_field(1, &[0xff, 0xfe]).unwrap();
    // proto2 (default): no validation — the bytes land in the string.
    let dest = deser(
        AccelConfig::default(),
        &mut mem,
        &adts,
        &mut arena,
        &layouts,
        id,
        w.as_bytes(),
    )
    .unwrap();
    let slot = layouts.layout(id).slot(1).unwrap().offset;
    let str_obj = mem.data.read_u64(dest + slot);
    assert_eq!(
        object::read_string_object(&mem.data, str_obj),
        vec![0xff, 0xfe]
    );
}

#[test]
fn proto3_mode_rejects_invalid_utf8_in_strings() {
    let (_, layouts, mut mem, adts, mut arena, id) = rig();
    let mut w = WireWriter::new();
    w.write_length_delimited_field(1, &[0xff, 0xfe]).unwrap();
    let config = AccelConfig {
        validate_utf8: true,
        ..AccelConfig::default()
    };
    let err = deser(
        config,
        &mut mem,
        &adts,
        &mut arena,
        &layouts,
        id,
        w.as_bytes(),
    )
    .unwrap_err();
    assert!(matches!(
        err,
        AccelError::Runtime(RuntimeError::InvalidUtf8 { field_number: 1 })
    ));
}

#[test]
fn proto3_mode_accepts_valid_utf8_and_any_bytes_field() {
    let (_, layouts, mut mem, adts, mut arena, id) = rig();
    let mut w = WireWriter::new();
    w.write_length_delimited_field(1, "δοκιμή with ascii".as_bytes())
        .unwrap();
    // bytes fields are never validated, even in proto3 mode.
    w.write_length_delimited_field(2, &[0xff, 0x80, 0x00])
        .unwrap();
    let config = AccelConfig {
        validate_utf8: true,
        ..AccelConfig::default()
    };
    let dest = deser(
        config,
        &mut mem,
        &adts,
        &mut arena,
        &layouts,
        id,
        w.as_bytes(),
    )
    .unwrap();
    let layout = layouts.layout(id);
    let text_obj = mem.data.read_u64(dest + layout.slot(1).unwrap().offset);
    assert_eq!(
        object::read_string_object(&mem.data, text_obj),
        "δοκιμή with ascii".as_bytes()
    );
    let blob_obj = mem.data.read_u64(dest + layout.slot(2).unwrap().offset);
    assert_eq!(
        object::read_string_object(&mem.data, blob_obj),
        vec![0xff, 0x80, 0x00]
    );
}

#[test]
fn validation_costs_at_most_a_cycle_per_string() {
    // The validator overlaps with the copy; total cycles grow by ~1 per
    // string field, not per byte.
    let mut w = WireWriter::new();
    w.write_length_delimited_field(1, &[b'a'; 4096]).unwrap();
    let wire = w.into_bytes();

    // Fresh memory/caches per run so the only difference is validation.
    let run_with = |validate: bool| {
        let (_, layouts, mut mem, adts, mut arena, id) = rig();
        let mut accel = ProtoAccelerator::new(AccelConfig {
            validate_utf8: validate,
            ..AccelConfig::default()
        });
        accel.deser_assign_arena(0x100_0000, 1 << 22);
        mem.data.write_bytes(0x20_0000, &wire);
        let dest = arena.alloc(layouts.layout(id).object_size(), 8).unwrap();
        accel.deser_info(adts.addr(id), dest);
        accel
            .do_proto_deser(&mut mem, 0x20_0000, wire.len() as u64, 1)
            .unwrap()
            .fsm_cycles
    };
    let without = run_with(false);
    let with = run_with(true);
    assert!(with >= without);
    assert!(
        with - without <= 4,
        "validation added {} cycles",
        with - without
    );
}
