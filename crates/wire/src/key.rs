//! Field keys: the (field number, wire type) pairs that prefix every field
//! on the wire (Section 2.1.2).

use crate::{WireError, MAX_FIELD_NUMBER};

/// The 3-bit wire type carried in every field key.
///
/// The deprecated `start group` (3) and `end group` (4) types are modeled so
/// the decoder can report them precisely, but no codec in this workspace
/// produces them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[repr(u8)]
pub enum WireType {
    /// Varint-encoded scalar: `{s,u}int{32,64}`, `int{32,64}`, `enum`, `bool`.
    Varint = 0,
    /// Fixed 64-bit little-endian value: `double`, `fixed64`, `sfixed64`.
    Bits64 = 1,
    /// Length-delimited: `string`, `bytes`, sub-messages, packed repeated.
    LengthDelimited = 2,
    /// Deprecated group start marker.
    StartGroup = 3,
    /// Deprecated group end marker.
    EndGroup = 4,
    /// Fixed 32-bit little-endian value: `float`, `fixed32`, `sfixed32`.
    Bits32 = 5,
}

impl WireType {
    /// Decodes the low three bits of a key.
    ///
    /// # Errors
    ///
    /// [`WireError::InvalidWireType`] for raw values 6 and 7, which proto2
    /// leaves undefined.
    pub fn from_raw(raw: u8) -> Result<Self, WireError> {
        match raw & 0x7 {
            0 => Ok(WireType::Varint),
            1 => Ok(WireType::Bits64),
            2 => Ok(WireType::LengthDelimited),
            3 => Ok(WireType::StartGroup),
            4 => Ok(WireType::EndGroup),
            5 => Ok(WireType::Bits32),
            raw => Err(WireError::InvalidWireType { raw }),
        }
    }

    /// The raw 3-bit encoding of this wire type.
    #[inline]
    pub fn as_raw(self) -> u8 {
        self as u8
    }

    /// Whether a fixed-size payload follows the key, and its length.
    ///
    /// Length-delimited and group types return `None`.
    pub fn fixed_payload_len(self) -> Option<usize> {
        match self {
            WireType::Bits64 => Some(8),
            WireType::Bits32 => Some(4),
            _ => None,
        }
    }
}

/// A decoded field key: field number plus wire type.
///
/// On the wire the key is the varint encoding of
/// `(field_number << 3) | wire_type`.
///
/// ```rust
/// use protoacc_wire::{FieldKey, WireType};
/// let key = FieldKey::new(1, WireType::Varint)?;
/// assert_eq!(key.encoded(), 0x08);
/// # Ok::<(), protoacc_wire::WireError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FieldKey {
    field_number: u32,
    wire_type: WireType,
}

impl FieldKey {
    /// Creates a key, validating the field number range.
    ///
    /// # Errors
    ///
    /// * [`WireError::ZeroFieldNumber`] for field number 0.
    /// * [`WireError::FieldNumberOutOfRange`] above 2^29 - 1.
    pub fn new(field_number: u32, wire_type: WireType) -> Result<Self, WireError> {
        if field_number == 0 {
            return Err(WireError::ZeroFieldNumber);
        }
        if field_number > MAX_FIELD_NUMBER {
            return Err(WireError::FieldNumberOutOfRange {
                number: u64::from(field_number),
            });
        }
        Ok(FieldKey {
            field_number,
            wire_type,
        })
    }

    /// Reconstructs a key from the decoded varint value of a wire key.
    ///
    /// # Errors
    ///
    /// Propagates wire-type and field-number validation failures.
    pub fn from_encoded(encoded: u64) -> Result<Self, WireError> {
        let wire_type = WireType::from_raw((encoded & 0x7) as u8)?;
        let number = encoded >> 3;
        if number == 0 {
            return Err(WireError::ZeroFieldNumber);
        }
        if number > u64::from(MAX_FIELD_NUMBER) {
            return Err(WireError::FieldNumberOutOfRange { number });
        }
        Ok(FieldKey {
            field_number: number as u32,
            wire_type,
        })
    }

    /// The field number component.
    #[inline]
    pub fn field_number(self) -> u32 {
        self.field_number
    }

    /// The wire type component.
    #[inline]
    pub fn wire_type(self) -> WireType {
        self.wire_type
    }

    /// The value that is varint-encoded to put this key on the wire.
    #[inline]
    pub fn encoded(self) -> u64 {
        (u64::from(self.field_number) << 3) | u64::from(self.wire_type.as_raw())
    }

    /// Number of bytes this key occupies on the wire.
    #[inline]
    pub fn encoded_len(self) -> usize {
        crate::varint::encoded_len(self.encoded())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_type_round_trips() {
        for raw in 0..=5u8 {
            let wt = WireType::from_raw(raw).unwrap();
            assert_eq!(wt.as_raw(), raw);
        }
        assert!(WireType::from_raw(6).is_err());
        assert!(WireType::from_raw(7).is_err());
    }

    #[test]
    fn key_encoding_matches_spec_examples() {
        // Field 1, varint => 0x08; field 2, length-delimited => 0x12.
        assert_eq!(FieldKey::new(1, WireType::Varint).unwrap().encoded(), 0x08);
        assert_eq!(
            FieldKey::new(2, WireType::LengthDelimited)
                .unwrap()
                .encoded(),
            0x12
        );
    }

    #[test]
    fn key_round_trips_through_encoding() {
        for number in [1u32, 15, 16, 2047, 2048, MAX_FIELD_NUMBER] {
            for wt in [WireType::Varint, WireType::Bits64, WireType::Bits32] {
                let key = FieldKey::new(number, wt).unwrap();
                let back = FieldKey::from_encoded(key.encoded()).unwrap();
                assert_eq!(back, key);
            }
        }
    }

    #[test]
    fn key_length_boundary_at_field_16() {
        // Field numbers 1-15 fit the key in one byte; 16 and up need two.
        assert_eq!(
            FieldKey::new(15, WireType::Varint).unwrap().encoded_len(),
            1
        );
        assert_eq!(
            FieldKey::new(16, WireType::Varint).unwrap().encoded_len(),
            2
        );
    }

    #[test]
    fn rejects_invalid_field_numbers() {
        assert_eq!(
            FieldKey::new(0, WireType::Varint),
            Err(WireError::ZeroFieldNumber)
        );
        assert!(FieldKey::new(MAX_FIELD_NUMBER + 1, WireType::Varint).is_err());
        // Wire type 0, field number 0.
        assert_eq!(
            FieldKey::from_encoded(0x00),
            Err(WireError::ZeroFieldNumber)
        );
        // Wire-type validation fires before field-number validation.
        assert_eq!(
            FieldKey::from_encoded(0x07),
            Err(WireError::InvalidWireType { raw: 7 })
        );
    }

    #[test]
    fn fixed_payload_lengths() {
        assert_eq!(WireType::Bits64.fixed_payload_len(), Some(8));
        assert_eq!(WireType::Bits32.fixed_payload_len(), Some(4));
        assert_eq!(WireType::Varint.fixed_payload_len(), None);
        assert_eq!(WireType::LengthDelimited.fixed_payload_len(), None);
    }
}
