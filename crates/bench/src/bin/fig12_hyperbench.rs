//! Regenerates Figures 12 and 13: HyperProtoBench deserialization and
//! serialization results (bench0..bench5 + geomean) on the three systems.
//!
//! Usage: `fig12_hyperbench [--op deser|ser|both]` (default `both`).

use hyperprotobench::generate_suite;
use protoacc_bench::{format_gbits_table, geomean, measure, Direction, SystemKind, Workload};
use protoacc_fleet::gwp::ServiceCycles;

fn run(direction: Direction, workloads: &[Workload]) -> (f64, f64) {
    let figure = match direction {
        Direction::Deserialize => "Figure 12: HyperProtoBench deserialization",
        Direction::Serialize => "Figure 13: HyperProtoBench serialization",
    };
    println!("== {figure} ==");
    let rows: Vec<(String, Vec<protoacc_bench::Measurement>)> = workloads
        .iter()
        .map(|w| {
            let measurements = SystemKind::ALL
                .iter()
                .map(|&system| measure(system, w, direction))
                .collect();
            (w.name.clone(), measurements)
        })
        .collect();
    print!("{}", format_gbits_table(&rows));
    let accel: Vec<f64> = rows.iter().map(|(_, ms)| ms[2].gbits).collect();
    let boom: Vec<f64> = rows.iter().map(|(_, ms)| ms[0].gbits).collect();
    let xeon: Vec<f64> = rows.iter().map(|(_, ms)| ms[1].gbits).collect();
    let vs_boom = geomean(&accel) / geomean(&boom);
    let vs_xeon = geomean(&accel) / geomean(&xeon);
    println!("speedup (geomean): {vs_boom:.2}x vs riscv-boom, {vs_xeon:.2}x vs Xeon\n");
    (vs_boom, vs_xeon)
}

fn main() {
    let op = std::env::args()
        .skip_while(|a| a != "--op")
        .nth(1)
        .unwrap_or_else(|| "both".to_owned());
    let suite = generate_suite(48, 0xB0B);
    let workloads: Vec<Workload> = suite
        .into_iter()
        .map(|bench| Workload {
            name: format!("bench{} ({})", bench.profile.index, bench.profile.name),
            schema: bench.schema,
            type_id: bench.type_id,
            messages: bench.messages,
        })
        .collect();
    let mut results = Vec::new();
    if op == "deser" || op == "both" {
        results.push(("deser", run(Direction::Deserialize, &workloads)));
    }
    if op == "ser" || op == "both" {
        results.push(("ser", run(Direction::Serialize, &workloads)));
    }
    if results.len() == 2 {
        let boom = geomean(&results.iter().map(|r| r.1 .0).collect::<Vec<_>>());
        let xeon = geomean(&results.iter().map(|r| r.1 .1).collect::<Vec<_>>());
        println!(
            "HyperProtoBench overall: {boom:.2}x vs riscv-boom (paper: 6.2x), \
             {xeon:.2}x vs Xeon (paper: 3.8x)"
        );
        // §5.2's fleet-savings extrapolation: accelerating 3.45% of fleet
        // cycles by the measured factor.
        let saved = 0.0345 * (1.0 - 1.0 / boom);
        println!(
            "extrapolated fleet-cycle savings: {:.2}% (paper: >2.5%)",
            saved * 100.0
        );
        // Service-weighted view: each benchmark represents a service with a
        // known share of fleet (de)serialization cycles (§5.2 selection).
        let cycles = ServiceCycles::google_2021();
        let (deser_cov, ser_cov) = cycles.union_coverage(6);
        println!(
            "the six modeled services cover {:.0}% of fleet deser and {:.0}% of fleet ser \
             cycles (paper: >13% and >18%)",
            deser_cov * 100.0,
            ser_cov * 100.0
        );
    }
}
