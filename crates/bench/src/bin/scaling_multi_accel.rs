//! SoC-integration study: multiple accelerator instances sharing one
//! memory hierarchy (the Appendix A customization space mentions multi-core
//! systems; a datacenter SoC would instantiate one accelerator per core).
//!
//! Instances interleave operations over a *shared* L2/LLC, so scaling is
//! sublinear once the working sets contend; the study reports aggregate and
//! per-instance throughput for 1..8 instances.

use hyperprotobench::{Generator, ServiceProfile};
use protoacc::{AccelConfig, ProtoAccelerator};
use protoacc_mem::{MemConfig, Memory};
use protoacc_runtime::{reference, write_adts, BumpArena, MessageLayouts};

fn main() {
    println!("Multi-accelerator scaling (bench3 deserialization, shared L2/LLC)");
    println!(
        "{:<12} {:>20} {:>20} {:>12}",
        "instances", "aggregate Gbits/s", "per-instance", "efficiency"
    );
    let mut single = 0.0f64;
    for n in [1usize, 2, 4, 8] {
        let bench = Generator::new(ServiceProfile::bench(3), 0x5CA1E).generate(24);
        let layouts = MessageLayouts::compute(&bench.schema);
        let mut mem = Memory::new(MemConfig::default());
        let mut setup = BumpArena::new(0x1_0000, 1 << 26);
        let adts = write_adts(&bench.schema, &layouts, &mut mem.data, &mut setup).unwrap();
        let layout = layouts.layout(bench.type_id);

        // Stage per-instance copies of the inputs at disjoint addresses.
        let mut inputs: Vec<Vec<(u64, u64)>> = Vec::new();
        for inst in 0..n {
            let mut cursor = 0x2000_0000 + (inst as u64) * (1 << 26);
            let mut list = Vec::new();
            for m in &bench.messages {
                let wire = reference::encode(m, &bench.schema).unwrap();
                mem.data.write_bytes(cursor, &wire);
                list.push((cursor, wire.len() as u64));
                cursor += wire.len() as u64 + 32;
            }
            inputs.push(list);
        }
        let mut accels: Vec<ProtoAccelerator> = (0..n)
            .map(|inst| {
                let mut a = ProtoAccelerator::new(AccelConfig::default());
                a.deser_assign_arena(0x1_0000_0000 + (inst as u64) * (1 << 28), 1 << 28);
                a
            })
            .collect();
        let mut dest_arena = BumpArena::new(0x8_0000_0000, 1 << 30);

        // Interleave ops round-robin over the shared memory system; the
        // slowest instance's total models the parallel completion time.
        let mut per_inst_cycles = vec![0u64; n];
        let mut bytes = 0u64;
        #[allow(clippy::needless_range_loop)] // instances index several arrays
        for op in 0..bench.messages.len() {
            for inst in 0..n {
                let (addr, len) = inputs[inst][op];
                let dest = dest_arena.alloc(layout.object_size(), 8).unwrap();
                accels[inst].deser_info(adts.addr(bench.type_id), dest);
                let run = accels[inst]
                    .do_proto_deser(&mut mem, addr, len, layout.min_field())
                    .unwrap();
                per_inst_cycles[inst] += run.cycles;
                bytes += len;
            }
        }
        let slowest = per_inst_cycles.iter().copied().max().unwrap_or(1);
        let aggregate = bytes as f64 * 8.0 * 2.0 / slowest as f64;
        let per_instance = aggregate / n as f64;
        if n == 1 {
            single = per_instance;
        }
        println!(
            "{n:<12} {aggregate:>20.3} {per_instance:>20.3} {:>11.0}%",
            per_instance / single * 100.0
        );
    }
    println!();
    println!(
        "(contention on the shared LLC/DRAM path erodes per-instance throughput as\n\
         instances are added — the integration cost a per-core deployment pays)"
    );
}
