//! Overload study of the framed RPC serving layer (`protoacc-rpc`).
//!
//! Stages the fleet traffic mix as an RPC method table (one method per
//! prototype, admission costs from the absint envelopes), then sweeps
//! offered load through and past cluster saturation under both loop
//! disciplines:
//!
//! * **open loop** — Poisson arrivals from [`TrafficMix::stream`], spread
//!   round-robin across connections: offered load is independent of what
//!   the server does, so past saturation the backlog grows without bound
//!   unless admission control sheds it;
//! * **closed loop** — [`ClosedLoop`]: N users, each waiting for its
//!   response plus an exponential think time before issuing again, so the
//!   arrival process throttles itself as latency rises.
//!
//! Every request carries a client deadline budget (a fixed multiple of its
//! method's admission cost), so the cluster's admission controller sheds
//! doomed work *before* enqueue instead of serving it late. The report is
//! goodput vs offered load with the served / shed / rejected / failed
//! breakdown and served-only p50/p99 per cell.
//!
//! `--smoke` is the CI serving gate: a smaller grid, each cell run twice.
//! It fails (non-zero exit) when any cell leaks accounting (every offered
//! request must land in exactly one of ok / fallback / rejected / failed /
//! shed / dropped), drops a request into the void, replays
//! nondeterministically, finishes 2x overload with goodput below 80% of the
//! discipline's peak, or survives 2x open-loop overload without shedding
//! anything (the controller must actually be doing the work).
//!
//! Both modes write the sweep to `--out` (default `target/BENCH_rpc.json`).

use std::process::ExitCode;

use protoacc::serve::{CommandRecord, CommandStatus};
use protoacc::{AccelConfig, DispatchPolicy, RequestOp, ServeConfig};
use protoacc_absint::Envelope;
use protoacc_fleet::traffic::{ClosedLoop, TrafficMix};
use protoacc_mem::{Cycles, MemConfig, Memory};
use protoacc_rpc::{encode_frame, IncomingFrame, Method, RpcConfig, RpcHeader, RpcServer};
use protoacc_runtime::{object, reference, write_adts, BumpArena, MessageLayouts};
use xrand::StdRng;

/// Seed for synthesizing the prototype population.
const MIX_SEED: u64 = 0xF1EE7;
/// Seed for both arrival processes (open-loop stream, closed-loop draws).
const STREAM_SEED: u64 = 0x10AD;
/// Per-instance slice of guest memory for arenas (64 MiB).
const ARENA_STRIDE: u64 = 1 << 26;
const ARENA_BASE: u64 = 0x1_0000_0000;
/// Accelerator instances behind the server.
const INSTANCES: usize = 4;
/// Connections the open-loop schedule spreads across.
const CONNS: usize = 8;
/// Client deadline budget as a multiple of the method's admission cost:
/// generous enough that nominal queueing fits, tight enough that an
/// unbounded overload backlog blows it.
const DEADLINE_SLACK: u64 = 4;
/// Per-connection credit window. Wider than the default so the transport's
/// flow control does not itself cap the backlog: this study wants admission
/// shedding, not window deferral, to be the active overload mechanism.
const WINDOW: usize = 16;
/// Offered-load grid, as a fraction of cluster saturation.
const RHOS: [f64; 3] = [0.5, 1.0, 2.0];
/// Goodput at 2x overload must stay within this fraction of the
/// discipline's peak — the load-shedding acceptance floor.
const GOODPUT_FLOOR: f64 = 0.8;

/// Stages the mix into a fresh memory image as an RPC method table: one
/// method per prototype, operation templates pointing at the staged wire
/// input / object graph, admission costs from the absint envelopes.
fn stage_methods(mix: &TrafficMix, mem: &mut Memory) -> Vec<Method> {
    let layouts = MessageLayouts::compute(&mix.schema);
    let accel = AccelConfig::default();
    let mem_cfg = MemConfig::default();
    let mut setup = BumpArena::new(0x1_0000, 1 << 26);
    let adts = write_adts(&mix.schema, &layouts, &mut mem.data, &mut setup).unwrap();
    let mut input_cursor = 0x2000_0000u64;
    let mut objects = BumpArena::new(0x8000_0000, 1 << 30);
    mix.prototypes
        .iter()
        .map(|p| {
            let wire = reference::encode(&p.message, &mix.schema).unwrap();
            let input_addr = input_cursor;
            mem.data.write_bytes(input_addr, &wire);
            input_cursor += wire.len() as u64 + 64;
            let obj_ptr = object::write_message(
                &mut mem.data,
                &mix.schema,
                &layouts,
                &mut objects,
                &p.message,
            )
            .unwrap();
            let layout = layouts.layout(p.type_id);
            let dest_obj = objects.alloc(layout.object_size(), 8).unwrap();
            let deser_env = Envelope::deser(&mix.schema, &layouts, p.type_id, &accel, &mem_cfg);
            let ser_env = Envelope::ser(&mix.schema, &layouts, p.type_id, &accel, &mem_cfg);
            Method::from_envelopes(
                RequestOp::Deserialize {
                    adt_ptr: adts.addr(p.type_id),
                    input_addr,
                    input_len: wire.len() as u64,
                    dest_obj,
                    min_field: layout.min_field(),
                },
                RequestOp::Serialize {
                    adt_ptr: adts.addr(p.type_id),
                    obj_ptr,
                    hasbits_offset: layout.hasbits_offset(),
                    min_field: layout.min_field(),
                    max_field: layout.max_field(),
                },
                &deser_env,
                &ser_env,
                wire.len() as u64,
                wire.len() as u64,
            )
        })
        .collect()
}

/// Encodes one request frame for `method`, optionally carrying the
/// deadline budget (`DEADLINE_SLACK` x the direction's admission cost).
fn request_frame(methods: &[Method], method: usize, deser: bool, with_deadline: bool) -> Vec<u8> {
    let m = methods[method];
    let cost = if deser { m.deser_cost } else { m.ser_cost };
    let header = RpcHeader {
        method: method as u32,
        deser,
        deadline: with_deadline.then(|| cost.saturating_mul(DEADLINE_SLACK)),
    };
    encode_frame(false, &header.to_payload()).expect("request header fits the frame ceiling")
}

fn server(methods: Vec<Method>) -> RpcServer {
    RpcServer::new(
        ServeConfig {
            instances: INSTANCES,
            queue_depth: 256,
            policy: DispatchPolicy::Fifo,
            ..ServeConfig::default()
        },
        RpcConfig {
            window: WINDOW,
            ..RpcConfig::default()
        },
        methods,
        ARENA_BASE,
        ARENA_STRIDE,
    )
}

/// Everything one sweep cell reports.
struct Cell {
    discipline: &'static str,
    rho: f64,
    offered: u64,
    ok: u64,
    fallback: u64,
    rejected: u64,
    failed: u64,
    shed: u64,
    dropped: u64,
    frames: u64,
    frame_errors: u64,
    deferred: u64,
    goodput: f64,
    p50: Cycles,
    p99: Cycles,
}

impl Cell {
    /// Canonical textual form for the determinism check.
    fn fingerprint(&self) -> String {
        format!(
            "offered={} ok={} fallback={} rejected={} failed={} shed={} dropped={} \
             frames={} frame_errors={} deferred={} goodput={:.6} p50={} p99={}",
            self.offered,
            self.ok,
            self.fallback,
            self.rejected,
            self.failed,
            self.shed,
            self.dropped,
            self.frames,
            self.frame_errors,
            self.deferred,
            self.goodput,
            self.p50,
            self.p99
        )
    }

    /// Every offered request must land in exactly one terminal bucket.
    fn accounting_ok(&self) -> bool {
        self.ok + self.fallback + self.rejected + self.failed + self.shed + self.dropped
            == self.offered
    }
}

/// Latency percentile over *served* commands only (ok + fallback). Shed
/// records complete in one cycle by construction and would drag the
/// distribution toward zero exactly when shedding matters most.
fn served_percentile(records: &[CommandRecord], p: f64) -> Cycles {
    let mut latencies: Vec<Cycles> = records
        .iter()
        .filter(|r| matches!(r.status, CommandStatus::Ok | CommandStatus::Fallback))
        .map(CommandRecord::latency)
        .collect();
    if latencies.is_empty() {
        return 0;
    }
    latencies.sort_unstable();
    latencies[protoacc_trace::nearest_rank(p, latencies.len())]
}

fn summarize(discipline: &'static str, rho: f64, srv: &RpcServer) -> Cell {
    let (ok, fallback, rejected, failed, shed) = srv.cluster().status_counts();
    let stats = srv.stats();
    Cell {
        discipline,
        rho,
        offered: srv.cluster().offered(),
        ok,
        fallback,
        rejected,
        failed,
        shed,
        dropped: srv.cluster().dropped(),
        frames: stats.frames,
        frame_errors: stats.frame_errors,
        deferred: stats.deferred,
        goodput: srv.cluster().throughput_gbits(),
        p50: served_percentile(srv.cluster().records(), 50.0),
        p99: served_percentile(srv.cluster().records(), 99.0),
    }
}

/// One open-loop cell: a Poisson frame schedule at mean gap `gap`, spread
/// round-robin across [`CONNS`] connections.
fn open_loop_cell(mix: &TrafficMix, rho: f64, n_req: usize, gap: f64, with_deadline: bool) -> Cell {
    let mut mem = Memory::new(MemConfig::default());
    let methods = stage_methods(mix, &mut mem);
    let mut srng = StdRng::seed_from_u64(STREAM_SEED);
    let events = mix.stream(&mut srng, n_req, gap);
    let frames: Vec<IncomingFrame> = events
        .iter()
        .enumerate()
        .map(|(i, e)| IncomingFrame {
            conn: i % CONNS,
            arrival: e.arrival,
            bytes: request_frame(&methods, e.prototype, e.deser, with_deadline),
        })
        .collect();
    let mut srv = server(methods);
    srv.serve(&mut mem, &frames).expect("rpc serve succeeds");
    summarize("open", rho, &srv)
}

/// One closed-loop cell: `users` clients (one connection each), each
/// waiting for its response plus an exponential think time (mean
/// `think`) before issuing the next request, until `total` requests have
/// been issued.
fn closed_loop_cell(mix: &TrafficMix, rho: f64, users: usize, total: usize, think: f64) -> Cell {
    let mut mem = Memory::new(MemConfig::default());
    let methods = stage_methods(mix, &mut mem);
    let mut srv = server(methods.clone());
    let mut clients = ClosedLoop::new(users, think);
    let mut rng = StdRng::seed_from_u64(STREAM_SEED);
    for _ in 0..total {
        let (user, at) = clients.next_issue().expect("some user is always ready");
        let (prototype, deser) = mix.sample(&mut rng);
        let frame = IncomingFrame {
            conn: user,
            arrival: at,
            bytes: request_frame(&methods, prototype, deser, true),
        };
        let before = srv.cluster().records().len();
        srv.serve(&mut mem, std::slice::from_ref(&frame))
            .expect("rpc serve succeeds");
        // The user's response lands at its command's completion time (its
        // issue instant if the request evaporated at the frame plane).
        let completion = srv
            .cluster()
            .records()
            .get(before)
            .map_or(at, |r| r.complete)
            .max(at);
        clients.complete(user, completion, &mut rng);
    }
    summarize("closed", rho, &srv)
}

fn arg(name: &str) -> Option<String> {
    std::env::args().skip_while(|a| a != name).nth(1)
}

fn flag(name: &str) -> bool {
    std::env::args().any(|a| a == name)
}

fn render_json(mode: &str, service: f64, cells: &[Cell]) -> String {
    let mut out = format!(
        "{{\n  \"schema_version\": 1,\n  \"mode\": \"{mode}\",\n  \
         \"instances\": {INSTANCES},\n  \"deadline_slack\": {DEADLINE_SLACK},\n  \
         \"mean_service_cycles\": {service:.3},\n  \"cells\": ["
    );
    for (i, c) in cells.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"discipline\": \"{}\", \"rho\": {}, \"offered\": {}, \"ok\": {}, \
             \"fallback\": {}, \"rejected\": {}, \"failed\": {}, \"shed\": {}, \
             \"dropped\": {}, \"frames\": {}, \"frame_errors\": {}, \"deferred\": {}, \
             \"goodput_gbits\": {:.6}, \"p50_cycles\": {}, \"p99_cycles\": {}}}",
            c.discipline,
            c.rho,
            c.offered,
            c.ok,
            c.fallback,
            c.rejected,
            c.failed,
            c.shed,
            c.dropped,
            c.frames,
            c.frame_errors,
            c.deferred,
            c.goodput,
            c.p50,
            c.p99
        ));
    }
    out.push_str("\n  ]\n}\n");
    out
}

/// One sweep cell's inputs. The grid is a pure function of the
/// calibration, fixed before any cell runs, so cells can simulate on
/// worker threads (`--shards N`) and still report in grid order.
struct CellSpec {
    discipline: &'static str,
    rho: f64,
    gap: f64,
    users: usize,
}

/// Runs the whole sweep on up to `shards` worker threads, gating every
/// cell. Returns the cells (in fixed grid order, independent of worker
/// scheduling) plus the failure count.
fn sweep(n_req: usize, check_determinism: bool, shards: usize) -> (f64, Vec<Cell>, usize) {
    let mut rng = StdRng::seed_from_u64(MIX_SEED);
    let mix = TrafficMix::build(&mut rng, 8);

    // Calibrate uncontended mean service on a sparse deadline-free stream.
    let service = {
        let mut mem = Memory::new(MemConfig::default());
        let methods = stage_methods(&mix, &mut mem);
        let mut srng = StdRng::seed_from_u64(STREAM_SEED);
        let events = mix.stream(&mut srng, 64, 10_000_000.0);
        let frames: Vec<IncomingFrame> = events
            .iter()
            .enumerate()
            .map(|(i, e)| IncomingFrame {
                conn: i % CONNS,
                arrival: e.arrival,
                bytes: request_frame(&methods, e.prototype, e.deser, false),
            })
            .collect();
        let mut srv = server(methods);
        srv.serve(&mut mem, &frames).expect("rpc serve succeeds");
        let records = srv.cluster().records();
        records.iter().map(|r| r.service).sum::<u64>() as f64 / records.len().max(1) as f64
    };

    // The grid is fixed up front; each cell stages its own memory image and
    // server, so cells share nothing and can run on worker threads. Results
    // land in grid order regardless of scheduling.
    let specs: Vec<CellSpec> = RHOS
        .iter()
        .flat_map(|&rho| {
            let gap = service / (INSTANCES as f64 * rho);
            let users = ((rho * INSTANCES as f64 * 2.0).round() as usize).max(1);
            [
                CellSpec {
                    discipline: "open",
                    rho,
                    gap,
                    users,
                },
                CellSpec {
                    discipline: "closed",
                    rho,
                    gap,
                    users,
                },
            ]
        })
        .collect();
    let run_cell = |_: usize, spec: &CellSpec| {
        if spec.discipline == "open" {
            open_loop_cell(&mix, spec.rho, n_req, spec.gap, true)
        } else {
            closed_loop_cell(&mix, spec.rho, spec.users, n_req, service)
        }
    };
    let cells = protoacc::run_indexed(&specs, shards, run_cell);

    let mut failures = 0;
    if check_determinism {
        // The 1-worker pass is the sequential reference: with --shards > 1
        // this is the sequential-vs-sharded equivalence gate, and at
        // --shards 1 it degenerates to the run-twice replay check.
        let reference = protoacc::run_indexed(&specs, 1, run_cell);
        for (cell, again) in cells.iter().zip(&reference) {
            if cell.fingerprint() != again.fingerprint() {
                println!(
                    "FAIL [{} rho={}]: diverged from the sequential reference\n  \
                     sharded:    {}\n  sequential: {}",
                    cell.discipline,
                    cell.rho,
                    cell.fingerprint(),
                    again.fingerprint()
                );
                failures += 1;
            }
        }
    }
    for cell in &cells {
        let label = format!("{} rho={}", cell.discipline, cell.rho);
        if !cell.accounting_ok() {
            println!(
                "FAIL [{label}]: accounting leak: {} + {} + {} + {} + {} + {} != {}",
                cell.ok,
                cell.fallback,
                cell.rejected,
                cell.failed,
                cell.shed,
                cell.dropped,
                cell.offered
            );
            failures += 1;
        }
        if cell.dropped > 0 {
            println!(
                "FAIL [{label}]: {} request(s) dropped into the void \
                 (admission control must shed, not overflow)",
                cell.dropped
            );
            failures += 1;
        }
        println!("ok   [{label}] {}", cell.fingerprint());
    }

    // Overload gates, per discipline: goodput at the 2x cell must hold at
    // least GOODPUT_FLOOR of the discipline's peak, and the open loop must
    // actually shed (a 2x backlog that nothing pushes back on means the
    // admission controller is asleep).
    for discipline in ["open", "closed"] {
        let peak = cells
            .iter()
            .filter(|c| c.discipline == discipline)
            .map(|c| c.goodput)
            .fold(0.0f64, f64::max);
        let at_2x = cells
            .iter()
            .find(|c| c.discipline == discipline && c.rho == 2.0)
            .expect("2x cell exists");
        if at_2x.goodput < GOODPUT_FLOOR * peak {
            println!(
                "FAIL [{discipline} rho=2]: goodput {:.6} fell below {GOODPUT_FLOOR} x peak {:.6}",
                at_2x.goodput, peak
            );
            failures += 1;
        }
        if discipline == "open" && at_2x.shed == 0 {
            println!("FAIL [open rho=2]: 2x overload shed nothing — admission control inert");
            failures += 1;
        }
    }
    (service, cells, failures)
}

fn main() -> ExitCode {
    let smoke = flag("--smoke");
    let out_path = arg("--out").unwrap_or_else(|| "target/BENCH_rpc.json".to_string());
    let shards: usize =
        arg("--shards").map_or(1, |s| s.parse().expect("--shards takes a worker count"));
    let n_req = if smoke { 160 } else { 512 };

    println!(
        "RPC serving gate: {INSTANCES} instances, deadline = {DEADLINE_SLACK} x admission cost, \
         {n_req} requests per cell, {shards} worker(s)"
    );
    let (service, cells, failures) = sweep(n_req, smoke, shards);
    println!("calibration: mean uncontended service = {service:.0} cycles\n");
    println!(
        "{:<10} {:>6} {:>8} {:>7} {:>4} {:>9} {:>7} {:>6} {:>9} {:>12} {:>12} {:>12}",
        "loop",
        "rho",
        "offered",
        "ok",
        "fb",
        "rejected",
        "failed",
        "shed",
        "deferred",
        "goodput",
        "p50 cyc",
        "p99 cyc"
    );
    for c in &cells {
        println!(
            "{:<10} {:>6.2} {:>8} {:>7} {:>4} {:>9} {:>7} {:>6} {:>9} {:>12.4} {:>12} {:>12}",
            c.discipline,
            c.rho,
            c.offered,
            c.ok,
            c.fallback,
            c.rejected,
            c.failed,
            c.shed,
            c.deferred,
            c.goodput,
            c.p50,
            c.p99
        );
    }

    let json = render_json(if smoke { "smoke" } else { "full" }, service, &cells);
    if let Some(dir) = std::path::Path::new(&out_path).parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    if let Err(e) = std::fs::write(&out_path, json) {
        eprintln!("serve_rpc: {out_path}: {e}");
        return ExitCode::FAILURE;
    }
    println!("\nwrote {out_path}");

    if failures > 0 {
        println!("serve_rpc: {failures} failure(s)");
        return ExitCode::FAILURE;
    }
    println!("serve_rpc OK");
    ExitCode::SUCCESS
}
