//! Reference wire-format writer over a growable byte buffer.

use crate::{varint, zigzag, FieldKey, WireError, WireType};

/// Appends protobuf wire-format primitives to an owned byte buffer.
///
/// This is the forward-writing software encoder (low-to-high addresses, fields
/// in increasing field-number order), i.e. the layout upstream protobuf
/// produces and against which the accelerator's reverse-order serializer must
/// be byte-identical (Section 4.5.1).
///
/// ```rust
/// use protoacc_wire::{WireWriter, WireType};
/// let mut w = WireWriter::new();
/// w.write_varint_field(1, 150)?;
/// assert_eq!(w.as_bytes(), &[0x08, 0x96, 0x01]);
/// # Ok::<(), protoacc_wire::WireError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct WireWriter {
    buf: Vec<u8>,
}

impl WireWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        WireWriter::default()
    }

    /// Creates a writer with pre-reserved capacity.
    pub fn with_capacity(capacity: usize) -> Self {
        WireWriter {
            buf: Vec::with_capacity(capacity),
        }
    }

    /// The bytes written so far.
    pub fn as_bytes(&self) -> &[u8] {
        &self.buf
    }

    /// Consumes the writer, returning the underlying buffer.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Number of bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Writes a field key.
    ///
    /// # Errors
    ///
    /// Fails if the field number is invalid.
    pub fn write_key(&mut self, field_number: u32, wire_type: WireType) -> Result<(), WireError> {
        let key = FieldKey::new(field_number, wire_type)?;
        varint::encode(key.encoded(), &mut self.buf);
        Ok(())
    }

    /// Writes a raw varint (no key).
    pub fn write_raw_varint(&mut self, value: u64) {
        varint::encode(value, &mut self.buf);
    }

    /// Writes raw bytes verbatim.
    pub fn write_raw_bytes(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Writes a complete varint field: key + value.
    ///
    /// # Errors
    ///
    /// Fails if the field number is invalid.
    pub fn write_varint_field(&mut self, field_number: u32, value: u64) -> Result<(), WireError> {
        self.write_key(field_number, WireType::Varint)?;
        self.write_raw_varint(value);
        Ok(())
    }

    /// Writes a zigzag-encoded signed varint field (`sint32`/`sint64`).
    ///
    /// # Errors
    ///
    /// Fails if the field number is invalid.
    pub fn write_sint_field(&mut self, field_number: u32, value: i64) -> Result<(), WireError> {
        self.write_varint_field(field_number, zigzag::encode64(value))
    }

    /// Writes a fixed 64-bit field (`fixed64`/`sfixed64`/`double` bit pattern).
    ///
    /// # Errors
    ///
    /// Fails if the field number is invalid.
    pub fn write_fixed64_field(&mut self, field_number: u32, value: u64) -> Result<(), WireError> {
        self.write_key(field_number, WireType::Bits64)?;
        self.buf.extend_from_slice(&value.to_le_bytes());
        Ok(())
    }

    /// Writes a fixed 32-bit field (`fixed32`/`sfixed32`/`float` bit pattern).
    ///
    /// # Errors
    ///
    /// Fails if the field number is invalid.
    pub fn write_fixed32_field(&mut self, field_number: u32, value: u32) -> Result<(), WireError> {
        self.write_key(field_number, WireType::Bits32)?;
        self.buf.extend_from_slice(&value.to_le_bytes());
        Ok(())
    }

    /// Writes a `double` field.
    ///
    /// # Errors
    ///
    /// Fails if the field number is invalid.
    pub fn write_double_field(&mut self, field_number: u32, value: f64) -> Result<(), WireError> {
        self.write_fixed64_field(field_number, value.to_bits())
    }

    /// Writes a `float` field.
    ///
    /// # Errors
    ///
    /// Fails if the field number is invalid.
    pub fn write_float_field(&mut self, field_number: u32, value: f32) -> Result<(), WireError> {
        self.write_fixed32_field(field_number, value.to_bits())
    }

    /// Writes a length-delimited field: key + varint length + payload.
    ///
    /// Used for `string`, `bytes`, packed repeated fields, and pre-serialized
    /// sub-messages.
    ///
    /// # Errors
    ///
    /// Fails if the field number is invalid.
    pub fn write_length_delimited_field(
        &mut self,
        field_number: u32,
        payload: &[u8],
    ) -> Result<(), WireError> {
        self.write_key(field_number, WireType::LengthDelimited)?;
        self.write_raw_varint(payload.len() as u64);
        self.buf.extend_from_slice(payload);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writes_varint_field() {
        let mut w = WireWriter::new();
        w.write_varint_field(1, 150).unwrap();
        assert_eq!(w.as_bytes(), &[0x08, 0x96, 0x01]);
    }

    #[test]
    fn writes_string_field() {
        // Spec example: field 2 = "testing".
        let mut w = WireWriter::new();
        w.write_length_delimited_field(2, b"testing").unwrap();
        assert_eq!(
            w.as_bytes(),
            &[0x12, 0x07, b't', b'e', b's', b't', b'i', b'n', b'g']
        );
    }

    #[test]
    fn writes_fixed_fields_little_endian() {
        let mut w = WireWriter::new();
        w.write_fixed32_field(1, 0x1234_5678).unwrap();
        assert_eq!(w.as_bytes(), &[0x0d, 0x78, 0x56, 0x34, 0x12]);
        let mut w = WireWriter::new();
        w.write_fixed64_field(1, 1).unwrap();
        assert_eq!(w.as_bytes(), &[0x09, 1, 0, 0, 0, 0, 0, 0, 0]);
    }

    #[test]
    fn writes_float_and_double_bit_patterns() {
        let mut w = WireWriter::new();
        w.write_double_field(3, 1.5).unwrap();
        let mut expect = vec![0x19];
        expect.extend_from_slice(&1.5f64.to_bits().to_le_bytes());
        assert_eq!(w.as_bytes(), expect.as_slice());
    }

    #[test]
    fn writes_sint_with_zigzag() {
        let mut w = WireWriter::new();
        w.write_sint_field(1, -1).unwrap();
        assert_eq!(w.as_bytes(), &[0x08, 0x01]);
    }

    #[test]
    fn empty_writer_reports_empty() {
        let w = WireWriter::new();
        assert!(w.is_empty());
        assert_eq!(w.len(), 0);
        assert_eq!(w.as_bytes(), &[] as &[u8]);
    }

    #[test]
    fn rejects_zero_field_number() {
        let mut w = WireWriter::new();
        assert!(w.write_varint_field(0, 1).is_err());
    }
}
