//! Property tests for the memory substrate: storage correctness under
//! arbitrary access patterns, and cache/TLB behavioral invariants.

use proptest::prelude::*;
use protoacc_mem::{AccessKind, CacheConfig, CacheModel, GuestMemory, MemConfig, MemSystem};

proptest! {
    /// Guest memory behaves like a flat byte array: the last write to each
    /// byte wins, unwritten bytes read zero.
    #[test]
    fn guest_memory_matches_flat_model(
        writes in prop::collection::vec((0u64..1 << 16, prop::collection::vec(any::<u8>(), 1..64)), 0..24),
        probe in 0u64..1 << 16,
    ) {
        let mut mem = GuestMemory::new();
        let mut model = vec![0u8; (1 << 16) + 64];
        for (addr, bytes) in &writes {
            mem.write_bytes(*addr, bytes);
            model[*addr as usize..*addr as usize + bytes.len()].copy_from_slice(bytes);
        }
        let mut buf = [0u8; 32];
        mem.read_bytes(probe, &mut buf);
        prop_assert_eq!(&buf[..], &model[probe as usize..probe as usize + 32]);
    }

    /// Immediately repeating any access costs no more than the first time
    /// (caches only get warmer).
    #[test]
    fn repeat_access_is_never_slower(
        addrs in prop::collection::vec((0u64..1 << 20, 1usize..64), 1..32),
    ) {
        let mut sys = MemSystem::new(MemConfig::default());
        for (addr, len) in addrs {
            let first = sys.access(addr, len, AccessKind::Read);
            let second = sys.access(addr, len, AccessKind::Read);
            prop_assert!(second <= first, "addr {addr} len {len}: {second} > {first}");
        }
    }

    /// A cache with N ways never evicts among <= N distinct lines of one set.
    #[test]
    fn no_eviction_within_associativity(lines in prop::collection::vec(0u64..8, 1..16)) {
        // Direct set mapping: 1 set, 8 ways -> any 8 distinct lines co-reside.
        let mut cache = CacheModel::new(CacheConfig::new(8 * 64, 8, 64));
        let mut seen = Vec::new();
        for line in lines {
            let hit = cache.access_line(line);
            prop_assert_eq!(hit, seen.contains(&line), "line {}", line);
            if !seen.contains(&line) {
                seen.push(line);
            }
        }
    }

    /// Streaming any buffer costs at least the bus-occupancy bound and at
    /// most the fully-serialized bound.
    #[test]
    fn stream_cost_is_bounded(addr in 0u64..1 << 24, len in 1usize..1 << 16) {
        let mut sys = MemSystem::new(MemConfig::default());
        let cost = sys.stream(addr, len, AccessKind::Read);
        let bus_floor = (len as u64).div_ceil(16);
        prop_assert!(cost >= bus_floor, "cost {cost} < bus floor {bus_floor}");
        let lines = (addr + len as u64 - 1) / 64 - addr / 64 + 1;
        let ceiling = bus_floor + lines * 500 + 1000; // DRAM latency per line + walks
        prop_assert!(cost <= ceiling, "cost {cost} > ceiling {ceiling}");
    }
}
