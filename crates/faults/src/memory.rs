//! Memory-plane injection: seeded arming of one-shot ECC errors and
//! unbounded stalls on the address ranges a workload actually touches.
//!
//! The faults themselves live in [`protoacc_mem::MemSystem`] (`arm_ecc`,
//! `arm_stall`, `take_fault`); this module only picks *where* to arm them,
//! deterministically from a seed, so a run that tripped a fault replays
//! byte-identically.

use protoacc_mem::{Cycles, MemSystem};
use xrand::Rng;

/// Arms `count` one-shot ECC errors at seeded addresses inside `regions`
/// (half-open `[base, base + len)` ranges, e.g. the staged wire inputs).
pub fn arm_random_ecc(
    system: &mut MemSystem,
    regions: &[(u64, u64)],
    count: usize,
    rng: &mut impl Rng,
) {
    for addr in pick_addrs(regions, count, rng) {
        system.arm_ecc(addr);
    }
}

/// Arms `count` one-shot stalls of `extra` cycles each at seeded addresses
/// inside `regions`. An `extra` beyond any watchdog ceiling models the
/// "unbounded stall" fault: without a watchdog the command would never
/// return in any useful time.
pub fn arm_random_stalls(
    system: &mut MemSystem,
    regions: &[(u64, u64)],
    count: usize,
    extra: Cycles,
    rng: &mut impl Rng,
) {
    for addr in pick_addrs(regions, count, rng) {
        system.arm_stall(addr, extra);
    }
}

fn pick_addrs(regions: &[(u64, u64)], count: usize, rng: &mut impl Rng) -> Vec<u64> {
    let usable: Vec<(u64, u64)> = regions
        .iter()
        .copied()
        .filter(|&(_, len)| len > 0)
        .collect();
    if usable.is_empty() {
        return Vec::new();
    }
    (0..count)
        .map(|_| {
            let (base, len) = usable[rng.gen_range(0..usable.len())];
            base + rng.gen_range(0..len)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use protoacc_mem::{AccessKind, MemConfig, Memory};
    use xrand::StdRng;

    #[test]
    fn armed_faults_land_inside_the_regions_and_fire() {
        let mut mem = Memory::new(MemConfig::default());
        let mut rng = StdRng::seed_from_u64(11);
        let regions = [(0x1000, 0x100), (0x8000, 0x40)];
        arm_random_ecc(&mut mem.system, &regions, 4, &mut rng);
        // Probe byte-by-byte: a wide access overlapping several armed
        // faults latches only the first, so narrow probes count them all
        // (barring a same-address collision, which this seed avoids).
        let mut fired = 0;
        for &(base, len) in &regions {
            for off in 0..len {
                mem.system.access(base + off, 1, AccessKind::Read);
                if mem.system.take_fault().is_some() {
                    fired += 1;
                }
            }
        }
        assert_eq!(fired, 4);
        // Everything disarmed: a second sweep is clean.
        for &(base, len) in &regions {
            mem.system.access(base, len as usize, AccessKind::Read);
        }
        assert!(mem.system.take_fault().is_none());
    }

    #[test]
    fn empty_regions_arm_nothing() {
        let mut mem = Memory::new(MemConfig::default());
        let mut rng = StdRng::seed_from_u64(11);
        arm_random_stalls(&mut mem.system, &[(0x1000, 0)], 8, 1000, &mut rng);
        assert!(!mem.system.fault_pending());
        mem.system.access(0x1000, 64, AccessKind::Read);
        assert!(mem.system.take_fault().is_none());
    }
}
