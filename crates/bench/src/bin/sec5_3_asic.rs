//! Regenerates Section 5.3: ASIC critical path and area for both units in
//! the 22 nm structural model, plus the scaling knobs.

use protoacc::asic::{deserializer_estimate, serializer_estimate};
use protoacc::AccelConfig;

fn main() {
    let config = AccelConfig::default();
    let deser = deserializer_estimate(&config);
    let ser = serializer_estimate(&config);
    println!("Section 5.3: ASIC critical path and area (22 nm structural model)");
    println!(
        "{:<14} {:>12} {:>12} {:>14} {:>12}",
        "Unit", "area (mm^2)", "freq (GHz)", "logic (gates)", "SRAM (bits)"
    );
    println!(
        "{:<14} {:>12.3} {:>12.2} {:>14.0} {:>12.0}",
        "deserializer", deser.area_mm2, deser.freq_ghz, deser.gates, deser.sram_bits
    );
    println!(
        "{:<14} {:>12.3} {:>12.2} {:>14.0} {:>12.0}",
        "serializer", ser.area_mm2, ser.freq_ghz, ser.gates, ser.sram_bits
    );
    println!();
    println!("paper (commercial 22 nm FinFET synthesis):");
    println!("  deserializer: 0.133 mm^2 @ 1.95 GHz");
    println!("  serializer:   0.278 mm^2 @ 1.84 GHz");
    println!();
    println!("scaling with field-serializer count:");
    for fsus in [1usize, 2, 4, 8] {
        let est = serializer_estimate(&AccelConfig {
            field_serializers: fsus,
            ..AccelConfig::default()
        });
        println!(
            "  {fsus} FSUs: {:.3} mm^2 @ {:.2} GHz",
            est.area_mm2, est.freq_ghz
        );
    }
    println!("scaling with memloader window width:");
    for window in [8usize, 16, 32, 64] {
        let est = deserializer_estimate(&AccelConfig {
            window_bytes: window,
            ..AccelConfig::default()
        });
        println!(
            "  {window} B window: {:.3} mm^2 @ {:.2} GHz",
            est.area_mm2, est.freq_ghz
        );
    }
}
