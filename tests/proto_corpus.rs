//! Parses the realistic `.proto` corpus in `protos/`, checks `protodb`
//! statistics, and drives populated messages through the full accelerator
//! path for each schema.

use protoacc_suite::accel::{AccelConfig, ProtoAccelerator};
use protoacc_suite::fleet::protodb::analyze_schema;
use protoacc_suite::mem::{MemConfig, Memory};
use protoacc_suite::runtime::{
    object, reference, write_adts, BumpArena, MessageLayouts, MessageValue, Value,
};
use protoacc_suite::schema::{parse_proto, Schema};

fn load(name: &str) -> Schema {
    let path = format!("{}/protos/{name}", env!("CARGO_MANIFEST_DIR"));
    let source = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{path}: {e}"));
    parse_proto(&source).unwrap_or_else(|e| panic!("{name} must parse: {e}"))
}

#[test]
fn addressbook_parses_with_nested_types_and_enums() {
    let schema = load("addressbook.proto");
    assert!(schema.message_by_name("Person").is_some());
    assert!(schema.message_by_name("Person.PhoneNumber").is_some());
    assert!(schema.message_by_name("AddressBook").is_some());
    let phones = schema
        .message_by_name("Person")
        .unwrap()
        .field_by_name("phones")
        .unwrap();
    assert!(phones.is_repeated());
    // Enum-typed field resolves to the Enum wire class.
    let ptype = schema
        .message_by_name("Person.PhoneNumber")
        .unwrap()
        .field_by_name("type")
        .unwrap();
    assert_eq!(ptype.field_type(), protoacc_suite::schema::FieldType::Enum);
}

#[test]
fn telemetry_stats_match_protodb_expectations() {
    let schema = load("telemetry.proto");
    let stats = analyze_schema(&schema);
    assert_eq!(stats.message_types, 4);
    assert_eq!(stats.packed_fields, 2);
    assert!(stats.max_field_number_span >= 120);
    assert!(
        stats.mean_static_density < 0.9,
        "{}",
        stats.mean_static_density
    );
}

#[test]
fn storage_row_is_recursive() {
    let schema = load("storage_row.proto");
    let row = schema.id_by_name("storage.is-not-a-name").is_none();
    assert!(row);
    let row_id = schema.id_by_name("Row").unwrap();
    // Row contains an optional Row (tombstone_shadow): recursion detected.
    assert_eq!(schema.nesting_depth(row_id, 50), None);
}

#[test]
fn corpus_schemas_round_trip_through_the_accelerator() {
    for (file, root, build) in corpus_messages() {
        let schema = load(file);
        let type_id = schema.id_by_name(root).unwrap_or_else(|| panic!("{root}"));
        let message = build(&schema);
        message.validate(&schema).expect("corpus message validates");
        let layouts = MessageLayouts::compute(&schema);
        let mut mem = Memory::new(MemConfig::default());
        let mut arena = BumpArena::new(0x1_0000, 1 << 24);
        let adts = write_adts(&schema, &layouts, &mut mem.data, &mut arena).unwrap();
        let mut accel = ProtoAccelerator::new(AccelConfig::default());
        accel.ser_assign_arena(0x4000_0000, 1 << 24, 0x7000_0000, 1 << 14);
        accel.deser_assign_arena(0x8000_0000, 1 << 24);

        let obj =
            object::write_message(&mut mem.data, &schema, &layouts, &mut arena, &message).unwrap();
        let layout = layouts.layout(type_id);
        accel.ser_info(
            layout.hasbits_offset(),
            layout.min_field(),
            layout.max_field(),
        );
        let ser = accel
            .do_proto_ser(&mut mem, adts.addr(type_id), obj)
            .unwrap();
        assert_eq!(
            mem.data.read_vec(ser.out_addr, ser.out_len as usize),
            reference::encode(&message, &schema).unwrap(),
            "{file} serializer bytes"
        );
        let dest = arena.alloc(layout.object_size(), 8).unwrap();
        accel.deser_info(adts.addr(type_id), dest);
        accel
            .do_proto_deser(&mut mem, ser.out_addr, ser.out_len, layout.min_field())
            .unwrap();
        let back = object::read_message(&mem.data, &schema, &layouts, type_id, dest).unwrap();
        assert!(back.bits_eq(&message), "{file} round trip");
    }
}

type Builder = fn(&Schema) -> MessageValue;

fn corpus_messages() -> Vec<(&'static str, &'static str, Builder)> {
    vec![
        (
            "addressbook.proto",
            "AddressBook",
            build_addressbook as Builder,
        ),
        ("telemetry.proto", "ScrapeBatch", build_scrape as Builder),
        ("storage_row.proto", "Tablet", build_tablet as Builder),
    ]
}

fn build_addressbook(schema: &Schema) -> MessageValue {
    let person_id = schema.id_by_name("Person").unwrap();
    let phone_id = schema.id_by_name("Person.PhoneNumber").unwrap();
    let book_id = schema.id_by_name("AddressBook").unwrap();
    let mut people = Vec::new();
    for (i, name) in ["Ada Lovelace", "Alan Turing"].iter().enumerate() {
        let mut phone = MessageValue::new(phone_id);
        phone.set_unchecked(1, Value::Str(format!("+1-555-000{i}")));
        phone.set_unchecked(2, Value::Enum(i as i32));
        let mut person = MessageValue::new(person_id);
        person.set_unchecked(1, Value::Str((*name).to_owned()));
        person.set_unchecked(2, Value::Int32(i as i32 + 1));
        person.set_unchecked(3, Value::Str(format!("user{i}@example.com")));
        person.set_repeated(4, vec![Value::Message(phone)]);
        people.push(Value::Message(person));
    }
    let mut book = MessageValue::new(book_id);
    book.set_repeated(1, people);
    book
}

fn build_scrape(schema: &Schema) -> MessageValue {
    let label_id = schema.id_by_name("Label").unwrap();
    let point_id = schema.id_by_name("Point").unwrap();
    let series_id = schema.id_by_name("TimeSeries").unwrap();
    let batch_id = schema.id_by_name("ScrapeBatch").unwrap();
    let mut label = MessageValue::new(label_id);
    label.set_unchecked(1, Value::Str("job".into()));
    label.set_unchecked(2, Value::Str("protoacc".into()));
    let points = (0..6)
        .map(|i| {
            let mut p = MessageValue::new(point_id);
            p.set_unchecked(1, Value::Fixed64(1_000_000 + i));
            p.set_unchecked(2, Value::Double(i as f64 * 1.5));
            if i % 2 == 0 {
                p.set_unchecked(4, Value::SInt64(-(i as i64)));
            }
            Value::Message(p)
        })
        .collect();
    let mut series = MessageValue::new(series_id);
    series.set_unchecked(1, Value::Str("cpu.utilization".into()));
    series.set_repeated(2, vec![Value::Message(label)]);
    series.set_repeated(3, points);
    series.set_repeated(
        12,
        vec![Value::Double(0.5), Value::Double(0.9), Value::Double(0.99)],
    );
    series.set_repeated(13, (0..8).map(Value::Int64).collect());
    series.set_unchecked(100, Value::UInt64(0xFEED));
    series.set_unchecked(120, Value::Bool(true));
    let mut batch = MessageValue::new(batch_id);
    batch.set_unchecked(1, Value::Fixed64(999));
    batch.set_repeated(2, vec![Value::Message(series)]);
    batch.set_unchecked(3, Value::Str("collector-7".into()));
    batch.set_unchecked(4, Value::Bytes(vec![0xde, 0xad, 0xbe, 0xef]));
    batch
}

fn build_tablet(schema: &Schema) -> MessageValue {
    let cell_id = schema.id_by_name("Cell").unwrap();
    let family_id = schema.id_by_name("ColumnFamily").unwrap();
    let row_id = schema.id_by_name("Row").unwrap();
    let tablet_id = schema.id_by_name("Tablet").unwrap();
    let mut rows = Vec::new();
    for r in 0..3 {
        let cells = (0..4)
            .map(|c| {
                let mut cell = MessageValue::new(cell_id);
                cell.set_unchecked(1, Value::Bytes(vec![r as u8; 64 * (c + 1)]));
                cell.set_unchecked(2, Value::UInt64(1000 + c as u64));
                Value::Message(cell)
            })
            .collect();
        let mut family = MessageValue::new(family_id);
        family.set_unchecked(1, Value::Str("cf".into()));
        family.set_repeated(2, cells);
        let mut row = MessageValue::new(row_id);
        row.set_unchecked(1, Value::Bytes(format!("row-{r}").into_bytes()));
        row.set_repeated(2, vec![Value::Message(family)]);
        if r == 0 {
            // Exercise the recursive field one level deep.
            let mut shadow = MessageValue::new(row_id);
            shadow.set_unchecked(1, Value::Bytes(b"shadow".to_vec()));
            row.set_unchecked(15, Value::Message(shadow));
        }
        rows.push(Value::Message(row));
    }
    let mut tablet = MessageValue::new(tablet_id);
    tablet.set_unchecked(1, Value::Str("metrics_table".into()));
    tablet.set_repeated(2, rows);
    tablet.set_unchecked(3, Value::Bytes(vec![0xaa; 256]));
    tablet.set_unchecked(4, Value::Fixed64(77));
    tablet
}

/// Every prefix of every corpus message's encoding must decode or cleanly
/// error — never panic, never hang — and the accelerator's verdict must
/// match the CPU reference decoder's at every cut point.
#[test]
fn corpus_wire_truncated_at_every_offset_errors_cleanly() {
    use protoacc_suite::faults::DifferentialHarness;
    for (file, root, build) in corpus_messages() {
        let schema = load(file);
        let type_id = schema.id_by_name(root).unwrap_or_else(|| panic!("{root}"));
        let message = build(&schema);
        let wire = reference::encode(&message, &schema).unwrap();
        let mut harness = DifferentialHarness::new(&schema, type_id);
        for cut in 0..wire.len() {
            let (accel, cpu) = harness.verdicts(&wire[..cut]);
            assert_eq!(
                accel,
                cpu,
                "{file} truncated at byte {cut}/{}: accel {accel:?} vs cpu {cpu:?}",
                wire.len()
            );
        }
        let (accel, cpu) = harness.verdicts(&wire);
        assert!(
            accel.is_accept() && cpu.is_accept(),
            "{file}: untruncated wire must decode on both sides"
        );
    }
}

/// A recursion depth bomb on the storage schema's recursive field
/// (`Row.tombstone_shadow = 15`) must be rejected with the typed depth
/// fault on both decoders — bounded work, no stack exhaustion, no panic.
#[test]
fn storage_row_depth_bomb_is_rejected_with_depth_exceeded() {
    use protoacc_suite::accel::DecodeFault;
    use protoacc_suite::faults::{depth_bomb, DifferentialHarness, Verdict};
    let schema = load("storage_row.proto");
    let row_id = schema.id_by_name("Row").unwrap();
    let mut harness = DifferentialHarness::new(&schema, row_id);
    let bomb = depth_bomb(15, 300);
    let (accel, cpu) = harness.verdicts(&bomb);
    assert_eq!(accel, Verdict::Reject(DecodeFault::DepthExceeded));
    assert_eq!(cpu, Verdict::Reject(DecodeFault::DepthExceeded));
    // Under the limit the same nesting decodes fine on both sides.
    let shallow = depth_bomb(15, 10);
    let (accel, cpu) = harness.verdicts(&shallow);
    assert!(accel.is_accept() && cpu.is_accept(), "{accel:?} / {cpu:?}");
}
