//! Protobuf runtime substrate for the protoacc reproduction.
//!
//! The paper's accelerator plugs into a modified C++ protobuf library: the
//! protoc compiler is extended to emit Accelerator Descriptor Tables (ADTs)
//! and a sparse `hasbits` representation, while messages keep their ordinary
//! C++ object layout (Section 4.2). This crate is the Rust stand-in for all
//! of that:
//!
//! * [`MessageValue`]/[`Value`] — dynamic, schema-checked message trees
//!   (the "user program's view" of a protobuf).
//! * [`mod@reference`] — a host-side reference encoder/decoder, wire-compatible
//!   with standard proto2; the ground truth every simulated system is
//!   differentially tested against.
//! * [`MessageLayouts`] — C++-ABI-like object layouts (vptr, sparse hasbits
//!   array, inline scalars, 32-byte SSO strings, repeated-field headers,
//!   sub-message pointers) in simulated guest memory.
//! * [`hasbits`] — sparse (accelerator-indexable) and dense presence bit
//!   fields, including the Section 3.7 cost comparison.
//! * [`BumpArena`] — arena allocation in guest memory (Section 2.3 / 4.3).
//! * [`AdtLayout`]/[`write_adts`] — the three-region ADTs the accelerator is
//!   programmed with.
//! * [`object`] — materializing [`MessageValue`]s into guest memory and
//!   reading them back, the bridge used to drive and verify the simulators.
//!
//! # Example
//!
//! ```rust
//! use protoacc_runtime::{reference, MessageValue, Value};
//! use protoacc_schema::{FieldType, SchemaBuilder};
//!
//! let mut b = SchemaBuilder::new();
//! let point = b.declare("Point");
//! b.message(point)
//!     .required("x", FieldType::Int32, 1)
//!     .required("y", FieldType::Int32, 2);
//! let schema = b.build()?;
//!
//! let mut msg = MessageValue::new(point);
//! msg.set(1, Value::Int32(3))?;
//! msg.set(2, Value::Int32(-4))?;
//! let bytes = reference::encode(&msg, &schema)?;
//! let back = reference::decode(&bytes, point, &schema)?;
//! assert_eq!(back, msg);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod adt;
pub mod arena;
pub mod hasbits;
pub mod layout;
pub mod object;
pub mod reference;
pub mod text;
pub mod value;

mod error;

pub use adt::{
    write_adts, AdtLayout, AdtTables, FieldEntry, TypeCode, ADT_ENTRY_BYTES, ADT_HEADER_BYTES,
};
pub use arena::{ArenaError, BumpArena};
pub use error::RuntimeError;
pub use layout::{
    FieldSlot, MessageLayout, MessageLayouts, SlotKind, REPEATED_HEADER_BYTES, STRING_OBJECT_BYTES,
    STRING_SSO_CAPACITY,
};
pub use value::{FieldPayload, MessageValue, Value};
