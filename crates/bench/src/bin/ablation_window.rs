//! Ablation: memloader consumer window width (§4.4.2).
//!
//! Narrower windows bound how much serialized data the deserializer can
//! discard per cycle (hurting bulk skips and copies); wider windows cost
//! area and critical path.

use protoacc::asic::deserializer_estimate;
use protoacc::AccelConfig;
use protoacc_bench::ubench::alloc_workloads;
use protoacc_bench::{geomean, measure_accel_config, Direction};

fn main() {
    let workloads = alloc_workloads();
    println!("Ablation: memloader window width (deserialization, Fig 11c set)");
    println!(
        "{:<10} {:>16} {:>12} {:>12}",
        "Window B", "deser geomean", "area mm^2", "freq GHz"
    );
    for window in [4usize, 8, 16, 32, 64] {
        let config = AccelConfig {
            window_bytes: window,
            ..AccelConfig::default()
        };
        let gbits: Vec<f64> = workloads
            .iter()
            .map(|w| measure_accel_config(&config, w, Direction::Deserialize).gbits)
            .collect();
        let est = deserializer_estimate(&config);
        println!(
            "{window:<10} {:>16.3} {:>12.3} {:>12.2}",
            geomean(&gbits),
            est.area_mm2,
            est.freq_ghz
        );
    }
}
