//! Aggregating profile reporter over the tracing layer.
//!
//! Default mode runs every HyperProtoBench service (the Fig 12/13
//! workload population) through the accelerator with tracing attached and
//! prints a per-service cycle breakdown — deser FSM vs memloader stream,
//! ser frontend vs FSU vs memwriter, ADT-cache and memory-level rollups —
//! cross-checked against [`protoacc::AccelStats`] by the accounting audit
//! (traced span sums must equal the reported counters exactly).
//!
//! `--reparse <file>` re-parses a Chrome-trace JSON written by
//! `serve_tail_latency --trace` and re-runs the accounting audit offline
//! against the embedded stats image, exercising the full export → parse →
//! audit round trip with no access to the model that produced the file.
//!
//! `--smoke` shrinks the message population for CI.

use hyperprotobench::generate_suite;
use protoacc::{AccelConfig, ProtoAccelerator};
use protoacc_mem::{MemConfig, Memory};
use protoacc_runtime::{object, reference, write_adts, BumpArena, MessageLayouts};
use protoacc_schema::{MessageId, Schema};
use protoacc_trace::{audit, chrome, render_profile, ExpectedStats, TraceEvent, TraceLog};

/// Guest-memory map used by the harness (mirrors the bench library's).
mod map {
    pub const INPUT: u64 = 0x2000_0000;
    pub const OBJECTS: u64 = 0x8000_0000;
    pub const OUTPUT: u64 = 0x4000_0000;
    pub const ARENA: u64 = 0x1_0000_0000;
    pub const PTRS: u64 = 0x6000_0000;
    pub const ARENA_LEN: u64 = 1 << 30;
}

struct ProfiledService {
    label: String,
    events: Vec<TraceEvent>,
    expected: Vec<ExpectedStats>,
}

/// Runs one hyperbench service through a traced accelerator: every message
/// deserialized then the whole population serialized back, spans laid out
/// on a per-op cumulative clock so the trace opens cleanly in Perfetto.
fn profile_service(
    label: String,
    schema: &Schema,
    type_id: MessageId,
    messages: &[protoacc_runtime::MessageValue],
) -> ProfiledService {
    let layouts = MessageLayouts::compute(schema);
    let mut mem = Memory::new(MemConfig::default());
    let mut setup_arena = BumpArena::new(0x1_0000, 1 << 24);
    let adts = write_adts(schema, &layouts, &mut mem.data, &mut setup_arena)
        .expect("ADTs fit the setup arena");
    let layout = layouts.layout(type_id);

    let log = TraceLog::shared();
    let mut accel = ProtoAccelerator::new(AccelConfig::default());
    accel.set_tracer(Some(log.clone()));
    accel.set_trace_instance(0);
    mem.system.set_event_tracer(Some(log.clone()));
    let mut clock: u64 = 0;

    // Deserialize the staged wire encodings into fresh objects.
    let mut inputs = Vec::with_capacity(messages.len());
    let mut cursor = map::INPUT;
    for m in messages {
        let wire = reference::encode(m, schema).expect("workload encodes");
        mem.data.write_bytes(cursor, &wire);
        inputs.push((cursor, wire.len() as u64));
        cursor += wire.len() as u64 + 16;
    }
    let mut dest_arena = BumpArena::new(map::OBJECTS, map::ARENA_LEN);
    accel.deser_assign_arena(map::ARENA, map::ARENA_LEN);
    for &(addr, len) in &inputs {
        let dest = dest_arena
            .alloc(layout.object_size(), 8)
            .expect("dest fits");
        accel.set_trace_origin(clock);
        mem.system.set_trace_origin(clock);
        accel.deser_info(adts.addr(type_id), dest);
        let run = accel
            .do_proto_deser(&mut mem, addr, len, layout.min_field())
            .expect("workload deserializes on the accelerator");
        clock += run.cycles;
    }
    accel.block_for_deser_completion();

    // Serialize a materialized copy of the same population.
    let mut obj_arena = BumpArena::new(map::OBJECTS + (map::ARENA_LEN / 2), map::ARENA_LEN / 2);
    let objects: Vec<u64> = messages
        .iter()
        .map(|m| {
            object::write_message(&mut mem.data, schema, &layouts, &mut obj_arena, m)
                .expect("workload materializes")
        })
        .collect();
    accel.ser_assign_arena(map::OUTPUT, map::ARENA_LEN, map::PTRS, 1 << 20);
    for &obj in &objects {
        accel.set_trace_origin(clock);
        mem.system.set_trace_origin(clock);
        accel.ser_info(
            layout.hasbits_offset(),
            layout.min_field(),
            layout.max_field(),
        );
        let run = accel
            .do_proto_ser(&mut mem, adts.addr(type_id), obj)
            .expect("workload serializes on the accelerator");
        clock += run.cycles;
    }
    accel.block_for_ser_completion();

    mem.system.set_event_tracer(None);
    let stats = accel.stats();
    stats.debug_assert_unsaturated();
    let expected = vec![ExpectedStats {
        instance: 0,
        deser_ops: stats.deser_ops,
        deser_cycles: stats.deser_cycles,
        ser_ops: stats.ser_ops,
        ser_cycles: stats.ser_cycles,
        saturated: stats.saturated,
    }];
    let events = std::mem::take(&mut log.borrow_mut().events);
    ProfiledService {
        label,
        events,
        expected,
    }
}

/// Default mode: profile the six hyperbench services and fail if any
/// accounting audit finds a discrepancy.
fn profile_suite(messages_per_bench: usize) -> bool {
    let suite = generate_suite(messages_per_bench, 0xB0B);
    let mut ok = true;
    for bench in &suite {
        let label = format!(
            "bench{} ({}), {} messages",
            bench.profile.index,
            bench.profile.name,
            bench.messages.len()
        );
        let profiled = profile_service(label, &bench.schema, bench.type_id, &bench.messages);
        print!(
            "{}",
            render_profile(&profiled.label, &profiled.events, &profiled.expected)
        );
        let report = audit(&profiled.events, &profiled.expected);
        if !report.ok() {
            for p in &report.problems {
                println!("FAIL [{}]: {p}", profiled.label);
            }
            ok = false;
        }
    }
    ok
}

/// `--reparse` mode: load a Chrome-trace JSON, verify the schema version,
/// and re-run the accounting audit against the embedded stats image.
fn reparse(path: &str) -> bool {
    let json = match std::fs::read_to_string(path) {
        Ok(j) => j,
        Err(e) => {
            println!("FAIL [reparse]: cannot read {path}: {e}");
            return false;
        }
    };
    let parsed = match chrome::parse(&json) {
        Ok(p) => p,
        Err(e) => {
            println!("FAIL [reparse]: {path}: {e}");
            return false;
        }
    };
    if parsed.schema_version != chrome::SCHEMA_VERSION {
        println!(
            "FAIL [reparse]: {path}: schema_version {} (tool supports {})",
            parsed.schema_version,
            chrome::SCHEMA_VERSION
        );
        return false;
    }
    let report = audit(&parsed.events, &parsed.expected);
    print!(
        "{}",
        render_profile(
            &format!("reparse {path} (schema v{})", parsed.schema_version),
            &parsed.events,
            &parsed.expected
        )
    );
    if report.ok() {
        println!(
            "ok   [reparse] {} events, {} instance(s): offline audit passed",
            parsed.events.len(),
            report.per_instance.len()
        );
        true
    } else {
        for p in &report.problems {
            println!("FAIL [reparse]: {p}");
        }
        false
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let reparse_path = args
        .iter()
        .position(|a| a == "--reparse")
        .and_then(|i| args.get(i + 1))
        .cloned();

    let ok = if let Some(path) = reparse_path {
        reparse(&path)
    } else {
        profile_suite(if smoke { 8 } else { 48 })
    };
    if ok {
        println!("profile_report OK");
    } else {
        println!("profile_report FAILED");
        std::process::exit(1);
    }
}
