//! Randomized tests: the instrumented CPU codec agrees with the reference
//! codec on arbitrary messages, in both directions, on both machines.
//! Driven by the workspace's deterministic PRNG (`xrand`); enable the
//! `slow-tests` feature to multiply the iteration counts.

use protoacc_cpu::{CostTable, SoftwareCodec};
use protoacc_mem::Memory;
use protoacc_runtime::{object, reference, BumpArena, MessageLayouts, MessageValue, Value};
use protoacc_schema::{FieldType, MessageId, Schema, SchemaBuilder};
use xrand::{Rng, StdRng};

/// Iteration count, scaled up under `--features slow-tests`.
fn cases(default: usize) -> usize {
    if cfg!(feature = "slow-tests") {
        default * 16
    } else {
        default
    }
}

fn test_schema() -> (Schema, MessageId) {
    let mut b = SchemaBuilder::new();
    let id = b.define("M", |m| {
        m.optional("i", FieldType::Int32, 1)
            .optional("u", FieldType::UInt64, 2)
            .optional("s", FieldType::SInt64, 3)
            .optional("f", FieldType::Float, 4)
            .optional("d", FieldType::Double, 5)
            .optional("t", FieldType::String, 6)
            .optional("y", FieldType::Bytes, 7)
            .repeated("r", FieldType::Int64, 8)
            .packed("p", FieldType::Fixed32, 9);
    });
    (b.build().unwrap(), id)
}

fn random_message(rng: &mut StdRng, id: MessageId) -> MessageValue {
    let mut m = MessageValue::new(id);
    if rng.gen_bool(0.5) {
        m.set_unchecked(1, Value::Int32(rng.gen()));
    }
    if rng.gen_bool(0.5) {
        m.set_unchecked(2, Value::UInt64(rng.gen()));
    }
    if rng.gen_bool(0.5) {
        m.set_unchecked(3, Value::SInt64(rng.gen()));
    }
    if rng.gen_bool(0.5) {
        m.set_unchecked(4, Value::Float(rng.gen()));
    }
    if rng.gen_bool(0.5) {
        m.set_unchecked(5, Value::Double(rng.gen()));
    }
    if rng.gen_bool(0.5) {
        let text: String = (0..rng.gen_range(0u32..48))
            .map(|_| char::from(rng.gen_range(b' '..=b'~')))
            .collect();
        m.set_unchecked(6, Value::Str(text));
    }
    if rng.gen_bool(0.5) {
        let mut bytes = vec![0u8; rng.gen_range(0usize..48)];
        rng.fill(&mut bytes);
        m.set_unchecked(7, Value::Bytes(bytes));
    }
    let r: Vec<Value> = (0..rng.gen_range(0u32..6))
        .map(|_| Value::Int64(rng.gen()))
        .collect();
    if !r.is_empty() {
        m.set_repeated(8, r);
    }
    let p: Vec<Value> = (0..rng.gen_range(0u32..6))
        .map(|_| Value::Fixed32(rng.gen()))
        .collect();
    if !p.is_empty() {
        m.set_repeated(9, p);
    }
    m
}

#[test]
fn cpu_codec_round_trips_on_both_machines() {
    let mut rng = StdRng::seed_from_u64(0xC7_0001);
    let (schema, id) = test_schema();
    let layouts = MessageLayouts::compute(&schema);
    for _ in 0..cases(48) {
        let m = random_message(&mut rng, id);
        let expect = reference::encode(&m, &schema).unwrap();
        for cost in [CostTable::boom(), CostTable::xeon()] {
            let codec = SoftwareCodec::new(&cost);
            let mut mem = Memory::new(cost.mem);
            let mut arena = BumpArena::new(0x1000_0000, 1 << 26);
            // Serialize from a materialized object: byte-identical.
            let obj =
                object::write_message(&mut mem.data, &schema, &layouts, &mut arena, &m).unwrap();
            let (_, len) = codec
                .serialize(&mut mem, &schema, &layouts, id, obj, 0x2000_0000)
                .unwrap();
            assert_eq!(mem.data.read_vec(0x2000_0000, len as usize), expect.clone());
            // Deserialize back: same object graph.
            let dest = arena.alloc(layouts.layout(id).object_size(), 8).unwrap();
            codec
                .deserialize(
                    &mut mem,
                    &schema,
                    &layouts,
                    id,
                    0x2000_0000,
                    len,
                    dest,
                    &mut arena,
                )
                .unwrap();
            let back = object::read_message(&mem.data, &schema, &layouts, id, dest).unwrap();
            assert!(back.bits_eq(&m), "{}", cost.name);
        }
    }
}

#[test]
fn cpu_deser_survives_arbitrary_input() {
    let mut rng = StdRng::seed_from_u64(0xC7_0002);
    let (schema, id) = test_schema();
    let layouts = MessageLayouts::compute(&schema);
    for _ in 0..cases(128) {
        let mut bytes = vec![0u8; rng.gen_range(0usize..256)];
        rng.fill(&mut bytes);
        let cost = CostTable::boom();
        let codec = SoftwareCodec::new(&cost);
        let mut mem = Memory::new(cost.mem);
        let mut arena = BumpArena::new(0x1000_0000, 1 << 24);
        mem.data.write_bytes(0x2000_0000, &bytes);
        let dest = arena.alloc(layouts.layout(id).object_size(), 8).unwrap();
        let _ = codec.deserialize(
            &mut mem,
            &schema,
            &layouts,
            id,
            0x2000_0000,
            bytes.len() as u64,
            dest,
            &mut arena,
        );
    }
}
