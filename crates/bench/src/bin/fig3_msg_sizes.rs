//! Regenerates Figure 3: fleet-wide top-level message size distribution.

use protoacc_fleet::protobufz::{estimate_size_histogram, ShapeModel};
use protoacc_fleet::{bucket_label, SIZE_BUCKET_COUNT};
use xrand::StdRng;

fn main() {
    let model = ShapeModel::google_2021();
    let mut rng = StdRng::seed_from_u64(0xF163);
    let samples = model.sample_population(&mut rng, 200_000);
    let hist = estimate_size_histogram(&samples);

    println!("Figure 3: fleet-wide top-level message size distribution");
    println!(
        "{:<18} {:>10} {:>12}",
        "Bucket (bytes)", "model %", "estimated %"
    );
    let total: f64 = model.size_bucket_weights.iter().sum();
    for (i, share) in hist.iter().enumerate().take(SIZE_BUCKET_COUNT) {
        println!(
            "{:<18} {:>9.2}% {:>11.2}%",
            bucket_label(i),
            model.size_bucket_weights[i] / total * 100.0,
            share * 100.0
        );
    }
    let le8 = hist[0];
    let le32 = hist[0] + hist[1];
    let le512: f64 = hist[..6].iter().sum();
    println!();
    println!(
        "cumulative: {:.0}% <= 8 B (paper: 24%), {:.0}% <= 32 B (paper: 56%), \
         {:.0}% <= 512 B (paper: 93%)",
        le8 * 100.0,
        le32 * 100.0,
        le512 * 100.0
    );
}
