//! Trace-accounting golden test: one HyperProtoBench service served
//! end-to-end with the structured tracer attached, proving the tracing
//! layer's accounting anchor — per-instance `DeserOp`/`SerOp` span sums
//! equal the cluster's `AccelStats` deser/ser op and cycle counters
//! *exactly*, not approximately — on a clean run and on a run with a
//! mid-stream instance crash (every command span reaches a terminal event;
//! a fault must not leak spans).

use protoacc_suite::accel::{
    CommandStatus, DispatchPolicy, InstanceFault, InstanceFaultKind, Request, RequestOp,
    ServeCluster, ServeConfig,
};
use protoacc_suite::hyperbench::{Generator, ServiceProfile};
use protoacc_suite::mem::{Cycles, MemConfig, Memory};
use protoacc_suite::runtime::{object, reference, write_adts, BumpArena, MessageLayouts};
use protoacc_suite::trace::{audit, ExpectedStats, TraceEvent, TraceLog};

/// Guest-memory map: setup/ADTs, wire inputs, source object graphs,
/// per-request destination objects, per-instance accelerator arenas.
const SETUP_BASE: u64 = 0x1_0000;
const INPUT_BASE: u64 = 0x200_0000;
const OBJECT_BASE: u64 = 0x800_0000;
const DEST_BASE: u64 = 0xC000_0000;
const ARENA_BASE: u64 = 0x1_0000_0000;
const ARENA_STRIDE: u64 = 1 << 24;

const MESSAGES: usize = 24;
/// Small enough to keep both instances saturated, so a scripted crash is
/// guaranteed to cut an in-flight attempt (the interesting accounting case)
/// rather than being noticed between commands.
const GAP: Cycles = 200;

struct TracedRun {
    events: Vec<TraceEvent>,
    expected: Vec<ExpectedStats>,
    cluster: ServeCluster,
}

/// Serves one hyperbench service (bench0, ads-serving) through a traced
/// cluster: two deserializations per serialization over the generated
/// population, every destination object isolated per request.
fn run_service(instances: usize, faults: &[InstanceFault]) -> TracedRun {
    let bench = Generator::new(ServiceProfile::bench(0), 0x7C1).generate(MESSAGES);
    let layouts = MessageLayouts::compute(&bench.schema);
    let mut mem = Memory::new(MemConfig::default());
    let mut setup = BumpArena::new(SETUP_BASE, 1 << 22);
    let adts = write_adts(&bench.schema, &layouts, &mut mem.data, &mut setup).unwrap();
    let layout = layouts.layout(bench.type_id);

    let mut input_cursor = INPUT_BASE;
    let mut objects = BumpArena::new(OBJECT_BASE, 1 << 26);
    let mut dests = BumpArena::new(DEST_BASE, 1 << 28);
    let mut requests = Vec::with_capacity(bench.messages.len());
    for (i, m) in bench.messages.iter().enumerate() {
        let arrival = i as Cycles * GAP;
        let op = if i % 3 == 2 {
            let obj_ptr =
                object::write_message(&mut mem.data, &bench.schema, &layouts, &mut objects, m)
                    .unwrap();
            RequestOp::Serialize {
                adt_ptr: adts.addr(bench.type_id),
                obj_ptr,
                hasbits_offset: layout.hasbits_offset(),
                min_field: layout.min_field(),
                max_field: layout.max_field(),
            }
        } else {
            let wire = reference::encode(m, &bench.schema).unwrap();
            let input_addr = input_cursor;
            mem.data.write_bytes(input_addr, &wire);
            input_cursor += wire.len() as u64 + 64;
            RequestOp::Deserialize {
                adt_ptr: adts.addr(bench.type_id),
                input_addr,
                input_len: wire.len() as u64,
                dest_obj: dests.alloc(layout.object_size(), 8).unwrap(),
                min_field: layout.min_field(),
            }
        };
        requests.push(Request {
            arrival,
            watchdog: None,
            deadline: None,
            cost: None,
            op,
        });
    }

    let cfg = ServeConfig {
        instances,
        queue_depth: 256,
        policy: DispatchPolicy::Fifo,
        ..ServeConfig::default()
    };
    let mut cluster = ServeCluster::new(cfg, ARENA_BASE, ARENA_STRIDE);
    let log = TraceLog::shared();
    cluster.set_tracer(Some(log.clone()));
    cluster
        .run_with(&mut mem, &requests, faults, None)
        .expect("serve run succeeds");
    cluster.set_tracer(None);
    let expected = (0..instances)
        .map(|i| {
            let s = cluster.instance_stats(i);
            s.debug_assert_unsaturated();
            ExpectedStats {
                instance: i,
                deser_ops: s.deser_ops,
                deser_cycles: s.deser_cycles,
                ser_ops: s.ser_ops,
                ser_cycles: s.ser_cycles,
                saturated: s.saturated,
            }
        })
        .collect();
    let events = std::mem::take(&mut log.borrow_mut().events);
    TracedRun {
        events,
        expected,
        cluster,
    }
}

/// Independent re-derivation of the span sums (not via `audit`), so the
/// golden check does not trust the thing it is testing.
fn traced_sums(events: &[TraceEvent], instance: usize) -> (u64, Cycles, u64, Cycles) {
    let mut sums = (0u64, 0u64, 0u64, 0u64);
    for e in events {
        match *e {
            TraceEvent::DeserOp {
                instance: i,
                cycles,
                ..
            } if i == instance => {
                sums.0 += 1;
                sums.1 += cycles;
            }
            TraceEvent::SerOp {
                instance: i,
                cycles,
                ..
            } if i == instance => {
                sums.2 += 1;
                sums.3 += cycles;
            }
            _ => {}
        }
    }
    sums
}

#[test]
fn clean_hyperbench_service_traced_spans_sum_exactly_to_accel_stats() {
    let run = run_service(2, &[]);
    assert_eq!(run.cluster.served(), MESSAGES as u64);
    assert_eq!(run.cluster.dropped(), 0);

    for exp in &run.expected {
        let (dops, dcyc, sops, scyc) = traced_sums(&run.events, exp.instance);
        assert_eq!(
            (dops, dcyc, sops, scyc),
            (exp.deser_ops, exp.deser_cycles, exp.ser_ops, exp.ser_cycles),
            "instance {} traced span sums diverge from AccelStats",
            exp.instance
        );
    }
    let report = audit(&run.events, &run.expected);
    assert!(report.ok(), "audit problems: {:?}", report.problems);
    assert!(report.leaked.is_empty());
    assert!(report.duplicated.is_empty());
    assert!(run.events.len() > MESSAGES, "trace is suspiciously sparse");
}

#[test]
fn mid_stream_instance_crash_closes_every_span_and_keeps_the_accounting_exact() {
    // Mid-stream, well past the last arrival but inside the busy window the
    // saturated queue creates: instance 0 has a command in flight when the
    // crash fires, so the attempt is cut short and retried elsewhere.
    let crash = InstanceFault {
        instance: 0,
        at: 8_000,
        kind: InstanceFaultKind::Crash,
    };
    let run = run_service(2, &[crash]);

    // The fault must actually have fired and been absorbed by failover.
    assert_eq!(run.cluster.records().len(), MESSAGES);
    assert!(
        run.cluster
            .records()
            .iter()
            .any(|r| r.attempts > 1 || r.instance == 1),
        "the crash never perturbed the schedule"
    );
    assert!(
        run.cluster
            .records()
            .iter()
            .all(|r| matches!(r.status, CommandStatus::Ok)),
        "with a healthy second instance every command still completes: {:?}",
        run.cluster.status_counts()
    );

    // Accounting stays exact through the fault: killed attempts charge the
    // instance counters and the traced spans identically, and no command
    // span is left open.
    for exp in &run.expected {
        let (dops, dcyc, sops, scyc) = traced_sums(&run.events, exp.instance);
        assert_eq!(
            (dops, dcyc, sops, scyc),
            (exp.deser_ops, exp.deser_cycles, exp.ser_ops, exp.ser_cycles),
            "instance {} accounting diverged under the crash",
            exp.instance
        );
    }
    let report = audit(&run.events, &run.expected);
    assert!(report.ok(), "audit problems: {:?}", report.problems);
    assert!(
        report.leaked.is_empty(),
        "crash leaked command spans: {:?}",
        report.leaked
    );

    // The degradation is visible in the trace itself: the retry marker
    // rides the event stream, so an offline consumer can see the failover.
    assert!(
        run.events
            .iter()
            .any(|e| matches!(e, TraceEvent::CmdRetry { .. })),
        "no retry event traced for a mid-stream crash"
    );
}
