//! Host-throughput benchmark for the native fast-path codec
//! (`protoacc-fastpath`) against `crates/cpu`'s instrumented codec and the
//! reference value-tree codec, over all HyperProtoBench suites plus the
//! `protos/chain` binary-descriptor corpus.
//!
//! Unlike the figure generators (which report *simulated* cycles), every
//! number here is host wall-clock GB/s — this binary answers "how fast is
//! the suite's own software protobuf engine", the baseline the paper's
//! accelerator claims are anchored to.
//!
//! Usage:
//!
//! ```text
//! bench_codec [--smoke] [--out target/BENCH_codec.json]
//!             [--count N] [--seed S]
//! ```
//!
//! `--smoke` shrinks populations and timing windows for CI, but always runs
//! the full correctness gate: byte-identical encodes vs the reference
//! encoder, value-identical round trips, and verdict-identical decodes vs
//! `crates/cpu` over clean, truncated, and seeded-mutated inputs. Any
//! divergence is reported in the JSON and fails the process.

use std::time::Instant;

use hyperprotobench::{generate_suite, populate::populate_messages, ServiceProfile};
use protoacc_bench::{geomean, Workload};
use protoacc_cpu::{CostTable, SoftwareCodec};
use protoacc_fastpath::{DecodeArena, FastCodec};
use protoacc_faults::{mutate, DiffReport, FastpathHarness};
use protoacc_mem::Memory;
use protoacc_runtime::{object, reference, BumpArena, MessageLayouts};
use protoacc_schema::parse_descriptor_set;
use xrand::StdRng;

/// Per-workload measured throughput (GB/s, host wall-clock).
struct Row {
    name: String,
    wire_bytes: u64,
    fast_deser: f64,
    fast_ser: f64,
    cpu_deser: f64,
    cpu_ser: f64,
    ref_deser: f64,
    ref_ser: f64,
}

/// Correctness-gate tally across all workloads.
#[derive(Default)]
struct Gate {
    report: DiffReport,
    encode_divergences: usize,
    roundtrip_divergences: usize,
}

fn arg(name: &str) -> Option<String> {
    std::env::args().skip_while(|a| a != name).nth(1)
}

fn flag(name: &str) -> bool {
    std::env::args().any(|a| a == name)
}

fn main() {
    let smoke = flag("--smoke");
    let out_path = arg("--out").unwrap_or_else(|| "target/BENCH_codec.json".to_string());
    let count: usize = arg("--count")
        .and_then(|v| v.parse().ok())
        .unwrap_or(if smoke { 4 } else { 16 });
    let seed: u64 = arg("--seed")
        .and_then(|v| v.parse().ok())
        .unwrap_or(0xC0DEC);
    // Timing window per measurement; smoke mode only needs plausible numbers.
    let target_secs = if smoke { 0.02 } else { 0.25 };

    let workloads = build_workloads(count, seed);
    if workloads.is_empty() {
        eprintln!("bench_codec: no workloads (run from the repository root)");
        std::process::exit(2);
    }

    // Correctness gate first: the throughput of a wrong codec is irrelevant.
    let mut gate = Gate::default();
    let mutations = if smoke { 24 } else { 120 };
    for w in &workloads {
        differential_gate(w, mutations, seed, &mut gate);
    }

    let mut rows = Vec::new();
    println!(
        "{:<26} {:>10} {:>11} {:>11} {:>11} {:>11} {:>11} {:>11}",
        "workload", "wire B", "fast de", "fast ser", "cpu de", "cpu ser", "ref de", "ref ser"
    );
    for w in &workloads {
        let row = measure_workload(w, target_secs);
        println!(
            "{:<26} {:>10} {:>11.3} {:>11.3} {:>11.3} {:>11.3} {:>11.3} {:>11.3}",
            row.name,
            row.wire_bytes,
            row.fast_deser,
            row.fast_ser,
            row.cpu_deser,
            row.cpu_ser,
            row.ref_deser,
            row.ref_ser
        );
        rows.push(row);
    }

    let g_fast_de = geomean(&rows.iter().map(|r| r.fast_deser).collect::<Vec<_>>());
    let g_fast_se = geomean(&rows.iter().map(|r| r.fast_ser).collect::<Vec<_>>());
    let g_cpu_de = geomean(&rows.iter().map(|r| r.cpu_deser).collect::<Vec<_>>());
    let g_cpu_se = geomean(&rows.iter().map(|r| r.cpu_ser).collect::<Vec<_>>());
    let g_ref_de = geomean(&rows.iter().map(|r| r.ref_deser).collect::<Vec<_>>());
    let g_ref_se = geomean(&rows.iter().map(|r| r.ref_ser).collect::<Vec<_>>());
    let deser_speedup = g_fast_de / g_cpu_de;
    println!(
        "geomean: fastpath {g_fast_de:.3}/{g_fast_se:.3} GB/s, cpu codec {g_cpu_de:.3}/{g_cpu_se:.3}, \
         reference {g_ref_de:.3}/{g_ref_se:.3} (deser speedup vs cpu: {deser_speedup:.1}x)"
    );
    println!(
        "differential: {} ({} encode, {} round-trip divergences)",
        gate.report.summary(),
        gate.encode_divergences,
        gate.roundtrip_divergences
    );

    let json = render_json(
        if smoke { "smoke" } else { "full" },
        &rows,
        &[
            g_fast_de,
            g_fast_se,
            g_cpu_de,
            g_cpu_se,
            g_ref_de,
            g_ref_se,
            deser_speedup,
        ],
        &gate,
    );
    if let Some(dir) = std::path::Path::new(&out_path).parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    if let Err(e) = std::fs::write(&out_path, json) {
        eprintln!("bench_codec: {out_path}: {e}");
        std::process::exit(2);
    }
    println!("wrote {out_path}");

    let divergent =
        !gate.report.is_clean() || gate.encode_divergences > 0 || gate.roundtrip_divergences > 0;
    if divergent {
        eprintln!("bench_codec: DIVERGENCE between fastpath and cpu codec — failing");
        std::process::exit(1);
    }
    if !smoke && deser_speedup < 2.0 {
        eprintln!(
            "bench_codec: fastpath deser geomean only {deser_speedup:.2}x cpu codec (< 2x floor)"
        );
        std::process::exit(1);
    }
}

/// The six HyperProtoBench suites plus every `protos/chain/*.binpb`
/// descriptor-set schema, each with a seeded population.
fn build_workloads(count: usize, seed: u64) -> Vec<Workload> {
    let mut out: Vec<Workload> = generate_suite(count, seed)
        .into_iter()
        .map(|bench| Workload {
            name: bench.profile.name.to_string(),
            schema: bench.schema,
            type_id: bench.type_id,
            messages: bench.messages,
        })
        .collect();
    let chain = ["consensus", "gossip", "state_sync", "transaction"];
    for (i, stem) in chain.iter().enumerate() {
        let path = format!("protos/chain/{stem}.binpb");
        let Ok(bytes) = std::fs::read(&path) else {
            eprintln!("bench_codec: skipping {path} (not found)");
            continue;
        };
        let schema = match parse_descriptor_set(&bytes) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("bench_codec: skipping {path}: {e}");
                continue;
            }
        };
        // Root: the last top-level message, the corpus convention.
        let root = schema
            .iter()
            .filter(|(_, m)| !m.name().contains('.'))
            .map(|(id, _)| id)
            .last()
            .expect("descriptor set has at least one message");
        let shape = ServiceProfile::bench(4).shape;
        let messages = populate_messages(
            &schema,
            root,
            &shape,
            seed.wrapping_add(1000 + i as u64),
            count,
        );
        out.push(Workload {
            name: format!("chain/{stem}"),
            schema,
            type_id: root,
            messages,
        });
    }
    out
}

/// Byte-identity, round-trip, and verdict agreement for one workload.
fn differential_gate(w: &Workload, mutations: usize, seed: u64, gate: &mut Gate) {
    let mut h = FastpathHarness::new(&w.schema, w.type_id);
    let mut rng = StdRng::seed_from_u64(seed ^ 0xD1FF_5EED);
    let mut arena = DecodeArena::new();
    for m in &w.messages {
        let wire = reference::encode(m, &w.schema).expect("workload encodes");
        // Encode byte-identity against the reference encoder.
        match h.codec().encode_value(m) {
            Ok(fast_wire) if fast_wire == wire => {}
            _ => gate.encode_divergences += 1,
        }
        // Decode round trip: value-identical tree, byte-identical re-encode.
        let codec = h.codec().clone();
        match codec.decode(w.type_id, &wire, &mut arena) {
            Ok(obj) => {
                let back = codec.to_value(w.type_id, &wire, &arena, obj);
                if !back.bits_eq(m) {
                    gate.roundtrip_divergences += 1;
                }
                if codec.encode_decoded(w.type_id, &wire, &arena, obj) != wire {
                    gate.roundtrip_divergences += 1;
                }
            }
            Err(_) => gate.roundtrip_divergences += 1,
        }
        // Verdict agreement: clean, truncated at sampled offsets, mutated.
        h.observe("clean", &wire, &mut gate.report);
        let stride = (wire.len() / 32).max(1);
        for cut in (0..wire.len()).step_by(stride) {
            h.observe("truncate", &wire[..cut], &mut gate.report);
        }
        for _ in 0..mutations {
            let (fault, mutated) = mutate(&wire, &mut rng);
            h.observe(fault.label(), &mutated, &mut gate.report);
        }
    }
}

fn measure_workload(w: &Workload, target_secs: f64) -> Row {
    let wires: Vec<Vec<u8>> = w
        .messages
        .iter()
        .map(|m| reference::encode(m, &w.schema).expect("workload encodes"))
        .collect();
    let per_pass: u64 = wires.iter().map(|b| b.len() as u64).sum();
    let codec = FastCodec::new(&w.schema);

    // Fast path, deserialize: arena decode per message.
    let mut arena = DecodeArena::new();
    let fast_deser = throughput(per_pass, target_secs, 1 << 14, || {
        let mut sink = 0u32;
        for wire in &wires {
            sink ^= codec
                .decode(w.type_id, wire, &mut arena)
                .expect("workload decodes");
        }
        std::hint::black_box(sink);
    });

    // Fast path, serialize: straight from decoded arena objects.
    let decoded: Vec<(DecodeArena, u32)> = wires
        .iter()
        .map(|wire| {
            let mut a = DecodeArena::new();
            let obj = codec
                .decode(w.type_id, wire, &mut a)
                .expect("workload decodes");
            (a, obj)
        })
        .collect();
    let fast_ser = throughput(per_pass, target_secs, 1 << 14, || {
        for (wire, (a, obj)) in wires.iter().zip(&decoded) {
            std::hint::black_box(codec.encode_decoded(w.type_id, wire, a, *obj).len());
        }
    });

    // Reference value-tree codec (host software baseline).
    let ref_deser = throughput(per_pass, target_secs, 1 << 12, || {
        for wire in &wires {
            std::hint::black_box(
                reference::decode(wire, w.type_id, &w.schema).expect("workload decodes"),
            );
        }
    });
    let ref_ser = throughput(per_pass, target_secs, 1 << 12, || {
        for m in &w.messages {
            std::hint::black_box(
                reference::encode(m, &w.schema)
                    .expect("workload encodes")
                    .len(),
            );
        }
    });

    // crates/cpu instrumented codec, host wall-clock (it decodes through
    // simulated guest memory; that cost is part of what it is).
    let (cpu_deser, cpu_ser) = measure_cpu(w, &wires, per_pass, target_secs);

    Row {
        name: w.name.clone(),
        wire_bytes: per_pass,
        fast_deser,
        fast_ser,
        cpu_deser,
        cpu_ser,
        ref_deser,
        ref_ser,
    }
}

/// Guest-memory map for the cpu-codec measurement.
const INPUT_BASE: u64 = 0x2000_0000;
const OBJECTS_BASE: u64 = 0x8000_0000;
const OUTPUT_BASE: u64 = 0x4000_0000;
const ARENA_BASE: u64 = 0x1_0000_0000;
const ARENA_LEN: u64 = 1 << 30;

fn measure_cpu(w: &Workload, wires: &[Vec<u8>], per_pass: u64, target_secs: f64) -> (f64, f64) {
    let cost = CostTable::boom();
    let layouts = MessageLayouts::compute(&w.schema);
    let mut mem = Memory::new(cost.mem);
    let codec = SoftwareCodec::new(&cost);

    let mut inputs = Vec::with_capacity(wires.len());
    let mut cursor = INPUT_BASE;
    for wire in wires {
        mem.data.write_bytes(cursor, wire);
        inputs.push((cursor, wire.len() as u64));
        cursor += wire.len() as u64 + 16;
    }
    let object_size = layouts.layout(w.type_id).object_size();
    let mut arena = BumpArena::new(ARENA_BASE, ARENA_LEN);
    let deser = throughput(per_pass, target_secs, 256, || {
        arena.reset();
        for &(addr, len) in &inputs {
            let dest = arena.alloc(object_size, 8).expect("bench arena fits");
            codec
                .deserialize(
                    &mut mem, &w.schema, &layouts, w.type_id, addr, len, dest, &mut arena,
                )
                .expect("workload deserializes");
        }
    });

    let mut obj_arena = BumpArena::new(OBJECTS_BASE, ARENA_LEN);
    let objects: Vec<u64> = w
        .messages
        .iter()
        .map(|m| {
            object::write_message(&mut mem.data, &w.schema, &layouts, &mut obj_arena, m)
                .expect("workload materializes")
        })
        .collect();
    let ser = throughput(per_pass, target_secs, 256, || {
        let mut out = OUTPUT_BASE;
        for &obj in &objects {
            let (_, len) = codec
                .serialize(&mut mem, &w.schema, &layouts, w.type_id, obj, out)
                .expect("workload serializes");
            out += len + 64;
        }
    });
    (deser, ser)
}

/// Runs `pass` once to warm up, then repeatedly until `target_secs` elapses
/// (or `max_passes`), returning GB/s over the timed passes.
fn throughput(
    bytes_per_pass: u64,
    target_secs: f64,
    max_passes: usize,
    mut pass: impl FnMut(),
) -> f64 {
    pass(); // warm-up
    let start = Instant::now();
    let mut passes = 0usize;
    loop {
        pass();
        passes += 1;
        let elapsed = start.elapsed().as_secs_f64();
        if (elapsed >= target_secs && passes >= 3) || passes >= max_passes {
            let total = bytes_per_pass as f64 * passes as f64;
            return total / elapsed / 1e9;
        }
    }
}

fn render_json(mode: &str, rows: &[Row], geo: &[f64; 7], gate: &Gate) -> String {
    let mut out = format!("{{\n  \"schema_version\": 1,\n  \"mode\": \"{mode}\",\n  \"unit\": \"GB/s host wall-clock\",\n  \"workloads\": [");
    for (i, r) in rows.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"name\": \"{}\", \"wire_bytes\": {}, \
             \"fastpath\": {{\"deser_gbps\": {:.4}, \"ser_gbps\": {:.4}}}, \
             \"cpu_codec\": {{\"deser_gbps\": {:.4}, \"ser_gbps\": {:.4}}}, \
             \"reference\": {{\"deser_gbps\": {:.4}, \"ser_gbps\": {:.4}}}, \
             \"deser_speedup_vs_cpu\": {:.2}}}",
            r.name,
            r.wire_bytes,
            r.fast_deser,
            r.fast_ser,
            r.cpu_deser,
            r.cpu_ser,
            r.ref_deser,
            r.ref_ser,
            r.fast_deser / r.cpu_deser
        ));
    }
    out.push_str(&format!(
        "\n  ],\n  \"geomean\": {{\"fast_deser_gbps\": {:.4}, \"fast_ser_gbps\": {:.4}, \
         \"cpu_deser_gbps\": {:.4}, \"cpu_ser_gbps\": {:.4}, \
         \"ref_deser_gbps\": {:.4}, \"ref_ser_gbps\": {:.4}, \
         \"deser_speedup_vs_cpu\": {:.2}}},\n",
        geo[0], geo[1], geo[2], geo[3], geo[4], geo[5], geo[6]
    ));
    out.push_str(&format!(
        "  \"differential\": {{\"trials\": {}, \"accepted\": {}, \"rejected\": {}, \
         \"verdict_mismatches\": {}, \"encode_divergences\": {}, \
         \"roundtrip_divergences\": {}}}\n}}\n",
        gate.report.trials,
        gate.report.accepted,
        gate.report.rejected,
        gate.report.mismatches.len(),
        gate.encode_divergences,
        gate.roundtrip_divergences
    ));
    out
}
