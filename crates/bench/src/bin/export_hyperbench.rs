//! Exports the generated HyperProtoBench suite as `.proto` files — what the
//! paper's published repository ships per service (§5.2).
//!
//! Writes `artifacts/hyperprotobench/bench<i>.proto` plus a summary of each
//! benchmark's shape.

use hyperprotobench::generate_suite;
use protoacc_fleet::protodb::analyze_schema;

fn main() {
    let out_dir = std::path::Path::new("artifacts/hyperprotobench");
    std::fs::create_dir_all(out_dir).expect("create output directory");
    println!(
        "Exporting HyperProtoBench schemas to {}/",
        out_dir.display()
    );
    println!(
        "{:<10} {:<18} {:>8} {:>8} {:>10} {:>14}",
        "bench", "service", "types", "fields", "repeated", "bytes/message"
    );
    for bench in generate_suite(16, 0xB0B) {
        let path = out_dir.join(format!("bench{}.proto", bench.profile.index));
        std::fs::write(&path, bench.proto_source()).expect("write schema");
        let stats = analyze_schema(&bench.schema);
        println!(
            "{:<10} {:<18} {:>8} {:>8} {:>10} {:>14}",
            bench.profile.label(),
            bench.profile.name,
            stats.message_types,
            stats.fields,
            stats.repeated_fields,
            bench.total_wire_bytes() / bench.messages.len().max(1)
        );
    }
    println!("\n(each file re-parses with protoacc_schema::parse_proto; see the\n hyperprotobench::generator tests)");
}
