//! `protoacc-lint`: lint `.proto` files and binary descriptor sets against
//! the accelerator model.
//!
//! ```text
//! protoacc-lint [OPTIONS] PATH...
//!
//! PATH                 a .proto file or a directory scanned recursively
//! --descriptor-set P   a binary FileDescriptorSet (.binpb) file, or a
//!                      directory scanned recursively for .binpb files;
//!                      repeatable, combinable with PATH inputs
//! --format human|json  output format (default human)
//! --fail-on SEV        exit 1 when a diagnostic at/above SEV exists
//!                      (deny|warn|never; default deny)
//! --allow CODE         silence a check (PAxxx or kebab name)
//! --warn CODE          downgrade/force a check to warn
//! --deny CODE          upgrade a check to deny
//! --stack-depth N      override the modeled metadata stack depth
//! --watchdog-budget N  serve watchdog cycle budget (enables PA010/PA015)
//! --utf8               lint under proto3 semantics (UTF-8 validation)
//! --bench-out FILE     write per-input wall time + finding counts as JSON
//! --verify             also run the PA016–PA020 translation validator over
//!                      the compiled dispatch tables and hardware ADT image
//! --dense-table-budget N  PA020 per-type table byte budget (default 8 MiB)
//! ```
//!
//! Both front-ends lower to the same `Schema`, so a schema produces
//! byte-identical reports whether it arrives as text or as a binary
//! descriptor set — the differential gate in `tests/descriptor_ingestion.rs`
//! holds the two paths together.
//!
//! Exit codes: 0 clean (below the `--fail-on` threshold), 1 gate failure,
//! 2 usage or parse error.

#![forbid(unsafe_code)]

use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::time::Instant;

use protoacc_lint::{
    lint_schema, lint_schema_verified, DiagCode, LintConfig, LintReport, Severity, ALL_CODES,
};
use protoacc_schema::{parse_descriptor_set, parse_proto};

#[derive(Debug, PartialEq, Eq, Clone, Copy)]
enum Format {
    Human,
    Json,
}

/// Which front-end an input file goes through.
#[derive(Debug, PartialEq, Eq, Clone, Copy)]
enum InputKind {
    Proto,
    DescriptorSet,
}

impl InputKind {
    fn as_str(self) -> &'static str {
        match self {
            InputKind::Proto => "proto",
            InputKind::DescriptorSet => "descriptor-set",
        }
    }
}

struct Options {
    format: Format,
    fail_on: Option<Severity>,
    config: LintConfig,
    paths: Vec<PathBuf>,
    descriptor_sets: Vec<PathBuf>,
    bench_out: Option<PathBuf>,
    verify: bool,
}

fn usage() -> String {
    "usage: protoacc-lint [--format human|json] [--fail-on deny|warn|never] \
     [--allow CODE] [--warn CODE] [--deny CODE] [--stack-depth N] \
     [--watchdog-budget N] [--utf8] [--descriptor-set PATH]... \
     [--bench-out FILE] [--verify] [--dense-table-budget N] PATH..."
        .to_string()
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        format: Format::Human,
        fail_on: Some(Severity::Deny),
        config: LintConfig::default(),
        paths: Vec::new(),
        descriptor_sets: Vec::new(),
        bench_out: None,
        verify: false,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value\n{}", usage()))
        };
        match arg.as_str() {
            "--format" => {
                opts.format = match value("--format")?.as_str() {
                    "human" => Format::Human,
                    "json" => Format::Json,
                    other => return Err(format!("unknown format `{other}`\n{}", usage())),
                };
            }
            "--fail-on" => {
                let v = value("--fail-on")?;
                opts.fail_on = match v.as_str() {
                    "never" => None,
                    s => Some(
                        Severity::parse(s)
                            .filter(|s| *s != Severity::Allow)
                            .ok_or_else(|| format!("unknown fail level `{v}`\n{}", usage()))?,
                    ),
                };
            }
            "--allow" | "--warn" | "--deny" => {
                let sev = Severity::parse(&arg[2..]).expect("flag name is a severity");
                let v = value(arg)?;
                let code = DiagCode::parse(&v)
                    .ok_or_else(|| format!("unknown diagnostic code `{v}`\n{}", usage()))?;
                opts.config.overrides.push((code, sev));
            }
            "--stack-depth" => {
                let v = value("--stack-depth")?;
                opts.config.accel.stack_depth = v
                    .parse()
                    .map_err(|_| format!("bad stack depth `{v}`\n{}", usage()))?;
            }
            "--watchdog-budget" => {
                let v = value("--watchdog-budget")?;
                opts.config.watchdog_budget = Some(
                    v.parse()
                        .map_err(|_| format!("bad watchdog budget `{v}`\n{}", usage()))?,
                );
            }
            "--descriptor-set" => {
                opts.descriptor_sets.push(PathBuf::from(value(arg)?));
            }
            "--bench-out" => {
                opts.bench_out = Some(PathBuf::from(value(arg)?));
            }
            "--dense-table-budget" => {
                let v = value("--dense-table-budget")?;
                opts.config.dense_table_budget = v
                    .parse()
                    .map_err(|_| format!("bad dense table budget `{v}`\n{}", usage()))?;
            }
            "--verify" => opts.verify = true,
            "--utf8" => opts.config.accel.validate_utf8 = true,
            "--help" | "-h" => return Err(usage()),
            p if p.starts_with("--") => {
                return Err(format!("unknown option `{p}`\n{}", usage()));
            }
            p => opts.paths.push(PathBuf::from(p)),
        }
    }
    if opts.paths.is_empty() && opts.descriptor_sets.is_empty() {
        return Err(format!("no input paths\n{}", usage()));
    }
    Ok(opts)
}

/// Collects files with `ext`: a file path is taken as-is, a directory is
/// scanned recursively with deterministic (sorted) ordering.
fn collect_files(path: &Path, ext: &str, out: &mut Vec<PathBuf>) -> Result<(), String> {
    if path.is_file() {
        out.push(path.to_path_buf());
        return Ok(());
    }
    if !path.is_dir() {
        return Err(format!("{}: no such file or directory", path.display()));
    }
    let mut entries: Vec<PathBuf> = std::fs::read_dir(path)
        .map_err(|e| format!("{}: {e}", path.display()))?
        .filter_map(Result::ok)
        .map(|e| e.path())
        .collect();
    entries.sort();
    for entry in entries {
        if entry.is_dir() {
            collect_files(&entry, ext, out)?;
        } else if entry.extension().is_some_and(|e| e == ext) {
            out.push(entry);
        }
    }
    Ok(())
}

/// One per-input row of the `--bench-out` report.
struct BenchRow {
    path: String,
    kind: InputKind,
    types: usize,
    deny: usize,
    warn: usize,
    wall_ms: f64,
}

fn render_bench(rows: &[BenchRow], report: &LintReport, total_ms: f64) -> String {
    let mut out = String::from("{\n  \"inputs\": [");
    for (i, r) in rows.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"path\": \"{}\", \"kind\": \"{}\", \"types\": {}, \
             \"deny\": {}, \"warn\": {}, \"wall_ms\": {:.3}}}",
            r.path.replace('\\', "/"),
            r.kind.as_str(),
            r.types,
            r.deny,
            r.warn,
            r.wall_ms
        ));
    }
    out.push_str(if rows.is_empty() { "],\n" } else { "\n  ],\n" });
    out.push_str("  \"codes\": {");
    for (i, code) in ALL_CODES.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&format!(
            "\"{}\": {}",
            code.code(),
            report.with_code(*code).count()
        ));
    }
    out.push_str("},\n");
    out.push_str(&format!(
        "  \"total\": {{\"files\": {}, \"types\": {}, \"deny\": {}, \
         \"warn\": {}, \"wall_ms\": {:.3}}}\n}}\n",
        rows.len(),
        report.types.len(),
        report.deny_count(),
        report.warn_count(),
        total_ms
    ));
    out
}

fn run() -> Result<ExitCode, String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = parse_args(&args)?;

    let mut inputs: Vec<(PathBuf, InputKind)> = Vec::new();
    {
        let mut protos = Vec::new();
        for path in &opts.paths {
            collect_files(path, "proto", &mut protos)?;
        }
        if !opts.paths.is_empty() && protos.is_empty() {
            return Err("no .proto files found under the given paths".to_string());
        }
        inputs.extend(protos.into_iter().map(|p| (p, InputKind::Proto)));
        let mut sets = Vec::new();
        for path in &opts.descriptor_sets {
            collect_files(path, "binpb", &mut sets)?;
        }
        if !opts.descriptor_sets.is_empty() && sets.is_empty() {
            return Err("no .binpb files found under the --descriptor-set paths".to_string());
        }
        inputs.extend(sets.into_iter().map(|p| (p, InputKind::DescriptorSet)));
    }

    let started = Instant::now();
    let mut report = LintReport::default();
    let mut rows = Vec::with_capacity(inputs.len());
    for (file, kind) in &inputs {
        let file_start = Instant::now();
        let schema = match kind {
            InputKind::Proto => {
                let source = std::fs::read_to_string(file)
                    .map_err(|e| format!("{}: {e}", file.display()))?;
                parse_proto(&source).map_err(|e| format!("{}: parse error: {e}", file.display()))?
            }
            InputKind::DescriptorSet => {
                let bytes = std::fs::read(file).map_err(|e| format!("{}: {e}", file.display()))?;
                parse_descriptor_set(&bytes)
                    .map_err(|e| format!("{}: descriptor error: {e}", file.display()))?
            }
        };
        let one = if opts.verify {
            lint_schema_verified(&schema, &opts.config)
        } else {
            lint_schema(&schema, &opts.config)
        };
        rows.push(BenchRow {
            path: file.display().to_string(),
            kind: *kind,
            types: one.types.len(),
            deny: one.deny_count(),
            warn: one.warn_count(),
            wall_ms: file_start.elapsed().as_secs_f64() * 1000.0,
        });
        report.merge(one);
    }
    let total_ms = started.elapsed().as_secs_f64() * 1000.0;

    if let Some(out) = &opts.bench_out {
        std::fs::write(out, render_bench(&rows, &report, total_ms))
            .map_err(|e| format!("{}: {e}", out.display()))?;
    }

    match opts.format {
        Format::Human => print!("{}", report.render_human()),
        Format::Json => print!("{}", report.render_json()),
    }

    let failed = match opts.fail_on {
        None => false,
        Some(level) => report.max_severity().is_some_and(|max| max >= level),
    };
    Ok(if failed {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    })
}

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("protoacc-lint: {msg}");
            ExitCode::from(2)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| (*s).to_string()).collect()
    }

    #[test]
    fn parses_overrides_and_paths() {
        let o = parse_args(&args(&[
            "--format",
            "json",
            "--deny",
            "PA005",
            "--allow",
            "stack-spill",
            "--stack-depth",
            "4",
            "protos",
        ]))
        .unwrap();
        assert_eq!(o.format, Format::Json);
        assert_eq!(o.config.accel.stack_depth, 4);
        assert_eq!(
            o.config.overrides,
            vec![
                (DiagCode::WindowStarve, Severity::Deny),
                (DiagCode::StackSpill, Severity::Allow)
            ]
        );
        assert_eq!(o.paths, vec![PathBuf::from("protos")]);
    }

    #[test]
    fn rejects_bad_input() {
        assert!(parse_args(&args(&[])).is_err());
        assert!(parse_args(&args(&["--format", "xml", "p"])).is_err());
        assert!(parse_args(&args(&["--deny", "PA999", "p"])).is_err());
        assert!(parse_args(&args(&["--bogus", "p"])).is_err());
        assert!(parse_args(&args(&["--watchdog-budget", "abc", "p"])).is_err());
    }

    #[test]
    fn fail_on_never_disables_the_gate() {
        let o = parse_args(&args(&["--fail-on", "never", "p"])).unwrap();
        assert_eq!(o.fail_on, None);
        let o = parse_args(&args(&["--fail-on", "warn", "p"])).unwrap();
        assert_eq!(o.fail_on, Some(Severity::Warn));
    }

    #[test]
    fn descriptor_set_inputs_stand_alone() {
        // --descriptor-set alone satisfies the input requirement.
        let o = parse_args(&args(&["--descriptor-set", "protos/chain"])).unwrap();
        assert!(o.paths.is_empty());
        assert_eq!(o.descriptor_sets, vec![PathBuf::from("protos/chain")]);
        // New knobs parse.
        let o = parse_args(&args(&[
            "--watchdog-budget",
            "500000",
            "--bench-out",
            "bench.json",
            "p",
        ]))
        .unwrap();
        assert_eq!(o.config.watchdog_budget, Some(500_000));
        assert_eq!(o.bench_out, Some(PathBuf::from("bench.json")));
    }

    #[test]
    fn verify_flags_parse() {
        let o = parse_args(&args(&["--verify", "--dense-table-budget", "4096", "p"])).unwrap();
        assert!(o.verify);
        assert_eq!(o.config.dense_table_budget, 4096);
        let o = parse_args(&args(&["p"])).unwrap();
        assert!(!o.verify);
        assert_eq!(
            o.config.dense_table_budget,
            LintConfig::default().dense_table_budget
        );
        assert!(parse_args(&args(&["--dense-table-budget", "lots", "p"])).is_err());
    }

    #[test]
    fn bench_report_is_balanced_json() {
        let rows = vec![BenchRow {
            path: "protos/x.proto".to_string(),
            kind: InputKind::Proto,
            types: 2,
            deny: 0,
            warn: 1,
            wall_ms: 0.25,
        }];
        let json = render_bench(&rows, &LintReport::default(), 0.5);
        assert!(json.contains("\"kind\": \"proto\""));
        assert!(json.contains("\"PA011\": 0"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }
}
