//! Serving-model study: tail latency and throughput scaling of a
//! multi-instance accelerator cluster behind a RoCC command queue.
//!
//! Replays a fleet-distribution message mix (`protoacc_fleet::traffic`)
//! against [`ServeCluster`]: N accelerator instances sharing one simulated
//! LLC/DRAM, fed by a bounded command queue with FIFO or round-robin
//! dispatch. Reports:
//!
//! * throughput scaling vs instance count (N = 1, 2, 4, 8) under a
//!   saturating offered load — sublinear once the shared memory hierarchy
//!   contends;
//! * p50/p95/p99 request latency and queue drops across an offered-load
//!   sweep at fixed N (the saturation curve);
//! * a per-requester memory breakdown showing how LLC/DRAM traffic divides
//!   across instances.
//!
//! `--smoke` runs a tiny grid twice and fails (non-zero exit) on any queue
//! invariant violation or nondeterminism between the two runs — the CI
//! gate for the serving model.
//!
//! `--sanitize` replays instrumented runs through the `protoacc-absint`
//! race/hazard sanitizer: command lifecycles must respect happens-before
//! (PA008), no two in-flight commands may touch overlapping arena bytes
//! with a writer (PA009), and every measured service time must sit inside
//! its statically derived `[lower, upper]` cycle envelope (PA007).
//! Violations are rendered through the `protoacc-lint` severity machinery
//! and fail the process. Combines with `--smoke` for the CI gate.
//!
//! `--faults` sweeps the `protoacc-faults` injection planes (instance
//! crash/hang/slow scripts, memory ECC/stall arming, wire bit flips)
//! across kill-rates, with every request carrying its statically derived
//! watchdog ceiling and the software CPU codec wired in as the last rung of
//! the degradation ladder. Reports p99, goodput, and where on the ladder
//! each cell's load landed. `--smoke --faults` is the CI variant: every
//! class must serve 100% of admitted load, twice, identically.

use std::process::ExitCode;
use std::time::Instant;

use protoacc::{
    AccelConfig, DispatchPolicy, InstanceFault, Request, RequestOp, ServeCluster, ServeConfig,
    ShardOutcome, ShardedCluster,
};
use protoacc_absint::{Envelope, ServiceBounds};
use protoacc_faults::memory::{arm_random_ecc, arm_random_stalls};
use protoacc_faults::wire::corrupt;
use protoacc_faults::WIRE_FAULTS;
use protoacc_faults::{random_script, InstanceFaultPlan, SoftwareFallback};
use protoacc_fleet::traffic::{TrafficEvent, TrafficMix};
use protoacc_lint::{findings_to_diagnostics, LintConfig, LintReport};
use protoacc_mem::{Cycles, MemConfig, Memory};
use protoacc_runtime::{object, reference, write_adts, AdtTables, BumpArena, MessageLayouts};
use xrand::{Rng, StdRng};

/// Seed for synthesizing the prototype population.
const MIX_SEED: u64 = 0xF1EE7;
/// Seed for the arrival process.
const STREAM_SEED: u64 = 0x10AD;
/// Per-instance slice of guest memory for arenas (64 MiB).
const ARENA_STRIDE: u64 = 1 << 26;
const ARENA_BASE: u64 = 0x1_0000_0000;

/// Guest-memory addresses of one staged prototype.
#[derive(Debug, Clone, Copy)]
struct StagedProto {
    adt_ptr: u64,
    input_addr: u64,
    input_len: u64,
    dest_obj: u64,
    obj_ptr: u64,
    object_size: u64,
    hasbits_offset: u64,
    min_field: u32,
    max_field: u32,
}

/// Writes ADTs, wire inputs, and object graphs for every prototype into a
/// fresh memory image, returning the staged prototypes plus the ADT tables
/// (the software-fallback codec resolves ADT pointers back to message
/// types). Deterministic: addresses depend only on the mix.
fn stage(mix: &TrafficMix, mem: &mut Memory) -> (Vec<StagedProto>, AdtTables) {
    let layouts = MessageLayouts::compute(&mix.schema);
    let mut setup = BumpArena::new(0x1_0000, 1 << 26);
    let adts = write_adts(&mix.schema, &layouts, &mut mem.data, &mut setup).unwrap();
    let mut input_cursor = 0x2000_0000u64;
    let mut objects = BumpArena::new(0x8000_0000, 1 << 30);
    let staged = mix
        .prototypes
        .iter()
        .map(|p| {
            let wire = reference::encode(&p.message, &mix.schema).unwrap();
            let input_addr = input_cursor;
            mem.data.write_bytes(input_addr, &wire);
            input_cursor += wire.len() as u64 + 64;
            let obj_ptr = object::write_message(
                &mut mem.data,
                &mix.schema,
                &layouts,
                &mut objects,
                &p.message,
            )
            .unwrap();
            let layout = layouts.layout(p.type_id);
            let dest_obj = objects.alloc(layout.object_size(), 8).unwrap();
            StagedProto {
                adt_ptr: adts.addr(p.type_id),
                input_addr,
                input_len: wire.len() as u64,
                dest_obj,
                obj_ptr,
                object_size: layout.object_size(),
                hasbits_offset: layout.hasbits_offset(),
                min_field: layout.min_field(),
                max_field: layout.max_field(),
            }
        })
        .collect();
    (staged, adts)
}

fn to_requests(events: &[TrafficEvent], staged: &[StagedProto]) -> Vec<Request> {
    events
        .iter()
        .map(|e| {
            let s = staged[e.prototype];
            Request {
                arrival: e.arrival,
                watchdog: None,
                deadline: None,
                cost: None,
                op: if e.deser {
                    RequestOp::Deserialize {
                        adt_ptr: s.adt_ptr,
                        input_addr: s.input_addr,
                        input_len: s.input_len,
                        dest_obj: s.dest_obj,
                        min_field: s.min_field,
                    }
                } else {
                    RequestOp::Serialize {
                        adt_ptr: s.adt_ptr,
                        obj_ptr: s.obj_ptr,
                        hasbits_offset: s.hasbits_offset,
                        min_field: s.min_field,
                        max_field: s.max_field,
                    }
                },
            }
        })
        .collect()
}

/// Like [`to_requests`], but gives every deserialization its own
/// destination object. The default staging reuses one slot per prototype,
/// which is a genuine arena-aliasing hazard (PA009) the moment two
/// instances deserialize the same prototype concurrently — acceptable for
/// pure timing studies, but exactly what a sanitized run must not do.
fn to_requests_isolated(
    events: &[TrafficEvent],
    staged: &[StagedProto],
    dests: &mut BumpArena,
) -> Vec<Request> {
    events
        .iter()
        .map(|e| {
            let s = staged[e.prototype];
            Request {
                arrival: e.arrival,
                watchdog: None,
                deadline: None,
                cost: None,
                op: if e.deser {
                    RequestOp::Deserialize {
                        adt_ptr: s.adt_ptr,
                        input_addr: s.input_addr,
                        input_len: s.input_len,
                        dest_obj: dests.alloc(s.object_size, 8).expect("dest arena"),
                        min_field: s.min_field,
                    }
                } else {
                    RequestOp::Serialize {
                        adt_ptr: s.adt_ptr,
                        obj_ptr: s.obj_ptr,
                        hasbits_offset: s.hasbits_offset,
                        min_field: s.min_field,
                        max_field: s.max_field,
                    }
                },
            }
        })
        .collect()
}

/// `--sanitize`: instrumented replays through the absint race/hazard
/// sanitizer. Each cluster size runs a fresh memory image with footprint
/// tracing on and per-event destination objects; any PA007/PA008/PA009
/// finding fails the run through the lint severity machinery.
fn sanitize_mode() -> bool {
    let mut rng = StdRng::seed_from_u64(MIX_SEED);
    let mix = TrafficMix::build(&mut rng, 8);
    let layouts = MessageLayouts::compute(&mix.schema);
    let accel = AccelConfig::default();
    let mem_cfg = MemConfig::default();
    let envelopes: Vec<(Envelope, Envelope)> = mix
        .prototypes
        .iter()
        .map(|p| {
            (
                Envelope::deser(&mix.schema, &layouts, p.type_id, &accel, &mem_cfg),
                Envelope::ser(&mix.schema, &layouts, p.type_id, &accel, &mem_cfg),
            )
        })
        .collect();

    let lint_cfg = LintConfig::default();
    let mut ok = true;
    for &instances in &[1usize, 2, 4] {
        let mut srng = StdRng::seed_from_u64(STREAM_SEED);
        let events = mix.stream(&mut srng, 96, 2_000.0);
        let mut mem = Memory::new(MemConfig::default());
        let (staged, _adts) = stage(&mix, &mut mem);
        let mut dests = BumpArena::new(0xC000_0000, 1 << 28);
        let requests = to_requests_isolated(&events, &staged, &mut dests);
        let mut cluster = ServeCluster::new(
            config(instances, 32, DispatchPolicy::Fifo),
            ARENA_BASE,
            ARENA_STRIDE,
        );
        cluster.set_trace_footprints(true);
        cluster
            .run(&mut mem, &requests)
            .expect("serve run succeeds");

        let bounds: Vec<ServiceBounds> = cluster
            .records()
            .iter()
            .map(|r| {
                let (deser_env, ser_env) = &envelopes[events[r.seq].prototype];
                let env = if r.deser { deser_env } else { ser_env };
                let b = env.service_bounds(r.wire_bytes, r.sharers);
                ServiceBounds {
                    seq: r.seq,
                    lower: b.lower,
                    upper: b.upper,
                }
            })
            .collect();
        let findings = protoacc_absint::sanitize(
            cluster.records(),
            cluster.footprints(),
            instances,
            events.len() as u64,
            cluster.dropped(),
            &bounds,
        );
        let diagnostics = findings_to_diagnostics(&findings, &lint_cfg);
        let label = format!("sanitize n={instances}");
        if diagnostics.is_empty() {
            println!(
                "ok   [{label}] {} command(s) clean: lifecycle, aliasing, envelopes",
                cluster.records().len()
            );
        } else {
            for d in &diagnostics {
                println!("{d}");
            }
            let report = LintReport {
                diagnostics,
                types: Vec::new(),
            };
            println!(
                "FAIL [{label}]: {} deny, {} warn",
                report.deny_count(),
                report.warn_count()
            );
            ok = false;
        }
    }
    if ok {
        println!("serve_sanitize OK");
    }
    ok
}

/// Outcome of one cluster run, with everything the tables need.
struct RunResult {
    completed: usize,
    dropped: u64,
    p50: u64,
    p95: u64,
    p99: u64,
    gbits: f64,
    mean_service: f64,
    /// Per-instance (accesses, dram_fraction) pairs.
    per_instance: Vec<(u64, u64, u64, f64)>,
    invariants: Result<(), String>,
}

impl RunResult {
    /// Canonical textual form used for the determinism check: every
    /// timestamp-derived number a run produces.
    fn fingerprint(&self) -> String {
        format!(
            "completed={} dropped={} p50={} p95={} p99={} gbits={:.6} mean_service={:.3} per_instance={:?}",
            self.completed,
            self.dropped,
            self.p50,
            self.p95,
            self.p99,
            self.gbits,
            self.mean_service,
            self.per_instance
        )
    }
}

/// Collapses one finished cluster run into the report numbers.
fn summarize(cluster: &ServeCluster, mem: &Memory, instances: usize) -> RunResult {
    let records = cluster.records();
    let mean_service = if records.is_empty() {
        0.0
    } else {
        records.iter().map(|r| r.service).sum::<u64>() as f64 / records.len() as f64
    };
    let per_instance = (0..instances)
        .map(|i| {
            let s = cluster.instance_mem_stats(mem, i);
            (s.accesses, s.bytes, s.llc_hits, s.dram_fraction())
        })
        .collect();
    RunResult {
        completed: records.len(),
        dropped: cluster.dropped(),
        p50: cluster.latency_percentile(50.0),
        p95: cluster.latency_percentile(95.0),
        p99: cluster.latency_percentile(99.0),
        gbits: cluster.throughput_gbits(),
        mean_service,
        per_instance,
        invariants: cluster.check_invariants(),
    }
}

/// Stages a fresh memory image and runs one stream through one cluster.
fn run_stream(mix: &TrafficMix, events: &[TrafficEvent], config: ServeConfig) -> RunResult {
    let mut mem = Memory::new(MemConfig::default());
    let (staged, _adts) = stage(mix, &mut mem);
    let requests = to_requests(events, &staged);
    let mut cluster = ServeCluster::new(config, ARENA_BASE, ARENA_STRIDE);
    cluster
        .run(&mut mem, &requests)
        .expect("serve run succeeds");
    summarize(&cluster, &mem, config.instances)
}

/// Everything one traced (or untraced reference) cell produces.
struct TracedCell {
    result: RunResult,
    records: Vec<protoacc::CommandRecord>,
    footprints: Vec<protoacc::serve::CommandFootprint>,
    offered: u64,
    dropped: u64,
    expected: Vec<protoacc_trace::ExpectedStats>,
}

/// Runs one isolated-destination cell, optionally with the event tracer
/// attached. Footprint capture is on in both cases so the traced and
/// untraced runs are exercised identically.
fn traced_cell(
    mix: &TrafficMix,
    events: &[TrafficEvent],
    cfg: ServeConfig,
    tracer: Option<protoacc_trace::SharedTracer>,
) -> TracedCell {
    let mut mem = Memory::new(MemConfig::default());
    let (staged, _adts) = stage(mix, &mut mem);
    let mut dests = BumpArena::new(0xC000_0000, 1 << 28);
    let requests = to_requests_isolated(events, &staged, &mut dests);
    let mut cluster = ServeCluster::new(cfg, ARENA_BASE, ARENA_STRIDE);
    cluster.set_trace_footprints(true);
    let attached = tracer.is_some();
    if attached {
        cluster.set_tracer(tracer);
    }
    cluster
        .run(&mut mem, &requests)
        .expect("serve run succeeds");
    if attached {
        cluster.set_tracer(None);
    }
    let expected = (0..cfg.instances)
        .map(|i| {
            let s = cluster.instance_stats(i);
            s.debug_assert_unsaturated();
            protoacc_trace::ExpectedStats {
                instance: i,
                deser_ops: s.deser_ops,
                deser_cycles: s.deser_cycles,
                ser_ops: s.ser_ops,
                ser_cycles: s.ser_cycles,
                saturated: s.saturated,
            }
        })
        .collect();
    TracedCell {
        result: summarize(&cluster, &mem, cfg.instances),
        records: cluster.records().to_vec(),
        footprints: cluster.footprints().to_vec(),
        offered: cluster.offered(),
        dropped: cluster.dropped(),
        expected,
    }
}

/// `--trace <out.json>`: runs one cell untraced and once with the
/// structured-event tracer attached, then checks the whole trace contract:
///
/// 1. the traced run's report is bit-identical to the untraced run (tracing
///    is a pure observer);
/// 2. the accounting audit passes: per-instance `DeserOp`/`SerOp` span sums
///    equal the `AccelStats` counters exactly, and no command span leaks;
/// 3. records, footprints, and sanitizer verdicts reconstructed *from the
///    trace alone* (`protoacc_absint::from_trace`) match the live cluster's;
/// 4. the Chrome-trace JSON export lands at `path` with the per-instance
///    stats image embedded, so `profile_report --reparse` can re-run the
///    audit offline.
fn trace_mode(path: &str) -> bool {
    let mut rng = StdRng::seed_from_u64(MIX_SEED);
    let mix = TrafficMix::build(&mut rng, 8);
    let cfg = config(2, 16, DispatchPolicy::Fifo);
    let mut srng = StdRng::seed_from_u64(STREAM_SEED);
    let events = mix.stream(&mut srng, 48, 5_000.0);

    let base = traced_cell(&mix, &events, cfg, None);
    let log = protoacc_trace::TraceLog::shared();
    let cell = traced_cell(&mix, &events, cfg, Some(log.clone()));
    let evs = std::mem::take(&mut log.borrow_mut().events);

    let mut ok = true;
    if base.result.fingerprint() != cell.result.fingerprint() {
        println!(
            "FAIL [trace]: tracing perturbed the run\n  untraced: {}\n  traced:   {}",
            base.result.fingerprint(),
            cell.result.fingerprint()
        );
        ok = false;
    }

    let report = protoacc_trace::audit(&evs, &cell.expected);
    if report.ok() {
        println!(
            "ok   [trace audit] {} instance(s): traced span sums match AccelStats exactly",
            report.per_instance.len()
        );
    } else {
        for p in &report.problems {
            println!("FAIL [trace audit]: {p}");
        }
        ok = false;
    }

    // Trace-derived records must reproduce the live cluster's, down to the
    // status discriminant (the typed fault detail does not survive export).
    let (trecords, toffered, tdropped) = protoacc_absint::from_trace::records_from_trace(&evs);
    if (toffered, tdropped) != (cell.offered, cell.dropped) || trecords.len() != cell.records.len()
    {
        println!(
            "FAIL [trace derive]: {}/{toffered}/{tdropped} trace-derived records/offered/dropped \
             vs live {}/{}/{}",
            trecords.len(),
            cell.records.len(),
            cell.offered,
            cell.dropped
        );
        ok = false;
    } else {
        for (t, l) in trecords.iter().zip(&cell.records) {
            let same = t.seq == l.seq
                && t.enqueue == l.enqueue
                && t.dispatch == l.dispatch
                && t.complete == l.complete
                && t.service == l.service
                && t.instance == l.instance
                && t.wire_bytes == l.wire_bytes
                && t.deser == l.deser
                && t.sharers == l.sharers
                && t.attempts == l.attempts
                && std::mem::discriminant(&t.status) == std::mem::discriminant(&l.status);
            if !same {
                println!(
                    "FAIL [trace derive]: record {} diverged: {t:?} vs {l:?}",
                    t.seq
                );
                ok = false;
            }
        }
    }
    let tfps = protoacc_absint::from_trace::footprints_from_trace(&evs, cfg.instances);
    if tfps != cell.footprints {
        println!(
            "FAIL [trace derive]: {} trace-derived footprint(s) diverge from the live capture",
            tfps.len()
        );
        ok = false;
    }
    // Both sanitizer paths must agree (and be clean) on this nominal run.
    let live = protoacc_absint::sanitize(
        &cell.records,
        &cell.footprints,
        cfg.instances,
        cell.offered,
        cell.dropped,
        &[],
    );
    let derived = protoacc_absint::from_trace::sanitize_trace(&evs, cfg.instances, &[]);
    if !live.is_empty() || !derived.is_empty() {
        println!(
            "FAIL [trace sanitize]: live {} finding(s), trace-derived {} finding(s)",
            live.len(),
            derived.len()
        );
        ok = false;
    }

    let json = protoacc_trace::chrome::export(&evs, &cell.expected);
    if let Err(e) = std::fs::write(path, &json) {
        println!("FAIL [trace]: writing {path}: {e}");
        return false;
    }
    if ok {
        println!(
            "serve_trace OK ({} events, {} bytes -> {path})",
            evs.len(),
            json.len()
        );
    }
    ok
}

fn config(instances: usize, queue_depth: usize, policy: DispatchPolicy) -> ServeConfig {
    ServeConfig {
        instances,
        queue_depth,
        policy,
        ..ServeConfig::default()
    }
}

/// Seed for fault-injection schedules (instance scripts, armed memory
/// faults, wire corruption routing).
const FAULT_SEED: u64 = 0xFA_17;
/// Guest region for corrupted copies of the staged wire inputs.
const CORRUPT_BASE: u64 = 0x3000_0000;
/// Guest regions for the software fallback codec's private arena and
/// serializer output.
const FB_ARENA: (u64, u64) = (0x4000_0000, 1 << 24);
const FB_OUT: u64 = 0x5000_0000;

/// The fault classes the `--faults` sweep injects, one per plane rung:
/// instance-plane crash/hang/slow scripts, memory-plane ECC and stall
/// arming, and wire-plane bit flips.
const FAULT_CLASSES: [&str; 6] = ["crash", "hang", "slow", "ecc", "stall", "flip"];

/// Wire-plane corruption routing: the per-prototype corrupted input copies
/// (`(addr, len)`), the fraction of deserializations routed at them, and
/// the seeded router.
type CorruptRouting<'a> = Option<(&'a [(u64, u64)], f64, &'a mut StdRng)>;

/// Deser/ser envelopes per prototype: the static watchdog ceilings.
fn envelopes(mix: &TrafficMix, layouts: &MessageLayouts) -> Vec<(Envelope, Envelope)> {
    let accel = AccelConfig::default();
    let mem_cfg = MemConfig::default();
    mix.prototypes
        .iter()
        .map(|p| {
            (
                Envelope::deser(&mix.schema, layouts, p.type_id, &accel, &mem_cfg),
                Envelope::ser(&mix.schema, layouts, p.type_id, &accel, &mem_cfg),
            )
        })
        .collect()
}

/// Like [`to_requests`], but every request carries the absint-derived
/// watchdog ceiling (`service_bounds(wire_len, instances).upper`): no
/// correct command can exceed it, so a hung or pathologically slow attempt
/// is killed and retried instead of wedging its instance. For the `flip`
/// fault class, `corrupted` routes a seeded fraction of deserializations to
/// a bit-flipped copy of their input.
fn to_requests_watchdogged(
    events: &[TrafficEvent],
    staged: &[StagedProto],
    envs: &[(Envelope, Envelope)],
    instances: usize,
    corrupted: CorruptRouting<'_>,
) -> Vec<Request> {
    let mut corrupted = corrupted;
    events
        .iter()
        .map(|e| {
            let s = staged[e.prototype];
            let (deser_env, ser_env) = &envs[e.prototype];
            if e.deser {
                let (input_addr, input_len) = match corrupted.as_mut() {
                    Some((copies, rate, rng)) => {
                        if rng.gen_bool(*rate) {
                            copies[e.prototype]
                        } else {
                            (s.input_addr, s.input_len)
                        }
                    }
                    None => (s.input_addr, s.input_len),
                };
                Request {
                    arrival: e.arrival,
                    watchdog: Some(deser_env.service_bounds(input_len.max(1), instances).upper),
                    deadline: None,
                    cost: None,
                    op: RequestOp::Deserialize {
                        adt_ptr: s.adt_ptr,
                        input_addr,
                        input_len,
                        dest_obj: s.dest_obj,
                        min_field: s.min_field,
                    },
                }
            } else {
                Request {
                    arrival: e.arrival,
                    watchdog: Some(ser_env.service_bounds(s.input_len, instances).upper),
                    deadline: None,
                    cost: None,
                    op: RequestOp::Serialize {
                        adt_ptr: s.adt_ptr,
                        obj_ptr: s.obj_ptr,
                        hasbits_offset: s.hasbits_offset,
                        min_field: s.min_field,
                        max_field: s.max_field,
                    },
                }
            }
        })
        .collect()
}

/// Outcome of one fault-injected cluster run.
struct FaultRunResult {
    offered: u64,
    completed: usize,
    dropped: u64,
    served: u64,
    ok: u64,
    fallback: u64,
    rejected: u64,
    failed: u64,
    retries: u64,
    quarantined: usize,
    p99: u64,
    gbits: f64,
}

impl FaultRunResult {
    fn fingerprint(&self) -> String {
        format!(
            "offered={} completed={} dropped={} served={} ok={} fallback={} rejected={} \
             failed={} retries={} quarantined={} p99={} gbits={:.6}",
            self.offered,
            self.completed,
            self.dropped,
            self.served,
            self.ok,
            self.fallback,
            self.rejected,
            self.failed,
            self.retries,
            self.quarantined,
            self.p99,
            self.gbits
        )
    }
}

/// One cell of the fault sweep: stages a fresh memory image, injects
/// `class` at intensity `rate`, and replays `events` through an
/// `instances`-wide cluster with the software CPU fallback wired in.
///
/// `rate` is the kill-rate axis: the probability each instance is faulted
/// (instance plane), the fraction of deserializations fed corrupted bytes
/// (wire plane), or armed faults per offered request (memory plane).
///
/// Note the records of a faulted run are *not* fed to the absint lifecycle
/// sanitizer: commands that degraded to the CPU carry the
/// `FALLBACK_INSTANCE` sentinel and retried commands legitimately overlap
/// their own earlier attempts, so `--sanitize` stays a nominal-run gate.
fn run_faulted(
    mix: &TrafficMix,
    events: &[TrafficEvent],
    instances: usize,
    class: &str,
    rate: f64,
) -> FaultRunResult {
    let layouts = MessageLayouts::compute(&mix.schema);
    let envs = envelopes(mix, &layouts);
    let mut mem = Memory::new(MemConfig::default());
    let (staged, adts) = stage(mix, &mut mem);
    // Mix the class name into the seed so each cell draws an independent
    // (but replayable) schedule.
    let class_hash = class
        .bytes()
        .fold(0u64, |h, b| h.wrapping_mul(31).wrapping_add(u64::from(b)));
    let mut frng = StdRng::seed_from_u64(FAULT_SEED ^ class_hash);

    // Wire plane: stage one corrupted copy per prototype (cycling through
    // the wire fault classes) and route a seeded `rate` fraction of
    // deserializations at them.
    let mut corrupt_cursor = CORRUPT_BASE;
    let copies: Vec<(u64, u64)> = mix
        .prototypes
        .iter()
        .enumerate()
        .map(|(i, p)| {
            let wire = reference::encode(&p.message, &mix.schema).unwrap();
            let bad = corrupt(&wire, WIRE_FAULTS[i % WIRE_FAULTS.len()], &mut frng);
            let addr = corrupt_cursor;
            mem.data.write_bytes(addr, &bad);
            corrupt_cursor += bad.len() as u64 + 64;
            (addr, bad.len() as u64)
        })
        .collect();
    let routing = (class == "flip").then_some((copies.as_slice(), rate, &mut frng));
    let requests = to_requests_watchdogged(events, &staged, &envs, instances, routing);

    // Memory plane: arm one-shot faults inside the staged wire inputs so
    // the deserializer's streaming reads trip them.
    let regions: Vec<(u64, u64)> = staged.iter().map(|s| (s.input_addr, s.input_len)).collect();
    let armed = ((events.len() as f64 * rate).round() as usize).max(1);
    match class {
        "ecc" => arm_random_ecc(&mut mem.system, &regions, armed, &mut frng),
        "stall" => arm_random_stalls(&mut mem.system, &regions, armed, 1 << 32, &mut frng),
        _ => {}
    }

    // Instance plane: a seeded crash/hang/slow script over the offered
    // window.
    let horizon: Cycles = events.last().map_or(1, |e| e.arrival.max(1));
    let plan = match class {
        "crash" => InstanceFaultPlan::crash_only(rate),
        "hang" => InstanceFaultPlan::hang_only(rate),
        "slow" => InstanceFaultPlan::slow_only(rate),
        _ => InstanceFaultPlan::nominal(),
    };
    let faults: Vec<InstanceFault> = random_script(&plan, instances, horizon, &mut frng);

    let mut fb = SoftwareFallback::new(&mix.schema, &layouts, &adts, FB_ARENA, FB_OUT);
    let mut cluster = ServeCluster::new(
        config(instances, 256, DispatchPolicy::Fifo),
        ARENA_BASE,
        ARENA_STRIDE,
    );
    cluster
        .run_with(&mut mem, &requests, &faults, Some(&mut fb))
        .expect("serve run succeeds");
    let (ok, fallback, rejected, failed, _) = cluster.status_counts();
    FaultRunResult {
        offered: cluster.offered(),
        completed: cluster.records().len(),
        dropped: cluster.dropped(),
        served: cluster.served(),
        ok,
        fallback,
        rejected,
        failed,
        retries: cluster.retries(),
        quarantined: cluster.quarantined_instances().len(),
        p99: cluster.latency_percentile(99.0),
        gbits: cluster.throughput_gbits(),
    }
}

/// `--faults`: graceful-degradation sweep. Fault classes x kill-rates on a
/// 4-instance cluster, reporting how much of the offered load was served
/// (and on which rung of the degradation ladder), the retry bill, p99
/// latency, and goodput (completed wire bytes over the makespan — rejected
/// and failed commands move zero bytes).
fn faults_full() -> ExitCode {
    let mut rng = StdRng::seed_from_u64(MIX_SEED);
    let mix = TrafficMix::build(&mut rng, 8);
    let instances = 4;
    let mut srng = StdRng::seed_from_u64(STREAM_SEED);
    let events = mix.stream(&mut srng, 256, 2_000.0);
    println!(
        "Fault sweep: {} requests, {instances} instances, watchdog = absint upper bound",
        events.len()
    );
    println!(
        "{:<8} {:>6} {:>9} {:>8} {:>6} {:>9} {:>9} {:>7} {:>8} {:>6} {:>12} {:>10}",
        "class",
        "rate",
        "served%",
        "ok",
        "fb",
        "rejected",
        "failed",
        "drops",
        "retries",
        "quar",
        "p99 cyc",
        "Gbits/s"
    );
    let nominal = run_faulted(&mix, &events, instances, "none", 0.0);
    let mut ok = true;
    for class in std::iter::once("none").chain(FAULT_CLASSES) {
        let rates: &[f64] = if class == "none" {
            &[0.0]
        } else {
            &[0.25, 0.5, 1.0]
        };
        for &rate in rates {
            let res = run_faulted(&mix, &events, instances, class, rate);
            if res.failed > 0 {
                ok = false;
            }
            println!(
                "{class:<8} {rate:>6.2} {:>8.1}% {:>8} {:>6} {:>9} {:>9} {:>7} {:>8} {:>6} {:>12} {:>10.3}",
                res.served as f64 / res.completed.max(1) as f64 * 100.0,
                res.ok,
                res.fallback,
                res.rejected,
                res.failed,
                res.dropped,
                res.retries,
                res.quarantined,
                res.p99,
                res.gbits
            );
        }
    }
    println!();
    println!(
        "(nominal p99 = {} cycles; every row above must serve 100% of admitted load —\n\
         a Failed command means the degradation ladder has a hole)",
        nominal.p99
    );
    if ok {
        ExitCode::SUCCESS
    } else {
        println!("serve_faults: commands failed outright");
        ExitCode::FAILURE
    }
}

/// `--smoke --faults`: the CI gate for graceful degradation. Every fault
/// class at kill-rate 0.5 runs twice on a small stream; any Failed command,
/// shed load, unrecovered hang, or replay divergence fails the process.
fn faults_smoke() -> ExitCode {
    let mut rng = StdRng::seed_from_u64(MIX_SEED);
    let mix = TrafficMix::build(&mut rng, 8);
    let instances = 4;
    let mut failures = 0;
    for class in FAULT_CLASSES {
        let mut srng = StdRng::seed_from_u64(STREAM_SEED);
        let events = mix.stream(&mut srng, 48, 3_000.0);
        let a = run_faulted(&mix, &events, instances, class, 0.5);
        let b = run_faulted(&mix, &events, instances, class, 0.5);
        let label = format!("faults class={class} rate=0.5");
        if a.failed > 0 {
            println!("FAIL [{label}]: {} command(s) failed outright", a.failed);
            failures += 1;
        }
        if a.dropped > 0 {
            println!("FAIL [{label}]: {} request(s) shed under faults", a.dropped);
            failures += 1;
        }
        if a.served != a.completed as u64 {
            println!(
                "FAIL [{label}]: served {} of {} admitted requests",
                a.served, a.completed
            );
            failures += 1;
        }
        if a.fingerprint() != b.fingerprint() {
            println!(
                "FAIL [{label}]: nondeterministic replay\n  run1: {}\n  run2: {}",
                a.fingerprint(),
                b.fingerprint()
            );
            failures += 1;
        }
        println!("ok   [{label}] {}", a.fingerprint());
    }
    if failures > 0 {
        println!("serve_faults_smoke: {failures} failure(s)");
        return ExitCode::FAILURE;
    }
    println!("serve_faults_smoke OK");
    ExitCode::SUCCESS
}

/// Tiny CI grid: every config runs twice; invariant violations or report
/// divergence fail the process.
fn smoke() -> ExitCode {
    let mut rng = StdRng::seed_from_u64(MIX_SEED);
    let mix = TrafficMix::build(&mut rng, 8);
    let mut failures = 0;
    for &instances in &[1usize, 2] {
        for &policy in &[DispatchPolicy::Fifo, DispatchPolicy::RoundRobin] {
            let mut srng = StdRng::seed_from_u64(STREAM_SEED);
            let events = mix.stream(&mut srng, 48, 5_000.0);
            let cfg = config(instances, 16, policy);
            let a = run_stream(&mix, &events, cfg);
            let b = run_stream(&mix, &events, cfg);
            let label = format!("n={instances} policy={}", policy.label());
            if let Err(e) = &a.invariants {
                println!("FAIL [{label}]: invariant violated: {e}");
                failures += 1;
            }
            if a.fingerprint() != b.fingerprint() {
                println!(
                    "FAIL [{label}]: nondeterministic replay\n  run1: {}\n  run2: {}",
                    a.fingerprint(),
                    b.fingerprint()
                );
                failures += 1;
            }
            if a.completed as u64 + a.dropped != 48 {
                println!("FAIL [{label}]: accounting leak in report");
                failures += 1;
            }
            println!("ok   [{label}] {}", a.fingerprint());
        }
    }
    if failures > 0 {
        println!("serve_smoke: {failures} failure(s)");
        return ExitCode::FAILURE;
    }
    println!("serve_smoke OK");
    ExitCode::SUCCESS
}

fn full() -> ExitCode {
    let mut rng = StdRng::seed_from_u64(MIX_SEED);
    let mix = TrafficMix::build(&mut rng, 32);
    println!(
        "Serving model: fleet-mix traffic ({} prototypes, mean {:.0} wire bytes, {:.0}% deser)",
        mix.prototypes.len(),
        mix.mean_encoded_size(),
        mix.deser_fraction * 100.0
    );

    // Calibrate mean service time on an uncontended single instance.
    let mut srng = StdRng::seed_from_u64(STREAM_SEED);
    let calib_events = mix.stream(&mut srng, 128, 10_000_000.0);
    let calib = run_stream(&mix, &calib_events, config(1, 64, DispatchPolicy::Fifo));
    let service = calib.mean_service;
    println!("calibration: mean uncontended service = {service:.0} cycles\n");

    let stream_of = |n_req: usize, gap: f64| {
        let mut r = StdRng::seed_from_u64(STREAM_SEED);
        mix.stream(&mut r, n_req, gap)
    };

    // --- Throughput scaling vs instance count under saturating load. ---
    let saturating_gap = service / 16.0;
    println!("Instance scaling (fifo queue, depth 64, saturating load: gap = service/16)");
    println!(
        "{:<10} {:>10} {:>8} {:>12} {:>12} {:>12} {:>14} {:>11}",
        "instances",
        "completed",
        "dropped",
        "p50 cyc",
        "p95 cyc",
        "p99 cyc",
        "Gbits/s",
        "efficiency"
    );
    let mut single = 0.0f64;
    let mut scaling = Vec::new();
    for n in [1usize, 2, 4, 8] {
        let events = stream_of(512, saturating_gap);
        let res = run_stream(&mix, &events, config(n, 64, DispatchPolicy::Fifo));
        if let Err(e) = &res.invariants {
            println!("invariant violated at n={n}: {e}");
            return ExitCode::FAILURE;
        }
        if n == 1 {
            single = res.gbits;
        }
        println!(
            "{n:<10} {:>10} {:>8} {:>12} {:>12} {:>12} {:>14.3} {:>10.0}%",
            res.completed,
            res.dropped,
            res.p50,
            res.p95,
            res.p99,
            res.gbits,
            res.gbits / (single * n as f64) * 100.0
        );
        scaling.push((n, res));
    }
    println!();

    // --- Queue-policy comparison at n = 4. ---
    println!("Dispatch policy at 4 instances (same stream, gap = service/8)");
    println!(
        "{:<14} {:>10} {:>8} {:>12} {:>12} {:>12} {:>14}",
        "policy", "completed", "dropped", "p50 cyc", "p95 cyc", "p99 cyc", "Gbits/s"
    );
    for policy in [DispatchPolicy::Fifo, DispatchPolicy::RoundRobin] {
        let events = stream_of(512, service / 8.0);
        let res = run_stream(&mix, &events, config(4, 64, policy));
        println!(
            "{:<14} {:>10} {:>8} {:>12} {:>12} {:>12} {:>14.3}",
            policy.label(),
            res.completed,
            res.dropped,
            res.p50,
            res.p95,
            res.p99,
            res.gbits
        );
    }
    println!();

    // --- Offered-load saturation sweep at n = 4. ---
    println!("Saturation sweep (4 instances, fifo): offered load rho = service / (gap * 4)");
    println!(
        "{:<8} {:>12} {:>10} {:>8} {:>12} {:>12} {:>12} {:>14}",
        "rho", "gap cyc", "completed", "dropped", "p50 cyc", "p95 cyc", "p99 cyc", "Gbits/s"
    );
    for rho in [0.25f64, 0.5, 1.0, 2.0, 4.0] {
        let gap = service / (4.0 * rho);
        let events = stream_of(512, gap);
        let res = run_stream(&mix, &events, config(4, 64, DispatchPolicy::Fifo));
        println!(
            "{rho:<8} {:>12.0} {:>10} {:>8} {:>12} {:>12} {:>12} {:>14.3}",
            gap, res.completed, res.dropped, res.p50, res.p95, res.p99, res.gbits
        );
    }
    println!();

    // --- Per-requester memory attribution from the saturated 8-way run. ---
    let (_, eight) = &scaling[3];
    println!("Per-instance memory traffic (8-way saturated run)");
    println!(
        "{:<10} {:>12} {:>14} {:>10} {:>10}",
        "instance", "accesses", "bytes", "llc hits", "dram frac"
    );
    for (i, (accesses, bytes, llc_hits, dram)) in eight.per_instance.iter().enumerate() {
        println!("{i:<10} {accesses:>12} {bytes:>14} {llc_hits:>10} {dram:>10.4}");
    }
    println!();
    println!(
        "(sharers-aware streaming splits the outstanding-miss budget across busy\n\
         instances, so aggregate throughput scales sublinearly past the point the\n\
         shared LLC/DRAM path saturates — the serving-model analogue of Fig 13's\n\
         memory-bandwidth ceiling)"
    );
    ExitCode::SUCCESS
}

// --- Sharded engine ----------------------------------------------------

/// Number of cells in the fixed shard decomposition. The sweep is *always*
/// cut into this many independently seeded cells regardless of worker
/// count — `--shards N` only picks how many threads run them — so the
/// merged report is a pure function of the seeds, and N workers must agree
/// bit-for-bit with 1 worker (the sequential reference).
const SHARD_CELLS: usize = 8;
/// Accelerator instances per shard cell. Within a cell, the instances
/// share the cell's private LLC slice and contend exactly as the
/// sequential model does.
const SHARD_INSTANCES: usize = 2;

/// One cell of the fixed decomposition: its index plus its independently
/// seeded traffic stream.
struct ShardCell {
    shard: usize,
    events: Vec<TrafficEvent>,
}

/// Builds the fixed decomposition: `SHARD_CELLS` streams drawn through the
/// SplitMix64 seed split, each replayable from `(STREAM_SEED, shard)`
/// alone.
fn shard_cells(mix: &TrafficMix, per_shard: usize, gap: f64) -> Vec<ShardCell> {
    mix.shard_streams(STREAM_SEED, SHARD_CELLS, per_shard, gap)
        .into_iter()
        .enumerate()
        .map(|(shard, events)| ShardCell { shard, events })
        .collect()
}

/// Runs one shard end-to-end on the calling thread: a private memory
/// system holding the cell's `1/SHARD_CELLS` LLC slice, private staging,
/// a private cluster, and (optionally) a private trace log. Everything is
/// built inside this function so workers never share simulation state —
/// the outcome is a pure function of `(mix, cell)`.
fn run_shard_cell(mix: &TrafficMix, cell: &ShardCell, traced: bool) -> ShardOutcome {
    let mut mem = Memory::new(MemConfig::default().llc_slice(SHARD_CELLS));
    let (staged, _adts) = stage(mix, &mut mem);
    let requests = to_requests(&cell.events, &staged);
    let mut cluster = ServeCluster::new(
        config(SHARD_INSTANCES, 32, DispatchPolicy::Fifo),
        ARENA_BASE,
        ARENA_STRIDE,
    );
    let log = traced.then(protoacc_trace::TraceLog::shared);
    if let Some(log) = &log {
        cluster.set_tracer(Some(log.clone()));
    }
    cluster
        .run(&mut mem, &requests)
        .expect("serve run succeeds");
    cluster.set_tracer(None);
    let events = log.map_or_else(Vec::new, |l| std::mem::take(&mut l.borrow_mut().events));
    ShardOutcome::capture(cell.shard, &cluster, &mem, events)
}

/// Simulates the fixed decomposition on up to `workers` threads and merges
/// deterministically in shard-index order.
fn run_sharded(
    mix: &TrafficMix,
    cells: &[ShardCell],
    workers: usize,
    traced: bool,
) -> ShardedCluster {
    ShardedCluster::run(cells, workers, |_, cell| run_shard_cell(mix, cell, traced))
}

/// `--shards N`: the sequential-vs-sharded equivalence gate. Runs the
/// fixed decomposition once on 1 worker (the sequential reference) and
/// once on `workers`, tracing both, and requires bit-identical
/// fingerprints, clean per-shard queue invariants, and a passing
/// accounting audit over the stitched multi-shard trace log. The
/// fingerprint is printed on its own line so CI can also diff it across
/// separate invocations (`--shards 4` vs `--shards 1`).
fn shard_smoke(workers: usize) -> bool {
    let mut rng = StdRng::seed_from_u64(MIX_SEED);
    let mix = TrafficMix::build(&mut rng, 8);
    let cells = shard_cells(&mix, 48, 3_000.0);
    let sequential = run_sharded(&mix, &cells, 1, true);
    let sharded = run_sharded(&mix, &cells, workers, true);
    let mut ok = true;
    if let Err(e) = sharded.check_invariants() {
        println!("FAIL [shards={workers}]: invariant violated: {e}");
        ok = false;
    }
    if sequential.fingerprint() != sharded.fingerprint() {
        println!(
            "FAIL [shards={workers}]: sharded run diverged from sequential\n  \
             seq:     {}\n  sharded: {}",
            sequential.fingerprint(),
            sharded.fingerprint()
        );
        ok = false;
    }
    let report = protoacc_trace::audit(&sharded.stitched_events(), &sharded.expected_stats());
    if report.ok() {
        println!(
            "ok   [shards={workers} stitched audit] {} instance(s) across {} shard(s)",
            report.per_instance.len(),
            cells.len()
        );
    } else {
        for p in &report.problems {
            println!("FAIL [shards={workers} stitched audit]: {p}");
        }
        ok = false;
    }
    println!("sharded fingerprint: {}", sharded.fingerprint());
    if ok {
        println!(
            "serve_shard_smoke OK ({} cells x {SHARD_INSTANCES} instances, {workers} worker(s))",
            cells.len()
        );
    }
    ok
}

/// `--bench-shards <out.json>`: wall-clock scaling of the sharded engine.
/// Runs the same fixed decomposition at worker counts 1/2/4/8, requires
/// every run's fingerprint to match the 1-worker reference, and writes the
/// speedup table as JSON. Fails if 4 workers are not at least as fast as
/// 1 (speedup < 1.0x).
fn bench_shards(path: &str, total_commands: usize) -> ExitCode {
    let mut rng = StdRng::seed_from_u64(MIX_SEED);
    let mix = TrafficMix::build(&mut rng, 16);
    let per_shard = (total_commands / SHARD_CELLS).max(1);
    let cells = shard_cells(&mix, per_shard, 2_000.0);
    println!(
        "Shard scaling: {} commands over {SHARD_CELLS} cells x {SHARD_INSTANCES} instances",
        per_shard * SHARD_CELLS
    );
    println!(
        "{:<8} {:>10} {:>9} {:>12} {:>12} {:>13}",
        "shards", "wall s", "speedup", "completed", "p99 cyc", "agg Gbits/s"
    );
    let mut reference: Option<String> = None;
    let mut base_wall = 0.0f64;
    let mut rows = Vec::new();
    let mut deterministic = true;
    let mut ok = true;
    for &workers in &[1usize, 2, 4, 8] {
        let t0 = Instant::now();
        let run = run_sharded(&mix, &cells, workers, false);
        let wall = t0.elapsed().as_secs_f64().max(1e-9);
        if let Err(e) = run.check_invariants() {
            println!("FAIL [shards={workers}]: invariant violated: {e}");
            ok = false;
        }
        let fp = run.fingerprint();
        match &reference {
            None => {
                reference = Some(fp);
                base_wall = wall;
            }
            Some(r) if *r != fp => {
                println!("FAIL [shards={workers}]: fingerprint diverged from the 1-worker run");
                deterministic = false;
                ok = false;
            }
            Some(_) => {}
        }
        let speedup = base_wall / wall;
        println!(
            "{workers:<8} {wall:>10.3} {speedup:>8.2}x {:>12} {:>12} {:>13.3}",
            run.completed(),
            run.latency_percentile(99.0),
            run.aggregate_gbits()
        );
        rows.push((workers, wall, speedup));
    }
    // Speedup floor: at the largest worker count the hardware can actually
    // run in parallel (capped at 4), the sharded engine must not be slower
    // than sequential — the merge and thread pool cost nothing at this
    // granularity. Worker counts past the hardware width are recorded for
    // the table but are pure oversubscription, so they are not gated.
    let threads = std::thread::available_parallelism().map_or(1, std::num::NonZero::get);
    let gate_workers = [1usize, 2, 4]
        .into_iter()
        .filter(|&w| w <= threads)
        .max()
        .unwrap_or(1);
    let gate_speedup = rows
        .iter()
        .find(|r| r.0 == gate_workers)
        .map_or(0.0, |r| r.2);
    if gate_speedup < 1.0 {
        println!(
            "FAIL [bench-shards]: speedup at {gate_workers} worker(s) regressed below 1.0x \
             ({gate_speedup:.2}x on {threads} hardware thread(s))"
        );
        ok = false;
    }
    use std::fmt::Write as _;
    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"schema_version\": 1,");
    let _ = writeln!(json, "  \"bench\": \"serve_shard\",");
    let _ = writeln!(json, "  \"cells\": {SHARD_CELLS},");
    let _ = writeln!(json, "  \"instances_per_cell\": {SHARD_INSTANCES},");
    let _ = writeln!(json, "  \"commands\": {},", per_shard * SHARD_CELLS);
    let _ = writeln!(json, "  \"hardware_threads\": {threads},");
    let _ = writeln!(json, "  \"deterministic\": {deterministic},");
    let _ = writeln!(json, "  \"rows\": [");
    for (i, (workers, wall, speedup)) in rows.iter().enumerate() {
        let comma = if i + 1 == rows.len() { "" } else { "," };
        let _ = writeln!(
            json,
            "    {{\"shards\": {workers}, \"wall_s\": {wall:.6}, \"speedup\": {speedup:.4}}}{comma}"
        );
    }
    let _ = writeln!(json, "  ]");
    let _ = writeln!(json, "}}");
    if let Err(e) = std::fs::write(path, &json) {
        println!("FAIL [bench-shards]: writing {path}: {e}");
        return ExitCode::FAILURE;
    }
    println!("bench-shards: wrote {path}");
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    let smoke_flag = args.iter().any(|a| a == "--smoke");
    let sanitize_flag = args.iter().any(|a| a == "--sanitize");
    let faults_flag = args.iter().any(|a| a == "--faults");
    let arg_of = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let trace_path = arg_of("--trace");
    let shard_workers: Option<usize> =
        arg_of("--shards").map(|s| s.parse().expect("--shards takes a worker count"));
    let commands: usize =
        arg_of("--commands").map_or(1_000_000, |s| s.parse().expect("--commands takes a count"));
    if let Some(path) = arg_of("--bench-shards") {
        return bench_shards(&path, commands);
    }
    if sanitize_flag && !sanitize_mode() {
        return ExitCode::FAILURE;
    }
    if let Some(path) = &trace_path {
        if !trace_mode(path) {
            return ExitCode::FAILURE;
        }
    }
    if faults_flag {
        return if smoke_flag {
            faults_smoke()
        } else {
            faults_full()
        };
    }
    if smoke_flag {
        let code = smoke();
        if let Some(workers) = shard_workers {
            if !shard_smoke(workers) {
                return ExitCode::FAILURE;
            }
        }
        return code;
    }
    if let Some(workers) = shard_workers {
        return if shard_smoke(workers) {
            ExitCode::SUCCESS
        } else {
            ExitCode::FAILURE
        };
    }
    if sanitize_flag || trace_path.is_some() {
        ExitCode::SUCCESS
    } else {
        full()
    }
}
