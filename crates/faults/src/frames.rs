//! Frame-plane corruption: seeded generators over the RPC transport's
//! 5-byte length-prefixed frames (`protoacc-rpc`'s `flag + u32 BE length +
//! payload` convention), mirroring the wire-plane generators in
//! [`wire`](crate::wire). Every fault class the frame decoder must answer
//! with a typed `FrameError` — truncated prefixes, truncated bodies,
//! lengths past the decoder ceiling, reserved flag bytes — plus a
//! length-field jitter class that desynchronizes framing mid-stream.

use xrand::Rng;

/// Bytes in the frame prefix (flag byte + big-endian `u32` length), kept in
/// sync with `protoacc_rpc::FRAME_HEADER_LEN` by test.
pub const FRAME_PREFIX_LEN: usize = 5;

/// The frame-plane fault classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum FrameFault {
    /// The stream cut inside the 5-byte prefix.
    HeaderTruncate,
    /// The stream cut inside the declared payload.
    BodyTruncate,
    /// The length field inflated to declare far more than any decoder
    /// ceiling admits.
    OversizeLength,
    /// The flag byte replaced with a reserved value (2..=255).
    ReservedFlag,
    /// One random bit flipped inside the 4 length bytes: framing
    /// desynchronizes, turning the remainder of the stream into garbage
    /// the decoder must still reject cleanly.
    LengthJitter,
}

/// Every frame-plane fault class, for sweeps.
pub const FRAME_FAULTS: [FrameFault; 5] = [
    FrameFault::HeaderTruncate,
    FrameFault::BodyTruncate,
    FrameFault::OversizeLength,
    FrameFault::ReservedFlag,
    FrameFault::LengthJitter,
];

impl FrameFault {
    /// Short stable name for reports.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            FrameFault::HeaderTruncate => "header-truncate",
            FrameFault::BodyTruncate => "body-truncate",
            FrameFault::OversizeLength => "oversize-length",
            FrameFault::ReservedFlag => "reserved-flag",
            FrameFault::LengthJitter => "length-jitter",
        }
    }
}

/// Applies `fault` to a copy of an encoded frame. Total: every class
/// mutates every input (degenerate inputs degrade to a truncation or a
/// one-byte reserved flag). As with the wire plane, the result is
/// guaranteed to *differ*, not guaranteed to be rejected — `LengthJitter`
/// can land on a still-parsable stream, and the differential harness wants
/// accept/accept agreement too.
pub fn corrupt(frame: &[u8], fault: FrameFault, rng: &mut impl Rng) -> Vec<u8> {
    match fault {
        FrameFault::HeaderTruncate => header_truncate(frame, rng),
        FrameFault::BodyTruncate => body_truncate(frame, rng),
        FrameFault::OversizeLength => oversize_length(frame, rng),
        FrameFault::ReservedFlag => reserved_flag(frame, rng),
        FrameFault::LengthJitter => length_jitter(frame, rng),
    }
}

/// Picks a fault class uniformly and applies it.
pub fn mutate(frame: &[u8], rng: &mut impl Rng) -> (FrameFault, Vec<u8>) {
    let fault = FRAME_FAULTS[rng.gen_range(0..FRAME_FAULTS.len())];
    (fault, corrupt(frame, fault, rng))
}

fn header_truncate(frame: &[u8], rng: &mut impl Rng) -> Vec<u8> {
    let ceiling = frame.len().min(FRAME_PREFIX_LEN);
    if ceiling == 0 {
        // Nothing to cut: a lone reserved flag byte is the smallest
        // guaranteed mutation.
        return vec![rng.gen_range(2..=255u8)];
    }
    frame[..rng.gen_range(0..ceiling)].to_vec()
}

fn body_truncate(frame: &[u8], rng: &mut impl Rng) -> Vec<u8> {
    if frame.len() <= FRAME_PREFIX_LEN {
        return header_truncate(frame, rng);
    }
    frame[..rng.gen_range(FRAME_PREFIX_LEN..frame.len())].to_vec()
}

fn oversize_length(frame: &[u8], rng: &mut impl Rng) -> Vec<u8> {
    if frame.len() < FRAME_PREFIX_LEN {
        return header_truncate(frame, rng);
    }
    let mut out = frame.to_vec();
    // Top bits forced on: the declared length lands in the gigabytes, past
    // any sane decoder ceiling, regardless of the original value.
    let declared = 0xC000_0000u32 | rng.gen_range(0..=0x3FFF_FFFFu32);
    out[1..FRAME_PREFIX_LEN].copy_from_slice(&declared.to_be_bytes());
    out
}

fn reserved_flag(frame: &[u8], rng: &mut impl Rng) -> Vec<u8> {
    let mut out = frame.to_vec();
    let flag = rng.gen_range(2..=255u8);
    match out.first_mut() {
        Some(b) => *b = flag,
        None => out.push(flag),
    }
    out
}

fn length_jitter(frame: &[u8], rng: &mut impl Rng) -> Vec<u8> {
    if frame.len() < FRAME_PREFIX_LEN {
        return header_truncate(frame, rng);
    }
    let mut out = frame.to_vec();
    let pos = 1 + rng.gen_range(0..4usize);
    out[pos] ^= 1u8 << rng.gen_range(0..8u8);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use xrand::StdRng;

    /// A hand-built well-formed frame: flag 0, 6-byte payload.
    fn sample_frame() -> Vec<u8> {
        let mut out = vec![0u8, 0, 0, 0, 6];
        out.extend_from_slice(b"framed");
        out
    }

    #[test]
    fn every_fault_mutates_every_input() {
        let mut rng = StdRng::seed_from_u64(13);
        for input in [Vec::new(), vec![0u8, 0, 0], sample_frame()] {
            for fault in FRAME_FAULTS {
                for trial in 0..16 {
                    let out = corrupt(&input, fault, &mut rng);
                    assert_ne!(out, input, "{fault:?} no-op on {input:x?} trial {trial}");
                }
            }
        }
    }

    #[test]
    fn oversize_always_blows_any_reasonable_ceiling() {
        let mut rng = StdRng::seed_from_u64(17);
        for _ in 0..64 {
            let out = corrupt(&sample_frame(), FrameFault::OversizeLength, &mut rng);
            let declared = u32::from_be_bytes([out[1], out[2], out[3], out[4]]);
            assert!(u64::from(declared) > (1 << 30), "declared {declared}");
        }
    }

    #[test]
    fn reserved_flag_never_produces_a_valid_flag() {
        let mut rng = StdRng::seed_from_u64(19);
        for _ in 0..64 {
            let out = corrupt(&sample_frame(), FrameFault::ReservedFlag, &mut rng);
            assert!(out[0] > 1, "flag byte {} is valid", out[0]);
        }
    }

    #[test]
    fn mutation_is_deterministic_per_seed() {
        let frame = sample_frame();
        let run = |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            (0..32)
                .map(|_| mutate(&frame, &mut rng))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43));
    }
}
