//! Instrumented software protobuf codec: the paper's CPU baselines.
//!
//! The paper compares its accelerator against (1) a single BOOM out-of-order
//! RISC-V core at 2 GHz and (2) one core of a Xeon E5-2686 v4 at
//! 2.3/2.7 GHz, both running the stock C++ protobuf library (Section 5).
//! Neither machine is available here, so this crate executes the *actual
//! software algorithm* — byte-at-a-time varint loops, per-field dispatch,
//! malloc-per-string, a ByteSize pass before serialization — over simulated
//! guest memory, charging every primitive operation from a per-machine
//! [`CostTable`]. Cycle counts therefore scale with the same input
//! properties the real baselines scale with (field counts, varint lengths,
//! string sizes, nesting), which is what the evaluation's *shape* depends on.
//!
//! # Example
//!
//! ```rust
//! use protoacc_cpu::{CostTable, SoftwareCodec};
//! let boom = CostTable::boom();
//! let xeon = CostTable::xeon();
//! assert!(boom.varint_decode_byte > xeon.varint_decode_byte);
//! let _codec = SoftwareCodec::new(&boom);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod codec;
pub mod cost;
pub mod ops;

pub use codec::{CodecRun, SoftwareCodec};
pub use cost::CostTable;
