//! Criterion benches, one group per paper table/figure, timing the
//! simulation kernels that regenerate each result (host wall time of the
//! simulator — the figure binaries report the *simulated* cycles).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use hyperprotobench::{Generator, ServiceProfile};
use protoacc_bench::ubench::nonalloc_workloads;
use protoacc_bench::{measure, Direction, SystemKind, Workload};
use protoacc_cpu::CostTable;
use protoacc_fleet::gwp::FleetProfile;
use protoacc_fleet::protobufz::{estimate_size_histogram, ShapeModel};
use protoacc_schema::FieldType;
use protoacc_wire::hw::{CombVarintDecoder, CombVarintEncoder};
use protoacc_wire::varint;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_table1(c: &mut Criterion) {
    c.bench_function("table1/classify_all_field_types", |b| {
        b.iter(|| {
            for ft in FieldType::SCALARS {
                black_box(ft.perf_class());
                black_box(ft.wire_type());
            }
        })
    });
}

fn bench_fig2(c: &mut Criterion) {
    let profile = FleetProfile::google_2021();
    c.bench_function("fig2/sample_and_estimate_10k_gwp_cycles", |b| {
        b.iter_batched(
            || StdRng::seed_from_u64(2),
            |mut rng| {
                let samples = profile.sample_cycles(&mut rng, 10_000);
                black_box(FleetProfile::estimate_shares(&samples))
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_fig3_fig4(c: &mut Criterion) {
    let model = ShapeModel::google_2021();
    c.bench_function("fig3_fig4/sample_1k_messages_and_histogram", |b| {
        b.iter_batched(
            || StdRng::seed_from_u64(3),
            |mut rng| {
                let samples = model.sample_population(&mut rng, 1000);
                black_box(estimate_size_histogram(&samples))
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_fig5_fig6(c: &mut Criterion) {
    // One representative slice measurement (the full model runs 24).
    c.bench_function("fig5_fig6/measure_varint5_slice_on_boom", |b| {
        let cost = CostTable::boom();
        b.iter(|| {
            let model = protoacc_fleet::model24::Model24::build_single_for_bench(&cost);
            black_box(model)
        })
    });
}

fn bench_fig11(c: &mut Criterion) {
    let workloads = nonalloc_workloads();
    let varint5 = workloads
        .iter()
        .find(|w| w.name == "varint-5")
        .expect("varint-5 defined")
        .clone();
    let mut group = c.benchmark_group("fig11");
    group.sample_size(10);
    for system in SystemKind::ALL {
        group.bench_function(format!("varint5_deser_{}", system.label()), |b| {
            b.iter(|| black_box(measure(system, &varint5, Direction::Deserialize)))
        });
    }
    group.finish();
}

fn bench_fig12_fig13(c: &mut Criterion) {
    let bench = Generator::new(ServiceProfile::bench(0), 1).generate(8);
    let workload = Workload {
        name: bench.profile.label(),
        schema: bench.schema,
        type_id: bench.type_id,
        messages: bench.messages,
    };
    let mut group = c.benchmark_group("fig12_fig13");
    group.sample_size(10);
    group.bench_function("bench0_accel_deser", |b| {
        b.iter(|| black_box(measure(SystemKind::RiscvBoomAccel, &workload, Direction::Deserialize)))
    });
    group.bench_function("bench0_accel_ser", |b| {
        b.iter(|| black_box(measure(SystemKind::RiscvBoomAccel, &workload, Direction::Serialize)))
    });
    group.finish();
}

fn bench_sec5_3(c: &mut Criterion) {
    c.bench_function("sec5_3/asic_estimates", |b| {
        let config = protoacc::AccelConfig::default();
        b.iter(|| {
            black_box(protoacc::asic::deserializer_estimate(&config));
            black_box(protoacc::asic::serializer_estimate(&config))
        })
    });
}

fn bench_sec7(c: &mut Criterion) {
    use protoacc::{AccelConfig, ProtoAccelerator};
    use protoacc_mem::Memory;
    use protoacc_runtime::{object, write_adts, BumpArena, MessageLayouts};
    let bench = Generator::new(ServiceProfile::bench(0), 7).generate(4);
    let layouts = MessageLayouts::compute(&bench.schema);
    let mut group = c.benchmark_group("sec7");
    group.sample_size(10);
    group.bench_function("accel_merge_bench0", |b| {
        b.iter_batched(
            || {
                let mut mem = Memory::new(protoacc_mem::MemConfig::default());
                let mut setup = BumpArena::new(0x1_0000, 1 << 26);
                let adts =
                    write_adts(&bench.schema, &layouts, &mut mem.data, &mut setup).unwrap();
                let dst = object::write_message(
                    &mut mem.data, &bench.schema, &layouts, &mut setup, &bench.messages[0],
                )
                .unwrap();
                let src = object::write_message(
                    &mut mem.data, &bench.schema, &layouts, &mut setup, &bench.messages[1],
                )
                .unwrap();
                let mut accel = ProtoAccelerator::new(AccelConfig::default());
                accel.deser_assign_arena(0x1_0000_0000, 1 << 26);
                (mem, adts.addr(bench.type_id), dst, src, accel)
            },
            |(mut mem, adt, dst, src, mut accel)| {
                black_box(accel.do_proto_merge(&mut mem, adt, dst, src).unwrap())
            },
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

fn bench_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernels");
    let mut encoded = Vec::new();
    varint::encode(0x0123_4567_89ab, &mut encoded);
    let mut window = [0u8; 10];
    window[..encoded.len()].copy_from_slice(&encoded);
    group.bench_function("varint_software_decode", |b| {
        b.iter(|| black_box(varint::decode(&encoded)))
    });
    group.bench_function("varint_comb_decode", |b| {
        b.iter(|| black_box(CombVarintDecoder::decode(&window)))
    });
    group.bench_function("varint_comb_encode", |b| {
        b.iter(|| black_box(CombVarintEncoder::encode(0x0123_4567_89ab)))
    });
    group.finish();
}

criterion_group!(
    figures,
    bench_table1,
    bench_fig2,
    bench_fig3_fig4,
    bench_fig5_fig6,
    bench_fig11,
    bench_fig12_fig13,
    bench_sec5_3,
    bench_sec7,
    bench_kernels
);
criterion_main!(figures);
