//! Simulated SoC memory substrate for the protoacc reproduction.
//!
//! The paper evaluates its accelerator inside a Chipyard RISC-V SoC: the
//! accelerator and the BOOM core share a 128-bit TileLink system bus, an L2,
//! and an LLC, with accelerator-side TLBs backed by the core's page-table
//! walker (Section 4.1, Figure 8). This crate provides the equivalent
//! substrate for the behavioral model:
//!
//! * [`GuestMemory`] — sparse, paged, byte-addressable storage in which the
//!   runtime lays out C++-ABI-like message objects and serialized buffers.
//! * [`CacheModel`] / [`MemSystem`] — an L1/L2/LLC hierarchy with true tag
//!   arrays and LRU replacement, charging per-access cycle costs.
//! * [`Tlb`] — accelerator-side TLB with a page-table-walk penalty.
//! * [`Memory`] — the bundle of storage plus timing that components thread
//!   through their operations.
//!
//! All timing is deterministic: the same access sequence always produces the
//! same cycle count, mirroring FireSim's cycle-exact methodology.
//!
//! # Example
//!
//! ```rust
//! use protoacc_mem::{Memory, MemConfig};
//!
//! let mut mem = Memory::new(MemConfig::default());
//! mem.write_u64(0x1000, 42);
//! let (value, cycles) = mem.read_u64_timed(0x1000);
//! assert_eq!(value, 42);
//! assert!(cycles > 0);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod cache;
pub mod guest;
pub mod system;
pub mod tlb;

pub use cache::{CacheConfig, CacheModel, CacheStats};
pub use guest::{GuestMemory, PAGE_SIZE};
pub use system::{
    AccessKind, AccessRecord, MemConfig, MemFault, MemStats, MemSystem, Memory, RequesterStats,
};
pub use tlb::{Tlb, TlbConfig};

/// Simulated clock cycles.
pub type Cycles = u64;

/// Width of the TileLink system bus in bytes (128 bits, Section 4.1).
pub const BUS_WIDTH_BYTES: usize = 16;
