//! Google-Wide-Profiling-style fleet cycle profiles (§3.1.1, §3.2,
//! Figure 2).

use xrand::Rng;

use crate::Discrete;

/// A protobuf library operation, as classified in Figure 2.
///
/// The paper publishes Deserialize/Serialize/ByteSize/constructor/destructor
/// shares exactly and gives merge+copy+clear in aggregate (17.1%, §7); the
/// split among those three is this reproduction's assumption.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ProtoOp {
    /// Wire → in-memory object.
    Deserialize,
    /// In-memory object → wire.
    Serialize,
    /// The sizing pass preceding serialization.
    ByteSize,
    /// Merging one message into another.
    Merge,
    /// Deep-copying messages.
    Copy,
    /// Clearing message contents.
    Clear,
    /// Message constructors.
    Construct,
    /// Message destructors.
    Destruct,
    /// Miscellaneous glue code not amenable to acceleration.
    Other,
}

impl ProtoOp {
    /// All operations, in Figure 2 order.
    pub const ALL: [ProtoOp; 9] = [
        ProtoOp::Deserialize,
        ProtoOp::Serialize,
        ProtoOp::ByteSize,
        ProtoOp::Merge,
        ProtoOp::Copy,
        ProtoOp::Clear,
        ProtoOp::Construct,
        ProtoOp::Destruct,
        ProtoOp::Other,
    ];

    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            ProtoOp::Deserialize => "Deserialize",
            ProtoOp::Serialize => "Serialize",
            ProtoOp::ByteSize => "Byte Size",
            ProtoOp::Merge => "Merge",
            ProtoOp::Copy => "Copy",
            ProtoOp::Clear => "Clear",
            ProtoOp::Construct => "Constructors",
            ProtoOp::Destruct => "Destructors",
            ProtoOp::Other => "Other",
        }
    }
}

/// Fleet-level cycle facts (§3.2) plus the Figure 2 per-operation shares of
/// C++ protobuf cycles.
#[derive(Debug, Clone)]
pub struct FleetProfile {
    /// Fraction of all fleet CPU cycles spent in protobuf operations
    /// (0.096 in §3.2).
    pub protobuf_fraction_of_fleet: f64,
    /// Fraction of protobuf cycles spent in C++ (0.88 in §3.2).
    pub cpp_fraction_of_protobuf: f64,
    /// Shares of C++ protobuf cycles per operation, in [`ProtoOp::ALL`]
    /// order; sums to 1.
    pub op_shares: [f64; 9],
    /// Fraction of deserialization cycles initiated by the RPC stack
    /// (0.163 in §3.4).
    pub rpc_fraction_of_deser: f64,
    /// Fraction of serialization cycles initiated by the RPC stack
    /// (0.352 in §3.4).
    pub rpc_fraction_of_ser: f64,
}

impl FleetProfile {
    /// The 2021 Google-fleet parameterization.
    ///
    /// Derivation from published numbers: deserialization is 2.2% of fleet
    /// cycles = 26.0% of the 8.45% fleet share of C++ protobufs;
    /// serialization 8.8% and ByteSize 6.0% of protobuf cycles (footnote 4);
    /// merge+copy+clear 17.1% (§7, split 7.0/6.0/4.1 here); constructors
    /// 6.4% and destructors 13.9% (§7); the remainder is "other".
    pub fn google_2021() -> Self {
        FleetProfile {
            protobuf_fraction_of_fleet: 0.096,
            cpp_fraction_of_protobuf: 0.88,
            op_shares: [
                0.260, 0.088, 0.060, 0.070, 0.060, 0.041, 0.064, 0.139, 0.218,
            ],
            rpc_fraction_of_deser: 0.163,
            rpc_fraction_of_ser: 0.352,
        }
    }

    /// §3.4/§3.9's placement argument: the fraction of (de)serialization
    /// cycles that are *not* RPC-related and would incur pointless data
    /// movement if the accelerator sat on a PCIe NIC. Returns
    /// `(non-RPC deser fraction, non-RPC ser fraction)` — the paper's
    /// "over 83%" and "over 64%".
    pub fn non_rpc_fractions(&self) -> (f64, f64) {
        (
            1.0 - self.rpc_fraction_of_deser,
            1.0 - self.rpc_fraction_of_ser,
        )
    }

    /// The Figure 2 share of one operation (fraction of C++ protobuf
    /// cycles).
    pub fn share(&self, op: ProtoOp) -> f64 {
        let idx = ProtoOp::ALL
            .iter()
            .position(|&o| o == op)
            .expect("known op");
        self.op_shares[idx]
    }

    /// Fraction of *fleet* cycles spent in one C++ protobuf operation.
    pub fn fleet_fraction(&self, op: ProtoOp) -> f64 {
        self.protobuf_fraction_of_fleet * self.cpp_fraction_of_protobuf * self.share(op)
    }

    /// The paper's headline acceleration opportunity: fleet cycles in C++
    /// serialization (incl. ByteSize) + deserialization ("3.45% of CPU
    /// cycles across Google's fleet", §3.2).
    pub fn acceleration_opportunity(&self) -> f64 {
        self.fleet_fraction(ProtoOp::Deserialize)
            + self.fleet_fraction(ProtoOp::Serialize)
            + self.fleet_fraction(ProtoOp::ByteSize)
    }

    /// The §7 follow-on opportunity: merge + copy + clear.
    pub fn merge_copy_clear_share(&self) -> f64 {
        self.share(ProtoOp::Merge) + self.share(ProtoOp::Copy) + self.share(ProtoOp::Clear)
    }

    /// Draws `n` synthetic GWP cycle samples (each representing one sampled
    /// cycle attributed to an operation).
    pub fn sample_cycles<R: Rng + ?Sized>(&self, rng: &mut R, n: usize) -> Vec<ProtoOp> {
        let dist = Discrete::new(&self.op_shares);
        (0..n).map(|_| ProtoOp::ALL[dist.sample(rng)]).collect()
    }

    /// Re-estimates the Figure 2 shares from a sample population — the
    /// analysis half of the GWP pipeline.
    pub fn estimate_shares(samples: &[ProtoOp]) -> [f64; 9] {
        let mut counts = [0u64; 9];
        for s in samples {
            let idx = ProtoOp::ALL.iter().position(|o| o == s).expect("known op");
            counts[idx] += 1;
        }
        let est = Discrete::estimate_from_counts(&counts);
        let mut out = [0.0; 9];
        out.copy_from_slice(&est);
        out
    }
}

/// Per-service shares of fleet-wide (de)serialization cycles — the data
/// behind §5.2's benchmark selection ("the five heaviest users of protobuf
/// deserialization and the five heaviest users of protobuf serialization",
/// together covering over 13% of deser and 18% of ser cycles).
#[derive(Debug, Clone)]
pub struct ServiceCycles {
    services: Vec<(String, f64, f64)>, // (name, deser share, ser share)
}

impl ServiceCycles {
    /// A synthetic fleet of services whose heavy hitters cover the paper's
    /// anchors: the top-6 union covers >13% of deserialization and >18% of
    /// serialization cycles, with a long tail below.
    pub fn google_2021() -> Self {
        let mut services = vec![
            ("ads-serving".to_owned(), 0.040, 0.030),
            ("search-indexing".to_owned(), 0.025, 0.050),
            ("storage-rows".to_owned(), 0.030, 0.045),
            ("ml-features".to_owned(), 0.022, 0.028),
            ("rpc-metadata".to_owned(), 0.018, 0.015),
            ("analytics-rows".to_owned(), 0.015, 0.022),
        ];
        // A long tail of 200 small services sharing the remainder.
        let deser_used: f64 = services.iter().map(|s| s.1).sum();
        let ser_used: f64 = services.iter().map(|s| s.2).sum();
        for i in 0..200 {
            services.push((
                format!("tail-{i}"),
                (1.0 - deser_used) / 200.0,
                (1.0 - ser_used) / 200.0,
            ));
        }
        ServiceCycles { services }
    }

    /// The `n` heaviest deserialization users: `(name, share)` descending.
    pub fn heaviest_deserializers(&self, n: usize) -> Vec<(String, f64)> {
        let mut v: Vec<(String, f64)> = self
            .services
            .iter()
            .map(|(name, d, _)| (name.clone(), *d))
            .collect();
        v.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite shares"));
        v.truncate(n);
        v
    }

    /// The `n` heaviest serialization users.
    pub fn heaviest_serializers(&self, n: usize) -> Vec<(String, f64)> {
        let mut v: Vec<(String, f64)> = self
            .services
            .iter()
            .map(|(name, _, s)| (name.clone(), *s))
            .collect();
        v.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite shares"));
        v.truncate(n);
        v
    }

    /// Coverage of the union of the top-`n` deser and top-`n` ser users, as
    /// `(deser coverage, ser coverage)` — the §5.2 selection criterion.
    pub fn union_coverage(&self, n: usize) -> (f64, f64) {
        let mut names: Vec<String> = self
            .heaviest_deserializers(n)
            .into_iter()
            .map(|(name, _)| name)
            .collect();
        for (name, _) in self.heaviest_serializers(n) {
            if !names.contains(&name) {
                names.push(name);
            }
        }
        let deser = self
            .services
            .iter()
            .filter(|(name, ..)| names.contains(name))
            .map(|(_, d, _)| d)
            .sum();
        let ser = self
            .services
            .iter()
            .filter(|(name, ..)| names.contains(name))
            .map(|(_, _, s)| s)
            .sum();
        (deser, ser)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xrand::StdRng;

    #[test]
    fn shares_sum_to_one() {
        let p = FleetProfile::google_2021();
        let total: f64 = p.op_shares.iter().sum();
        assert!((total - 1.0).abs() < 1e-9, "total {total}");
    }

    #[test]
    fn headline_numbers_match_paper() {
        let p = FleetProfile::google_2021();
        // §3.2: deserialization alone is 2.2% of fleet cycles.
        assert!((p.fleet_fraction(ProtoOp::Deserialize) - 0.022).abs() < 0.001);
        // Serialization (incl. ByteSize) is 1.25% of fleet cycles.
        let ser = p.fleet_fraction(ProtoOp::Serialize) + p.fleet_fraction(ProtoOp::ByteSize);
        assert!((ser - 0.0125).abs() < 0.001, "ser {ser}");
        // Opportunity: 3.45%.
        assert!((p.acceleration_opportunity() - 0.0345).abs() < 0.002);
        // §7: merge/copy/clear = 17.1% of protobuf cycles.
        assert!((p.merge_copy_clear_share() - 0.171).abs() < 1e-9);
    }

    #[test]
    fn estimation_recovers_shares_from_samples() {
        let p = FleetProfile::google_2021();
        let mut rng = StdRng::seed_from_u64(42);
        let samples = p.sample_cycles(&mut rng, 200_000);
        let est = FleetProfile::estimate_shares(&samples);
        for (i, (&truth, &got)) in p.op_shares.iter().zip(est.iter()).enumerate() {
            assert!((truth - got).abs() < 0.005, "op {i}: {truth} vs {got}");
        }
    }

    #[test]
    fn placement_argument_matches_section_3_4() {
        let p = FleetProfile::google_2021();
        let (deser, ser) = p.non_rpc_fractions();
        // §3.9: over 83% of deser and over 64% of ser cycles are not
        // RPC-related.
        assert!(deser > 0.83, "non-RPC deser {deser}");
        assert!(ser > 0.64, "non-RPC ser {ser}");
    }

    #[test]
    fn heaviest_users_cover_the_paper_anchors() {
        // §5.2: the selected services cover over 13% of fleet-wide
        // deserialization cycles and 18% of serialization cycles.
        let cycles = ServiceCycles::google_2021();
        let (deser, ser) = cycles.union_coverage(5);
        assert!(deser > 0.13, "deser coverage {deser}");
        assert!(ser > 0.18, "ser coverage {ser}");
        // The named services beat every tail service.
        let top = cycles.heaviest_deserializers(6);
        assert!(top.iter().all(|(name, _)| !name.starts_with("tail-")));
        // Descending order.
        assert!(top.windows(2).all(|w| w[0].1 >= w[1].1));
    }

    #[test]
    fn deserialization_dominates_serialization() {
        // Figure 2's most visible fact.
        let p = FleetProfile::google_2021();
        assert!(p.share(ProtoOp::Deserialize) > 2.0 * p.share(ProtoOp::Serialize));
    }
}
