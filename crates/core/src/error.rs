use std::error::Error;
use std::fmt;

use protoacc_runtime::{ArenaError, RuntimeError};
use protoacc_wire::WireError;

/// Error raised by the accelerator model.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum AccelError {
    /// An operation was dispatched before the corresponding
    /// `{ser,deser}_assign_arena` instruction.
    ArenaNotAssigned {
        /// Which unit ("deserializer" or "serializer").
        unit: &'static str,
    },
    /// `do_proto_deser` was issued without a preceding `deser_info` (or
    /// `do_proto_ser` without `ser_info`).
    MissingInfo {
        /// Which instruction was missing.
        instruction: &'static str,
    },
    /// The serialized input was malformed.
    Wire(WireError),
    /// An ADT entry carried an invalid or undefined type code where a
    /// defined field was required.
    BadAdtEntry {
        /// The offending field number.
        field_number: u32,
    },
    /// Accelerator arena exhaustion.
    Arena(ArenaError),
    /// The serializer's output region overflowed.
    OutputOverflow,
    /// Error propagated from the runtime layer.
    Runtime(RuntimeError),
}

impl fmt::Display for AccelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AccelError::ArenaNotAssigned { unit } => {
                write!(f, "{unit} arena not assigned before dispatch")
            }
            AccelError::MissingInfo { instruction } => {
                write!(f, "`{instruction}` must precede the dispatch instruction")
            }
            AccelError::Wire(e) => write!(f, "wire error: {e}"),
            AccelError::BadAdtEntry { field_number } => {
                write!(f, "invalid ADT entry for field {field_number}")
            }
            AccelError::Arena(e) => write!(f, "accelerator arena: {e}"),
            AccelError::OutputOverflow => write!(f, "serializer output region overflow"),
            AccelError::Runtime(e) => write!(f, "runtime error: {e}"),
        }
    }
}

impl Error for AccelError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            AccelError::Wire(e) => Some(e),
            AccelError::Arena(e) => Some(e),
            AccelError::Runtime(e) => Some(e),
            _ => None,
        }
    }
}

impl From<WireError> for AccelError {
    fn from(e: WireError) -> Self {
        AccelError::Wire(e)
    }
}

impl From<ArenaError> for AccelError {
    fn from(e: ArenaError) -> Self {
        AccelError::Arena(e)
    }
}

impl From<RuntimeError> for AccelError {
    fn from(e: RuntimeError) -> Self {
        AccelError::Runtime(e)
    }
}
