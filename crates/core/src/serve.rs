//! Multi-instance serving model: N accelerators behind a RoCC command queue.
//!
//! The paper argues the accelerator earns its area by being replicated
//! per-SoC across a fleet (Section 6); related work (RPCAcc, Arcalis) shows
//! the systems questions live in the dispatch queue and the shared memory
//! hierarchy. This module models exactly that: a bounded command queue feeds
//! requests to N independent [`ProtoAccelerator`] instances that share one
//! simulated LLC/DRAM, with per-command enqueue/dispatch/complete timestamps
//! so tail latency and saturation behavior are observable.
//!
//! The simulation is event-driven over a virtual clock in accelerator
//! cycles. Requests carry an arrival time; the queue admits them up to its
//! depth (arrivals beyond it are shed), the dispatch policy binds each
//! admitted command to an instance, and the command occupies that instance
//! until `dispatch + rocc_dispatch + service` cycles. While `k` instances
//! are busy simultaneously, the shared memory system's outstanding-request
//! budget is split `k` ways ([`protoacc_mem::MemSystem::set_sharers`]), so
//! service times inflate exactly when the hierarchy is contended.
//!
//! Everything is deterministic: the same request stream over the same
//! initial memory state produces byte-identical reports.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use protoacc_mem::{AccessKind, AccessRecord, Cycles, Memory, RequesterStats};

use crate::{AccelConfig, AccelError, AccelStats, DecodeFault, ProtoAccelerator};

/// Sentinel instance index for commands served by the software CPU
/// fallback path (or failed outright) rather than an accelerator instance.
pub const FALLBACK_INSTANCE: usize = usize::MAX;

/// Modeled occupancy of a command that hangs with no watchdog or deadline
/// configured: large enough to dominate any report, small enough that
/// overflow-checked arithmetic on timestamps stays safe.
const HUNG_COMMAND_CYCLES: Cycles = 1 << 40;

/// How a command ultimately resolved.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CommandStatus {
    /// Completed correctly on an accelerator instance.
    Ok,
    /// Completed correctly on the software CPU fallback path.
    Fallback,
    /// Definitively rejected with a typed verdict (malformed input or a
    /// fallback-path rejection). A rejection is a *served* response: the
    /// client got an answer, and the differential harness checks its class
    /// against the CPU reference decoder.
    Rejected(DecodeFault),
    /// Exhausted its retries with no fallback available: together with
    /// [`CommandStatus::Shed`], the statuses that count as *not* served.
    Failed(DecodeFault),
    /// Shed by admission control before enqueue: the envelope-derived cost
    /// estimate predicted the request's deadline would be blown, so the
    /// cluster pushed back immediately instead of queueing doomed work.
    /// Distinct from [`CommandStatus::Rejected`] (the input was fine) and
    /// [`CommandStatus::Failed`] (no capacity was consumed trying).
    Shed,
}

impl CommandStatus {
    /// Whether the client received a definitive response (success or a
    /// typed rejection). Shed requests got a fast pushback, not an answer,
    /// so they do not count.
    pub fn is_served(self) -> bool {
        !matches!(self, CommandStatus::Failed(_) | CommandStatus::Shed)
    }

    /// Whether the command produced correct output (on either path).
    pub fn is_ok(self) -> bool {
        matches!(self, CommandStatus::Ok | CommandStatus::Fallback)
    }
}

/// What a scripted instance-plane fault does to its instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InstanceFaultKind {
    /// The instance dies at `at`: an in-flight command is cut off at that
    /// cycle, and the instance accepts no further work.
    Crash,
    /// The instance wedges at `at`: an in-flight command never completes on
    /// its own (only a watchdog or deadline recovers it), and the instance
    /// accepts no further work.
    Hang,
    /// Unit cycles of commands dispatched in `[at, until)` are multiplied
    /// by `factor` (thermal throttling, a misbehaving neighbor).
    Slow {
        /// Service-time multiplier.
        factor: u64,
        /// End of the slow window.
        until: Cycles,
    },
}

/// One scripted instance-plane fault, precomputed by the fault injector so
/// replays stay deterministic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InstanceFault {
    /// Target instance index.
    pub instance: usize,
    /// Cycle the fault takes effect.
    pub at: Cycles,
    /// What happens.
    pub kind: InstanceFaultKind,
}

/// The software codec path the cluster degrades to when no accelerator
/// instance can serve a command. Implemented outside this crate (the
/// fault-injection layer wraps `protoacc-cpu`'s instrumented codec) so the
/// core model does not depend on the CPU baselines.
pub trait FallbackCodec {
    /// Executes `op` on the software path. Returns the cycles consumed —
    /// charged even when the verdict is a rejection, because rejecting
    /// malformed input costs real parse work — and the wire bytes moved on
    /// success.
    fn execute(&mut self, mem: &mut Memory, op: &RequestOp) -> (Cycles, Result<u64, AccelError>);
}

/// How the command queue binds admitted commands to instances.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DispatchPolicy {
    /// Commands leave the queue in arrival order and run on whichever
    /// instance frees up first (single shared queue).
    Fifo,
    /// Command `i` is statically bound to instance `i mod N` (per-instance
    /// queues fed round-robin), so one slow command delays its successors on
    /// the same instance even while other instances idle.
    RoundRobin,
}

impl DispatchPolicy {
    /// Display name used in reports.
    pub fn label(self) -> &'static str {
        match self {
            DispatchPolicy::Fifo => "fifo",
            DispatchPolicy::RoundRobin => "round-robin",
        }
    }
}

/// The operation a request asks for.
#[derive(Debug, Clone, Copy)]
pub enum RequestOp {
    /// Deserialize `input_len` wire bytes at `input_addr` into `dest_obj`.
    Deserialize {
        /// ADT of the root message type.
        adt_ptr: u64,
        /// Wire input address.
        input_addr: u64,
        /// Wire input length.
        input_len: u64,
        /// Caller-allocated destination object.
        dest_obj: u64,
        /// Lowest field number of the root type (the paper's ABI).
        min_field: u32,
    },
    /// Serialize the object at `obj_ptr`.
    Serialize {
        /// ADT of the root message type.
        adt_ptr: u64,
        /// Root object address.
        obj_ptr: u64,
        /// Hasbits offset staged via `ser_info`.
        hasbits_offset: u64,
        /// Lowest field number of the root type.
        min_field: u32,
        /// Highest field number of the root type.
        max_field: u32,
    },
}

impl RequestOp {
    fn is_deser(&self) -> bool {
        matches!(self, RequestOp::Deserialize { .. })
    }
}

/// One RPC-like request offered to the cluster.
#[derive(Debug, Clone, Copy)]
pub struct Request {
    /// Arrival time at the command queue, in accelerator cycles.
    pub arrival: Cycles,
    /// What to do.
    pub op: RequestOp,
    /// Watchdog cycle ceiling for one service attempt. Derived statically
    /// from the abstract-interpretation envelope's upper bound for the
    /// request's message type and wire length: no correct command can run
    /// longer, so an attempt that does is killed (`DecodeFault::WatchdogKill`)
    /// instead of wedging the instance. `None` disables the watchdog.
    pub watchdog: Option<Cycles>,
    /// Absolute completion deadline propagated from the transport layer's
    /// frame metadata (arrival + the client's budget). Admission control
    /// sheds the request up front when [`Request::cost`] predicts a miss,
    /// and an admitted attempt's ceiling is min-combined with the budget
    /// remaining at dispatch. `None` disables both.
    pub deadline: Option<Cycles>,
    /// Admission-control cost estimate for one uncontended service attempt:
    /// the abstract-interpretation envelope's upper bound
    /// (`Envelope::service_bounds(...).upper`). Only consulted when
    /// [`Request::deadline`] is also set.
    pub cost: Option<Cycles>,
}

/// Per-command accounting: the three queue timestamps plus attribution.
#[derive(Debug, Clone, Copy)]
pub struct CommandRecord {
    /// Position in the offered stream (drops keep their slots).
    pub seq: usize,
    /// Arrival at the command queue.
    pub enqueue: Cycles,
    /// When the command left the queue for its instance.
    pub dispatch: Cycles,
    /// When the instance retired it.
    pub complete: Cycles,
    /// Pure service time (RoCC dispatch + unit busy cycles).
    pub service: Cycles,
    /// Instance that ran it.
    pub instance: usize,
    /// Wire bytes moved (input for deser, output for ser).
    pub wire_bytes: u64,
    /// Whether this was a deserialization.
    pub deser: bool,
    /// Instances busy (including this one) while it ran.
    pub sharers: usize,
    /// How the command resolved.
    pub status: CommandStatus,
    /// Service attempts consumed (1 = no retries).
    pub attempts: u32,
}

impl CommandRecord {
    /// Queue latency + service: what the client observes.
    pub fn latency(&self) -> Cycles {
        self.complete - self.enqueue
    }
}

/// Coalesced byte ranges one command touched while it ran, split by access
/// kind. Collected when [`ServeCluster::set_trace_footprints`] is on and
/// consumed by the `protoacc-absint` aliasing sanitizer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CommandFootprint {
    /// Sequence number of the command ([`CommandRecord::seq`]).
    pub seq: usize,
    /// Half-open `[base, end)` ranges read, sorted and merged.
    pub reads: Vec<(u64, u64)>,
    /// Half-open `[base, end)` ranges written, sorted and merged.
    pub writes: Vec<(u64, u64)>,
}

impl CommandFootprint {
    /// Builds a footprint from a raw access trace by sorting each kind's
    /// ranges and merging overlapping or adjacent ones.
    pub fn from_trace(seq: usize, trace: &[AccessRecord]) -> Self {
        let collect = |kind: AccessKind| {
            let mut ranges: Vec<(u64, u64)> = trace
                .iter()
                .filter(|a| a.kind == kind)
                .map(|a| (a.addr, a.end()))
                .collect();
            ranges.sort_unstable();
            let mut merged: Vec<(u64, u64)> = Vec::new();
            for (lo, hi) in ranges {
                match merged.last_mut() {
                    Some(last) if lo <= last.1 => last.1 = last.1.max(hi),
                    _ => merged.push((lo, hi)),
                }
            }
            merged
        };
        CommandFootprint {
            seq,
            reads: collect(AccessKind::Read),
            writes: collect(AccessKind::Write),
        }
    }
}

/// Configuration of a serving cluster.
#[derive(Debug, Clone, Copy)]
pub struct ServeConfig {
    /// Number of accelerator instances (each has a deserializer and a
    /// serializer unit).
    pub instances: usize,
    /// RoCC command-queue depth; arrivals beyond it are shed.
    pub queue_depth: usize,
    /// Dispatch policy.
    pub policy: DispatchPolicy,
    /// Per-instance accelerator configuration.
    pub accel: AccelConfig,
    /// Retries after a retryable (hardware/resource) fault before the
    /// command degrades to the fallback path. Deterministic rejections are
    /// never retried — the verdict would not change.
    pub max_retries: u32,
    /// Base backoff between retry attempts, doubled per attempt.
    pub retry_backoff: Cycles,
    /// Retryable faults an instance may absorb before it is quarantined and
    /// receives no further dispatches.
    pub quarantine_threshold: u32,
    /// Consecutive successful completions on an instance that forgive one
    /// absorbed retryable fault (the counter decays by one and the streak
    /// restarts). Keeps a long-lived instance from sitting permanently one
    /// transient fault away from quarantine. `0` disables decay (the old
    /// sticky behavior).
    pub quarantine_decay: u32,
    /// Cluster-wide per-attempt deadline, combined (min) with each request's
    /// own watchdog ceiling. `None` disables it.
    pub deadline: Option<Cycles>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            instances: 1,
            queue_depth: 64,
            policy: DispatchPolicy::Fifo,
            accel: AccelConfig::default(),
            max_retries: 2,
            retry_backoff: 64,
            quarantine_threshold: 3,
            quarantine_decay: 64,
            deadline: None,
        }
    }
}

/// Guest-memory regions handed to one instance.
#[derive(Debug, Clone, Copy)]
struct InstanceRegions {
    deser_arena: (u64, u64),
    ser_out: (u64, u64),
    ser_ptrs: (u64, u64),
}

/// Refill the deserializer arena / serializer output once free space drops
/// below this fraction of the region (models software recycling the arena
/// between batches, as Section 4.3's software-managed arenas allow).
const RECYCLE_FRACTION: u64 = 8;

/// Per-instance view of an [`InstanceFault`] script, compiled once per run.
struct FaultScript {
    crash_at: Vec<Option<Cycles>>,
    hang_at: Vec<Option<Cycles>>,
    slow: Vec<Option<(Cycles, Cycles, u64)>>,
}

impl FaultScript {
    fn compile(faults: &[InstanceFault], instances: usize) -> Self {
        let mut s = FaultScript {
            crash_at: vec![None; instances],
            hang_at: vec![None; instances],
            slow: vec![None; instances],
        };
        for f in faults {
            assert!(
                f.instance < instances,
                "fault targets instance {} of a {instances}-instance cluster",
                f.instance
            );
            match f.kind {
                InstanceFaultKind::Crash => {
                    let e = &mut s.crash_at[f.instance];
                    *e = Some(e.map_or(f.at, |p| p.min(f.at)));
                }
                InstanceFaultKind::Hang => {
                    let e = &mut s.hang_at[f.instance];
                    *e = Some(e.map_or(f.at, |p| p.min(f.at)));
                }
                InstanceFaultKind::Slow { factor, until } => {
                    s.slow[f.instance] = Some((f.at, until, factor.max(1)));
                }
            }
        }
        s
    }

    /// Whether the instance is scripted down (crashed or hung) at `now`.
    fn down(&self, instance: usize, now: Cycles) -> bool {
        self.crash_at[instance].is_some_and(|c| c <= now)
            || self.hang_at[instance].is_some_and(|h| h <= now)
    }

    /// Unit cycles after any active slow-down window.
    fn slowed(&self, instance: usize, dispatch: Cycles, unit_cycles: Cycles) -> Cycles {
        match self.slow[instance] {
            Some((at, until, factor)) if dispatch >= at && dispatch < until => {
                unit_cycles.saturating_mul(factor)
            }
            _ => unit_cycles,
        }
    }

    /// Whether a hang strikes before the attempt would complete.
    fn hangs(&self, instance: usize, dispatch: Cycles, service: Cycles) -> bool {
        self.hang_at[instance].is_some_and(|h| h < dispatch.saturating_add(service))
    }

    /// Truncated service time if a crash strikes before completion.
    fn crash_cut(&self, instance: usize, dispatch: Cycles, service: Cycles) -> Option<Cycles> {
        match self.crash_at[instance] {
            Some(c) if c < dispatch.saturating_add(service) => {
                Some(c.saturating_sub(dispatch).max(1))
            }
            _ => None,
        }
    }
}

/// Outcome of one service attempt on an accelerator instance.
struct Attempt {
    service: Cycles,
    sharers: usize,
    verdict: Result<u64, DecodeFault>,
    instance_dead: bool,
}

/// N accelerator instances sharing one memory system behind a command queue.
#[derive(Debug)]
pub struct ServeCluster {
    config: ServeConfig,
    accels: Vec<ProtoAccelerator>,
    regions: Vec<InstanceRegions>,
    busy_until: Vec<Cycles>,
    records: Vec<CommandRecord>,
    offered: u64,
    dropped: u64,
    trace_footprints: bool,
    footprints: Vec<CommandFootprint>,
    /// Footprint captured by the most recent attempt; promoted to
    /// `footprints` once its command resolves (retries overwrite it, so
    /// records and footprints stay 1:1).
    last_footprint: Option<CommandFootprint>,
    /// Retryable faults absorbed per instance (quarantine counter).
    fault_counts: Vec<u32>,
    /// Consecutive successful completions per instance since its last
    /// retryable fault, for quarantine-counter decay.
    ok_streaks: Vec<u32>,
    /// Requests shed by admission control (deadline-based, before enqueue).
    shed: u64,
    /// Instances killed by a scripted crash or hang.
    dead: Vec<bool>,
    /// The software fallback path is one serialized virtual CPU server.
    cpu_busy_until: Cycles,
    retries: u64,
    /// Structured-event tracer threaded through the instances, the memory
    /// system, and the queue itself. `None` (the default) keeps every trace
    /// hook a dead branch, so cycle accounting is bit-identical either way.
    tracer: Option<protoacc_trace::SharedTracer>,
}

impl ServeCluster {
    /// Creates a cluster whose instances carve private arenas out of
    /// `[arena_base, arena_base + instances * arena_stride)`.
    pub fn new(config: ServeConfig, arena_base: u64, arena_stride: u64) -> Self {
        assert!(config.instances > 0, "need at least one instance");
        assert!(config.queue_depth > 0, "need a non-empty queue");
        let mut accels = Vec::with_capacity(config.instances);
        let mut regions = Vec::with_capacity(config.instances);
        for i in 0..config.instances {
            let base = arena_base + i as u64 * arena_stride;
            // Split the stride: half deser arena, 3/8 ser output, 1/8 ptrs.
            let r = InstanceRegions {
                deser_arena: (base, arena_stride / 2),
                ser_out: (base + arena_stride / 2, arena_stride * 3 / 8),
                ser_ptrs: (base + arena_stride * 7 / 8, arena_stride / 8),
            };
            let mut accel = ProtoAccelerator::new(config.accel);
            accel.deser_assign_arena(r.deser_arena.0, r.deser_arena.1);
            accel.ser_assign_arena(r.ser_out.0, r.ser_out.1, r.ser_ptrs.0, r.ser_ptrs.1);
            accels.push(accel);
            regions.push(r);
        }
        ServeCluster {
            busy_until: vec![0; config.instances],
            records: Vec::new(),
            offered: 0,
            dropped: 0,
            trace_footprints: false,
            footprints: Vec::new(),
            last_footprint: None,
            fault_counts: vec![0; config.instances],
            ok_streaks: vec![0; config.instances],
            shed: 0,
            dead: vec![false; config.instances],
            cpu_busy_until: 0,
            retries: 0,
            tracer: None,
            config,
            accels,
            regions,
        }
    }

    /// Attaches (or detaches, with `None`) a structured-event tracer. The
    /// tracer is threaded into every accelerator instance; the shared memory
    /// system joins it for the duration of each [`ServeCluster::run_with`].
    /// Tracing observes the run — it never changes cycle accounting.
    pub fn set_tracer(&mut self, tracer: Option<protoacc_trace::SharedTracer>) {
        for (i, accel) in self.accels.iter_mut().enumerate() {
            accel.set_tracer(tracer.clone());
            accel.set_trace_instance(i);
        }
        self.tracer = tracer;
    }

    fn emit(&self, event: protoacc_trace::TraceEvent) {
        if let Some(t) = &self.tracer {
            t.borrow_mut().record(event);
        }
    }

    /// Enables per-command memory-footprint capture (off by default): while
    /// on, [`ServeCluster::run`] records the coalesced byte ranges each
    /// command reads and writes, for the aliasing sanitizer.
    pub fn set_trace_footprints(&mut self, on: bool) {
        self.trace_footprints = on;
    }

    /// Footprints captured so far, one per completed command, matched to
    /// [`ServeCluster::records`] by sequence number.
    pub fn footprints(&self) -> &[CommandFootprint] {
        &self.footprints
    }

    /// The configuration this cluster was built with.
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// Offers `requests` (must be sorted by arrival time) to the cluster
    /// with no injected faults and no fallback path. Equivalent to
    /// [`ServeCluster::run_with`] with an empty fault script.
    ///
    /// # Errors
    ///
    /// Reserved for driver-level failures; the model resolves malformed
    /// inputs to [`CommandStatus::Rejected`] records with a typed verdict
    /// rather than aborting the run, and queue overflow is counted in
    /// [`ServeCluster::dropped`].
    pub fn run(&mut self, mem: &mut Memory, requests: &[Request]) -> Result<(), AccelError> {
        self.run_with(mem, requests, &[], None)
    }

    /// Offers `requests` under a scripted instance-fault scenario, with an
    /// optional software fallback path.
    ///
    /// The degradation ladder, per command:
    ///
    /// 1. run on an available instance; a deterministic decode fault is a
    ///    final [`CommandStatus::Rejected`] verdict (never retried — the
    ///    verdict would not change);
    /// 2. a hardware or resource fault (ECC, stall, crash, hang, watchdog
    ///    kill, arena exhaustion) is retried on another instance after an
    ///    exponentially growing backoff, up to [`ServeConfig::max_retries`]
    ///    times; each such fault counts toward the faulting instance's
    ///    quarantine threshold;
    /// 3. with retries exhausted — or no live instance at all — the command
    ///    runs on the software `fallback` codec (serialized behind one
    ///    virtual CPU server: slower, but still a served response);
    /// 4. only with no fallback does a command end [`CommandStatus::Failed`].
    ///
    /// # Errors
    ///
    /// Reserved for driver-level failures; decode and hardware faults are
    /// recorded per command, not propagated.
    pub fn run_with(
        &mut self,
        mem: &mut Memory,
        requests: &[Request],
        faults: &[InstanceFault],
        mut fallback: Option<&mut dyn FallbackCodec>,
    ) -> Result<(), AccelError> {
        let script = FaultScript::compile(faults, self.config.instances);
        if let Some(t) = &self.tracer {
            mem.system.set_event_tracer(Some(t.clone()));
        }
        // Dispatch times of admitted-but-not-yet-dispatched commands, as a
        // min-heap so occupancy at any arrival time is cheap to maintain.
        let mut pending: BinaryHeap<Reverse<Cycles>> = BinaryHeap::new();
        let mut last_arrival = 0;
        for (seq, req) in requests.iter().enumerate() {
            assert!(
                req.arrival >= last_arrival,
                "requests must be sorted by arrival"
            );
            last_arrival = req.arrival;
            self.offered += 1;
            while pending.peek().is_some_and(|Reverse(d)| *d <= req.arrival) {
                pending.pop();
            }
            // Admission control runs before enqueue: a doomed request is
            // shed immediately instead of consuming a queue slot.
            let shed = self.admission_shed(req, seq, &script);
            let record = if let Some(rec) = shed {
                rec
            } else {
                if pending.len() >= self.config.queue_depth {
                    self.dropped += 1;
                    if self.tracer.is_some() {
                        self.emit(protoacc_trace::TraceEvent::CmdDrop {
                            seq,
                            at: req.arrival,
                        });
                    }
                    continue;
                }
                if self.tracer.is_some() {
                    self.emit(protoacc_trace::TraceEvent::CmdEnqueue {
                        seq,
                        at: req.arrival,
                        wire_bytes: match req.op {
                            RequestOp::Deserialize { input_len, .. } => input_len,
                            RequestOp::Serialize { .. } => 0,
                        },
                        deser: req.op.is_deser(),
                    });
                }
                let mut now = req.arrival;
                let mut attempts: u32 = 0;
                let mut exclude = None;
                let mut last_fault = DecodeFault::InstanceFailure;
                loop {
                    // The cluster notices scripted deaths as the clock passes
                    // them, whether or not a command was in flight.
                    for i in 0..self.config.instances {
                        if script.down(i, now) {
                            self.dead[i] = true;
                        }
                    }
                    let Some(instance) = self.pick_instance(seq, now, exclude, &script) else {
                        break self.degrade(
                            mem,
                            req,
                            seq,
                            now,
                            attempts.max(1),
                            last_fault,
                            &mut fallback,
                        );
                    };
                    attempts += 1;
                    let dispatch = now.max(self.busy_until[instance]);
                    if attempts == 1 {
                        pending.push(Reverse(dispatch));
                    }
                    if self.tracer.is_some() {
                        self.emit(protoacc_trace::TraceEvent::CmdDispatch {
                            seq,
                            at: dispatch,
                            instance,
                            attempt: attempts,
                        });
                    }
                    let a = self.attempt(mem, req, seq, instance, dispatch, &script);
                    self.busy_until[instance] = dispatch + a.service;
                    let done = |status: CommandStatus, wire_bytes: u64| CommandRecord {
                        seq,
                        enqueue: req.arrival,
                        dispatch,
                        complete: dispatch + a.service,
                        service: a.service,
                        instance,
                        wire_bytes,
                        deser: req.op.is_deser(),
                        sharers: a.sharers,
                        status,
                        attempts,
                    };
                    match a.verdict {
                        Ok(wire_bytes) => {
                            self.note_success(instance);
                            break done(CommandStatus::Ok, wire_bytes);
                        }
                        Err(fault) if !fault.category().is_retryable() => {
                            self.note_success(instance);
                            break done(CommandStatus::Rejected(fault), 0);
                        }
                        Err(fault) => {
                            self.fault_counts[instance] += 1;
                            self.ok_streaks[instance] = 0;
                            if a.instance_dead {
                                self.dead[instance] = true;
                            }
                            last_fault = fault;
                            if attempts > self.config.max_retries {
                                break self.degrade(
                                    mem,
                                    req,
                                    seq,
                                    dispatch + a.service,
                                    attempts,
                                    fault,
                                    &mut fallback,
                                );
                            }
                            self.retries += 1;
                            if self.tracer.is_some() {
                                self.emit(protoacc_trace::TraceEvent::CmdRetry {
                                    seq,
                                    at: dispatch + a.service,
                                    instance,
                                    attempt: attempts,
                                });
                            }
                            let backoff = self
                                .config
                                .retry_backoff
                                .saturating_mul(1 << u64::from(attempts - 1).min(16));
                            now = (dispatch + a.service).saturating_add(backoff);
                            exclude = Some(instance);
                        }
                    }
                }
            };
            if self.trace_footprints {
                let fp = self.last_footprint.take().unwrap_or(CommandFootprint {
                    seq,
                    reads: Vec::new(),
                    writes: Vec::new(),
                });
                self.footprints.push(fp);
            }
            if self.tracer.is_some() {
                self.emit(protoacc_trace::TraceEvent::CmdComplete {
                    seq: record.seq,
                    enqueue: record.enqueue,
                    dispatch: record.dispatch,
                    complete: record.complete,
                    service: record.service,
                    // FALLBACK_INSTANCE and FALLBACK_TRACK are the same
                    // sentinel, so the instance maps through unchanged.
                    instance: record.instance,
                    wire_bytes: record.wire_bytes,
                    deser: record.deser,
                    sharers: record.sharers,
                    attempts: record.attempts,
                    outcome: match record.status {
                        CommandStatus::Ok => protoacc_trace::CmdOutcome::Ok,
                        CommandStatus::Fallback => protoacc_trace::CmdOutcome::Fallback,
                        CommandStatus::Rejected(_) => protoacc_trace::CmdOutcome::Rejected,
                        CommandStatus::Failed(_) => protoacc_trace::CmdOutcome::Failed,
                        CommandStatus::Shed => protoacc_trace::CmdOutcome::Shed,
                    },
                });
            }
            self.records.push(record);
        }
        if self.tracer.is_some() {
            mem.system.set_event_tracer(None);
        }
        Ok(())
    }

    /// The shed rung of the degradation ladder (above retry): a request
    /// carrying both a deadline and a cost estimate is turned away before
    /// enqueue when even the earliest eligible instance's free time plus
    /// one envelope-ceiling service attempt already blows the deadline.
    /// The shed consumes no queue slot and no instance time; the record's
    /// one-cycle pushback lives on the fallback sentinel track.
    fn admission_shed(
        &mut self,
        req: &Request,
        seq: usize,
        script: &FaultScript,
    ) -> Option<CommandRecord> {
        let deadline = req.deadline?;
        let cost = req.cost?;
        let instance = self.pick_instance(seq, req.arrival, None, script)?;
        let estimate = req
            .arrival
            .max(self.busy_until[instance])
            .saturating_add(cost);
        if estimate <= deadline {
            return None;
        }
        self.shed += 1;
        if self.tracer.is_some() {
            self.emit(protoacc_trace::TraceEvent::CmdShed {
                seq,
                at: req.arrival,
                deadline,
                estimate,
            });
        }
        Some(CommandRecord {
            seq,
            enqueue: req.arrival,
            dispatch: req.arrival,
            complete: req.arrival + 1,
            service: 1,
            instance: FALLBACK_INSTANCE,
            wire_bytes: 0,
            deser: req.op.is_deser(),
            sharers: 1,
            status: CommandStatus::Shed,
            attempts: 0,
        })
    }

    /// Credits one successful completion toward `instance`'s quarantine
    /// decay: after [`ServeConfig::quarantine_decay`] consecutive clean
    /// completions, one absorbed retryable fault is forgiven.
    fn note_success(&mut self, instance: usize) {
        let decay = self.config.quarantine_decay;
        if decay == 0 || self.fault_counts[instance] == 0 {
            self.ok_streaks[instance] = 0;
            return;
        }
        self.ok_streaks[instance] += 1;
        if self.ok_streaks[instance] >= decay {
            self.fault_counts[instance] -= 1;
            self.ok_streaks[instance] = 0;
        }
    }

    /// Picks an instance for dispatch at `now`, honoring the policy, the
    /// fault script, quarantine state, and an optional excluded instance
    /// (the one that just faulted). Returns `None` when no instance can
    /// serve at all.
    fn pick_instance(
        &self,
        seq: usize,
        now: Cycles,
        exclude: Option<usize>,
        script: &FaultScript,
    ) -> Option<usize> {
        let n = self.config.instances;
        let pick = |skip: Option<usize>| -> Option<usize> {
            let ok = |i: usize| {
                !self.dead[i]
                    && self.fault_counts[i] < self.config.quarantine_threshold
                    && !script.down(i, now)
                    && Some(i) != skip
            };
            match self.config.policy {
                DispatchPolicy::RoundRobin if skip.is_none() => {
                    // Static binding, skipping over unavailable instances.
                    (0..n).map(|k| (seq + k) % n).find(|&i| ok(i))
                }
                _ => {
                    // Earliest-free usable instance, lowest index on ties.
                    // Also the retry rule under either policy: a retry goes
                    // wherever capacity frees up first.
                    (0..n)
                        .filter(|&i| ok(i))
                        .min_by_key(|&i| (self.busy_until[i], i))
                }
            }
        };
        // If only the just-faulted instance survives, retry there rather
        // than give up on the accelerators entirely.
        pick(exclude).or_else(|| if exclude.is_some() { pick(None) } else { None })
    }

    /// One service attempt on `instance` dispatched at `dispatch`. Folds in
    /// scripted instance faults, injected memory faults, and the
    /// watchdog/deadline ceiling; the caller charges the returned service
    /// time to the instance.
    fn attempt(
        &mut self,
        mem: &mut Memory,
        req: &Request,
        seq: usize,
        instance: usize,
        dispatch: Cycles,
        script: &FaultScript,
    ) -> Attempt {
        // Bandwidth contention: every instance still busy at dispatch time
        // shares the memory interface with this command.
        let sharers = 1 + self
            .busy_until
            .iter()
            .enumerate()
            .filter(|&(i, &b)| i != instance && b > dispatch)
            .count();
        mem.system.set_sharers(sharers);
        mem.system.set_requester(instance);
        if self.tracer.is_some() {
            // Unit-relative trace timestamps rebase onto this attempt's
            // dispatch cycle.
            self.accels[instance].set_trace_origin(dispatch);
            mem.system.set_trace_origin(dispatch);
        }
        self.recycle_if_low(instance);
        if self.trace_footprints {
            // Drop any stale trace so the capture covers only this
            // command's unit run.
            mem.system.set_tracing(true);
            let _ = mem.system.take_trace();
        }
        let accel = &mut self.accels[instance];
        let raw = match req.op {
            RequestOp::Deserialize {
                adt_ptr,
                input_addr,
                input_len,
                dest_obj,
                min_field,
            } => {
                accel.deser_info(adt_ptr, dest_obj);
                match accel.do_proto_deser(mem, input_addr, input_len, min_field) {
                    Ok(run) => {
                        accel.block_for_deser_completion();
                        Ok((run.cycles, run.wire_bytes))
                    }
                    Err(e) => Err(e),
                }
            }
            RequestOp::Serialize {
                adt_ptr,
                obj_ptr,
                hasbits_offset,
                min_field,
                max_field,
            } => {
                accel.ser_info(hasbits_offset, min_field, max_field);
                match accel.do_proto_ser(mem, adt_ptr, obj_ptr) {
                    Ok(run) => {
                        accel.block_for_ser_completion();
                        Ok((run.cycles, run.out_len))
                    }
                    Err(e) => Err(e),
                }
            }
        };
        mem.system.set_sharers(1);
        // An injected memory fault (ECC, stall) outranks the functional
        // result: the hardware detected it during the transfer.
        let raw = match mem.system.take_fault() {
            Some(f) => Err(AccelError::Mem(f)),
            None => raw,
        };
        if self.trace_footprints {
            let trace = mem.system.take_trace();
            mem.system.set_tracing(false);
            self.last_footprint = Some(CommandFootprint::from_trace(seq, &trace));
        }
        let (mut service, mut verdict) = match raw {
            Ok((unit_cycles, wire_bytes)) => (
                self.config.accel.rocc_dispatch_cycles
                    + script.slowed(instance, dispatch, unit_cycles),
                Ok(wire_bytes),
            ),
            Err(e) => (self.reject_service(&req.op), Err(DecodeFault::classify(&e))),
        };
        let mut instance_dead = false;
        // A hang leaves the command running forever; only a ceiling below
        // recovers the slot.
        if script.hangs(instance, dispatch, service) {
            service = HUNG_COMMAND_CYCLES;
            verdict = Err(DecodeFault::InstanceFailure);
            instance_dead = true;
        }
        // A crash cuts the attempt short at the crash cycle.
        if let Some(cut) = script.crash_cut(instance, dispatch, service) {
            service = cut;
            verdict = Err(DecodeFault::InstanceFailure);
            instance_dead = true;
        }
        // Watchdog / deadline ceiling: the attempt is killed at the ceiling
        // instead of holding the instance. A request deadline propagated
        // from the transport layer min-combines as the budget remaining at
        // dispatch (an attempt that would finish past the client's deadline
        // is worthless, so it is cut off there).
        let ceiling = [
            req.watchdog,
            self.config.deadline,
            req.deadline.map(|d| d.saturating_sub(dispatch)),
        ]
        .into_iter()
        .flatten()
        .min();
        if let Some(limit) = ceiling {
            if service > limit {
                service = limit.max(1);
                verdict = Err(DecodeFault::WatchdogKill);
            }
        }
        Attempt {
            service,
            sharers,
            verdict,
            instance_dead,
        }
    }

    /// Steps 3–4 of the degradation ladder: software fallback if available,
    /// else a [`CommandStatus::Failed`] record. `now` is when the command
    /// gave up on the accelerators.
    #[allow(clippy::too_many_arguments)]
    fn degrade(
        &mut self,
        mem: &mut Memory,
        req: &Request,
        seq: usize,
        now: Cycles,
        attempts: u32,
        fault: DecodeFault,
        fallback: &mut Option<&mut dyn FallbackCodec>,
    ) -> CommandRecord {
        let base = CommandRecord {
            seq,
            enqueue: req.arrival,
            dispatch: now,
            complete: now + 1,
            service: 1,
            instance: FALLBACK_INSTANCE,
            wire_bytes: 0,
            deser: req.op.is_deser(),
            sharers: 1,
            status: CommandStatus::Failed(fault),
            attempts,
        };
        if self.tracer.is_some() {
            self.emit(protoacc_trace::TraceEvent::CmdFallback { seq, at: now });
        }
        let Some(fb) = fallback.as_deref_mut() else {
            return base;
        };
        let dispatch = now.max(self.cpu_busy_until);
        mem.system.set_sharers(1);
        // Attribute software-path traffic to a requester id one past the
        // accelerator instances.
        mem.system.set_requester(self.config.instances);
        if self.tracer.is_some() {
            mem.system.set_trace_origin(dispatch);
        }
        if self.trace_footprints {
            mem.system.set_tracing(true);
            let _ = mem.system.take_trace();
        }
        let (cycles, result) = fb.execute(mem, &req.op);
        // The software path can trip injected memory faults too.
        let result = match mem.system.take_fault() {
            Some(f) => Err(AccelError::Mem(f)),
            None => result,
        };
        if self.trace_footprints {
            let trace = mem.system.take_trace();
            mem.system.set_tracing(false);
            self.last_footprint = Some(CommandFootprint::from_trace(seq, &trace));
        }
        let service = cycles.max(1);
        self.cpu_busy_until = dispatch + service;
        let status = match result {
            Ok(_) => CommandStatus::Fallback,
            Err(ref e) => CommandStatus::Rejected(DecodeFault::classify(e)),
        };
        CommandRecord {
            dispatch,
            complete: dispatch + service,
            service,
            wire_bytes: result.unwrap_or(0),
            status,
            ..base
        }
    }

    /// Modeled occupancy of an attempt that ends in a fault verdict: the
    /// unit streamed (deser) or scanned (ser) input up to the fault, so
    /// charge the dispatch overhead plus one pass at window bandwidth.
    fn reject_service(&self, op: &RequestOp) -> Cycles {
        let bytes = match *op {
            RequestOp::Deserialize { input_len, .. } => input_len,
            RequestOp::Serialize { .. } => self.config.accel.window_bytes as u64,
        };
        self.config.accel.rocc_dispatch_cycles
            + bytes.div_ceil(self.config.accel.window_bytes as u64).max(1)
    }

    /// Reassigns an instance's arenas when nearly exhausted (software-side
    /// arena recycling; the regions are reused, not grown).
    fn recycle_if_low(&mut self, instance: usize) {
        let r = self.regions[instance];
        let accel = &mut self.accels[instance];
        if accel
            .deser_arena_remaining()
            .is_some_and(|rem| rem < r.deser_arena.1 / RECYCLE_FRACTION)
        {
            accel.deser_assign_arena(r.deser_arena.0, r.deser_arena.1);
        }
        if accel
            .ser_output_remaining()
            .is_some_and(|rem| rem < r.ser_out.1 / RECYCLE_FRACTION)
        {
            accel.ser_assign_arena(r.ser_out.0, r.ser_out.1, r.ser_ptrs.0, r.ser_ptrs.1);
        }
    }

    /// Per-command records, in dispatch (= arrival) order.
    pub fn records(&self) -> &[CommandRecord] {
        &self.records
    }

    /// Requests offered so far.
    pub fn offered(&self) -> u64 {
        self.offered
    }

    /// Requests shed because the queue was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Requests shed by admission control before enqueue (deadline-based
    /// load shedding; distinct from queue-overflow [`ServeCluster::dropped`]).
    pub fn shed(&self) -> u64 {
        self.shed
    }

    /// Retry attempts performed across the run.
    pub fn retries(&self) -> u64 {
        self.retries
    }

    /// Commands that received a definitive response (everything except
    /// [`CommandStatus::Failed`]).
    pub fn served(&self) -> u64 {
        self.records.iter().filter(|r| r.status.is_served()).count() as u64
    }

    /// Commands resolved with each terminal status, as
    /// `(ok, fallback, rejected, failed, shed)`.
    pub fn status_counts(&self) -> (u64, u64, u64, u64, u64) {
        let mut c = (0, 0, 0, 0, 0);
        for r in &self.records {
            match r.status {
                CommandStatus::Ok => c.0 += 1,
                CommandStatus::Fallback => c.1 += 1,
                CommandStatus::Rejected(_) => c.2 += 1,
                CommandStatus::Failed(_) => c.3 += 1,
                CommandStatus::Shed => c.4 += 1,
            }
        }
        c
    }

    /// Instances no longer eligible for dispatch: scripted dead (crash or
    /// hang consumed) or past the quarantine threshold.
    pub fn quarantined_instances(&self) -> Vec<usize> {
        (0..self.config.instances)
            .filter(|&i| self.dead[i] || self.fault_counts[i] >= self.config.quarantine_threshold)
            .collect()
    }

    /// Completion time of the last command (0 if none ran).
    pub fn makespan(&self) -> Cycles {
        self.records.iter().map(|r| r.complete).max().unwrap_or(0)
    }

    /// Wire bytes completed across all commands.
    pub fn completed_wire_bytes(&self) -> u64 {
        self.records.iter().map(|r| r.wire_bytes).sum()
    }

    /// The active service window: first dispatch to last completion across
    /// completed commands. `None` if nothing ran.
    pub fn service_window(&self) -> Option<(Cycles, Cycles)> {
        let first = self.records.iter().map(|r| r.dispatch).min()?;
        let last = self.records.iter().map(|r| r.complete).max()?;
        Some((first, last))
    }

    /// Goodput in Gbits/s over the active service window (first dispatch to
    /// last completion).
    ///
    /// Dividing by [`ServeCluster::makespan`] — which starts at cycle 0 —
    /// understates the cluster whenever the request stream is sparse or
    /// warms up slowly: idle lead-in and the gap after the last arrival get
    /// charged as if the cluster were busy. The makespan-based quantity is
    /// still available as [`ServeCluster::offered_window_gbits`].
    pub fn throughput_gbits(&self) -> f64 {
        let Some((first, last)) = self.service_window() else {
            return 0.0;
        };
        let window = last - first;
        if window == 0 {
            return 0.0;
        }
        self.completed_wire_bytes() as f64 * 8.0 * self.config.accel.freq_ghz / window as f64
    }

    /// Throughput in Gbits/s over the full offered window (cycle 0 through
    /// the makespan) — the arrival-clock-inclusive quantity
    /// [`ServeCluster::throughput_gbits`] used to report. Meaningful when
    /// the offered load itself is the denominator of interest.
    pub fn offered_window_gbits(&self) -> f64 {
        let makespan = self.makespan();
        if makespan == 0 {
            return 0.0;
        }
        self.completed_wire_bytes() as f64 * 8.0 * self.config.accel.freq_ghz / makespan as f64
    }

    /// Statistics of instance `i`.
    pub fn instance_stats(&self, i: usize) -> AccelStats {
        self.accels[i].stats()
    }

    /// Memory-hierarchy traffic attributed to instance `i` (requester ids
    /// equal instance indices).
    pub fn instance_mem_stats(&self, mem: &Memory, i: usize) -> RequesterStats {
        mem.system.requester_stats(i)
    }

    /// Latency percentile over completed commands. `p` is clamped into
    /// `[0, 100]` (NaN reads as 0, so a malformed percentile degrades to the
    /// minimum instead of indexing arbitrarily). Returns 0 if nothing
    /// completed.
    pub fn latency_percentile(&self, p: f64) -> Cycles {
        if self.records.is_empty() {
            return 0;
        }
        let mut latencies: Vec<Cycles> = self.records.iter().map(CommandRecord::latency).collect();
        latencies.sort_unstable();
        // The rank rule is shared with `protoacc_trace::Histogram` so the
        // exact path here and the metrics-registry histogram path cannot
        // disagree by more than bucket quantization.
        latencies[protoacc_trace::nearest_rank(p, latencies.len())]
    }

    /// Checks the queue-accounting invariants, returning a description of
    /// the first violation:
    ///
    /// * completions ≤ dispatches ≤ enqueues (with drops making up the gap),
    /// * per command: enqueue ≤ dispatch < complete and latency ≥ service,
    /// * per instance: commands do not overlap in time.
    ///
    /// # Errors
    ///
    /// A human-readable description of the violated invariant.
    pub fn check_invariants(&self) -> Result<(), String> {
        let completions = self.records.len() as u64;
        if completions + self.dropped != self.offered {
            return Err(format!(
                "accounting leak: {} completed + {} dropped != {} offered",
                completions, self.dropped, self.offered
            ));
        }
        let mut per_instance_last: Vec<Cycles> = vec![0; self.config.instances];
        for r in &self.records {
            if r.dispatch < r.enqueue {
                return Err(format!("cmd {}: dispatched before enqueue", r.seq));
            }
            if r.complete <= r.dispatch {
                return Err(format!("cmd {}: completed at or before dispatch", r.seq));
            }
            if r.latency() < r.service {
                return Err(format!("cmd {}: latency below service time", r.seq));
            }
            // Fallback/failed records carry the sentinel instance; they run
            // on the virtual CPU server, outside the per-instance timeline.
            if r.instance != FALLBACK_INSTANCE {
                if r.dispatch < per_instance_last[r.instance] {
                    return Err(format!(
                        "cmd {}: overlaps previous command on instance {}",
                        r.seq, r.instance
                    ));
                }
                per_instance_last[r.instance] = r.complete;
                if r.sharers == 0 || r.sharers > self.config.instances {
                    return Err(format!("cmd {}: impossible sharer count", r.seq));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use protoacc_mem::{MemConfig, Memory};
    use protoacc_runtime::{reference, write_adts, BumpArena, MessageLayouts, MessageValue, Value};
    use protoacc_schema::{FieldType, SchemaBuilder};

    struct Fixture {
        mem: Memory,
        adt_ptr: u64,
        min_field: u32,
        max_field: u32,
        hasbits_offset: u64,
        input_addr: u64,
        input_len: u64,
        dest_obj: u64,
        obj_ptr: u64,
    }

    fn fixture() -> Fixture {
        let mut b = SchemaBuilder::new();
        let id = b.define("Req", |m| {
            m.optional("id", FieldType::UInt64, 1)
                .optional("body", FieldType::String, 2);
        });
        let schema = b.build().unwrap();
        let layouts = MessageLayouts::compute(&schema);
        let mut mem = Memory::new(MemConfig::default());
        let mut setup = BumpArena::new(0x1000, 1 << 20);
        let adts = write_adts(&schema, &layouts, &mut mem.data, &mut setup).unwrap();
        let mut msg = MessageValue::new(id);
        msg.set(1, Value::UInt64(42)).unwrap();
        msg.set(2, Value::Str("serve me".into())).unwrap();
        let wire = reference::encode(&msg, &schema).unwrap();
        let input_addr = 0x20_0000;
        mem.data.write_bytes(input_addr, &wire);
        let layout = layouts.layout(id);
        let mut obj_arena = BumpArena::new(0x30_0000, 1 << 20);
        let obj_ptr = protoacc_runtime::object::write_message(
            &mut mem.data,
            &schema,
            &layouts,
            &mut obj_arena,
            &msg,
        )
        .unwrap();
        let dest_obj = obj_arena.alloc(layout.object_size(), 8).unwrap();
        Fixture {
            mem,
            adt_ptr: adts.addr(id),
            min_field: layout.min_field(),
            max_field: layout.max_field(),
            hasbits_offset: layout.hasbits_offset(),
            input_addr,
            input_len: wire.len() as u64,
            dest_obj,
            obj_ptr,
        }
    }

    fn mixed_requests(f: &Fixture, n: usize, gap: Cycles) -> Vec<Request> {
        (0..n)
            .map(|i| Request {
                arrival: i as Cycles * gap,
                watchdog: None,
                deadline: None,
                cost: None,
                op: if i % 2 == 0 {
                    RequestOp::Deserialize {
                        adt_ptr: f.adt_ptr,
                        input_addr: f.input_addr,
                        input_len: f.input_len,
                        dest_obj: f.dest_obj,
                        min_field: f.min_field,
                    }
                } else {
                    RequestOp::Serialize {
                        adt_ptr: f.adt_ptr,
                        obj_ptr: f.obj_ptr,
                        hasbits_offset: f.hasbits_offset,
                        min_field: f.min_field,
                        max_field: f.max_field,
                    }
                },
            })
            .collect()
    }

    #[test]
    fn fifo_cluster_serves_mixed_stream_and_keeps_invariants() {
        let mut f = fixture();
        let reqs = mixed_requests(&f, 40, 100);
        let mut cluster = ServeCluster::new(
            ServeConfig {
                instances: 2,
                ..ServeConfig::default()
            },
            0x1_0000_0000,
            1 << 24,
        );
        cluster.run(&mut f.mem, &reqs).unwrap();
        cluster.check_invariants().unwrap();
        assert_eq!(cluster.records().len(), 40);
        assert_eq!(cluster.dropped(), 0);
        assert!(cluster.throughput_gbits() > 0.0);
        assert!(cluster.latency_percentile(99.0) >= cluster.latency_percentile(50.0));
        // Both instances saw work and the memory system attributed traffic.
        assert!(cluster.instance_stats(0).deser_ops + cluster.instance_stats(0).ser_ops > 0);
        assert!(cluster.instance_stats(1).deser_ops + cluster.instance_stats(1).ser_ops > 0);
        assert!(cluster.instance_mem_stats(&f.mem, 0).accesses > 0);
        assert!(cluster.instance_mem_stats(&f.mem, 1).accesses > 0);
    }

    #[test]
    fn bounded_queue_sheds_load_under_simultaneous_arrivals() {
        let mut f = fixture();
        // Everything arrives at cycle 0 into a depth-4 queue on 1 instance:
        // only 4 can ever be pending, the rest are shed.
        let mut reqs = mixed_requests(&f, 32, 0);
        for r in &mut reqs {
            r.arrival = 0;
        }
        let mut cluster = ServeCluster::new(
            ServeConfig {
                instances: 1,
                queue_depth: 4,
                ..ServeConfig::default()
            },
            0x1_0000_0000,
            1 << 24,
        );
        cluster.run(&mut f.mem, &reqs).unwrap();
        cluster.check_invariants().unwrap();
        assert!(cluster.dropped() > 0);
        assert_eq!(
            cluster.records().len() as u64 + cluster.dropped(),
            cluster.offered()
        );
    }

    #[test]
    fn round_robin_binds_statically() {
        let mut f = fixture();
        let reqs = mixed_requests(&f, 8, 1_000_000);
        let mut cluster = ServeCluster::new(
            ServeConfig {
                instances: 4,
                policy: DispatchPolicy::RoundRobin,
                ..ServeConfig::default()
            },
            0x1_0000_0000,
            1 << 24,
        );
        cluster.run(&mut f.mem, &reqs).unwrap();
        cluster.check_invariants().unwrap();
        for r in cluster.records() {
            assert_eq!(r.instance, r.seq % 4);
        }
    }

    #[test]
    fn latency_percentile_boundaries_on_tiny_clusters() {
        // 0 records: every percentile is 0.
        let empty = ServeCluster::new(ServeConfig::default(), 0x1_0000_0000, 1 << 24);
        for p in [0.0, 50.0, 100.0] {
            assert_eq!(empty.latency_percentile(p), 0);
        }

        // 1 record: every percentile is that record's latency.
        let mut f = fixture();
        let reqs = mixed_requests(&f, 1, 100);
        let mut one = ServeCluster::new(ServeConfig::default(), 0x1_0000_0000, 1 << 24);
        one.run(&mut f.mem, &reqs).unwrap();
        let only = one.records()[0].latency();
        for p in [0.0, 50.0, 100.0] {
            assert_eq!(one.latency_percentile(p), only);
        }

        // 2 records: p0 is the min; p50 and p100 land on the max (nearest-
        // rank over n-1 rounds 0.5 up); out-of-range and NaN inputs clamp
        // instead of indexing arbitrarily.
        let mut f = fixture();
        let reqs = mixed_requests(&f, 2, 0);
        let mut two = ServeCluster::new(ServeConfig::default(), 0x1_0000_0000, 1 << 24);
        two.run(&mut f.mem, &reqs).unwrap();
        let mut lats: Vec<Cycles> = two.records().iter().map(CommandRecord::latency).collect();
        lats.sort_unstable();
        assert_eq!(two.latency_percentile(0.0), lats[0]);
        assert_eq!(two.latency_percentile(50.0), lats[1]);
        assert_eq!(two.latency_percentile(100.0), lats[1]);
        assert_eq!(two.latency_percentile(-30.0), lats[0]);
        assert_eq!(two.latency_percentile(400.0), lats[1]);
        assert_eq!(two.latency_percentile(f64::NAN), lats[0]);
    }

    #[test]
    fn goodput_is_computed_over_the_service_window_not_the_makespan() {
        let mut f = fixture();
        // Deliberately sparse stream: one burst after a long idle lead-in.
        // The makespan starts at cycle 0, so dividing by it charges all the
        // idle warm-up to the cluster.
        let mut reqs = mixed_requests(&f, 4, 0);
        for r in &mut reqs {
            r.arrival = 5_000_000;
        }
        let mut cluster = ServeCluster::new(ServeConfig::default(), 0x1_0000_0000, 1 << 24);
        cluster.run(&mut f.mem, &reqs).unwrap();
        cluster.check_invariants().unwrap();
        let (first, last) = cluster.service_window().unwrap();
        assert!(first >= 5_000_000, "window starts at first dispatch");
        let freq = cluster.config().accel.freq_ghz;
        let expect = cluster.completed_wire_bytes() as f64 * 8.0 * freq / (last - first) as f64;
        assert!((cluster.throughput_gbits() - expect).abs() < 1e-12);
        // The old quantity is preserved under its own name and, on this
        // stream, understates goodput by orders of magnitude.
        assert!(cluster.offered_window_gbits() < cluster.throughput_gbits() / 100.0);
        assert!(cluster.offered_window_gbits() > 0.0);
    }

    #[test]
    fn footprints_capture_per_command_ranges_when_enabled() {
        let mut f = fixture();
        let reqs = mixed_requests(&f, 8, 50);
        let mut cluster = ServeCluster::new(
            ServeConfig {
                instances: 2,
                ..ServeConfig::default()
            },
            0x1_0000_0000,
            1 << 24,
        );
        cluster.set_trace_footprints(true);
        cluster.run(&mut f.mem, &reqs).unwrap();
        assert!(!f.mem.system.tracing(), "tracing disabled after the run");
        assert_eq!(cluster.footprints().len(), cluster.records().len());
        for (fp, r) in cluster.footprints().iter().zip(cluster.records()) {
            assert_eq!(fp.seq, r.seq);
            assert!(!fp.reads.is_empty(), "cmd {} read nothing", r.seq);
            assert!(!fp.writes.is_empty(), "cmd {} wrote nothing", r.seq);
            for w in &fp.reads {
                assert!(w.0 < w.1, "empty range");
            }
            // Every deser command reads the wire input region.
            if r.deser {
                let end = f.input_addr + f.input_len;
                assert!(
                    fp.reads
                        .iter()
                        .any(|&(lo, hi)| lo <= f.input_addr && hi >= end),
                    "cmd {} missing wire read",
                    r.seq
                );
            }
        }

        // Off by default: no footprints accumulate.
        let mut f2 = fixture();
        let reqs2 = mixed_requests(&f2, 2, 50);
        let mut quiet = ServeCluster::new(ServeConfig::default(), 0x1_0000_0000, 1 << 24);
        quiet.run(&mut f2.mem, &reqs2).unwrap();
        assert!(quiet.footprints().is_empty());
    }

    /// Fixed-cost software codec stub for fallback-path unit tests.
    struct StubFallback {
        cycles: Cycles,
        calls: u64,
    }

    impl FallbackCodec for StubFallback {
        fn execute(
            &mut self,
            _mem: &mut Memory,
            op: &RequestOp,
        ) -> (Cycles, Result<u64, AccelError>) {
            self.calls += 1;
            let bytes = match *op {
                RequestOp::Deserialize { input_len, .. } => input_len,
                RequestOp::Serialize { .. } => 8,
            };
            (self.cycles, Ok(bytes))
        }
    }

    #[test]
    fn malformed_input_is_rejected_without_retry() {
        let mut f = fixture();
        // Truncate the wire input mid-message: a deterministic decode fault.
        let reqs = vec![Request {
            arrival: 0,
            watchdog: None,
            deadline: None,
            cost: None,
            op: RequestOp::Deserialize {
                adt_ptr: f.adt_ptr,
                input_addr: f.input_addr,
                input_len: f.input_len - 1,
                dest_obj: f.dest_obj,
                min_field: f.min_field,
            },
        }];
        let mut cluster = ServeCluster::new(ServeConfig::default(), 0x1_0000_0000, 1 << 24);
        cluster.run(&mut f.mem, &reqs).unwrap();
        cluster.check_invariants().unwrap();
        let r = &cluster.records()[0];
        assert!(matches!(r.status, CommandStatus::Rejected(_)));
        assert_eq!(r.attempts, 1, "deterministic faults must not retry");
        assert_eq!(r.wire_bytes, 0);
        assert_eq!(cluster.retries(), 0);
        assert!(r.status.is_served());
    }

    #[test]
    fn crash_mid_run_fails_over_and_still_serves_everything() {
        let mut f = fixture();
        let reqs = mixed_requests(&f, 24, 500);
        let mut cluster = ServeCluster::new(
            ServeConfig {
                instances: 4,
                ..ServeConfig::default()
            },
            0x1_0000_0000,
            1 << 24,
        );
        // Instance 0 dies one third into the arrival window.
        let faults = [InstanceFault {
            instance: 0,
            at: 4_000,
            kind: InstanceFaultKind::Crash,
        }];
        cluster.run_with(&mut f.mem, &reqs, &faults, None).unwrap();
        cluster.check_invariants().unwrap();
        assert_eq!(cluster.records().len(), 24);
        assert_eq!(cluster.served(), 24, "survivors must absorb the load");
        assert!(cluster.quarantined_instances().contains(&0));
        // Nothing dispatches to the dead instance after the crash.
        for r in cluster.records() {
            if r.instance == 0 {
                assert!(r.dispatch < 4_000 || matches!(r.status, CommandStatus::Ok));
            }
            assert!(r.status.is_ok(), "cmd {} resolved {:?}", r.seq, r.status);
        }
    }

    #[test]
    fn hang_without_watchdog_is_capped_and_retried_elsewhere() {
        let mut f = fixture();
        let reqs = mixed_requests(&f, 4, 10);
        let mut cluster = ServeCluster::new(
            ServeConfig {
                instances: 2,
                ..ServeConfig::default()
            },
            0x1_0000_0000,
            1 << 24,
        );
        let faults = [InstanceFault {
            instance: 0,
            at: 5,
            kind: InstanceFaultKind::Hang,
        }];
        cluster.run_with(&mut f.mem, &reqs, &faults, None).unwrap();
        cluster.check_invariants().unwrap();
        assert_eq!(cluster.served(), 4);
        assert!(cluster.retries() >= 1, "the hung attempt must retry");
        // Every command ends up on the surviving instance.
        for r in cluster.records() {
            assert_eq!(r.instance, 1);
            assert!(r.status.is_ok());
        }
    }

    #[test]
    fn watchdog_kills_hung_command_at_the_ceiling() {
        let mut f = fixture();
        let ceiling = 10_000;
        let mut reqs = mixed_requests(&f, 1, 0);
        reqs[0].watchdog = Some(ceiling);
        let mut cluster = ServeCluster::new(ServeConfig::default(), 0x1_0000_0000, 1 << 24);
        let faults = [InstanceFault {
            instance: 0,
            at: 1,
            kind: InstanceFaultKind::Hang,
        }];
        cluster.run_with(&mut f.mem, &reqs, &faults, None).unwrap();
        cluster.check_invariants().unwrap();
        let r = &cluster.records()[0];
        // The only instance hung: the watchdog kills the attempt at the
        // ceiling, the retry finds the instance dead, and with no fallback
        // the command fails — bounded, rather than hanging the simulation.
        assert_eq!(r.status, CommandStatus::Failed(DecodeFault::WatchdogKill));
        assert!(
            r.dispatch <= ceiling + cluster.config().retry_backoff,
            "watchdog must bound the occupied time"
        );
        assert!(cluster.makespan() < HUNG_COMMAND_CYCLES);
    }

    #[test]
    fn all_instances_down_degrades_to_software_fallback() {
        let mut f = fixture();
        let reqs = mixed_requests(&f, 8, 100);
        let mut cluster = ServeCluster::new(
            ServeConfig {
                instances: 2,
                ..ServeConfig::default()
            },
            0x1_0000_0000,
            1 << 24,
        );
        let faults = [
            InstanceFault {
                instance: 0,
                at: 0,
                kind: InstanceFaultKind::Crash,
            },
            InstanceFault {
                instance: 1,
                at: 0,
                kind: InstanceFaultKind::Crash,
            },
        ];
        let mut fb = StubFallback {
            cycles: 5_000,
            calls: 0,
        };
        cluster
            .run_with(&mut f.mem, &reqs, &faults, Some(&mut fb))
            .unwrap();
        cluster.check_invariants().unwrap();
        assert_eq!(cluster.served(), 8, "fallback must absorb all load");
        assert_eq!(fb.calls, 8);
        let (ok, fallback, rejected, failed, shed) = cluster.status_counts();
        assert_eq!((ok, fallback, rejected, failed, shed), (0, 8, 0, 0, 0));
        // The software path is serialized: completions stack up behind one
        // virtual CPU server.
        let mut last = 0;
        for r in cluster.records() {
            assert_eq!(r.instance, FALLBACK_INSTANCE);
            assert!(r.dispatch >= last);
            last = r.complete;
        }
    }

    #[test]
    fn slow_instance_inflates_service_inside_the_window() {
        let f = fixture();
        let reqs = mixed_requests(&f, 2, 1_000_000);
        let run = |faults: &[InstanceFault]| {
            let mut f = fixture();
            let mut cluster = ServeCluster::new(ServeConfig::default(), 0x1_0000_0000, 1 << 24);
            cluster.run_with(&mut f.mem, &reqs, faults, None).unwrap();
            cluster
                .records()
                .iter()
                .map(|r| r.service)
                .collect::<Vec<_>>()
        };
        let clean = run(&[]);
        let slowed = run(&[InstanceFault {
            instance: 0,
            at: 0,
            kind: InstanceFaultKind::Slow {
                factor: 8,
                until: 500_000,
            },
        }]);
        assert!(slowed[0] > clean[0], "first command hits the slow window");
        assert_eq!(slowed[1], clean[1], "second dispatches after the window");
    }

    #[test]
    fn ecc_fault_retries_on_the_same_instance_when_alone() {
        let mut f = fixture();
        let reqs = mixed_requests(&f, 2, 100_000);
        let mut cluster = ServeCluster::new(ServeConfig::default(), 0x1_0000_0000, 1 << 24);
        // One transient ECC error on the wire input: the first attempt
        // trips it, and with no other instance the retry lands back on the
        // same (now clean) instance.
        f.mem.system.arm_ecc(f.input_addr);
        cluster.run_with(&mut f.mem, &reqs, &[], None).unwrap();
        cluster.check_invariants().unwrap();
        assert_eq!(cluster.served(), 2);
        assert_eq!(cluster.retries(), 1);
        let r = &cluster.records()[0];
        assert_eq!(r.status, CommandStatus::Ok);
        assert_eq!(r.attempts, 2);
        assert_eq!(cluster.records()[1].attempts, 1);
    }

    #[test]
    fn memory_fault_quarantines_the_instance_at_threshold() {
        let mut f = fixture();
        let reqs = mixed_requests(&f, 10, 50_000);
        let mut cluster = ServeCluster::new(
            ServeConfig {
                instances: 2,
                quarantine_threshold: 1,
                ..ServeConfig::default()
            },
            0x1_0000_0000,
            1 << 24,
        );
        // The first command's ECC hit immediately quarantines instance 0;
        // everything (including the retry) runs on instance 1 afterwards.
        f.mem.system.arm_ecc(f.input_addr);
        cluster.run_with(&mut f.mem, &reqs, &[], None).unwrap();
        cluster.check_invariants().unwrap();
        assert_eq!(cluster.served(), 10);
        assert_eq!(cluster.quarantined_instances(), vec![0]);
        for r in cluster.records() {
            assert!(r.status.is_ok(), "cmd {} resolved {:?}", r.seq, r.status);
            assert_eq!(r.instance, 1);
        }
    }

    fn deser_requests(f: &Fixture, n: usize, gap: Cycles) -> Vec<Request> {
        (0..n)
            .map(|i| Request {
                arrival: i as Cycles * gap,
                watchdog: None,
                deadline: None,
                cost: None,
                op: RequestOp::Deserialize {
                    adt_ptr: f.adt_ptr,
                    input_addr: f.input_addr,
                    input_len: f.input_len,
                    dest_obj: f.dest_obj,
                    min_field: f.min_field,
                },
            })
            .collect()
    }

    #[test]
    fn admission_sheds_doomed_requests_before_enqueue() {
        let mut f = fixture();
        // A burst of simultaneous arrivals, each claiming a cost estimate
        // and a deadline only the first few can meet: the backlog estimate
        // (busy_until + cost) grows past the deadline, and everything past
        // that point is shed up front rather than queued to time out.
        let cost = 50_000;
        let mut reqs = mixed_requests(&f, 16, 0);
        for r in &mut reqs {
            r.arrival = 0;
            // Slack covers the cost estimate plus a little backlog: once
            // earlier commands push busy_until past the slack, later
            // arrivals' estimates blow the deadline and they are shed.
            r.deadline = Some(cost + 1_000);
            r.cost = Some(cost);
        }
        let mut cluster = ServeCluster::new(ServeConfig::default(), 0x1_0000_0000, 1 << 24);
        cluster.run(&mut f.mem, &reqs).unwrap();
        cluster.check_invariants().unwrap();
        let (ok, fallback, rejected, failed, shed) = cluster.status_counts();
        assert!(shed > 0, "an overloaded burst must shed");
        assert!(ok > 0, "the head of the burst must still be served");
        assert_eq!((fallback, rejected, failed), (0, 0, 0));
        assert_eq!(cluster.shed(), shed);
        assert_eq!(cluster.dropped(), 0, "admission ran before queue overflow");
        // Every offered command is accounted to exactly one terminal status.
        assert_eq!(ok + fallback + rejected + failed + shed, cluster.offered());
        for r in cluster.records() {
            if r.status == CommandStatus::Shed {
                assert_eq!(r.instance, FALLBACK_INSTANCE);
                assert_eq!(r.attempts, 0, "shed consumes no service attempt");
                assert_eq!(r.service, 1, "shed is a one-cycle pushback");
                assert!(!r.status.is_served());
                assert!(!r.status.is_ok());
            }
        }
        // Shed commands never occupied an instance: the served commands are
        // exactly those the accelerator ran.
        assert_eq!(cluster.served(), ok);
    }

    #[test]
    fn request_deadline_propagates_into_the_attempt_ceiling() {
        // Without a cost estimate admission cannot shed, so the deadline
        // rides into the dispatch path and kills the attempt at the
        // remaining budget — the min-combine with the watchdog.
        let mut f = fixture();
        let mut reqs = mixed_requests(&f, 1, 0);
        reqs[0].deadline = Some(3); // hopeless: service needs far more
        let mut cluster = ServeCluster::new(ServeConfig::default(), 0x1_0000_0000, 1 << 24);
        cluster.run(&mut f.mem, &reqs).unwrap();
        cluster.check_invariants().unwrap();
        let r = &cluster.records()[0];
        assert_eq!(r.status, CommandStatus::Failed(DecodeFault::WatchdogKill));

        // A generous deadline changes nothing.
        let mut f2 = fixture();
        let mut ok_reqs = mixed_requests(&f2, 1, 0);
        ok_reqs[0].deadline = Some(1 << 40);
        let mut relaxed = ServeCluster::new(ServeConfig::default(), 0x1_0000_0000, 1 << 24);
        relaxed.run(&mut f2.mem, &ok_reqs).unwrap();
        assert_eq!(relaxed.records()[0].status, CommandStatus::Ok);
    }

    #[test]
    fn quarantine_counter_decays_after_a_run_of_successes() {
        // One instance, threshold 2: two absorbed faults would quarantine
        // it. With decay enabled, a run of clean completions between the
        // faults forgives the first one, so the instance stays in rotation;
        // with decay disabled (the old sticky behavior) the second fault
        // quarantines it and — with no fallback — later commands fail.
        let run = |decay: u32| {
            let mut f = fixture();
            let cfg = ServeConfig {
                quarantine_threshold: 2,
                quarantine_decay: decay,
                ..ServeConfig::default()
            };
            let mut cluster = ServeCluster::new(cfg, 0x1_0000_0000, 1 << 24);
            let first = deser_requests(&f, 8, 100_000);
            let second = deser_requests(&f, 4, 100_000);
            f.mem.system.arm_ecc(f.input_addr);
            cluster.run(&mut f.mem, &first).unwrap();
            f.mem.system.arm_ecc(f.input_addr);
            cluster.run(&mut f.mem, &second).unwrap();
            cluster.check_invariants().unwrap();
            (
                cluster.quarantined_instances(),
                cluster.status_counts(),
                cluster.offered(),
            )
        };
        let (quarantined, (ok, _, _, failed, _), offered) = run(4);
        assert_eq!(quarantined, Vec::<usize>::new(), "decay forgave the fault");
        assert_eq!(failed, 0);
        assert_eq!(ok, offered, "every command served on the accelerator");

        let (sticky_quarantined, (_, _, _, sticky_failed, _), _) = run(0);
        assert_eq!(sticky_quarantined, vec![0], "sticky counter quarantines");
        assert!(sticky_failed > 0, "no instance and no fallback => failures");
    }

    #[test]
    fn identical_runs_are_deterministic() {
        let run_once = || {
            let mut f = fixture();
            let reqs = mixed_requests(&f, 24, 50);
            let mut cluster = ServeCluster::new(
                ServeConfig {
                    instances: 2,
                    ..ServeConfig::default()
                },
                0x1_0000_0000,
                1 << 24,
            );
            cluster.run(&mut f.mem, &reqs).unwrap();
            cluster
                .records()
                .iter()
                .map(|r| (r.seq, r.dispatch, r.complete, r.instance))
                .collect::<Vec<_>>()
        };
        assert_eq!(run_once(), run_once());
    }
}
