//! Seeded randomized corruption differential: ~10k mutated HyperProtoBench
//! messages through the accelerator model and the CPU reference decoder,
//! asserting the accept/reject verdict — and the fault class on rejections —
//! agrees on every single input.
//!
//! This is the drop-in-replacement contract under hostile input: an
//! application swapping the software parser for the hardware one must see
//! the same messages accepted and the same error class on the ones
//! rejected.

use protoacc_suite::faults::{mutate, DiffReport, DifferentialHarness};
use protoacc_suite::hyperbench::generate_suite;
use protoacc_suite::runtime::reference;
use protoacc_suite::xrand::StdRng;

/// Mutations per message: 6 benches x 8 messages x 21 mutations plus the
/// clean control per message lands the run a little over 10k trials.
fn mutations_per_message() -> usize {
    if cfg!(feature = "slow-tests") {
        210 * 16
    } else {
        210
    }
}

#[test]
fn corrupted_hyperbench_verdicts_match_the_cpu_reference() {
    let suite = generate_suite(8, 0xC0DE);
    let mut rng = StdRng::seed_from_u64(0xFA11_7E57);
    let mut report = DiffReport::default();
    for bench in &suite {
        let mut harness = DifferentialHarness::new(&bench.schema, bench.type_id);
        for (mi, message) in bench.messages.iter().enumerate() {
            let wire =
                reference::encode(message, &bench.schema).expect("generated messages encode");
            // Clean control: the unmutated message must accept on both sides.
            harness.observe(
                &format!("{}/m{mi}/clean", bench.profile.name),
                &wire,
                &mut report,
            );
            for trial in 0..mutations_per_message() {
                let (fault, mutated) = mutate(&wire, &mut rng);
                harness.observe(
                    &format!("{}/m{mi}/t{trial}/{}", bench.profile.name, fault.label()),
                    &mutated,
                    &mut report,
                );
            }
        }
    }
    assert!(report.is_clean(), "{}", report.summary());
    assert!(
        report.trials >= 10_000,
        "only {} trials — the sweep shrank below its 10k floor",
        report.trials
    );
    // The sweep must actually exercise both verdicts, or it proves nothing.
    assert!(report.accepted > 0, "{}", report.summary());
    assert!(report.rejected > 0, "{}", report.summary());
}

/// The sweep itself is deterministic: same seeds, same tallies.
#[test]
fn corruption_sweep_is_deterministic() {
    let run = |seed: u64| {
        let suite = generate_suite(2, 0xC0DE);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut report = DiffReport::default();
        for bench in &suite {
            let mut harness = DifferentialHarness::new(&bench.schema, bench.type_id);
            for message in &bench.messages {
                let wire = reference::encode(message, &bench.schema).unwrap();
                for _ in 0..8 {
                    let (fault, mutated) = mutate(&wire, &mut rng);
                    harness.observe(fault.label(), &mutated, &mut report);
                }
            }
        }
        (report.trials, report.accepted, report.rejected)
    };
    assert_eq!(run(7), run(7));
}
