//! Wire-plane corruption: seeded generators that turn a well-formed wire
//! message into each class of malformed input the deserializer FSM must
//! reject through a typed error state, never a panic or a hang.

use protoacc_wire::{varint, FieldKey, WireType, MAX_VARINT_LEN};
use xrand::Rng;

/// The wire-plane fault classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum WireFault {
    /// One random bit flipped anywhere in the buffer (the classic single
    ///-event upset; lands in keys, lengths, and payloads alike).
    BitFlip,
    /// The buffer cut at a random offset: every field boundary becomes a
    /// potential mid-field truncation.
    Truncate,
    /// A length-delimited field's length varint inflated past the end of
    /// the buffer.
    LengthOverrun,
    /// A varint field appended whose continuation bits never terminate
    /// (11 bytes with the high bit set — past the 10-byte proto2 maximum).
    NonTerminatingVarint,
    /// The first field key's wire-type bits replaced, producing undefined
    /// wire types (6, 7), deprecated groups (3, 4), or a defined type that
    /// contradicts the schema.
    WireTypeTamper,
}

/// Every wire-plane fault class, for sweeps.
pub const WIRE_FAULTS: [WireFault; 5] = [
    WireFault::BitFlip,
    WireFault::Truncate,
    WireFault::LengthOverrun,
    WireFault::NonTerminatingVarint,
    WireFault::WireTypeTamper,
];

impl WireFault {
    /// Short stable name for reports.
    pub fn label(self) -> &'static str {
        match self {
            WireFault::BitFlip => "bit-flip",
            WireFault::Truncate => "truncate",
            WireFault::LengthOverrun => "length-overrun",
            WireFault::NonTerminatingVarint => "varint-overflow",
            WireFault::WireTypeTamper => "wiretype-tamper",
        }
    }
}

/// Applies `fault` to a copy of `bytes`. Total: every fault class produces
/// *some* mutation on every input (degenerate inputs degrade to a bit flip
/// or a one-byte buffer). The result is not guaranteed to be rejected —
/// a bit flip inside a string payload is still well-formed — which is
/// exactly what the differential harness wants: accept/accept must agree
/// too.
pub fn corrupt(bytes: &[u8], fault: WireFault, rng: &mut impl Rng) -> Vec<u8> {
    match fault {
        WireFault::BitFlip => bit_flip(bytes, rng),
        WireFault::Truncate => truncate(bytes, rng),
        WireFault::LengthOverrun => length_overrun(bytes, rng),
        WireFault::NonTerminatingVarint => non_terminating_varint(bytes, rng),
        WireFault::WireTypeTamper => wire_type_tamper(bytes, rng),
    }
}

/// Picks a fault class uniformly and applies it.
pub fn mutate(bytes: &[u8], rng: &mut impl Rng) -> (WireFault, Vec<u8>) {
    let fault = WIRE_FAULTS[rng.gen_range(0..WIRE_FAULTS.len())];
    (fault, corrupt(bytes, fault, rng))
}

/// A recursion depth bomb: `depth` nested length-delimited frames on field
/// `field_number`, innermost empty. Fed to a schema whose `field_number` is
/// a recursive message-typed field, this drives the decoder `depth` levels
/// deep on a buffer of only `O(3 * depth)` bytes — the decoder must fail
/// with its depth limit, not exhaust its stack.
pub fn depth_bomb(field_number: u32, depth: usize) -> Vec<u8> {
    let key = FieldKey::new(field_number, WireType::LengthDelimited)
        .expect("depth_bomb: invalid field number");
    let mut body: Vec<u8> = Vec::new();
    for _ in 0..depth {
        let mut next = Vec::with_capacity(body.len() + 2 * MAX_VARINT_LEN);
        varint::encode(key.encoded(), &mut next);
        varint::encode(body.len() as u64, &mut next);
        next.extend_from_slice(&body);
        body = next;
    }
    body
}

fn bit_flip(bytes: &[u8], rng: &mut impl Rng) -> Vec<u8> {
    let mut out = bytes.to_vec();
    if out.is_empty() {
        return vec![rng.gen_range(0..=255u8)];
    }
    let pos = rng.gen_range(0..out.len());
    out[pos] ^= 1u8 << rng.gen_range(0..8u8);
    out
}

fn truncate(bytes: &[u8], rng: &mut impl Rng) -> Vec<u8> {
    if bytes.is_empty() {
        return bit_flip(bytes, rng);
    }
    bytes[..rng.gen_range(0..bytes.len())].to_vec()
}

fn length_overrun(bytes: &[u8], rng: &mut impl Rng) -> Vec<u8> {
    let lengths = scan_top_level_lengths(bytes);
    let Some(&(pos, len_len, _)) = lengths
        .get(rng.gen_range(0..lengths.len().max(1)))
        .or_else(|| lengths.first())
    else {
        // No length-delimited field to inflate; degrade to a bit flip so
        // the mutation is never a no-op.
        return bit_flip(bytes, rng);
    };
    // Declare more bytes than the whole buffer holds.
    let declared = bytes.len() as u64 + rng.gen_range(1..=1u64 << 20);
    let mut out = bytes[..pos].to_vec();
    varint::encode(declared, &mut out);
    out.extend_from_slice(&bytes[pos + len_len..]);
    out
}

fn non_terminating_varint(bytes: &[u8], rng: &mut impl Rng) -> Vec<u8> {
    let mut out = bytes.to_vec();
    let field = rng.gen_range(1..=15u32);
    let key = FieldKey::new(field, WireType::Varint).expect("small field number");
    varint::encode(key.encoded(), &mut out);
    // One byte past the 10-byte maximum, every continuation bit set.
    for _ in 0..=MAX_VARINT_LEN {
        out.push(0x80 | rng.gen_range(0..0x80u8));
    }
    out
}

fn wire_type_tamper(bytes: &[u8], rng: &mut impl Rng) -> Vec<u8> {
    let mut out = bytes.to_vec();
    let Some(first) = out.first_mut() else {
        return bit_flip(bytes, rng);
    };
    // XOR a non-zero value into the low three bits: the wire type changes,
    // the field number (in the same byte) does not.
    *first ^= rng.gen_range(1..8u8);
    out
}

/// Positions of top-level length-delimited length varints:
/// `(offset, encoded_len, declared)`. Stops at the first malformed record,
/// so it is safe on arbitrary bytes.
fn scan_top_level_lengths(bytes: &[u8]) -> Vec<(usize, usize, u64)> {
    let mut found = Vec::new();
    let mut pos = 0;
    while pos < bytes.len() {
        let Ok((raw, key_len)) = varint::decode(&bytes[pos..]) else {
            break;
        };
        let Ok(key) = FieldKey::from_encoded(raw) else {
            break;
        };
        pos += key_len;
        match key.wire_type() {
            WireType::Varint => {
                let Ok((_, n)) = varint::decode(&bytes[pos..]) else {
                    break;
                };
                pos += n;
            }
            WireType::LengthDelimited => {
                let Ok((len, n)) = varint::decode(&bytes[pos..]) else {
                    break;
                };
                found.push((pos, n, len));
                pos += n;
                let Some(next) = pos.checked_add(len as usize) else {
                    break;
                };
                if next > bytes.len() {
                    break;
                }
                pos = next;
            }
            other => {
                let Some(fixed) = other.fixed_payload_len() else {
                    break; // groups: nothing to skip over
                };
                pos += fixed;
            }
        }
    }
    found
}

#[cfg(test)]
mod tests {
    use super::*;
    use xrand::StdRng;

    fn sample_wire() -> Vec<u8> {
        // field 1 varint 300, field 2 string "hello", field 3 fixed32.
        let mut out = Vec::new();
        varint::encode(
            FieldKey::new(1, WireType::Varint).unwrap().encoded(),
            &mut out,
        );
        varint::encode(300, &mut out);
        varint::encode(
            FieldKey::new(2, WireType::LengthDelimited)
                .unwrap()
                .encoded(),
            &mut out,
        );
        varint::encode(5, &mut out);
        out.extend_from_slice(b"hello");
        varint::encode(
            FieldKey::new(3, WireType::Bits32).unwrap().encoded(),
            &mut out,
        );
        out.extend_from_slice(&7u32.to_le_bytes());
        out
    }

    #[test]
    fn every_fault_mutates_every_input() {
        let mut rng = StdRng::seed_from_u64(7);
        for input in [Vec::new(), vec![0x08], sample_wire()] {
            for fault in WIRE_FAULTS {
                let out = corrupt(&input, fault, &mut rng);
                assert_ne!(out, input, "{fault:?} was a no-op on {input:x?}");
            }
        }
    }

    #[test]
    fn length_overrun_targets_a_real_length_field() {
        let mut rng = StdRng::seed_from_u64(9);
        let wire = sample_wire();
        let out = corrupt(&wire, WireFault::LengthOverrun, &mut rng);
        // The mutated buffer still starts with the untouched varint field.
        assert_eq!(out[..2], wire[..2]);
        // Re-scanning finds a declared length past the end of the buffer.
        let lengths = scan_top_level_lengths(&out);
        assert!(
            lengths
                .iter()
                .any(|&(_, _, declared)| declared > out.len() as u64),
            "no overrunning length in {out:x?}"
        );
    }

    #[test]
    fn depth_bomb_nests_exactly() {
        let bomb = depth_bomb(15, 3);
        // key(15, LD) = 0x7a; three nested frames: 7a 02 7a 00 is depth 2.
        assert_eq!(bomb, vec![0x7a, 0x04, 0x7a, 0x02, 0x7a, 0x00]);
        assert!(depth_bomb(15, 200).len() < 1024, "bombs stay tiny");
    }

    #[test]
    fn mutation_is_deterministic_per_seed() {
        let wire = sample_wire();
        let run = |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            (0..32).map(|_| mutate(&wire, &mut rng)).collect::<Vec<_>>()
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43));
    }
}
