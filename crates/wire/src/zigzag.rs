//! Zigzag transform for signed integer types (`sint32`/`sint64`).
//!
//! Two's-complement negative values would always occupy the full 10 varint
//! bytes; zigzag interleaves positive and negative values so small magnitudes
//! stay short. The accelerator applies this as an extra combinational stage
//! after varint decode (Section 4.4.6).

/// Maps a signed 64-bit value onto an unsigned one: 0, -1, 1, -2 → 0, 1, 2, 3.
///
/// ```rust
/// use protoacc_wire::zigzag;
/// assert_eq!(zigzag::encode64(0), 0);
/// assert_eq!(zigzag::encode64(-1), 1);
/// assert_eq!(zigzag::encode64(2147483647), 4294967294);
/// ```
#[inline]
pub fn encode64(value: i64) -> u64 {
    ((value << 1) ^ (value >> 63)) as u64
}

/// Inverse of [`encode64`].
#[inline]
pub fn decode64(value: u64) -> i64 {
    ((value >> 1) as i64) ^ -((value & 1) as i64)
}

/// 32-bit variant of [`encode64`].
#[inline]
pub fn encode32(value: i32) -> u32 {
    ((value << 1) ^ (value >> 31)) as u32
}

/// Inverse of [`encode32`].
#[inline]
pub fn decode32(value: u32) -> i32 {
    ((value >> 1) as i32) ^ -((value & 1) as i32)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors_64() {
        let cases = [
            (0i64, 0u64),
            (-1, 1),
            (1, 2),
            (-2, 3),
            (2147483647, 4294967294),
            (-2147483648, 4294967295),
            (i64::MAX, u64::MAX - 1),
            (i64::MIN, u64::MAX),
        ];
        for (signed, unsigned) in cases {
            assert_eq!(encode64(signed), unsigned);
            assert_eq!(decode64(unsigned), signed);
        }
    }

    #[test]
    fn known_vectors_32() {
        let cases = [(0i32, 0u32), (-1, 1), (1, 2), (i32::MIN, u32::MAX)];
        for (signed, unsigned) in cases {
            assert_eq!(encode32(signed), unsigned);
            assert_eq!(decode32(unsigned), signed);
        }
    }

    #[test]
    fn round_trip_extremes() {
        for v in [i64::MIN, i64::MIN + 1, -1, 0, 1, i64::MAX - 1, i64::MAX] {
            assert_eq!(decode64(encode64(v)), v);
        }
        for v in [i32::MIN, -1, 0, 1, i32::MAX] {
            assert_eq!(decode32(encode32(v)), v);
        }
    }
}
