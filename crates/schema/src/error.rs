use std::error::Error;
use std::fmt;

use protoacc_wire::WireError;

/// Error produced while building or parsing a schema.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SchemaError {
    /// The `.proto` source failed to parse.
    Parse {
        /// 1-based line number of the failure.
        line: usize,
        /// Description of what went wrong.
        message: String,
    },
    /// A field referenced a message type that is not defined in the schema.
    UnknownMessageType {
        /// The unresolved type name.
        name: String,
    },
    /// Two fields in one message share a field number.
    DuplicateFieldNumber {
        /// The message in which the collision occurred.
        message: String,
        /// The colliding field number.
        number: u32,
    },
    /// Two messages in one schema share a fully-qualified name.
    DuplicateMessageName {
        /// The colliding name.
        name: String,
    },
    /// A field number was zero or exceeded the proto2 maximum.
    InvalidFieldNumber {
        /// The offending number.
        number: u32,
    },
    /// `packed` was requested on a field type that cannot be packed.
    InvalidPacked {
        /// The offending field name.
        field: String,
    },
    /// A message contained no fields where at least one was required.
    EmptyMessage {
        /// The offending message name.
        name: String,
    },
    /// A field number fell inside the implementation-reserved 19000–19999
    /// range the protobuf language forbids schemas from defining.
    ReservedFieldNumber {
        /// The offending number.
        number: u32,
    },
    /// A binary descriptor payload was malformed at the wire level
    /// (truncated varint, over-long length, bad wire type, ...).
    Wire {
        /// The underlying wire-format error.
        error: WireError,
    },
    /// A binary descriptor decoded cleanly at the wire level but was
    /// structurally invalid (missing name, bad label/type enum value,
    /// over-deep `nested_type` recursion, non-proto2 syntax, ...).
    Descriptor {
        /// Description of the structural problem.
        message: String,
    },
}

impl From<WireError> for SchemaError {
    fn from(error: WireError) -> Self {
        SchemaError::Wire { error }
    }
}

impl fmt::Display for SchemaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchemaError::Parse { line, message } => {
                write!(f, "parse error at line {line}: {message}")
            }
            SchemaError::UnknownMessageType { name } => {
                write!(f, "unknown message type `{name}`")
            }
            SchemaError::DuplicateFieldNumber { message, number } => {
                write!(f, "duplicate field number {number} in message `{message}`")
            }
            SchemaError::DuplicateMessageName { name } => {
                write!(f, "duplicate message name `{name}`")
            }
            SchemaError::InvalidFieldNumber { number } => {
                write!(f, "invalid field number {number}")
            }
            SchemaError::InvalidPacked { field } => {
                write!(f, "field `{field}` cannot be packed")
            }
            SchemaError::EmptyMessage { name } => {
                write!(f, "message `{name}` has no fields")
            }
            SchemaError::ReservedFieldNumber { number } => {
                write!(
                    f,
                    "field number {number} lies in the reserved 19000-19999 range"
                )
            }
            SchemaError::Wire { error } => {
                write!(f, "malformed descriptor payload: {error}")
            }
            SchemaError::Descriptor { message } => {
                write!(f, "invalid descriptor: {message}")
            }
        }
    }
}

impl Error for SchemaError {}
