//! Schema evolution (§2.1.1): "fields are numbered for stability across
//! field name changes, and fields may be optionally present" — old readers
//! must tolerate new writers and vice versa, on every system.

use protoacc_suite::accel::{AccelConfig, ProtoAccelerator};
use protoacc_suite::mem::{MemConfig, Memory};
use protoacc_suite::runtime::{
    object, reference, write_adts, BumpArena, MessageLayouts, MessageValue, Value,
};
use protoacc_suite::schema::parse_proto;

const V1: &str = r#"
    syntax = "proto2";
    message Record {
        required int64 id = 1;
        optional string name = 2;
    }
"#;

// V2 adds fields (7, 9), renames field 2, and widens the number range.
const V2: &str = r#"
    syntax = "proto2";
    message Record {
        required int64 id = 1;
        optional string display_name = 2;
        optional double score = 7;
        repeated string tags = 9;
    }
"#;

#[test]
fn new_writer_old_reader_skips_unknown_fields() {
    let v1 = parse_proto(V1).unwrap();
    let v2 = parse_proto(V2).unwrap();
    let v2_id = v2.id_by_name("Record").unwrap();
    let v1_id = v1.id_by_name("Record").unwrap();

    // Write with v2.
    let mut new_msg = MessageValue::new(v2_id);
    new_msg.set(1, Value::Int64(42)).unwrap();
    new_msg
        .set(2, Value::Str("renamed but same number".into()))
        .unwrap();
    new_msg.set(7, Value::Double(0.9)).unwrap();
    new_msg.set_repeated(9, vec![Value::Str("a".into()), Value::Str("b".into())]);
    let wire = reference::encode(&new_msg, &v2).unwrap();

    // Read with v1 (reference decoder): unknown fields 7 and 9 skipped,
    // field 2 still lands despite the rename.
    let old_view = reference::decode(&wire, v1_id, &v1).unwrap();
    assert_eq!(old_view.get_i64(1), Some(42));
    assert_eq!(old_view.get_str(2), Some("renamed but same number"));
    assert_eq!(old_view.present_fields(), 2);

    // Read with v1 on the accelerator: same result.
    let layouts = MessageLayouts::compute(&v1);
    let mut mem = Memory::new(MemConfig::default());
    let mut arena = BumpArena::new(0x1_0000, 1 << 22);
    let adts = write_adts(&v1, &layouts, &mut mem.data, &mut arena).unwrap();
    mem.data.write_bytes(0x20_0000, &wire);
    let dest = arena.alloc(layouts.layout(v1_id).object_size(), 8).unwrap();
    let mut accel = ProtoAccelerator::new(AccelConfig::default());
    accel.deser_assign_arena(0x100_0000, 1 << 22);
    accel.deser_info(adts.addr(v1_id), dest);
    accel
        .do_proto_deser(&mut mem, 0x20_0000, wire.len() as u64, 1)
        .unwrap();
    let accel_view = object::read_message(&mem.data, &v1, &layouts, v1_id, dest).unwrap();
    assert!(accel_view.bits_eq(&old_view));
}

#[test]
fn old_writer_new_reader_sees_absent_fields() {
    let v1 = parse_proto(V1).unwrap();
    let v2 = parse_proto(V2).unwrap();
    let v1_id = v1.id_by_name("Record").unwrap();
    let v2_id = v2.id_by_name("Record").unwrap();

    let mut old_msg = MessageValue::new(v1_id);
    old_msg.set(1, Value::Int64(7)).unwrap();
    old_msg.set(2, Value::Str("v1 name".into())).unwrap();
    let wire = reference::encode(&old_msg, &v1).unwrap();

    let new_view = reference::decode(&wire, v2_id, &v2).unwrap();
    assert_eq!(new_view.get_i64(1), Some(7));
    assert_eq!(new_view.get_str(2), Some("v1 name"));
    assert_eq!(new_view.get_f64(7), None, "added field absent");
    assert!(new_view.get_repeated(9).is_empty());
    new_view
        .validate(&v2)
        .expect("valid under the new schema too");
}

#[test]
fn round_trip_through_old_schema_preserves_known_fields() {
    // v2 writer -> v1 reader -> v1 writer -> v2 reader: fields 1 and 2
    // survive; the v2-only fields are dropped by the v1 hop (no unknown-
    // field preservation in this runtime, matching its documented scope).
    let v1 = parse_proto(V1).unwrap();
    let v2 = parse_proto(V2).unwrap();
    let v1_id = v1.id_by_name("Record").unwrap();
    let v2_id = v2.id_by_name("Record").unwrap();
    let mut msg = MessageValue::new(v2_id);
    msg.set(1, Value::Int64(1)).unwrap();
    msg.set(2, Value::Str("kept".into())).unwrap();
    msg.set(7, Value::Double(1.5)).unwrap();
    let wire_v2 = reference::encode(&msg, &v2).unwrap();
    let as_v1 = reference::decode(&wire_v2, v1_id, &v1).unwrap();
    let wire_v1 = reference::encode(&as_v1, &v1).unwrap();
    let back = reference::decode(&wire_v1, v2_id, &v2).unwrap();
    assert_eq!(back.get_i64(1), Some(1));
    assert_eq!(back.get_str(2), Some("kept"));
    assert_eq!(back.get_f64(7), None);
}
