//! The per-request RPC header riding inside each frame payload.
//!
//! A frame's payload opens with a compact varint-coded header carrying the
//! routing metadata the serving layer needs *before* any message bytes are
//! touched: which method (staged prototype) the request targets, the
//! direction (deserialize or serialize), and the client's completion budget
//! in cycles. Everything after the header is the opaque message body —
//! in this simulation the actual wire bytes live pre-staged in guest
//! memory, so the body is carried by reference, not copied through the
//! frame.
//!
//! Layout (all varints per `protoacc-wire` conventions):
//!
//! ```text
//! varint method | 1 byte direction (0 = serialize, 1 = deserialize)
//!               | varint deadline+1 (0 = no deadline)
//! ```

use std::error::Error;
use std::fmt;

use protoacc_mem::Cycles;
use protoacc_wire::varint;

/// Direction byte of a serialization request.
const DIR_SER: u8 = 0;
/// Direction byte of a deserialization request.
const DIR_DESER: u8 = 1;

/// Decoded request metadata.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RpcHeader {
    /// Index into the server's method table.
    pub method: u32,
    /// Deserialize (`true`) or serialize (`false`).
    pub deser: bool,
    /// Completion budget in cycles, relative to the request's arrival.
    /// `None` means the client set no deadline: the request can never be
    /// shed by admission control, only dropped on queue overflow.
    pub deadline: Option<Cycles>,
}

/// Typed header decode error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HeaderError {
    /// The payload ended inside the header.
    Truncated,
    /// A header varint violated the wire format (overflow past 10 bytes).
    Varint(protoacc_wire::WireError),
    /// The direction byte is neither 0 nor 1.
    Direction(u8),
    /// The method index does not fit a `u32`.
    MethodRange(u64),
}

impl fmt::Display for HeaderError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HeaderError::Truncated => write!(f, "rpc header truncated"),
            HeaderError::Varint(e) => write!(f, "rpc header varint: {e}"),
            HeaderError::Direction(d) => write!(f, "rpc header direction byte {d}"),
            HeaderError::MethodRange(m) => write!(f, "rpc method index {m} exceeds u32"),
        }
    }
}

impl Error for HeaderError {}

impl RpcHeader {
    /// Encodes the header into `out`, returning the bytes written.
    pub fn encode(&self, out: &mut Vec<u8>) -> usize {
        let start = out.len();
        varint::encode(u64::from(self.method), out);
        out.push(if self.deser { DIR_DESER } else { DIR_SER });
        varint::encode(self.deadline.map_or(0, |d| d.saturating_add(1)), out);
        out.len() - start
    }

    /// Encodes the header as a standalone payload.
    #[must_use]
    pub fn to_payload(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.encode(&mut out);
        out
    }

    /// Decodes a header from the head of `payload`, returning it plus the
    /// bytes consumed. Trailing bytes are the opaque message body and are
    /// left untouched.
    pub fn decode(payload: &[u8]) -> Result<(RpcHeader, usize), HeaderError> {
        let read_varint = |buf: &[u8]| -> Result<(u64, usize), HeaderError> {
            match varint::decode(buf) {
                Ok(v) => Ok(v),
                Err(protoacc_wire::WireError::Truncated { .. }) => Err(HeaderError::Truncated),
                Err(e) => Err(HeaderError::Varint(e)),
            }
        };
        let (method_raw, mut pos) = read_varint(payload)?;
        let method = u32::try_from(method_raw).map_err(|_| HeaderError::MethodRange(method_raw))?;
        let dir = *payload.get(pos).ok_or(HeaderError::Truncated)?;
        pos += 1;
        let deser = match dir {
            DIR_SER => false,
            DIR_DESER => true,
            other => return Err(HeaderError::Direction(other)),
        };
        let (deadline_raw, used) = read_varint(&payload[pos..])?;
        pos += used;
        let deadline = deadline_raw.checked_sub(1);
        Ok((
            RpcHeader {
                method,
                deser,
                deadline,
            },
            pos,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn headers_round_trip_with_and_without_deadlines() {
        for header in [
            RpcHeader {
                method: 0,
                deser: true,
                deadline: None,
            },
            RpcHeader {
                method: 300,
                deser: false,
                deadline: Some(0),
            },
            RpcHeader {
                method: u32::MAX,
                deser: true,
                deadline: Some(1 << 40),
            },
        ] {
            let mut payload = header.to_payload();
            payload.extend_from_slice(b"opaque body");
            let (decoded, used) = RpcHeader::decode(&payload).unwrap();
            assert_eq!(decoded, header);
            assert_eq!(&payload[used..], b"opaque body");
        }
    }

    #[test]
    fn malformed_headers_map_to_typed_errors() {
        assert_eq!(RpcHeader::decode(&[]).unwrap_err(), HeaderError::Truncated);
        // Method varint present, direction byte missing.
        assert_eq!(
            RpcHeader::decode(&[0x05]).unwrap_err(),
            HeaderError::Truncated
        );
        // Bad direction byte.
        assert_eq!(
            RpcHeader::decode(&[0x05, 0x07, 0x00]).unwrap_err(),
            HeaderError::Direction(7)
        );
        // Direction fine, deadline varint missing.
        assert_eq!(
            RpcHeader::decode(&[0x05, 0x01]).unwrap_err(),
            HeaderError::Truncated
        );
        // Method index past u32.
        let mut buf = Vec::new();
        varint::encode(u64::from(u32::MAX) + 1, &mut buf);
        buf.extend_from_slice(&[0x01, 0x00]);
        assert_eq!(
            RpcHeader::decode(&buf).unwrap_err(),
            HeaderError::MethodRange(u64::from(u32::MAX) + 1)
        );
        // Non-terminating varint surfaces the wire error.
        let overflow = [0x80u8; 11];
        assert!(matches!(
            RpcHeader::decode(&overflow).unwrap_err(),
            HeaderError::Varint(protoacc_wire::WireError::VarintOverflow { .. })
        ));
    }
}
