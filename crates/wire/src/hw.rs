//! Combinational hardware models of varint processing.
//!
//! Section 4.4.4 of the paper: "The field-handler unit contains a
//! combinational varint decoder, which can directly peek at the next 10B of
//! the serialized buffer via the memloader's variable-width consumer
//! interface." Both directions complete in a single cycle; the models here
//! compute the same outputs a parallel gate-level implementation would, so
//! the cycle-level simulators can charge exactly one cycle per varint.

use crate::MAX_VARINT_LEN;

/// Output of the single-cycle combinational varint decoder.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecodedVarint {
    /// The decoded 64-bit value.
    pub value: u64,
    /// Encoded length in bytes (1..=10), fed back to the memloader so it can
    /// discard the consumed bytes at the end of the cycle.
    pub len: usize,
}

/// Combinational varint decoder over a fixed 10-byte peek window.
///
/// Hardware structure being modeled: ten continuation-bit taps feed a
/// priority encoder that selects the terminating byte; 7-bit payload groups
/// are extracted in parallel and merged through a masked OR tree. All of that
/// settles within one clock.
///
/// ```rust
/// use protoacc_wire::hw::CombVarintDecoder;
/// let window = [0xac, 0x02, 0, 0, 0, 0, 0, 0, 0, 0];
/// let out = CombVarintDecoder::decode(&window).expect("terminator in window");
/// assert_eq!((out.value, out.len), (300, 2));
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct CombVarintDecoder;

impl CombVarintDecoder {
    /// Decodes the varint at the front of a full 10-byte window.
    ///
    /// Returns `None` when no byte in the window clears its continuation
    /// bit — the hardware analog of a malformed (>10 byte) varint, which the
    /// real unit flags as an error to the control FSM.
    pub fn decode(window: &[u8; MAX_VARINT_LEN]) -> Option<DecodedVarint> {
        // Priority encoder: position of the first byte with bit 7 clear.
        let len = window.iter().position(|b| b & 0x80 == 0)? + 1;
        // Parallel group extraction + OR merge.
        let mut value = 0u64;
        for (i, &byte) in window.iter().enumerate().take(len) {
            if i * 7 < 64 {
                value |= u64::from(byte & 0x7f) << (i * 7);
            }
        }
        Some(DecodedVarint { value, len })
    }

    /// Decodes from a possibly-short peek (end of buffer); bytes past the end
    /// of `avail` are treated as absent.
    ///
    /// Returns `None` if no terminator lies within the available bytes — the
    /// FSM then either waits for more data or raises truncation.
    pub fn decode_avail(avail: &[u8]) -> Option<DecodedVarint> {
        let mut window = [0x80u8; MAX_VARINT_LEN];
        let n = avail.len().min(MAX_VARINT_LEN);
        window[..n].copy_from_slice(&avail[..n]);
        let out = Self::decode(&window)?;
        (out.len <= n).then_some(out)
    }
}

/// Combinational varint encoder: fixed-width value in, up to 10 bytes plus a
/// byte-count out, in one cycle.
///
/// Hardware structure being modeled: a leading-zero counter determines the
/// output length; ten 7-bit slices are wired in parallel with continuation
/// bits set by comparators against the length.
#[derive(Debug, Clone, Copy, Default)]
pub struct CombVarintEncoder;

/// Output of the single-cycle combinational varint encoder.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EncodedVarint {
    /// Output bytes; only the first `len` are meaningful.
    pub bytes: [u8; MAX_VARINT_LEN],
    /// Number of valid bytes (1..=10).
    pub len: usize,
}

impl EncodedVarint {
    /// The valid prefix of the output.
    pub fn as_slice(&self) -> &[u8] {
        &self.bytes[..self.len]
    }
}

impl CombVarintEncoder {
    /// Encodes `value` in a single modeled cycle.
    ///
    /// ```rust
    /// use protoacc_wire::hw::CombVarintEncoder;
    /// let out = CombVarintEncoder::encode(300);
    /// assert_eq!(out.as_slice(), &[0xac, 0x02]);
    /// ```
    pub fn encode(value: u64) -> EncodedVarint {
        let len = crate::varint::encoded_len(value);
        let mut bytes = [0u8; MAX_VARINT_LEN];
        for (i, byte) in bytes.iter_mut().enumerate().take(len) {
            let group = ((value >> (i * 7)) & 0x7f) as u8;
            *byte = if i + 1 < len { group | 0x80 } else { group };
        }
        EncodedVarint { bytes, len }
    }
}

/// Combinational UTF-8 validator model.
///
/// Section 7: "the only change needed for proto3 support in our accelerator
/// is adding support for UTF-8 validation of string fields during
/// deserialization." The modeled unit checks one memloader window per cycle
/// (16 bytes by default), carrying continuation state across windows — the
/// standard shift-based DFA flattened into parallel per-byte classifiers.
#[derive(Debug, Clone, Copy, Default)]
pub struct Utf8Validator;

impl Utf8Validator {
    /// Validates `bytes`, returning the number of cycles a `window_bytes`-
    /// wide unit takes, or `None` if the payload is not valid UTF-8.
    ///
    /// ```rust
    /// use protoacc_wire::hw::Utf8Validator;
    /// assert_eq!(Utf8Validator::validate("héllo".as_bytes(), 16), Some(1));
    /// assert_eq!(Utf8Validator::validate(&[0xff, 0xfe], 16), None);
    /// ```
    pub fn validate(bytes: &[u8], window_bytes: usize) -> Option<u64> {
        if std::str::from_utf8(bytes).is_err() {
            return None;
        }
        Some((bytes.len().div_ceil(window_bytes.max(1)) as u64).max(1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::varint;

    fn window_from(bytes: &[u8]) -> [u8; MAX_VARINT_LEN] {
        let mut w = [0u8; MAX_VARINT_LEN];
        w[..bytes.len()].copy_from_slice(bytes);
        w
    }

    #[test]
    fn comb_decoder_matches_software_decoder() {
        for v in [0u64, 1, 127, 128, 300, 1 << 20, 1 << 41, u64::MAX] {
            let mut buf = Vec::new();
            varint::encode(v, &mut buf);
            let out = CombVarintDecoder::decode(&window_from(&buf)).unwrap();
            assert_eq!(out.value, v);
            assert_eq!(out.len, buf.len());
        }
    }

    #[test]
    fn comb_decoder_flags_no_terminator() {
        assert_eq!(CombVarintDecoder::decode(&[0xff; 10]), None);
    }

    #[test]
    fn comb_decoder_partial_window() {
        // Terminator within available bytes: decodes.
        assert_eq!(
            CombVarintDecoder::decode_avail(&[0x96, 0x01]),
            Some(DecodedVarint { value: 150, len: 2 })
        );
        // Continuation bit set on the only available byte: must wait.
        assert_eq!(CombVarintDecoder::decode_avail(&[0x96 | 0x80]), None);
        assert_eq!(CombVarintDecoder::decode_avail(&[]), None);
    }

    #[test]
    fn comb_encoder_matches_software_encoder() {
        for v in [0u64, 1, 127, 128, 16_383, 16_384, u64::MAX] {
            let mut buf = Vec::new();
            varint::encode(v, &mut buf);
            let out = CombVarintEncoder::encode(v);
            assert_eq!(out.as_slice(), buf.as_slice());
        }
    }

    #[test]
    fn utf8_validator_accepts_and_rejects() {
        assert_eq!(Utf8Validator::validate(b"", 16), Some(1));
        assert_eq!(Utf8Validator::validate(b"plain ascii", 16), Some(1));
        assert_eq!(Utf8Validator::validate("δοκιμή".as_bytes(), 16), Some(1));
        // 33 bytes at 16 B/cycle = 3 cycles.
        assert_eq!(Utf8Validator::validate(&[b'a'; 33], 16), Some(3));
        // Lone continuation byte and overlong forms are invalid.
        assert_eq!(Utf8Validator::validate(&[0x80], 16), None);
        assert_eq!(Utf8Validator::validate(&[0xc0, 0xaf], 16), None);
        // Truncated multibyte sequence.
        assert_eq!(Utf8Validator::validate(&[0xe2, 0x82], 16), None);
    }

    #[test]
    fn encoder_decoder_round_trip_all_lengths() {
        for k in 0..10 {
            let v = if k == 0 { 0 } else { 1u64 << (7 * k) };
            let enc = CombVarintEncoder::encode(v);
            assert_eq!(enc.len, k + 1);
            let dec = CombVarintDecoder::decode_avail(enc.as_slice()).unwrap();
            assert_eq!(dec.value, v);
            assert_eq!(dec.len, enc.len);
        }
    }
}
