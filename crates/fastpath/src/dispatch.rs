//! Per-schema precompiled field-dispatch tables.
//!
//! The paper's deserializer resolves each field number to an FSM state with
//! a single descriptor-table (ADT) lookup instead of the switch-over-fields
//! the C++ parse loop compiles to. This module is the software analogue: at
//! schema-compile time every message type gets a dense table indexed by
//! `field_number - min_field`, each entry a flat [`FieldEntry`] carrying the
//! decode micro-op, the expected wire type, the slot offset, and the
//! precomputed hasbit position. The hot decode loop then dispatches with one
//! bounds-checked load and a match over [`Op`] — no descriptor walk, no
//! hashing, no per-field branching beyond the op itself.
//!
//! Schemas with pathologically sparse numbering (span beyond
//! [`DENSE_SPAN_LIMIT`]) fall back to a sorted table and binary search so
//! table memory stays proportional to defined fields, mirroring the layout
//! engine's sparse-hasbits reasoning (Section 4.2).

use protoacc_runtime::{MessageLayouts, SlotKind};
use protoacc_schema::{FieldType, MessageId, Schema};
use protoacc_wire::WireType;

/// Widest field-number span a message may have before its dispatch table
/// switches from dense indexing to binary search.
pub const DENSE_SPAN_LIMIT: u64 = 4096;

/// Decode/encode micro-op for one field — the FSM state analogue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// Varint stored raw (int64, uint64).
    VarintRaw,
    /// Varint truncated to 32 bits, sign pattern preserved (int32, enum).
    VarintI32,
    /// Varint masked to 32 bits (uint32).
    VarintU32,
    /// Varint normalized to 0/1 (bool).
    VarintBool,
    /// Zigzag-decoded 32-bit varint (sint32).
    VarintZig32,
    /// Zigzag-decoded 64-bit varint (sint64).
    VarintZig64,
    /// Little-endian 4-byte load (fixed32, sfixed32, float).
    Fixed32,
    /// Little-endian 8-byte load (fixed64, sfixed64, double).
    Fixed64,
    /// Length-delimited payload borrowed from the input (string, bytes).
    Bytes,
    /// Length-delimited sub-message frame.
    Msg,
}

impl Op {
    fn from_field_type(ft: FieldType) -> Op {
        match ft {
            FieldType::Int64 | FieldType::UInt64 => Op::VarintRaw,
            FieldType::Int32 | FieldType::Enum => Op::VarintI32,
            FieldType::UInt32 => Op::VarintU32,
            FieldType::Bool => Op::VarintBool,
            FieldType::SInt32 => Op::VarintZig32,
            FieldType::SInt64 => Op::VarintZig64,
            FieldType::Float | FieldType::Fixed32 | FieldType::SFixed32 => Op::Fixed32,
            FieldType::Double | FieldType::Fixed64 | FieldType::SFixed64 => Op::Fixed64,
            FieldType::String | FieldType::Bytes => Op::Bytes,
            FieldType::Message(_) => Op::Msg,
        }
    }
}

/// One field's flattened dispatch entry.
#[derive(Debug, Clone, Copy)]
pub struct FieldEntry {
    /// Field number (redundant with the table position; kept for error
    /// payloads and the sparse path).
    pub number: u32,
    /// The decode micro-op.
    pub op: Op,
    /// Expected wire type when not a packed arrival.
    pub wire: WireType,
    /// Whether the field is `repeated`.
    pub repeated: bool,
    /// Whether the field's type may arrive packed.
    pub packable: bool,
    /// Whether the field is declared `packed` (serialization side).
    pub packed: bool,
    /// Byte offset of the field's slot inside the message object.
    pub slot_offset: u32,
    /// In-memory element size (1/4/8) for scalar slots and repeated scalar
    /// arrays; 8 for pointer-shaped slots.
    pub elem_size: u8,
    /// Byte offset of this field's hasbit within the hasbits array.
    pub hasbit_byte: u32,
    /// Bit mask within that byte.
    pub hasbit_mask: u8,
    /// Sub-message type for `Op::Msg` entries.
    pub sub: Option<MessageId>,
    /// Precomputed wire key (`number << 3 | wire_type`) for serialization.
    pub key_encoded: u64,
    /// Precomputed length-delimited wire key for packed serialization.
    pub packed_key_encoded: u64,
}

/// Which shape a message's dispatch table compiled to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TableKind {
    /// Direct-indexed by `number - min_field`.
    Dense,
    /// Sorted entries, binary-searched.
    Sparse,
}

impl TableKind {
    /// Short stable name for reports.
    pub fn as_str(self) -> &'static str {
        match self {
            TableKind::Dense => "dense",
            TableKind::Sparse => "sparse",
        }
    }
}

/// Raw image of one message's dispatch table.
///
/// This is the exact internal representation, exposed so the static
/// verifier (`protoacc-verify`) can audit it and so the table-mutation
/// plane (`protoacc_faults::tables`) can seed corruptions into otherwise
/// well-formed compiled schemas. Normal decoding never touches it.
#[derive(Debug, Clone)]
pub enum TableImage {
    /// Indexed by `number - min_field`; holes are `None`.
    Dense(Vec<Option<FieldEntry>>),
    /// Sorted by field number; binary-searched.
    Sparse(Vec<FieldEntry>),
}

/// Encodes the wire key for `number`/`wire` exactly as the compiled tables
/// store it — the single source of truth for pre-encoded dispatch keys.
/// Both `CompiledSchema::compile` and the verifier's independent
/// re-derivation call this helper.
///
/// # Panics
///
/// Panics when `number` is outside the valid field-number range; compiled
/// schemas are built from validated [`Schema`]s where that cannot happen.
pub fn encoded_key(number: u32, wire: WireType) -> u64 {
    protoacc_wire::FieldKey::new(number, wire)
        .expect("schema-validated field number")
        .encoded()
}

/// Compiled form of one message type: layout facts plus the dispatch table.
#[derive(Debug, Clone)]
pub struct CompiledMessage {
    /// Total object size (8-byte aligned), from the layout engine.
    pub object_size: u32,
    /// Offset of the hasbits array inside the object.
    pub hasbits_offset: u32,
    /// Smallest defined field number (dense-table base).
    pub min_field: u32,
    /// Defined field numbers in ascending order (the serializer walks these
    /// in reverse for the memwriter's back-to-front pass).
    pub numbers: Vec<u32>,
    table: TableImage,
}

impl CompiledMessage {
    /// The dispatch entry for `number`, or `None` for unknown fields.
    #[inline]
    pub fn entry(&self, number: u32) -> Option<&FieldEntry> {
        match &self.table {
            TableImage::Dense(t) => t
                .get(number.wrapping_sub(self.min_field) as usize)
                .and_then(Option::as_ref),
            TableImage::Sparse(t) => t
                .binary_search_by_key(&number, |e| e.number)
                .ok()
                .map(|i| &t[i]),
        }
    }

    /// Which table shape this message compiled to.
    pub fn table_kind(&self) -> TableKind {
        match &self.table {
            TableImage::Dense(_) => TableKind::Dense,
            TableImage::Sparse(_) => TableKind::Sparse,
        }
    }

    /// Every stored dispatch entry, in table order (ascending field number
    /// for tables produced by [`CompiledSchema::compile`]). Dense holes are
    /// skipped. Introspection for the verifier; the decode loop never
    /// iterates.
    pub fn entries(&self) -> impl Iterator<Item = &FieldEntry> + '_ {
        match &self.table {
            TableImage::Dense(t) => EntryIter::Dense(t.iter()),
            TableImage::Sparse(t) => EntryIter::Sparse(t.iter()),
        }
    }

    /// The raw table image, for auditing.
    pub fn table_image(&self) -> &TableImage {
        &self.table
    }

    /// Rebuilds a compiled message from raw parts — the entry point the
    /// table-mutation plane uses to construct deliberately corrupted
    /// artifacts for the verifier's detection-rate gate. No validation is
    /// performed; that is the point.
    pub fn from_image(
        object_size: u32,
        hasbits_offset: u32,
        min_field: u32,
        numbers: Vec<u32>,
        table: TableImage,
    ) -> Self {
        CompiledMessage {
            object_size,
            hasbits_offset,
            min_field,
            numbers,
            table,
        }
    }
}

/// Iterator over stored entries of either table shape.
enum EntryIter<'a> {
    Dense(std::slice::Iter<'a, Option<FieldEntry>>),
    Sparse(std::slice::Iter<'a, FieldEntry>),
}

impl<'a> Iterator for EntryIter<'a> {
    type Item = &'a FieldEntry;

    fn next(&mut self) -> Option<&'a FieldEntry> {
        match self {
            EntryIter::Dense(it) => it.by_ref().flatten().next(),
            EntryIter::Sparse(it) => it.next(),
        }
    }
}

/// A schema compiled for the fast path: per-message dispatch tables plus the
/// shared object layouts.
#[derive(Debug, Clone)]
pub struct CompiledSchema {
    schema: Schema,
    layouts: MessageLayouts,
    messages: Vec<CompiledMessage>,
}

impl CompiledSchema {
    /// Compiles every message type of `schema`.
    pub fn compile(schema: &Schema) -> Self {
        let layouts = MessageLayouts::compute(schema);
        let messages = schema
            .iter()
            .map(|(id, descriptor)| {
                let layout = layouts.layout(id);
                let mut entries: Vec<FieldEntry> = descriptor
                    .fields()
                    .iter()
                    .map(|field| {
                        let number = field.number();
                        let slot = layout.slot(number).expect("every field has a slot");
                        let (byte, bit) = layout.hasbit_position(number);
                        let elem_size = match slot.kind {
                            SlotKind::Scalar(k) => k.size() as u8,
                            _ => field
                                .field_type()
                                .scalar_kind()
                                .map_or(8, |k| k.size() as u8),
                        };
                        FieldEntry {
                            number,
                            op: Op::from_field_type(field.field_type()),
                            wire: field.field_type().wire_type(),
                            repeated: field.is_repeated(),
                            packable: field.field_type().is_packable(),
                            packed: field.is_packed(),
                            slot_offset: slot.offset as u32,
                            elem_size,
                            hasbit_byte: byte as u32,
                            hasbit_mask: 1u8 << bit,
                            sub: match field.field_type() {
                                FieldType::Message(sub) => Some(sub),
                                _ => None,
                            },
                            key_encoded: encoded_key(number, field.field_type().wire_type()),
                            packed_key_encoded: encoded_key(number, WireType::LengthDelimited),
                        }
                    })
                    .collect();
                entries.sort_unstable_by_key(|e| e.number);
                let numbers: Vec<u32> = entries.iter().map(|e| e.number).collect();
                let span = layout.field_number_span();
                let table = if span <= DENSE_SPAN_LIMIT {
                    let mut dense = vec![None; span as usize];
                    for e in entries {
                        dense[(e.number - layout.min_field()) as usize] = Some(e);
                    }
                    TableImage::Dense(dense)
                } else {
                    TableImage::Sparse(entries)
                };
                CompiledMessage {
                    object_size: layout.object_size() as u32,
                    hasbits_offset: layout.hasbits_offset() as u32,
                    min_field: layout.min_field(),
                    numbers,
                    table,
                }
            })
            .collect();
        CompiledSchema {
            schema: schema.clone(),
            layouts,
            messages,
        }
    }

    /// The source schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The shared object layouts.
    pub fn layouts(&self) -> &MessageLayouts {
        &self.layouts
    }

    /// The compiled form of one message type.
    #[inline]
    pub fn message(&self, id: MessageId) -> &CompiledMessage {
        &self.messages[id.index()]
    }

    /// Reassembles a compiled schema from externally supplied per-message
    /// tables (indexed by [`MessageId::index`]). Companion to
    /// [`CompiledMessage::from_image`] for the mutation plane; performs no
    /// validation.
    ///
    /// # Panics
    ///
    /// Panics if `messages.len()` differs from the schema's message count.
    pub fn from_parts(schema: &Schema, messages: Vec<CompiledMessage>) -> Self {
        assert_eq!(
            messages.len(),
            schema.iter().count(),
            "one compiled message per schema type"
        );
        CompiledSchema {
            schema: schema.clone(),
            layouts: MessageLayouts::compute(schema),
            messages,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use protoacc_schema::SchemaBuilder;

    #[test]
    fn dense_table_resolves_all_fields_and_rejects_unknowns() {
        let mut b = SchemaBuilder::new();
        let inner = b.declare("Inner");
        b.message(inner).optional("x", FieldType::Bool, 1);
        let root = b.declare("Root");
        b.message(root)
            .optional("a", FieldType::Int32, 3)
            .repeated("b", FieldType::String, 7)
            .packed("c", FieldType::UInt64, 9)
            .optional("m", FieldType::Message(inner), 12);
        let schema = b.build().unwrap();
        let cs = CompiledSchema::compile(&schema);
        let cm = cs.message(root);
        assert_eq!(cm.min_field, 3);
        assert_eq!(cm.numbers, vec![3, 7, 9, 12]);
        let a = cm.entry(3).unwrap();
        assert_eq!(a.op, Op::VarintI32);
        assert!(!a.repeated);
        let b_ = cm.entry(7).unwrap();
        assert_eq!(b_.op, Op::Bytes);
        assert!(b_.repeated && !b_.packable);
        let c = cm.entry(9).unwrap();
        assert!(c.packed && c.packable && c.repeated);
        assert_eq!(c.elem_size, 8);
        let m = cm.entry(12).unwrap();
        assert_eq!(m.op, Op::Msg);
        assert_eq!(m.sub, Some(inner));
        for unknown in [0u32, 1, 2, 4, 8, 13, 1000, u32::MAX] {
            assert!(cm.entry(unknown).is_none(), "field {unknown}");
        }
    }

    #[test]
    fn sparse_numbering_falls_back_to_binary_search() {
        let mut b = SchemaBuilder::new();
        let root = b.declare("Sparse");
        b.message(root)
            .optional("lo", FieldType::UInt64, 1)
            .optional("hi", FieldType::UInt64, 200_000);
        let schema = b.build().unwrap();
        let cs = CompiledSchema::compile(&schema);
        let cm = cs.message(root);
        assert_eq!(cm.table_kind(), TableKind::Sparse);
        assert!(cm.entry(1).is_some());
        assert!(cm.entry(200_000).is_some());
        assert!(cm.entry(100_000).is_none());
        assert!(cm.entry(0).is_none());
    }

    /// Compiles a two-field message whose numbers are `min` and
    /// `min + span - 1`, i.e. exactly `span` wide.
    fn compile_span(min: u32, span: u64) -> CompiledSchema {
        let mut b = SchemaBuilder::new();
        let root = b.declare("Span");
        let hi = min + u32::try_from(span).unwrap() - 1;
        b.message(root)
            .optional("lo", FieldType::UInt64, min)
            .optional("hi", FieldType::UInt64, hi);
        CompiledSchema::compile(&b.build().unwrap())
    }

    #[test]
    fn span_at_dense_limit_stays_dense() {
        let cs = compile_span(1, DENSE_SPAN_LIMIT);
        let cm = cs.message(cs.schema().iter().next().unwrap().0);
        assert_eq!(cm.table_kind(), TableKind::Dense);
        let hi = u32::try_from(DENSE_SPAN_LIMIT).unwrap();
        assert!(cm.entry(1).is_some());
        assert!(cm.entry(hi).is_some());
        assert!(cm.entry(2).is_none(), "interior hole must reject");
        assert!(cm.entry(hi + 1).is_none(), "past-end must reject");
    }

    #[test]
    fn span_one_past_dense_limit_goes_sparse() {
        let cs = compile_span(1, DENSE_SPAN_LIMIT + 1);
        let cm = cs.message(cs.schema().iter().next().unwrap().0);
        assert_eq!(cm.table_kind(), TableKind::Sparse);
        let hi = u32::try_from(DENSE_SPAN_LIMIT).unwrap() + 1;
        assert!(cm.entry(1).is_some());
        assert!(cm.entry(hi).is_some());
        assert!(cm.entry(2).is_none());
        assert!(cm.entry(hi + 1).is_none());
    }

    #[test]
    fn lookups_below_min_field_reject_on_both_kinds() {
        // Dense table based at min_field 1000: probes below min must not
        // wrap into valid indices.
        let dense = compile_span(1000, DENSE_SPAN_LIMIT);
        let dm = dense.message(dense.schema().iter().next().unwrap().0);
        assert_eq!(dm.table_kind(), TableKind::Dense);
        assert_eq!(dm.min_field, 1000);
        for below in [0u32, 1, 2, 500, 999] {
            assert!(dm.entry(below).is_none(), "dense field {below}");
        }
        // Sparse table with the same base.
        let sparse = compile_span(1000, DENSE_SPAN_LIMIT + 1);
        let sm = sparse.message(sparse.schema().iter().next().unwrap().0);
        assert_eq!(sm.table_kind(), TableKind::Sparse);
        for below in [0u32, 1, 2, 500, 999] {
            assert!(sm.entry(below).is_none(), "sparse field {below}");
        }
    }

    #[test]
    fn entries_iterate_in_ascending_number_order() {
        let mut b = SchemaBuilder::new();
        let root = b.declare("Iter");
        b.message(root)
            .optional("c", FieldType::Bool, 9)
            .optional("a", FieldType::Int32, 2)
            .optional("b", FieldType::String, 5);
        let schema = b.build().unwrap();
        let cs = CompiledSchema::compile(&schema);
        let cm = cs.message(root);
        let nums: Vec<u32> = cm.entries().map(|e| e.number).collect();
        assert_eq!(nums, vec![2, 5, 9]);
        assert_eq!(nums, cm.numbers);
    }

    #[test]
    fn from_image_round_trips_the_compiled_table() {
        let mut b = SchemaBuilder::new();
        let root = b.declare("Round");
        b.message(root)
            .optional("a", FieldType::Int32, 1)
            .optional("b", FieldType::UInt64, 4);
        let schema = b.build().unwrap();
        let cs = CompiledSchema::compile(&schema);
        let cm = cs.message(root);
        let rebuilt = CompiledMessage::from_image(
            cm.object_size,
            cm.hasbits_offset,
            cm.min_field,
            cm.numbers.clone(),
            cm.table_image().clone(),
        );
        assert_eq!(rebuilt.table_kind(), cm.table_kind());
        for n in &cm.numbers {
            assert_eq!(
                rebuilt.entry(*n).map(|e| e.slot_offset),
                cm.entry(*n).map(|e| e.slot_offset)
            );
        }
        let cs2 = CompiledSchema::from_parts(&schema, vec![rebuilt]);
        assert!(cs2.message(root).entry(4).is_some());
    }
}
