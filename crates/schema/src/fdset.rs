//! Binary `FileDescriptorSet` ingestion and emission.
//!
//! `descriptor.proto` is itself a protobuf message, so this module dogfoods
//! the in-tree wire codec ([`protoacc_wire`]) to decode serialized
//! descriptor sets — the artifact `protoc --descriptor_set_out` produces and
//! the `FileDescriptorSet` → dynamic-message pipeline consumes — and lowers
//! them into the same [`Schema`] the `.proto` text parser builds. That makes
//! every static analysis in the workspace (lint, abstract-interpretation
//! envelopes, layouts) runnable on schemas it has never seen, loaded at
//! runtime rather than compiled in.
//!
//! The decoder is **total**: any input — truncated, bit-flipped, or
//! adversarial — yields either a valid `Schema` or a typed [`SchemaError`],
//! never a panic or unbounded recursion (`nested_type` chains are capped at
//! [`MAX_DESCRIPTOR_NESTING`]).
//!
//! Lowering mirrors [`crate::parse_proto`] exactly: messages register in
//! pre-order declaration order under package-stripped dotted names
//! (`Outer.Inner`), enum-typed fields map to [`FieldType::Enum`], and type
//! references resolve innermost-scope-outward. The same schema therefore
//! produces byte-identical analysis output whichever front-end ingested it.
//!
//! [`encode_descriptor_set`] is the inverse: it re-nests a [`Schema`] by its
//! dotted names (like [`crate::render_proto`]) and emits a canonical binary
//! set, used to generate the checked-in `.binpb` fixtures.

use std::collections::{HashMap, HashSet};

use protoacc_wire::{WireReader, WireType, WireWriter};

use crate::{FieldDescriptor, FieldType, Label, MessageDescriptor, MessageId, Schema, SchemaError};

/// Maximum `nested_type` depth the decoder accepts. Deeper sets — which no
/// real compiler emits — are rejected with a typed error instead of
/// recursing toward a stack overflow (the static twin of the fault plane's
/// depth bomb).
pub const MAX_DESCRIPTOR_NESTING: usize = 64;

// descriptor.proto field numbers (stable since proto2 shipped).
const SET_FILE: u32 = 1;
const FILE_NAME: u32 = 1;
const FILE_PACKAGE: u32 = 2;
const FILE_MESSAGE_TYPE: u32 = 4;
const FILE_ENUM_TYPE: u32 = 5;
const FILE_SYNTAX: u32 = 12;
const MSG_NAME: u32 = 1;
const MSG_FIELD: u32 = 2;
const MSG_NESTED_TYPE: u32 = 3;
const MSG_ENUM_TYPE: u32 = 4;
const FIELD_NAME: u32 = 1;
const FIELD_NUMBER: u32 = 3;
const FIELD_LABEL: u32 = 4;
const FIELD_TYPE: u32 = 5;
const FIELD_TYPE_NAME: u32 = 6;
const FIELD_OPTIONS: u32 = 8;
const OPTIONS_PACKED: u32 = 2;
const ENUM_NAME: u32 = 1;

// FieldDescriptorProto.Type enum values.
const TYPE_DOUBLE: u64 = 1;
const TYPE_FLOAT: u64 = 2;
const TYPE_INT64: u64 = 3;
const TYPE_UINT64: u64 = 4;
const TYPE_INT32: u64 = 5;
const TYPE_FIXED64: u64 = 6;
const TYPE_FIXED32: u64 = 7;
const TYPE_BOOL: u64 = 8;
const TYPE_STRING: u64 = 9;
const TYPE_GROUP: u64 = 10;
const TYPE_MESSAGE: u64 = 11;
const TYPE_BYTES: u64 = 12;
const TYPE_UINT32: u64 = 13;
const TYPE_ENUM: u64 = 14;
const TYPE_SFIXED32: u64 = 15;
const TYPE_SFIXED64: u64 = 16;
const TYPE_SINT32: u64 = 17;
const TYPE_SINT64: u64 = 18;

// FieldDescriptorProto.Label enum values.
const LABEL_OPTIONAL: u64 = 1;
const LABEL_REQUIRED: u64 = 2;
const LABEL_REPEATED: u64 = 3;

// ---------------------------------------------------------------------------
// Raw decoded descriptor tree
// ---------------------------------------------------------------------------

#[derive(Debug, Default)]
struct RawFile {
    package: String,
    syntax: String,
    messages: Vec<RawMessage>,
    enums: Vec<String>,
}

#[derive(Debug, Default)]
struct RawMessage {
    name: String,
    fields: Vec<RawField>,
    nested: Vec<RawMessage>,
    enums: Vec<String>,
}

#[derive(Debug, Default)]
struct RawField {
    name: String,
    number: Option<u64>,
    label: Option<u64>,
    type_code: Option<u64>,
    type_name: Option<String>,
    packed: bool,
}

fn structural(message: impl Into<String>) -> SchemaError {
    SchemaError::Descriptor {
        message: message.into(),
    }
}

fn decode_string(bytes: &[u8], what: &str) -> Result<String, SchemaError> {
    String::from_utf8(bytes.to_vec()).map_err(|_| structural(format!("{what} is not valid UTF-8")))
}

/// Reads one varint-typed field, rejecting a mismatched wire type: a key
/// that names a known field must carry that field's encoding, so a mismatch
/// means the payload is corrupt rather than merely newer than us.
fn expect_varint(
    reader: &mut WireReader<'_>,
    wire_type: WireType,
    what: &str,
) -> Result<u64, SchemaError> {
    if wire_type != WireType::Varint {
        return Err(structural(format!("{what} has wire type {wire_type:?}")));
    }
    Ok(reader.read_varint()?)
}

fn expect_bytes<'a>(
    reader: &mut WireReader<'a>,
    wire_type: WireType,
    what: &str,
) -> Result<&'a [u8], SchemaError> {
    if wire_type != WireType::LengthDelimited {
        return Err(structural(format!("{what} has wire type {wire_type:?}")));
    }
    Ok(reader.read_length_delimited()?)
}

fn decode_field_options(bytes: &[u8]) -> Result<bool, SchemaError> {
    let mut reader = WireReader::new(bytes);
    let mut packed = false;
    while !reader.is_at_end() {
        let key = reader.read_key()?;
        if key.field_number() == OPTIONS_PACKED {
            packed = expect_varint(&mut reader, key.wire_type(), "FieldOptions.packed")? != 0;
        } else {
            reader.skip_value(key.wire_type())?;
        }
    }
    Ok(packed)
}

fn decode_field_proto(bytes: &[u8]) -> Result<RawField, SchemaError> {
    let mut reader = WireReader::new(bytes);
    let mut field = RawField::default();
    while !reader.is_at_end() {
        let key = reader.read_key()?;
        match key.field_number() {
            FIELD_NAME => {
                let raw = expect_bytes(&mut reader, key.wire_type(), "field name")?;
                field.name = decode_string(raw, "field name")?;
            }
            FIELD_NUMBER => {
                field.number = Some(expect_varint(&mut reader, key.wire_type(), "field number")?);
            }
            FIELD_LABEL => {
                field.label = Some(expect_varint(&mut reader, key.wire_type(), "field label")?);
            }
            FIELD_TYPE => {
                field.type_code = Some(expect_varint(&mut reader, key.wire_type(), "field type")?);
            }
            FIELD_TYPE_NAME => {
                let raw = expect_bytes(&mut reader, key.wire_type(), "field type_name")?;
                field.type_name = Some(decode_string(raw, "field type_name")?);
            }
            FIELD_OPTIONS => {
                let raw = expect_bytes(&mut reader, key.wire_type(), "field options")?;
                field.packed = decode_field_options(raw)?;
            }
            _ => reader.skip_value(key.wire_type())?,
        }
    }
    Ok(field)
}

fn decode_enum_name(bytes: &[u8]) -> Result<String, SchemaError> {
    let mut reader = WireReader::new(bytes);
    let mut name = String::new();
    while !reader.is_at_end() {
        let key = reader.read_key()?;
        if key.field_number() == ENUM_NAME {
            let raw = expect_bytes(&mut reader, key.wire_type(), "enum name")?;
            name = decode_string(raw, "enum name")?;
        } else {
            reader.skip_value(key.wire_type())?;
        }
    }
    if name.is_empty() {
        return Err(structural("enum descriptor has no name"));
    }
    Ok(name)
}

fn decode_message_proto(bytes: &[u8], depth: usize) -> Result<RawMessage, SchemaError> {
    if depth >= MAX_DESCRIPTOR_NESTING {
        return Err(structural(format!(
            "nested_type depth exceeds the {MAX_DESCRIPTOR_NESTING}-level limit"
        )));
    }
    let mut reader = WireReader::new(bytes);
    let mut msg = RawMessage::default();
    while !reader.is_at_end() {
        let key = reader.read_key()?;
        match key.field_number() {
            MSG_NAME => {
                let raw = expect_bytes(&mut reader, key.wire_type(), "message name")?;
                msg.name = decode_string(raw, "message name")?;
            }
            MSG_FIELD => {
                let raw = expect_bytes(&mut reader, key.wire_type(), "field descriptor")?;
                msg.fields.push(decode_field_proto(raw)?);
            }
            MSG_NESTED_TYPE => {
                let raw = expect_bytes(&mut reader, key.wire_type(), "nested type")?;
                msg.nested.push(decode_message_proto(raw, depth + 1)?);
            }
            MSG_ENUM_TYPE => {
                let raw = expect_bytes(&mut reader, key.wire_type(), "enum descriptor")?;
                msg.enums.push(decode_enum_name(raw)?);
            }
            _ => reader.skip_value(key.wire_type())?,
        }
    }
    if msg.name.is_empty() {
        return Err(structural("message descriptor has no name"));
    }
    if msg.name.contains('.') {
        return Err(structural(format!(
            "message name `{}` contains a dot",
            msg.name
        )));
    }
    Ok(msg)
}

fn decode_file_proto(bytes: &[u8]) -> Result<RawFile, SchemaError> {
    let mut reader = WireReader::new(bytes);
    let mut file = RawFile::default();
    while !reader.is_at_end() {
        let key = reader.read_key()?;
        match key.field_number() {
            FILE_NAME => {
                let raw = expect_bytes(&mut reader, key.wire_type(), "file name")?;
                decode_string(raw, "file name")?;
            }
            FILE_PACKAGE => {
                let raw = expect_bytes(&mut reader, key.wire_type(), "file package")?;
                file.package = decode_string(raw, "file package")?;
            }
            FILE_MESSAGE_TYPE => {
                let raw = expect_bytes(&mut reader, key.wire_type(), "message descriptor")?;
                file.messages.push(decode_message_proto(raw, 0)?);
            }
            FILE_ENUM_TYPE => {
                let raw = expect_bytes(&mut reader, key.wire_type(), "enum descriptor")?;
                file.enums.push(decode_enum_name(raw)?);
            }
            FILE_SYNTAX => {
                let raw = expect_bytes(&mut reader, key.wire_type(), "file syntax")?;
                file.syntax = decode_string(raw, "file syntax")?;
            }
            _ => reader.skip_value(key.wire_type())?,
        }
    }
    if !(file.syntax.is_empty() || file.syntax == "proto2") {
        return Err(structural(format!(
            "only proto2 is supported (the accelerator targets proto2, Section 3.3), \
             found syntax `{}`",
            file.syntax
        )));
    }
    Ok(file)
}

fn decode_set(bytes: &[u8]) -> Result<Vec<RawFile>, SchemaError> {
    let mut reader = WireReader::new(bytes);
    let mut files = Vec::new();
    while !reader.is_at_end() {
        let key = reader.read_key()?;
        if key.field_number() == SET_FILE {
            let raw = expect_bytes(&mut reader, key.wire_type(), "file descriptor")?;
            files.push(decode_file_proto(raw)?);
        } else {
            reader.skip_value(key.wire_type())?;
        }
    }
    Ok(files)
}

// ---------------------------------------------------------------------------
// Lowering: raw descriptor tree → Schema
// ---------------------------------------------------------------------------

/// Name tables built in the same pre-order pass the text parser uses, so
/// `MessageId` assignment — and with it every downstream analysis artifact —
/// is identical across the two front-ends.
#[derive(Debug, Default)]
struct Lowering<'a> {
    message_ids: HashMap<String, usize>,
    order: Vec<(String, &'a RawMessage)>,
    enums: HashSet<String>,
}

impl<'a> Lowering<'a> {
    fn collect(&mut self, msg: &'a RawMessage, scope: &str) -> Result<(), SchemaError> {
        let full = qualify(scope, &msg.name);
        if self
            .message_ids
            .insert(full.clone(), self.order.len())
            .is_some()
        {
            return Err(SchemaError::DuplicateMessageName { name: full });
        }
        self.order.push((full.clone(), msg));
        for e in &msg.enums {
            self.enums.insert(qualify(&full, e));
        }
        for nested in &msg.nested {
            self.collect(nested, &full)?;
        }
        Ok(())
    }

    /// Resolves a `type_name` from inside `scope`. Fully-qualified names
    /// (leading dot, as `protoc` always emits) are looked up directly after
    /// stripping the file's package prefix; relative names walk scopes
    /// innermost-outward like the text parser.
    fn resolve(&self, type_name: &str, scope: &str, package: &str) -> Option<FieldType> {
        if let Some(absolute) = type_name.strip_prefix('.') {
            let stripped = if package.is_empty() {
                absolute
            } else {
                absolute
                    .strip_prefix(&format!("{package}."))
                    .unwrap_or(absolute)
            };
            return self.lookup(stripped);
        }
        let mut scope = scope.to_owned();
        loop {
            let candidate = qualify(&scope, type_name);
            if let Some(ft) = self.lookup(&candidate) {
                return Some(ft);
            }
            match scope.rfind('.') {
                Some(dot) => scope.truncate(dot),
                None if !scope.is_empty() => scope.clear(),
                None => return None,
            }
        }
    }

    fn lookup(&self, full: &str) -> Option<FieldType> {
        if let Some(&slot) = self.message_ids.get(full) {
            return Some(FieldType::Message(MessageId::new(slot)));
        }
        if self.enums.contains(full) {
            return Some(FieldType::Enum);
        }
        None
    }

    fn lower_field(
        &self,
        rf: &RawField,
        scope: &str,
        package: &str,
    ) -> Result<FieldDescriptor, SchemaError> {
        if rf.name.is_empty() {
            return Err(structural(format!("field in `{scope}` has no name")));
        }
        let number = rf
            .number
            .ok_or_else(|| structural(format!("field `{scope}.{}` has no number", rf.name)))?;
        let number = u32::try_from(number)
            .map_err(|_| SchemaError::InvalidFieldNumber { number: u32::MAX })?;
        let label = match rf.label {
            Some(LABEL_OPTIONAL) => Label::Optional,
            Some(LABEL_REQUIRED) => Label::Required,
            Some(LABEL_REPEATED) => Label::Repeated,
            other => {
                return Err(structural(format!(
                    "field `{scope}.{}` has invalid label {other:?}",
                    rf.name
                )))
            }
        };
        let field_type = match rf.type_code {
            Some(TYPE_DOUBLE) => FieldType::Double,
            Some(TYPE_FLOAT) => FieldType::Float,
            Some(TYPE_INT64) => FieldType::Int64,
            Some(TYPE_UINT64) => FieldType::UInt64,
            Some(TYPE_INT32) => FieldType::Int32,
            Some(TYPE_FIXED64) => FieldType::Fixed64,
            Some(TYPE_FIXED32) => FieldType::Fixed32,
            Some(TYPE_BOOL) => FieldType::Bool,
            Some(TYPE_STRING) => FieldType::String,
            Some(TYPE_BYTES) => FieldType::Bytes,
            Some(TYPE_UINT32) => FieldType::UInt32,
            Some(TYPE_ENUM) => FieldType::Enum,
            Some(TYPE_SFIXED32) => FieldType::SFixed32,
            Some(TYPE_SFIXED64) => FieldType::SFixed64,
            Some(TYPE_SINT32) => FieldType::SInt32,
            Some(TYPE_SINT64) => FieldType::SInt64,
            Some(TYPE_GROUP) => {
                return Err(structural(format!(
                    "field `{scope}.{}` uses the deprecated group encoding",
                    rf.name
                )))
            }
            Some(TYPE_MESSAGE) | None => {
                // `type` may legally be omitted when `type_name` is set.
                let type_name = rf.type_name.as_deref().ok_or_else(|| {
                    structural(format!(
                        "field `{scope}.{}` has neither a scalar type nor a type_name",
                        rf.name
                    ))
                })?;
                let resolved = self.resolve(type_name, scope, package).ok_or_else(|| {
                    SchemaError::UnknownMessageType {
                        name: type_name.to_owned(),
                    }
                })?;
                if rf.type_code == Some(TYPE_MESSAGE) && resolved == FieldType::Enum {
                    return Err(structural(format!(
                        "field `{scope}.{}` declares TYPE_MESSAGE but `{type_name}` is an enum",
                        rf.name
                    )));
                }
                resolved
            }
            Some(other) => {
                return Err(structural(format!(
                    "field `{scope}.{}` has unknown type code {other}",
                    rf.name
                )))
            }
        };
        FieldDescriptor::new(rf.name.clone(), number, field_type, label, rf.packed)
    }
}

fn qualify(scope: &str, name: &str) -> String {
    if scope.is_empty() {
        name.to_owned()
    } else {
        format!("{scope}.{name}")
    }
}

/// Decodes a serialized `FileDescriptorSet` and lowers it into a [`Schema`].
///
/// Multi-file sets are flattened in file order; within each file, messages
/// register in pre-order declaration order under package-stripped dotted
/// names, exactly like [`crate::parse_proto`], so the resulting schema —
/// down to `MessageId` assignment — is indistinguishable from one parsed
/// from equivalent `.proto` text.
///
/// # Errors
///
/// * [`SchemaError::Wire`] on any wire-level malformation (truncation,
///   varint overflow, bad keys, over-long lengths, group wire types).
/// * [`SchemaError::Descriptor`] on structurally invalid descriptors
///   (missing names or numbers, bad label/type enum values, `nested_type`
///   recursion past [`MAX_DESCRIPTOR_NESTING`], non-proto2 syntax, group
///   fields).
/// * The usual semantic errors ([`SchemaError::DuplicateFieldNumber`],
///   [`SchemaError::ReservedFieldNumber`], [`SchemaError::InvalidPacked`],
///   [`SchemaError::UnknownMessageType`], ...) from descriptor validation.
///
/// ```rust
/// use protoacc_schema::{encode_descriptor_set, parse_descriptor_set, parse_proto};
/// let schema = parse_proto("message Ping { optional uint64 seq = 1; }")?;
/// let bytes = encode_descriptor_set(&schema, "ping.proto");
/// let back = parse_descriptor_set(&bytes)?;
/// assert!(back.message_by_name("Ping").is_some());
/// # Ok::<(), protoacc_schema::SchemaError>(())
/// ```
pub fn parse_descriptor_set(bytes: &[u8]) -> Result<Schema, SchemaError> {
    let files = decode_set(bytes)?;
    let mut lowering = Lowering::default();
    for file in &files {
        for msg in &file.messages {
            lowering.collect(msg, "")?;
        }
        for e in &file.enums {
            lowering.enums.insert(e.clone());
        }
    }
    // File-level packages partition the order vector; remember each
    // message's owning package for type_name stripping.
    let mut packages = Vec::with_capacity(lowering.order.len());
    {
        let mut cursor = 0;
        for file in &files {
            let mut count = 0;
            for msg in &file.messages {
                count += count_messages(msg);
            }
            for _ in 0..count {
                packages.push(file.package.clone());
            }
            cursor += count;
        }
        debug_assert_eq!(cursor, lowering.order.len());
    }
    let mut schema = Schema::new();
    for (slot, (full, raw)) in lowering.order.iter().enumerate() {
        let mut fields = Vec::with_capacity(raw.fields.len());
        for rf in &raw.fields {
            fields.push(lowering.lower_field(rf, full, &packages[slot])?);
        }
        schema.add_message(MessageDescriptor::new(full.clone(), fields)?)?;
    }
    schema.validate()?;
    Ok(schema)
}

fn count_messages(msg: &RawMessage) -> usize {
    1 + msg.nested.iter().map(count_messages).sum::<usize>()
}

// ---------------------------------------------------------------------------
// Encoding: Schema → FileDescriptorSet bytes
// ---------------------------------------------------------------------------

/// Encodes a [`Schema`] as a canonical single-file `FileDescriptorSet`.
///
/// The inverse of [`parse_descriptor_set`]: nested types are reconstructed
/// from their dotted names (like [`crate::render_proto`]), enum fields emit
/// `TYPE_ENUM` referencing a synthesized `PlaceholderEnum`, and message
/// references use fully-qualified leading-dot `type_name`s. Output is
/// deterministic, so fixture files can be byte-compared against
/// regeneration.
#[must_use]
pub fn encode_descriptor_set(schema: &Schema, file_name: &str) -> Vec<u8> {
    let mut file = WireWriter::new();
    file.write_length_delimited_field(FILE_NAME, file_name.as_bytes())
        .expect("const field number");
    for (_, m) in schema.iter() {
        if !m.name().contains('.') {
            file.write_length_delimited_field(FILE_MESSAGE_TYPE, &encode_message(schema, m))
                .expect("const field number");
        }
    }
    let uses_enum = schema
        .iter()
        .any(|(_, m)| m.fields().iter().any(|f| f.field_type() == FieldType::Enum));
    if uses_enum {
        let mut e = WireWriter::new();
        e.write_length_delimited_field(ENUM_NAME, b"PlaceholderEnum")
            .expect("const field number");
        file.write_length_delimited_field(FILE_ENUM_TYPE, e.as_bytes())
            .expect("const field number");
    }
    file.write_length_delimited_field(FILE_SYNTAX, b"proto2")
        .expect("const field number");

    let mut set = WireWriter::new();
    set.write_length_delimited_field(SET_FILE, file.as_bytes())
        .expect("const field number");
    set.into_bytes()
}

fn encode_message(schema: &Schema, m: &MessageDescriptor) -> Vec<u8> {
    let mut w = WireWriter::new();
    let simple = m.name().rsplit('.').next().expect("non-empty name");
    w.write_length_delimited_field(MSG_NAME, simple.as_bytes())
        .expect("const field number");
    for f in m.fields() {
        w.write_length_delimited_field(MSG_FIELD, &encode_field(schema, f))
            .expect("const field number");
    }
    // Children: types named "<this>.<child>" with exactly one more segment,
    // in schema declaration order.
    let prefix = format!("{}.", m.name());
    for (_, child) in schema.iter() {
        if let Some(rest) = child.name().strip_prefix(&prefix) {
            if !rest.contains('.') {
                w.write_length_delimited_field(MSG_NESTED_TYPE, &encode_message(schema, child))
                    .expect("const field number");
            }
        }
    }
    w.into_bytes()
}

fn encode_field(schema: &Schema, f: &FieldDescriptor) -> Vec<u8> {
    let mut w = WireWriter::new();
    w.write_length_delimited_field(FIELD_NAME, f.name().as_bytes())
        .expect("const field number");
    w.write_varint_field(FIELD_NUMBER, u64::from(f.number()))
        .expect("const field number");
    let label = match f.label() {
        Label::Optional => LABEL_OPTIONAL,
        Label::Required => LABEL_REQUIRED,
        Label::Repeated => LABEL_REPEATED,
    };
    w.write_varint_field(FIELD_LABEL, label)
        .expect("const field number");
    let (code, type_name) = match f.field_type() {
        FieldType::Double => (TYPE_DOUBLE, None),
        FieldType::Float => (TYPE_FLOAT, None),
        FieldType::Int64 => (TYPE_INT64, None),
        FieldType::UInt64 => (TYPE_UINT64, None),
        FieldType::Int32 => (TYPE_INT32, None),
        FieldType::Fixed64 => (TYPE_FIXED64, None),
        FieldType::Fixed32 => (TYPE_FIXED32, None),
        FieldType::Bool => (TYPE_BOOL, None),
        FieldType::String => (TYPE_STRING, None),
        FieldType::Bytes => (TYPE_BYTES, None),
        FieldType::UInt32 => (TYPE_UINT32, None),
        FieldType::Enum => (TYPE_ENUM, Some(".PlaceholderEnum".to_owned())),
        FieldType::SFixed32 => (TYPE_SFIXED32, None),
        FieldType::SFixed64 => (TYPE_SFIXED64, None),
        FieldType::SInt32 => (TYPE_SINT32, None),
        FieldType::SInt64 => (TYPE_SINT64, None),
        FieldType::Message(id) => (
            TYPE_MESSAGE,
            Some(format!(".{}", schema.message(id).name())),
        ),
    };
    w.write_varint_field(FIELD_TYPE, code)
        .expect("const field number");
    if let Some(name) = type_name {
        w.write_length_delimited_field(FIELD_TYPE_NAME, name.as_bytes())
            .expect("const field number");
    }
    if f.is_packed() {
        let mut opts = WireWriter::new();
        opts.write_varint_field(OPTIONS_PACKED, 1)
            .expect("const field number");
        w.write_length_delimited_field(FIELD_OPTIONS, opts.as_bytes())
            .expect("const field number");
    }
    w.into_bytes()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_proto;
    use protoacc_wire::MAX_FIELD_NUMBER;

    fn round_trip(source: &str) -> (Schema, Schema) {
        let schema = parse_proto(source).unwrap();
        let bytes = encode_descriptor_set(&schema, "test.proto");
        let back = parse_descriptor_set(&bytes).unwrap();
        (schema, back)
    }

    fn assert_equivalent(a: &Schema, b: &Schema) {
        assert_eq!(a.len(), b.len());
        for ((ia, ma), (ib, mb)) in a.iter().zip(b.iter()) {
            assert_eq!(ia, ib);
            // MessageIds align by construction, so descriptors (including
            // Message(id) references) must compare equal outright.
            assert_eq!(ma, mb);
        }
    }

    #[test]
    fn text_and_binary_front_ends_agree() {
        let (schema, back) = round_trip(
            r#"
            syntax = "proto2";
            message Outer {
                message Inner {
                    message Deep { optional bool x = 1; }
                    optional Deep d = 1;
                }
                enum Mode { A = 0; }
                optional Inner i = 1;
                optional Inner.Deep shortcut = 2;
                optional Outer recur = 3;
                optional Mode mode = 4;
                repeated sint64 deltas = 5 [packed = true];
                required string tag = 6;
            }
            message Sibling { optional Outer o = 1; repeated bytes blobs = 2; }
            "#,
        );
        assert_equivalent(&schema, &back);
        assert_eq!(
            back.message_by_name("Outer")
                .unwrap()
                .field_by_name("mode")
                .unwrap()
                .field_type(),
            FieldType::Enum
        );
    }

    #[test]
    fn every_scalar_type_survives_the_binary_round_trip() {
        let mut source = String::from("message AllTypes {\n");
        for (i, kw) in [
            "double", "float", "int32", "int64", "uint32", "uint64", "sint32", "sint64", "fixed32",
            "fixed64", "sfixed32", "sfixed64", "bool", "string", "bytes",
        ]
        .iter()
        .enumerate()
        {
            source.push_str(&format!("  optional {kw} f{i} = {};\n", i + 1));
        }
        source.push('}');
        let (schema, back) = round_trip(&source);
        assert_equivalent(&schema, &back);
    }

    #[test]
    fn encoding_is_deterministic() {
        let schema = parse_proto("message A { optional A a = 1; } message B {}").unwrap();
        assert_eq!(
            encode_descriptor_set(&schema, "x.proto"),
            encode_descriptor_set(&schema, "x.proto")
        );
    }

    #[test]
    fn package_prefixes_are_stripped_like_the_text_parser_ignores_them() {
        // Hand-build a file with package "pb" and a message whose field
        // references ".pb.M" — the qualified form protoc emits.
        let mut field = WireWriter::new();
        field
            .write_length_delimited_field(FIELD_NAME, b"next")
            .unwrap();
        field.write_varint_field(FIELD_NUMBER, 1).unwrap();
        field
            .write_varint_field(FIELD_LABEL, LABEL_OPTIONAL)
            .unwrap();
        field.write_varint_field(FIELD_TYPE, TYPE_MESSAGE).unwrap();
        field
            .write_length_delimited_field(FIELD_TYPE_NAME, b".pb.M")
            .unwrap();
        let mut msg = WireWriter::new();
        msg.write_length_delimited_field(MSG_NAME, b"M").unwrap();
        msg.write_length_delimited_field(MSG_FIELD, field.as_bytes())
            .unwrap();
        let mut file = WireWriter::new();
        file.write_length_delimited_field(FILE_NAME, b"m.proto")
            .unwrap();
        file.write_length_delimited_field(FILE_PACKAGE, b"pb")
            .unwrap();
        file.write_length_delimited_field(FILE_MESSAGE_TYPE, msg.as_bytes())
            .unwrap();
        let mut set = WireWriter::new();
        set.write_length_delimited_field(SET_FILE, file.as_bytes())
            .unwrap();
        let schema = parse_descriptor_set(set.as_bytes()).unwrap();
        let m = schema.message_by_name("M").unwrap();
        assert_eq!(
            m.field_by_name("next").unwrap().field_type(),
            FieldType::Message(schema.id_by_name("M").unwrap())
        );
    }

    #[test]
    fn omitted_type_code_resolves_via_type_name() {
        // protoc may omit `type` when `type_name` is set.
        let mut field = WireWriter::new();
        field
            .write_length_delimited_field(FIELD_NAME, b"sub")
            .unwrap();
        field.write_varint_field(FIELD_NUMBER, 2).unwrap();
        field
            .write_varint_field(FIELD_LABEL, LABEL_REPEATED)
            .unwrap();
        field
            .write_length_delimited_field(FIELD_TYPE_NAME, b".M")
            .unwrap();
        let mut msg = WireWriter::new();
        msg.write_length_delimited_field(MSG_NAME, b"M").unwrap();
        msg.write_length_delimited_field(MSG_FIELD, field.as_bytes())
            .unwrap();
        let mut file = WireWriter::new();
        file.write_length_delimited_field(FILE_MESSAGE_TYPE, msg.as_bytes())
            .unwrap();
        let mut set = WireWriter::new();
        set.write_length_delimited_field(SET_FILE, file.as_bytes())
            .unwrap();
        let schema = parse_descriptor_set(set.as_bytes()).unwrap();
        assert!(schema
            .message_by_name("M")
            .unwrap()
            .field_by_name("sub")
            .unwrap()
            .is_repeated());
    }

    #[test]
    fn truncated_and_malformed_inputs_yield_typed_errors() {
        let schema = parse_proto("message M { optional string s = 1; }").unwrap();
        let bytes = encode_descriptor_set(&schema, "m.proto");
        for cut in 1..bytes.len() {
            match parse_descriptor_set(&bytes[..cut]) {
                Ok(_) | Err(_) => {} // must simply not panic
            }
        }
        // A dangling length-delimited header is a wire error.
        assert!(matches!(
            parse_descriptor_set(&[0x0a, 0xff]),
            Err(SchemaError::Wire { .. })
        ));
    }

    #[test]
    fn nested_type_depth_bomb_is_rejected_not_overflowed() {
        // Build MAX_DESCRIPTOR_NESTING + 8 levels of nested_type by hand.
        let mut inner = WireWriter::new();
        inner.write_length_delimited_field(MSG_NAME, b"N").unwrap();
        let mut payload = inner.into_bytes();
        for _ in 0..MAX_DESCRIPTOR_NESTING + 8 {
            let mut w = WireWriter::new();
            w.write_length_delimited_field(MSG_NAME, b"N").unwrap();
            w.write_length_delimited_field(MSG_NESTED_TYPE, &payload)
                .unwrap();
            payload = w.into_bytes();
        }
        let mut file = WireWriter::new();
        file.write_length_delimited_field(FILE_MESSAGE_TYPE, &payload)
            .unwrap();
        let mut set = WireWriter::new();
        set.write_length_delimited_field(SET_FILE, file.as_bytes())
            .unwrap();
        let err = parse_descriptor_set(set.as_bytes()).unwrap_err();
        assert!(matches!(err, SchemaError::Descriptor { .. }), "{err}");
    }

    #[test]
    fn proto3_sets_are_rejected() {
        let mut file = WireWriter::new();
        file.write_length_delimited_field(FILE_SYNTAX, b"proto3")
            .unwrap();
        let mut set = WireWriter::new();
        set.write_length_delimited_field(SET_FILE, file.as_bytes())
            .unwrap();
        let err = parse_descriptor_set(set.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("proto2"), "{err}");
    }

    #[test]
    fn reserved_and_out_of_range_numbers_are_rejected() {
        for number in [19_000u64, 19_999, u64::from(MAX_FIELD_NUMBER) + 1, 1 << 40] {
            let mut field = WireWriter::new();
            field
                .write_length_delimited_field(FIELD_NAME, b"f")
                .unwrap();
            field.write_varint_field(FIELD_NUMBER, number).unwrap();
            field
                .write_varint_field(FIELD_LABEL, LABEL_OPTIONAL)
                .unwrap();
            field.write_varint_field(FIELD_TYPE, TYPE_BOOL).unwrap();
            let mut msg = WireWriter::new();
            msg.write_length_delimited_field(MSG_NAME, b"M").unwrap();
            msg.write_length_delimited_field(MSG_FIELD, field.as_bytes())
                .unwrap();
            let mut file = WireWriter::new();
            file.write_length_delimited_field(FILE_MESSAGE_TYPE, msg.as_bytes())
                .unwrap();
            let mut set = WireWriter::new();
            set.write_length_delimited_field(SET_FILE, file.as_bytes())
                .unwrap();
            let err = parse_descriptor_set(set.as_bytes()).unwrap_err();
            assert!(
                matches!(
                    err,
                    SchemaError::ReservedFieldNumber { .. }
                        | SchemaError::InvalidFieldNumber { .. }
                ),
                "number {number}: {err}"
            );
        }
    }

    #[test]
    fn group_fields_are_rejected() {
        let mut field = WireWriter::new();
        field
            .write_length_delimited_field(FIELD_NAME, b"g")
            .unwrap();
        field.write_varint_field(FIELD_NUMBER, 1).unwrap();
        field
            .write_varint_field(FIELD_LABEL, LABEL_OPTIONAL)
            .unwrap();
        field.write_varint_field(FIELD_TYPE, TYPE_GROUP).unwrap();
        let mut msg = WireWriter::new();
        msg.write_length_delimited_field(MSG_NAME, b"M").unwrap();
        msg.write_length_delimited_field(MSG_FIELD, field.as_bytes())
            .unwrap();
        let mut file = WireWriter::new();
        file.write_length_delimited_field(FILE_MESSAGE_TYPE, msg.as_bytes())
            .unwrap();
        let mut set = WireWriter::new();
        set.write_length_delimited_field(SET_FILE, file.as_bytes())
            .unwrap();
        assert!(matches!(
            parse_descriptor_set(set.as_bytes()),
            Err(SchemaError::Descriptor { .. })
        ));
    }

    #[test]
    fn unknown_fields_in_descriptors_are_skipped() {
        // Append an unknown field (number 99) to an otherwise valid file.
        let schema = parse_proto("message M { optional bool b = 1; }").unwrap();
        let inner_set = encode_descriptor_set(&schema, "m.proto");
        // Re-decode the file payload, append unknown bytes, re-wrap.
        let mut reader = WireReader::new(&inner_set);
        let key = reader.read_key().unwrap();
        assert_eq!(key.field_number(), SET_FILE);
        let file_bytes = reader.read_length_delimited().unwrap();
        let mut file = WireWriter::new();
        file.write_raw_bytes(file_bytes);
        file.write_varint_field(99, 7).unwrap();
        let mut set = WireWriter::new();
        set.write_length_delimited_field(SET_FILE, file.as_bytes())
            .unwrap();
        let back = parse_descriptor_set(set.as_bytes()).unwrap();
        assert!(back.message_by_name("M").is_some());
    }
}
