//! The memory system: storage + hierarchy timing bundled behind one port.

use crate::{
    CacheConfig, CacheModel, CacheStats, Cycles, GuestMemory, Tlb, TlbConfig, BUS_WIDTH_BYTES,
};

/// Whether an access is a read or a write (writes are modeled write-allocate,
/// write-back, so the timing treatment is identical; the split is kept for
/// statistics).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessKind {
    /// Load from memory.
    Read,
    /// Store to memory.
    Write,
}

/// Latencies and geometry of the modeled hierarchy.
///
/// Defaults approximate the paper's SoC: 2 GHz core/accelerator clock,
/// 32 KiB L1, 512 KiB L2, 32 MiB LLC (the artifact's runtime config names a
/// 32 MB LLC), and DRAM ~110 ns away.
#[derive(Debug, Clone, Copy)]
pub struct MemConfig {
    /// L1 geometry.
    pub l1: CacheConfig,
    /// L2 geometry.
    pub l2: CacheConfig,
    /// LLC geometry.
    pub llc: CacheConfig,
    /// Cycles for an L1 hit.
    pub l1_latency: Cycles,
    /// Cycles for an L2 hit (L1 miss).
    pub l2_latency: Cycles,
    /// Cycles for an LLC hit (L2 miss).
    pub llc_latency: Cycles,
    /// Cycles for a DRAM access (LLC miss).
    pub dram_latency: Cycles,
    /// TLB configuration.
    pub tlb: TlbConfig,
    /// Maximum in-flight requests the memory interface wrapper tracks
    /// (Section 4.1: "a configurable number of outstanding requests").
    /// Streaming transfers overlap up to this many line fetches.
    pub max_outstanding: usize,
}

impl Default for MemConfig {
    fn default() -> Self {
        MemConfig {
            l1: CacheConfig::new(32 * 1024, 8, 64),
            l2: CacheConfig::new(512 * 1024, 8, 64),
            llc: CacheConfig::new(32 * 1024 * 1024, 16, 64),
            l1_latency: 2,
            l2_latency: 14,
            llc_latency: 40,
            dram_latency: 220,
            tlb: TlbConfig::default(),
            max_outstanding: 12,
        }
    }
}

impl MemConfig {
    /// Memory configuration for one of `groups` independent shard groups
    /// splitting the shared last-level resources.
    ///
    /// Way-partitioning an LLC across instance groups (the standard CAT-style
    /// slicing) gives each group a private slice: within a shard the paper's
    /// contention model is unchanged — instances still fight over the slice
    /// and the outstanding-miss budget — while *across* shards there is no
    /// coupling at all, which is what makes sharded simulation exact rather
    /// than approximate. The slice keeps the parent's associativity and line
    /// size (capacity shrinks by dropping sets, rounded to the power-of-two
    /// geometry the cache model requires) and divides the outstanding-miss
    /// budget, clamping both so even extreme `groups` stay constructible.
    ///
    /// # Panics
    ///
    /// Panics if `groups` is zero.
    #[must_use]
    pub fn llc_slice(&self, groups: usize) -> MemConfig {
        assert!(groups > 0, "shard group count must be nonzero");
        let g = groups.next_power_of_two();
        // Smallest legal slice: one set of `ways` lines.
        let min = self.llc.ways * self.llc.line_bytes;
        let sliced = (self.llc.size_bytes / g).max(min);
        MemConfig {
            llc: CacheConfig::new(sliced, self.llc.ways, self.llc.line_bytes),
            max_outstanding: (self.max_outstanding / g).max(1),
            ..*self
        }
    }
}

/// One requester's share of a shared hierarchy's traffic.
///
/// When several accelerator instances (or an instance and a core) share an
/// LLC/DRAM, attributing hits and misses per requester is what lets the
/// serving model report *who* is suffering the contention. Requesters are
/// dense small integers assigned by the caller via
/// [`MemSystem::set_requester`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RequesterStats {
    /// Accesses issued while this requester was current.
    pub accesses: u64,
    /// Bytes moved.
    pub bytes: u64,
    /// Cycles charged.
    pub cycles: Cycles,
    /// Line probes served by the L1.
    pub l1_hits: u64,
    /// Line probes served by the L2.
    pub l2_hits: u64,
    /// Line probes served by the LLC.
    pub llc_hits: u64,
    /// Line probes that went all the way to DRAM.
    pub dram_accesses: u64,
}

impl RequesterStats {
    /// Fraction of this requester's line probes that missed the LLC,
    /// `0.0` if it issued none.
    pub fn dram_fraction(&self) -> f64 {
        let probes = self.l1_hits + self.l2_hits + self.llc_hits + self.dram_accesses;
        if probes == 0 {
            return 0.0;
        }
        self.dram_accesses as f64 / probes as f64
    }
}

/// One access captured while tracing is enabled: who touched which byte
/// range, and whether it was a load or a store. The sanitizer layer
/// (`protoacc-absint`) consumes these to build per-command memory
/// footprints; recording is off by default so the hot path stays a branch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessRecord {
    /// Requester current when the access was issued.
    pub requester: usize,
    /// First byte touched.
    pub addr: u64,
    /// Bytes touched (never 0; zero-length accesses are not recorded).
    pub len: u64,
    /// Load or store.
    pub kind: AccessKind,
}

impl AccessRecord {
    /// Exclusive end of the touched range.
    pub fn end(&self) -> u64 {
        self.addr + self.len
    }
}

/// A hardware fault raised by the simulated memory system.
///
/// Faults are injected (armed) by a test harness or the fault-injection
/// layer (`protoacc-faults`); the hierarchy itself never produces them
/// spontaneously, so untouched configurations behave exactly as before.
/// A raised fault is latched and must be drained with
/// [`MemSystem::take_fault`] — the accelerator model polls after each
/// transfer and converts a latched fault into a typed error.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum MemFault {
    /// An uncorrectable (detected, not silently corrupting) DRAM ECC error
    /// on an access overlapping `addr`.
    Ecc {
        /// Address the armed fault was registered for.
        addr: u64,
    },
    /// An access overlapping `addr` stalled: the interface charged `extra`
    /// additional cycles and reported the hang. `extra` is chosen large
    /// enough that any watchdog ceiling fires first.
    Stall {
        /// Address the armed fault was registered for.
        addr: u64,
        /// Extra cycles the stalled access cost.
        extra: Cycles,
    },
}

impl std::fmt::Display for MemFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MemFault::Ecc { addr } => write!(f, "uncorrectable ECC error at {addr:#x}"),
            MemFault::Stall { addr, extra } => {
                write!(f, "memory stall at {addr:#x} (+{extra} cycles)")
            }
        }
    }
}

/// One armed (not yet triggered) fault: fires on the first access whose
/// byte range covers `addr`, then disarms.
#[derive(Debug, Clone, Copy)]
struct ArmedFault {
    addr: u64,
    kind: ArmedFaultKind,
}

#[derive(Debug, Clone, Copy)]
enum ArmedFaultKind {
    Ecc,
    Stall { extra: Cycles },
}

/// Aggregate statistics for a [`MemSystem`].
#[derive(Debug, Clone, Copy, Default)]
pub struct MemStats {
    /// Total accesses issued.
    pub accesses: u64,
    /// Total bytes moved.
    pub bytes: u64,
    /// Total cycles charged.
    pub cycles: Cycles,
    /// Per-level hit/miss counters (L1, L2, LLC).
    pub l1: CacheStats,
    /// L2 counters.
    pub l2: CacheStats,
    /// LLC counters.
    pub llc: CacheStats,
}

/// The timing side of the memory system: cache hierarchy plus TLB.
///
/// Both the CPU models and the accelerator route their accesses through one
/// of these; sharing an instance models the paper's shared L2/LLC.
#[derive(Debug, Clone)]
pub struct MemSystem {
    config: MemConfig,
    l1: CacheModel,
    l2: CacheModel,
    llc: CacheModel,
    tlb: Tlb,
    accesses: u64,
    bytes: u64,
    cycles: Cycles,
    requester: usize,
    requesters: Vec<RequesterStats>,
    sharers: u64,
    tracing: bool,
    trace: Vec<AccessRecord>,
    armed: Vec<ArmedFault>,
    fault: Option<MemFault>,
    /// Structured event sink (`protoacc-trace`); `None` (the default) is
    /// the zero-cost path — instrumentation never feeds back into cycle
    /// arithmetic, it only observes.
    event_tracer: Option<protoacc_trace::SharedTracer>,
    /// `(timeline base, self.cycles when the base was set)`: event
    /// timestamps are `base + (cycles_at_issue - cycles_at_base)`, letting
    /// the serve layer pin memory events onto its queue clock.
    trace_origin: (Cycles, Cycles),
}

impl MemSystem {
    /// Creates a cold hierarchy.
    pub fn new(config: MemConfig) -> Self {
        MemSystem {
            config,
            l1: CacheModel::new(config.l1),
            l2: CacheModel::new(config.l2),
            llc: CacheModel::new(config.llc),
            tlb: Tlb::new(config.tlb),
            accesses: 0,
            bytes: 0,
            cycles: 0,
            requester: 0,
            requesters: vec![RequesterStats::default()],
            sharers: 1,
            tracing: false,
            trace: Vec::new(),
            armed: Vec::new(),
            fault: None,
            event_tracer: None,
            trace_origin: (0, 0),
        }
    }

    /// Attaches (or detaches, with `None`) a structured event tracer.
    /// While attached, every non-empty `access`/`stream`/`pipelined` call
    /// emits a [`protoacc_trace::TraceEvent::MemAccess`] with its cache-
    /// level breakdown. Purely observational: cycle accounting is
    /// identical with and without a tracer.
    pub fn set_event_tracer(&mut self, tracer: Option<protoacc_trace::SharedTracer>) {
        self.event_tracer = tracer;
    }

    /// Whether a structured event tracer is attached.
    pub fn event_tracing(&self) -> bool {
        self.event_tracer.is_some()
    }

    /// Pins the event timeline: subsequent events are stamped
    /// `at + (cycles_since_this_call)`. The serve layer calls this with
    /// each attempt's dispatch time so memory events line up with the
    /// cluster's queue clock.
    pub fn set_trace_origin(&mut self, at: Cycles) {
        self.trace_origin = (at, self.cycles);
    }

    /// Arms a one-shot uncorrectable ECC fault: the first subsequent access
    /// whose byte range covers `addr` raises [`MemFault::Ecc`] (latched
    /// until [`MemSystem::take_fault`]) and charges one extra DRAM latency
    /// for the detection/re-read.
    pub fn arm_ecc(&mut self, addr: u64) {
        self.armed.push(ArmedFault {
            addr,
            kind: ArmedFaultKind::Ecc,
        });
    }

    /// Arms a one-shot stall fault: the first subsequent access covering
    /// `addr` costs `extra` additional cycles and latches
    /// [`MemFault::Stall`]. Callers pick `extra` far above any command's
    /// static cycle ceiling so a watchdog observes the hang.
    pub fn arm_stall(&mut self, addr: u64, extra: Cycles) {
        self.armed.push(ArmedFault {
            addr,
            kind: ArmedFaultKind::Stall { extra },
        });
    }

    /// Drains the latched fault, if any. At most one fault is latched at a
    /// time; later triggers while one is pending are dropped (the first
    /// error aborts the command anyway).
    pub fn take_fault(&mut self) -> Option<MemFault> {
        self.fault.take()
    }

    /// Whether a fault is latched and not yet drained.
    pub fn fault_pending(&self) -> bool {
        self.fault.is_some()
    }

    /// Triggers any armed fault covered by `[addr, addr + len)`; returns the
    /// extra cycle charge. The empty-`armed` fast path keeps untouched
    /// configurations branch-cheap.
    fn check_faults(&mut self, addr: u64, len: usize) -> Cycles {
        if self.armed.is_empty() {
            return 0;
        }
        let end = addr.saturating_add(len as u64);
        let mut extra_cycles: Cycles = 0;
        let mut i = 0;
        while i < self.armed.len() {
            let f = self.armed[i];
            if f.addr >= addr && f.addr < end {
                let (fault, charge) = match f.kind {
                    ArmedFaultKind::Ecc => {
                        (MemFault::Ecc { addr: f.addr }, self.config.dram_latency)
                    }
                    ArmedFaultKind::Stall { extra } => (
                        MemFault::Stall {
                            addr: f.addr,
                            extra,
                        },
                        extra,
                    ),
                };
                if self.fault.is_none() {
                    self.fault = Some(fault);
                }
                extra_cycles = extra_cycles.saturating_add(charge);
                self.armed.swap_remove(i);
            } else {
                i += 1;
            }
        }
        extra_cycles
    }

    /// Turns access tracing on or off. While on, every non-empty
    /// `access`/`stream`/`pipelined` call appends an [`AccessRecord`];
    /// turning it off leaves any already-captured records in place.
    pub fn set_tracing(&mut self, on: bool) {
        self.tracing = on;
    }

    /// Whether access tracing is currently enabled.
    pub fn tracing(&self) -> bool {
        self.tracing
    }

    /// Drains and returns the captured access records.
    pub fn take_trace(&mut self) -> Vec<AccessRecord> {
        std::mem::take(&mut self.trace)
    }

    /// Appends one trace record if tracing is on.
    fn trace_access(&mut self, addr: u64, len: usize, kind: AccessKind) {
        if self.tracing {
            self.trace.push(AccessRecord {
                requester: self.requester,
                addr,
                len: len as u64,
                kind,
            });
        }
    }

    /// The configuration this system was built with.
    pub fn config(&self) -> &MemConfig {
        &self.config
    }

    /// Attributes subsequent traffic to requester `id` (a dense small
    /// integer, e.g. an accelerator instance index). Requester 0 is current
    /// by default, so single-requester callers never need to call this.
    pub fn set_requester(&mut self, id: usize) {
        if id >= self.requesters.len() {
            self.requesters.resize(id + 1, RequesterStats::default());
        }
        self.requester = id;
    }

    /// Statistics for requester `id` (zeroes if it never issued traffic).
    pub fn requester_stats(&self, id: usize) -> RequesterStats {
        self.requesters.get(id).copied().unwrap_or_default()
    }

    /// Sets how many requesters are actively sharing the memory interface.
    ///
    /// The outstanding-request budget (and hence the latency-overlap factor
    /// of [`MemSystem::stream`] / [`MemSystem::pipelined`]) is split evenly
    /// across active sharers: with `max_outstanding = 12` and 4 sharers each
    /// stream overlaps only 3 line fetches. `1` (the default) restores the
    /// uncontended behavior.
    pub fn set_sharers(&mut self, sharers: usize) {
        self.sharers = sharers.max(1) as u64;
    }

    /// The currently configured sharer count.
    pub fn sharers(&self) -> usize {
        self.sharers as usize
    }

    /// The latency-overlap factor streams see under the current sharing.
    fn effective_overlap(&self) -> u64 {
        (self.config.max_outstanding.max(1) as u64 / self.sharers).max(1)
    }

    /// Charges one access of `len` bytes at `addr` and returns its cycle
    /// cost. Accesses spanning multiple cache lines probe each line.
    pub fn access(&mut self, addr: u64, len: usize, kind: AccessKind) -> Cycles {
        if len == 0 {
            return 0;
        }
        self.trace_access(addr, len, kind);
        let snap = self.snap_for_event();
        let mut tlb_cost = self.tlb.translate(addr);
        let line_bytes = self.config.l1.line_bytes as u64;
        let first_line = addr / line_bytes;
        let last_line = (addr + len as u64 - 1) / line_bytes;
        // Page-boundary crossings need a second translation.
        let first_page = addr / crate::PAGE_SIZE as u64;
        let last_page = (addr + len as u64 - 1) / crate::PAGE_SIZE as u64;
        for page in first_page + 1..=last_page {
            tlb_cost += self.tlb.translate(page * crate::PAGE_SIZE as u64);
        }
        let mut cost = tlb_cost;
        for line in first_line..=last_line {
            cost += self.probe(line);
        }
        let cost = cost.saturating_add(self.check_faults(addr, len));
        self.note(len, cost);
        self.emit_mem_event(
            snap,
            protoacc_trace::MemAccessMode::Blocking,
            addr,
            len,
            kind,
            cost,
            tlb_cost,
        );
        cost
    }

    /// Charges a streaming transfer of `len` bytes starting at `addr`, as the
    /// memloader/memwriter units perform: line fetches overlap up to the
    /// configured outstanding-request limit, so cost is dominated by bus
    /// bandwidth (16 B/cycle) plus one exposed leading latency.
    pub fn stream(&mut self, addr: u64, len: usize, kind: AccessKind) -> Cycles {
        if len == 0 {
            return 0;
        }
        self.trace_access(addr, len, kind);
        let snap = self.snap_for_event();
        let line_bytes = self.config.l1.line_bytes as u64;
        let first_line = addr / line_bytes;
        let last_line = (addr + len as u64 - 1) / line_bytes;
        let mut worst: Cycles = 0;
        let mut sum: Cycles = 0;
        let mut tlb_cost = self.tlb.translate(addr);
        let first_page = addr / crate::PAGE_SIZE as u64;
        let last_page = (addr + len as u64 - 1) / crate::PAGE_SIZE as u64;
        for page in first_page + 1..=last_page {
            tlb_cost += self.tlb.translate(page * crate::PAGE_SIZE as u64);
        }
        for line in first_line..=last_line {
            let c = self.probe(line);
            worst = worst.max(c);
            sum += c;
        }
        let lines = last_line - first_line + 1;
        // With `max_outstanding` requests in flight, per-line latencies
        // overlap: charge the worst single latency once, plus the serialized
        // remainder divided by the overlap factor, plus bus occupancy. The
        // overlap budget shrinks when other requesters share the interface.
        let overlap = self.effective_overlap();
        let hidden = sum.saturating_sub(worst) / overlap;
        let bus = len.div_ceil(BUS_WIDTH_BYTES) as u64 * self.sharers;
        let cost = (tlb_cost + worst + hidden + bus).saturating_add(self.check_faults(addr, len));
        let _ = lines;
        self.note(len, cost);
        self.emit_mem_event(
            snap,
            protoacc_trace::MemAccessMode::Stream,
            addr,
            len,
            kind,
            cost,
            tlb_cost,
        );
        cost
    }

    /// Charges an access issued through a decoupled memory interface wrapper
    /// that tracks many outstanding requests (Section 4.1): the caller does
    /// not block for the full hierarchy latency, so the charge is bus
    /// occupancy (16 B/cycle) plus the miss latency amortized over the
    /// outstanding-request window, plus any TLB walk (which does block).
    pub fn pipelined(&mut self, addr: u64, len: usize, kind: AccessKind) -> Cycles {
        if len == 0 {
            return 0;
        }
        self.trace_access(addr, len, kind);
        let snap = self.snap_for_event();
        let tlb_cost = {
            let mut t = self.tlb.translate(addr);
            let first_page = addr / crate::PAGE_SIZE as u64;
            let last_page = (addr + len as u64 - 1) / crate::PAGE_SIZE as u64;
            for page in first_page + 1..=last_page {
                t += self.tlb.translate(page * crate::PAGE_SIZE as u64);
            }
            t
        };
        let mut cost = tlb_cost;
        let line_bytes = self.config.l1.line_bytes as u64;
        let first_line = addr / line_bytes;
        let last_line = (addr + len as u64 - 1) / line_bytes;
        let mut probe_sum = 0;
        for line in first_line..=last_line {
            probe_sum += self.probe(line);
        }
        let overlap = self.effective_overlap();
        cost += len.div_ceil(BUS_WIDTH_BYTES) as u64 * self.sharers + probe_sum / overlap;
        let cost = cost.saturating_add(self.check_faults(addr, len));
        self.note(len, cost);
        self.emit_mem_event(
            snap,
            protoacc_trace::MemAccessMode::Pipelined,
            addr,
            len,
            kind,
            cost,
            tlb_cost,
        );
        cost
    }

    /// Captures the pre-access requester counters and memory clock when an
    /// event tracer is attached; `None` otherwise (the zero-cost path).
    fn snap_for_event(&self) -> Option<(RequesterStats, Cycles)> {
        if self.event_tracer.is_some() {
            Some((self.requesters[self.requester], self.cycles))
        } else {
            None
        }
    }

    /// Emits one [`protoacc_trace::TraceEvent::MemAccess`] with the
    /// cache-level deltas accumulated since `snap`. A no-op when no tracer
    /// is attached (`snap` is `None`).
    #[allow(clippy::too_many_arguments)]
    fn emit_mem_event(
        &self,
        snap: Option<(RequesterStats, Cycles)>,
        mode: protoacc_trace::MemAccessMode,
        addr: u64,
        len: usize,
        kind: AccessKind,
        cost: Cycles,
        tlb_cost: Cycles,
    ) {
        let (Some((before, start_cycles)), Some(tracer)) = (snap, self.event_tracer.as_ref())
        else {
            return;
        };
        let now = self.requesters[self.requester];
        let at = self.trace_origin.0 + start_cycles.saturating_sub(self.trace_origin.1);
        tracer
            .borrow_mut()
            .record(protoacc_trace::TraceEvent::MemAccess {
                requester: self.requester,
                at,
                cycles: cost,
                addr,
                len: len as u64,
                write: matches!(kind, AccessKind::Write),
                mode,
                tlb_walk_cycles: tlb_cost,
                l1_hits: now.l1_hits - before.l1_hits,
                l2_hits: now.l2_hits - before.l2_hits,
                llc_hits: now.llc_hits - before.llc_hits,
                dram_accesses: now.dram_accesses - before.dram_accesses,
            });
    }

    fn probe(&mut self, line: u64) -> Cycles {
        let who = &mut self.requesters[self.requester];
        if self.l1.access_line(line) {
            who.l1_hits += 1;
            self.config.l1_latency
        } else if self.l2.access_line(line) {
            who.l2_hits += 1;
            self.config.l2_latency
        } else if self.llc.access_line(line) {
            who.llc_hits += 1;
            self.config.llc_latency
        } else {
            who.dram_accesses += 1;
            self.config.dram_latency
        }
    }

    /// Books one completed access into the global and per-requester tallies.
    fn note(&mut self, len: usize, cost: Cycles) {
        self.accesses += 1;
        self.bytes += len as u64;
        self.cycles += cost;
        let who = &mut self.requesters[self.requester];
        who.accesses += 1;
        who.bytes += len as u64;
        who.cycles += cost;
    }

    /// Snapshot of accumulated statistics.
    pub fn stats(&self) -> MemStats {
        MemStats {
            accesses: self.accesses,
            bytes: self.bytes,
            cycles: self.cycles,
            l1: self.l1.stats(),
            l2: self.l2.stats(),
            llc: self.llc.stats(),
        }
    }

    /// Invalidates all cache and TLB state and zeroes counters.
    pub fn reset(&mut self) {
        self.l1.flush();
        self.l2.flush();
        self.llc.flush();
        self.tlb.flush();
        self.l1.reset_stats();
        self.l2.reset_stats();
        self.llc.reset_stats();
        self.accesses = 0;
        self.bytes = 0;
        self.cycles = 0;
        for r in &mut self.requesters {
            *r = RequesterStats::default();
        }
        self.trace.clear();
        self.armed.clear();
        self.fault = None;
        self.trace_origin = (0, 0);
    }

    /// Pre-touches an address range so it is LLC-resident (used to model
    /// warmed-up benchmark state without charging cycles to the workload).
    pub fn warm(&mut self, addr: u64, len: usize) {
        let line_bytes = self.config.l1.line_bytes as u64;
        if len == 0 {
            return;
        }
        let first = addr / line_bytes;
        let last = (addr + len as u64 - 1) / line_bytes;
        for line in first..=last {
            self.llc.access_line(line);
        }
        self.llc.reset_stats();
    }
}

/// Storage plus timing: the object every simulated component threads through
/// its memory operations.
#[derive(Debug, Clone)]
pub struct Memory {
    /// Byte storage.
    pub data: GuestMemory,
    /// Timing model.
    pub system: MemSystem,
}

impl Memory {
    /// Creates zeroed storage with a cold hierarchy.
    pub fn new(config: MemConfig) -> Self {
        Memory {
            data: GuestMemory::new(),
            system: MemSystem::new(config),
        }
    }

    /// Untimed write (used by test/benchmark setup, not charged to anyone).
    pub fn write_u64(&mut self, addr: u64, value: u64) {
        self.data.write_u64(addr, value);
    }

    /// Untimed read.
    pub fn read_u64(&self, addr: u64) -> u64 {
        self.data.read_u64(addr)
    }

    /// Timed u64 read: returns the value and its cycle cost.
    pub fn read_u64_timed(&mut self, addr: u64) -> (u64, Cycles) {
        let cycles = self.system.access(addr, 8, AccessKind::Read);
        (self.data.read_u64(addr), cycles)
    }

    /// Timed u64 write.
    pub fn write_u64_timed(&mut self, addr: u64, value: u64) -> Cycles {
        self.data.write_u64(addr, value);
        self.system.access(addr, 8, AccessKind::Write)
    }

    /// Timed byte-block read into `buf`.
    pub fn read_bytes_timed(&mut self, addr: u64, buf: &mut [u8]) -> Cycles {
        let cycles = self.system.access(addr, buf.len(), AccessKind::Read);
        self.data.read_bytes(addr, buf);
        cycles
    }

    /// Timed byte-block write.
    pub fn write_bytes_timed(&mut self, addr: u64, bytes: &[u8]) -> Cycles {
        self.data.write_bytes(addr, bytes);
        self.system.access(addr, bytes.len(), AccessKind::Write)
    }

    /// Timed streaming read (memloader-style).
    pub fn stream_read(&mut self, addr: u64, buf: &mut [u8]) -> Cycles {
        let cycles = self.system.stream(addr, buf.len(), AccessKind::Read);
        self.data.read_bytes(addr, buf);
        cycles
    }

    /// Timed streaming write (memwriter-style).
    pub fn stream_write(&mut self, addr: u64, bytes: &[u8]) -> Cycles {
        self.data.write_bytes(addr, bytes);
        self.system.stream(addr, bytes.len(), AccessKind::Write)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn repeated_access_costs_fall_to_l1_latency() {
        let mut sys = MemSystem::new(MemConfig::default());
        let cold = sys.access(0x1000, 8, AccessKind::Read);
        let warm = sys.access(0x1000, 8, AccessKind::Read);
        assert!(cold > warm, "cold {cold} should exceed warm {warm}");
        // Second touch hits L1 with a resident TLB entry.
        assert_eq!(warm, MemConfig::default().l1_latency);
    }

    #[test]
    fn multi_line_access_charges_each_line() {
        let mut sys = MemSystem::new(MemConfig::default());
        // Warm everything first.
        sys.access(0x1000, 128, AccessKind::Read);
        let one = sys.access(0x1000, 8, AccessKind::Read);
        let two = sys.access(0x1000, 128, AccessKind::Read); // 2 lines
        assert_eq!(two, one * 2);
    }

    #[test]
    fn stream_is_cheaper_than_random_for_long_transfers() {
        let config = MemConfig::default();
        let mut random = MemSystem::new(config);
        let mut streaming = MemSystem::new(config);
        let len = 64 * 1024;
        let mut random_cost = 0;
        for off in (0..len).step_by(64) {
            random_cost += random.access(0x10_0000 + off as u64, 64, AccessKind::Read);
        }
        let stream_cost = streaming.stream(0x10_0000, len, AccessKind::Read);
        assert!(
            stream_cost < random_cost / 2,
            "stream {stream_cost} vs random {random_cost}"
        );
    }

    #[test]
    fn stream_cost_scales_with_bandwidth() {
        let mut sys = MemSystem::new(MemConfig::default());
        // Make an 8 KiB region L1- and TLB-resident, then check the cost of
        // re-streaming it is dominated by the 16 B/cycle bus term.
        sys.stream(0, 8 * 1024, AccessKind::Read);
        sys.stream(0, 8 * 1024, AccessKind::Read);
        let c1 = sys.stream(0, 4 * 1024, AccessKind::Read);
        let c2 = sys.stream(0, 8 * 1024, AccessKind::Read);
        let delta = c2 as i64 - 2 * c1 as i64;
        assert!(delta.abs() < c1 as i64 / 4, "c1={c1} c2={c2}");
    }

    #[test]
    fn warm_promotes_to_llc_not_l1() {
        let mut sys = MemSystem::new(MemConfig::default());
        sys.warm(0x2000, 64);
        let first = sys.access(0x2000, 8, AccessKind::Read);
        // TLB still cold (+walk), line in LLC.
        let expect = MemConfig::default().llc_latency + TlbConfig::default().walk_cycles;
        assert_eq!(first, expect);
    }

    #[test]
    fn stats_accumulate_and_reset() {
        let mut sys = MemSystem::new(MemConfig::default());
        sys.access(0, 8, AccessKind::Read);
        sys.access(0, 8, AccessKind::Write);
        let stats = sys.stats();
        assert_eq!(stats.accesses, 2);
        assert_eq!(stats.bytes, 16);
        assert!(stats.cycles > 0);
        sys.reset();
        assert_eq!(sys.stats().accesses, 0);
    }

    #[test]
    fn memory_bundle_round_trips_data_with_timing() {
        let mut mem = Memory::new(MemConfig::default());
        let c1 = mem.write_u64_timed(0x40, 99);
        let (v, c2) = mem.read_u64_timed(0x40);
        assert_eq!(v, 99);
        assert!(c1 > 0 && c2 > 0);
        let payload = vec![7u8; 300];
        mem.write_bytes_timed(0x1000, &payload);
        let mut buf = vec![0u8; 300];
        mem.stream_read(0x1000, &mut buf);
        assert_eq!(buf, payload);
    }

    #[test]
    fn pipelined_access_is_cheaper_than_blocking() {
        let config = MemConfig::default();
        let mut blocking = MemSystem::new(config);
        let mut pipelined = MemSystem::new(config);
        let mut blocking_cost = 0;
        let mut pipelined_cost = 0;
        for i in 0..64u64 {
            blocking_cost += blocking.access(0x9000 + i * 8, 8, AccessKind::Write);
            pipelined_cost += pipelined.pipelined(0x9000 + i * 8, 8, AccessKind::Write);
        }
        assert!(
            pipelined_cost < blocking_cost,
            "pipelined {pipelined_cost} vs blocking {blocking_cost}"
        );
        assert_eq!(pipelined.pipelined(0x9000, 0, AccessKind::Read), 0);
    }

    #[test]
    fn zero_length_accesses_are_free() {
        let mut sys = MemSystem::new(MemConfig::default());
        assert_eq!(sys.access(0x123, 0, AccessKind::Read), 0);
        assert_eq!(sys.stream(0x123, 0, AccessKind::Read), 0);
    }

    #[test]
    fn requester_stats_attribute_traffic_per_requester() {
        let mut sys = MemSystem::new(MemConfig::default());
        // Requester 0 (default) touches a cold line: DRAM access.
        sys.access(0x1000, 8, AccessKind::Read);
        sys.set_requester(1);
        // Requester 1 re-touches it: L1 hit.
        sys.access(0x1000, 8, AccessKind::Read);
        let r0 = sys.requester_stats(0);
        let r1 = sys.requester_stats(1);
        assert_eq!(r0.accesses, 1);
        assert_eq!(r0.dram_accesses, 1);
        assert_eq!(r0.l1_hits, 0);
        assert_eq!(r1.accesses, 1);
        assert_eq!(r1.l1_hits, 1);
        assert_eq!(r1.dram_accesses, 0);
        assert!((r0.dram_fraction() - 1.0).abs() < 1e-12);
        assert_eq!(r1.dram_fraction(), 0.0);
        // Global stats still see both.
        assert_eq!(sys.stats().accesses, 2);
        // Unknown requesters report zeroes.
        assert_eq!(sys.requester_stats(99), RequesterStats::default());
        sys.reset();
        assert_eq!(sys.requester_stats(1), RequesterStats::default());
    }

    #[test]
    fn tracing_captures_nonempty_accesses_with_attribution() {
        let mut sys = MemSystem::new(MemConfig::default());
        sys.access(0x1000, 8, AccessKind::Read);
        assert!(sys.take_trace().is_empty(), "off by default");
        sys.set_tracing(true);
        assert!(sys.tracing());
        sys.access(0x2000, 16, AccessKind::Write);
        sys.access(0x3000, 0, AccessKind::Read); // zero-length: not recorded
        sys.set_requester(3);
        sys.stream(0x4000, 100, AccessKind::Read);
        sys.pipelined(0x5000, 4, AccessKind::Write);
        let trace = sys.take_trace();
        assert_eq!(
            trace,
            vec![
                AccessRecord {
                    requester: 0,
                    addr: 0x2000,
                    len: 16,
                    kind: AccessKind::Write
                },
                AccessRecord {
                    requester: 3,
                    addr: 0x4000,
                    len: 100,
                    kind: AccessKind::Read
                },
                AccessRecord {
                    requester: 3,
                    addr: 0x5000,
                    len: 4,
                    kind: AccessKind::Write
                },
            ]
        );
        assert_eq!(trace[1].end(), 0x4000 + 100);
        // take_trace drains; reset clears any residue.
        assert!(sys.take_trace().is_empty());
        sys.access(0x6000, 8, AccessKind::Read);
        sys.reset();
        assert!(sys.take_trace().is_empty());
    }

    #[test]
    fn armed_ecc_fault_fires_once_and_latches() {
        let mut sys = MemSystem::new(MemConfig::default());
        sys.arm_ecc(0x1004);
        assert!(sys.take_fault().is_none(), "arming alone raises nothing");
        // Access that misses the armed address: no fault.
        sys.access(0x2000, 8, AccessKind::Read);
        assert!(!sys.fault_pending());
        // Covering access trips it and pays the detection re-read.
        let mut clean = MemSystem::new(MemConfig::default());
        clean.access(0x2000, 8, AccessKind::Read);
        let clean_cost = clean.access(0x1000, 8, AccessKind::Read);
        let faulted_cost = sys.access(0x1000, 8, AccessKind::Read);
        assert_eq!(faulted_cost, clean_cost + MemConfig::default().dram_latency);
        assert_eq!(sys.take_fault(), Some(MemFault::Ecc { addr: 0x1004 }));
        // One-shot: the same access is clean afterwards, and drained stays
        // drained.
        assert!(sys.take_fault().is_none());
        sys.access(0x1000, 8, AccessKind::Read);
        assert!(!sys.fault_pending());
    }

    #[test]
    fn armed_stall_inflates_cycles_and_reset_disarms() {
        let mut sys = MemSystem::new(MemConfig::default());
        let base = sys.stream(0x4000, 256, AccessKind::Read);
        sys.reset();
        sys.arm_stall(0x4010, 1 << 40);
        let stalled = sys.stream(0x4000, 256, AccessKind::Read);
        assert!(
            stalled >= base + (1 << 40),
            "stall must dominate: {stalled}"
        );
        assert_eq!(
            sys.take_fault(),
            Some(MemFault::Stall {
                addr: 0x4010,
                extra: 1 << 40
            })
        );
        // reset() clears both armed and latched faults.
        sys.arm_stall(0x4010, 100);
        sys.arm_ecc(0x4010);
        sys.reset();
        sys.stream(0x4000, 256, AccessKind::Read);
        assert!(sys.take_fault().is_none());
    }

    #[test]
    fn sharers_inflate_streaming_cost() {
        let config = MemConfig::default();
        let mut alone = MemSystem::new(config);
        let mut contended = MemSystem::new(config);
        contended.set_sharers(4);
        let len = 64 * 1024;
        let solo = alone.stream(0x10_0000, len, AccessKind::Read);
        let shared = contended.stream(0x10_0000, len, AccessKind::Read);
        assert!(
            shared > solo * 2,
            "4-way sharing should at least double a cold stream: {shared} vs {solo}"
        );
        // Restoring sharers=1 restores the uncontended cost model.
        contended.set_sharers(1);
        contended.reset();
        alone.reset();
        assert_eq!(
            contended.stream(0x10_0000, len, AccessKind::Read),
            alone.stream(0x10_0000, len, AccessKind::Read)
        );
    }

    #[test]
    fn llc_slice_partitions_capacity_and_outstanding_budget() {
        let base = MemConfig::default();
        let quarter = base.llc_slice(4);
        assert_eq!(quarter.llc.size_bytes, base.llc.size_bytes / 4);
        assert_eq!(quarter.llc.ways, base.llc.ways);
        assert_eq!(quarter.llc.line_bytes, base.llc.line_bytes);
        assert_eq!(quarter.max_outstanding, base.max_outstanding / 4);
        // L1/L2 are per-instance hardware, never sliced.
        assert_eq!(quarter.l1.size_bytes, base.l1.size_bytes);
        assert_eq!(quarter.l2.size_bytes, base.l2.size_bytes);

        // Non-power-of-two groups round up to the po2 geometry the cache
        // model requires; one group is the identity slice.
        assert_eq!(base.llc_slice(3).llc.size_bytes, base.llc.size_bytes / 4);
        assert_eq!(base.llc_slice(1).llc.size_bytes, base.llc.size_bytes);

        // Extreme slicing clamps to one set and one outstanding miss but
        // must stay constructible.
        let tiny = base.llc_slice(1 << 30);
        assert_eq!(tiny.llc.size_bytes, base.llc.ways * base.llc.line_bytes);
        assert_eq!(tiny.max_outstanding, 1);
        let _ = MemSystem::new(tiny);
    }
}
