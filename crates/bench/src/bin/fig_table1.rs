//! Regenerates Table 1: classification of protobuf field types into
//! performance-similar groups.

use protoacc_schema::{FieldType, PerfClass};

fn main() {
    println!("Table 1: Classification of protobuf field types");
    println!(
        "{:<16} {:<44} Sizes (bytes)",
        "Perf class", "Protobuf types (incl. repeated)"
    );
    for class in PerfClass::ALL {
        let types: Vec<&str> = FieldType::SCALARS
            .iter()
            .filter(|t| t.perf_class() == Some(class))
            .map(|t| t.keyword().expect("scalar keyword"))
            .collect();
        let sizes = match class {
            PerfClass::BytesLike => "see Fig. 4c buckets".to_owned(),
            PerfClass::VarintLike => "1-10, by 1".to_owned(),
            PerfClass::FloatLike | PerfClass::Fixed32Like => "4".to_owned(),
            PerfClass::DoubleLike | PerfClass::Fixed64Like => "8".to_owned(),
        };
        println!("{:<16} {:<44} {}", class.label(), types.join(", "), sizes);
    }
}
