//! Regenerates Figure 4: fleet-wide field type and bytes-field breakdowns.
//!
//! (a) % of fields observed by type; (b) % of message bytes by type;
//! (c) % of bytes fields by field size.

use protoacc_fleet::protobufz::{
    estimate_bytes_field_size_histogram, estimate_field_bytes_shares, estimate_field_count_shares,
    ShapeModel, TRACKED_TYPES,
};
use protoacc_fleet::{bucket_label, SIZE_BUCKET_COUNT};
use protoacc_schema::PerfClass;
use xrand::StdRng;

fn main() {
    let model = ShapeModel::google_2021();
    let mut rng = StdRng::seed_from_u64(0xF164);
    let samples = model.sample_population(&mut rng, 100_000);

    let counts = estimate_field_count_shares(&samples);
    let bytes = estimate_field_bytes_shares(&samples);
    println!("Figure 4a/4b: field-type breakdowns (fields observed vs message bytes)");
    println!("{:<10} {:>12} {:>14}", "Type", "% of fields", "% of bytes");
    for (i, t) in TRACKED_TYPES.iter().enumerate() {
        println!(
            "{:<10} {:>11.1}% {:>13.1}%",
            t.keyword().expect("tracked scalar"),
            counts[i] * 100.0,
            bytes[i] * 100.0
        );
    }
    let varint_fields: f64 = TRACKED_TYPES
        .iter()
        .zip(counts.iter())
        .filter(|(t, _)| t.perf_class() == Some(PerfClass::VarintLike))
        .map(|(_, &s)| s)
        .sum();
    let bytes_volume = bytes[0] + bytes[1];
    println!();
    println!(
        "varint-like share of fields: {:.0}% (paper: >56%); string+bytes share of bytes: \
         {:.0}% (paper: >92%)",
        varint_fields * 100.0,
        bytes_volume * 100.0
    );

    println!();
    println!("Figure 4c: bytes-field size distribution");
    let hist = estimate_bytes_field_size_histogram(&samples);
    println!("{:<18} {:>12}", "Bucket (bytes)", "% of fields");
    for (i, share) in hist.iter().enumerate().take(SIZE_BUCKET_COUNT) {
        println!("{:<18} {:>11.2}%", bucket_label(i), share * 100.0);
    }
}
