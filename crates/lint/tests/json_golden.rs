//! Golden-file test for the versioned JSON report format.
//!
//! The JSON output is a machine-readable interface (CI gates and dashboards
//! parse it), so format drift must be deliberate. This test pins the exact
//! bytes for a representative schema. To re-bless after an intentional
//! format change, bump [`protoacc_lint::SCHEMA_VERSION`] if the change is
//! breaking and run:
//!
//! ```text
//! PROTOACC_LINT_BLESS=1 cargo test -p protoacc-lint --test json_golden
//! ```

use protoacc_lint::{lint_schema, lint_schema_verified, violations_to_diagnostics, LintConfig};
use protoacc_schema::parse_proto;

/// Schema chosen to exercise every output shape: a warn diagnostic
/// (recursion), a deny-capable type, finite and unbounded nesting, a
/// bounded-scalar type and an unbounded (string) one.
const GOLDEN_PROTO: &str = "\
message Node { optional Node next = 1; optional uint64 id = 2; }\n\
message Blob { optional string body = 1; required fixed32 crc = 2; }\n";

#[test]
fn json_report_matches_golden_file() {
    let schema = parse_proto(GOLDEN_PROTO).unwrap();
    let report = lint_schema(&schema, &LintConfig::default());
    let json = report.render_json();

    let golden_path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/report.json");
    if std::env::var_os("PROTOACC_LINT_BLESS").is_some() {
        std::fs::write(golden_path, &json).unwrap();
        return;
    }
    let golden = std::fs::read_to_string(golden_path)
        .expect("golden file missing; bless with PROTOACC_LINT_BLESS=1");
    assert_eq!(
        json, golden,
        "JSON report drifted from the golden file; if intentional, re-bless \
         (and bump SCHEMA_VERSION on breaking changes)"
    );
}

/// Pins the JSON rendering of every verifier code PA016–PA020. Clean
/// in-tree schemas never trip PA016–PA019 (that is the point of translation
/// validation), so those four are staged as synthetic
/// [`protoacc_verify::Violation`]s through the same
/// [`violations_to_diagnostics`] mapping the `--verify` mode uses; PA020 is
/// produced for real by shrinking the table budget below the golden
/// schema's footprint.
#[test]
fn verify_report_matches_golden_file() {
    let schema = parse_proto(GOLDEN_PROTO).unwrap();
    let tight = LintConfig {
        dense_table_budget: 1,
        ..LintConfig::default()
    };
    let mut report = lint_schema_verified(&schema, &tight);

    let synthetic: Vec<protoacc_verify::Violation> = [
        (
            protoacc_verify::Property::SlotOverlap,
            "slot [8, 16) for field 2 aliases slot [8, 16) for field 3",
        ),
        (
            protoacc_verify::Property::DispatchTotality,
            "dense table resolves undefined field number 7",
        ),
        (
            protoacc_verify::Property::EntryConsistency,
            "field 2 op: schema implies Varint64, table holds Fixed64",
        ),
        (
            protoacc_verify::Property::AdtEquivalence,
            "field 2 hw offset 24 != sw offset 16",
        ),
    ]
    .into_iter()
    .map(|(property, detail)| protoacc_verify::Violation {
        property,
        type_name: "Node".to_string(),
        detail: detail.to_string(),
    })
    .collect();
    report
        .diagnostics
        .extend(violations_to_diagnostics(&synthetic, &tight));
    let json = report.render_json();

    let golden_path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/golden/verify_report.json"
    );
    if std::env::var_os("PROTOACC_LINT_BLESS").is_some() {
        std::fs::write(golden_path, &json).unwrap();
        return;
    }
    let golden = std::fs::read_to_string(golden_path)
        .expect("golden file missing; bless with PROTOACC_LINT_BLESS=1");
    assert_eq!(
        json, golden,
        "verify JSON report drifted from the golden file; if intentional, \
         re-bless (and bump SCHEMA_VERSION on breaking changes)"
    );
    for code in ["PA016", "PA017", "PA018", "PA019", "PA020"] {
        assert!(
            golden.contains(&format!("\"code\": \"{code}\"")),
            "golden must cover {code}"
        );
    }
}

#[test]
fn golden_file_is_current_schema_version() {
    let golden = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/golden/report.json"
    ))
    .unwrap();
    assert!(golden.contains(&format!(
        "\"schema_version\": {}",
        protoacc_lint::SCHEMA_VERSION
    )));
}
