//! The six service profiles behind bench0..bench5.
//!
//! The paper selects the five heaviest deserialization users and five
//! heaviest serialization users fleet-wide; the published suite has six
//! benchmarks. The profiles here are synthetic stand-ins, each stressing a
//! workload class hyperscale services are known for, spanning the regimes
//! the fleet study surfaced (varint-dominated small messages through
//! blob-dominated storage rows).

use crate::ShapeParams;

/// A named service profile: the fitted shape parameters plus identity.
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceProfile {
    /// Benchmark index (0..=5).
    pub index: usize,
    /// Descriptive name.
    pub name: &'static str,
    /// The fitted distribution.
    pub shape: ShapeParams,
}

impl ServiceProfile {
    /// The profile for `bench<i>`.
    ///
    /// # Panics
    ///
    /// Panics if `index > 5`.
    pub fn bench(index: usize) -> ServiceProfile {
        let (name, shape) = match index {
            // Ads/query serving: many tiny varint+enum messages, deep
            // nesting, sparse presence.
            0 => (
                "ads-serving",
                ShapeParams {
                    type_weights: [0.22, 0.18, 0.08, 0.04, 0.12, 0.16, 0.02, 0.03, 0.12, 0.03],
                    mean_fields: 14.0,
                    populated_fraction: 0.35,
                    mean_string_len: 18.0,
                    long_string_fraction: 0.01,
                    submessage_fraction: 0.18,
                    max_depth: 6,
                    repeated_fraction: 0.10,
                    mean_repeated_len: 3.0,
                    number_gap_fraction: 0.5,
                },
            ),
            // Web search indexing: document snippets, long strings.
            1 => (
                "search-indexing",
                ShapeParams {
                    type_weights: [0.10, 0.08, 0.05, 0.02, 0.04, 0.06, 0.02, 0.03, 0.45, 0.15],
                    mean_fields: 10.0,
                    populated_fraction: 0.6,
                    mean_string_len: 420.0,
                    long_string_fraction: 0.12,
                    submessage_fraction: 0.10,
                    max_depth: 4,
                    repeated_fraction: 0.14,
                    mean_repeated_len: 4.0,
                    number_gap_fraction: 0.3,
                },
            ),
            // Storage/log rows: large opaque blobs, flat schemas.
            2 => (
                "storage-rows",
                ShapeParams {
                    type_weights: [0.08, 0.10, 0.06, 0.02, 0.02, 0.04, 0.01, 0.02, 0.20, 0.45],
                    mean_fields: 7.0,
                    populated_fraction: 0.8,
                    mean_string_len: 2600.0,
                    long_string_fraction: 0.25,
                    submessage_fraction: 0.04,
                    max_depth: 2,
                    repeated_fraction: 0.08,
                    mean_repeated_len: 2.0,
                    number_gap_fraction: 0.2,
                },
            ),
            // ML feature stores: packed repeated floats/doubles.
            3 => (
                "ml-features",
                ShapeParams {
                    type_weights: [0.10, 0.08, 0.06, 0.02, 0.03, 0.05, 0.28, 0.24, 0.10, 0.04],
                    mean_fields: 9.0,
                    populated_fraction: 0.7,
                    mean_string_len: 24.0,
                    long_string_fraction: 0.02,
                    submessage_fraction: 0.08,
                    max_depth: 3,
                    repeated_fraction: 0.45,
                    mean_repeated_len: 24.0,
                    number_gap_fraction: 0.25,
                },
            ),
            // RPC control/metadata: small strings, enums, booleans.
            4 => (
                "rpc-metadata",
                ShapeParams {
                    type_weights: [0.16, 0.10, 0.08, 0.02, 0.14, 0.14, 0.01, 0.02, 0.28, 0.05],
                    mean_fields: 18.0,
                    populated_fraction: 0.3,
                    mean_string_len: 32.0,
                    long_string_fraction: 0.02,
                    submessage_fraction: 0.14,
                    max_depth: 5,
                    repeated_fraction: 0.08,
                    mean_repeated_len: 3.0,
                    number_gap_fraction: 0.6,
                },
            ),
            // Analytics rows: wide mixed-type records.
            5 => (
                "analytics-rows",
                ShapeParams {
                    type_weights: [0.14, 0.14, 0.10, 0.04, 0.06, 0.08, 0.06, 0.10, 0.20, 0.08],
                    mean_fields: 30.0,
                    populated_fraction: 0.55,
                    mean_string_len: 64.0,
                    long_string_fraction: 0.05,
                    submessage_fraction: 0.10,
                    max_depth: 3,
                    repeated_fraction: 0.16,
                    mean_repeated_len: 6.0,
                    number_gap_fraction: 0.35,
                },
            ),
            other => panic!("HyperProtoBench has benchmarks 0..=5, not {other}"),
        };
        ServiceProfile { index, name, shape }
    }

    /// All six profiles.
    pub fn all() -> Vec<ServiceProfile> {
        (0..crate::BENCH_COUNT).map(ServiceProfile::bench).collect()
    }

    /// The benchmark's display label (`bench0`..`bench5`).
    pub fn label(&self) -> String {
        format!("bench{}", self.index)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn six_distinct_profiles() {
        let all = ServiceProfile::all();
        assert_eq!(all.len(), 6);
        for (i, p) in all.iter().enumerate() {
            assert_eq!(p.index, i);
            assert_eq!(p.label(), format!("bench{i}"));
            let total: f64 = p.shape.type_weights.iter().sum();
            assert!(
                (total - 1.0).abs() < 0.01,
                "{}: weights sum {total}",
                p.name
            );
        }
        // Profiles genuinely differ.
        assert_ne!(all[0].shape, all[2].shape);
    }

    #[test]
    fn profiles_span_the_fleet_regimes() {
        let all = ServiceProfile::all();
        // Storage rows are blob-heavy; ads are varint-heavy.
        assert!(all[2].shape.bytes_like_weight() > 0.6);
        assert!(all[0].shape.bytes_like_weight() < 0.2);
        // ML features lean on repeated numerics.
        assert!(all[3].shape.repeated_fraction > 0.4);
    }

    #[test]
    #[should_panic(expected = "0..=5")]
    fn index_out_of_range_panics() {
        ServiceProfile::bench(6);
    }
}
