//! Cross-system wire compatibility: all three implementations (reference
//! codec, instrumented CPU codec, accelerator) interoperate on the same
//! bytes — the paper's "wire-compatible with standard protobufs" claim,
//! exercised with HyperProtoBench-generated workloads.

use protoacc_suite::accel::{AccelConfig, ProtoAccelerator};
use protoacc_suite::cpu::{CostTable, SoftwareCodec};
use protoacc_suite::hyperbench::{Generator, ServiceProfile};
use protoacc_suite::mem::{MemConfig, Memory};
use protoacc_suite::runtime::{
    object, reference, write_adts, BumpArena, MessageLayouts, MessageValue,
};
use protoacc_suite::schema::{MessageId, Schema};

struct Rig {
    schema: Schema,
    layouts: MessageLayouts,
    type_id: MessageId,
    messages: Vec<MessageValue>,
}

fn rig(service: usize, seed: u64) -> Rig {
    let bench = Generator::new(ServiceProfile::bench(service), seed).generate(8);
    Rig {
        layouts: MessageLayouts::compute(&bench.schema),
        schema: bench.schema,
        type_id: bench.type_id,
        messages: bench.messages,
    }
}

/// Serialize with the CPU codec, deserialize with the accelerator.
#[test]
fn cpu_serializes_accel_deserializes() {
    for service in 0..6 {
        let r = rig(service, 0xC0_5E_ED + service as u64);
        let boom = CostTable::boom();
        let codec = SoftwareCodec::new(&boom);
        let mut mem = Memory::new(MemConfig::default());
        let mut setup = BumpArena::new(0x1_0000, 1 << 26);
        let adts = write_adts(&r.schema, &r.layouts, &mut mem.data, &mut setup).unwrap();
        let mut accel = ProtoAccelerator::new(AccelConfig::default());
        accel.deser_assign_arena(0x2_0000_0000, 1 << 28);
        let layout = r.layouts.layout(r.type_id);
        for (i, m) in r.messages.iter().enumerate() {
            let obj =
                object::write_message(&mut mem.data, &r.schema, &r.layouts, &mut setup, m).unwrap();
            let out = 0x4000_0000 + (i as u64) * (1 << 22);
            let (_, len) = codec
                .serialize(&mut mem, &r.schema, &r.layouts, r.type_id, obj, out)
                .unwrap();
            let dest = setup.alloc(layout.object_size(), 8).unwrap();
            accel.deser_info(adts.addr(r.type_id), dest);
            accel
                .do_proto_deser(&mut mem, out, len, layout.min_field())
                .unwrap();
            let back =
                object::read_message(&mem.data, &r.schema, &r.layouts, r.type_id, dest).unwrap();
            assert!(back.bits_eq(m), "bench{service} message {i}");
        }
    }
}

/// Serialize with the accelerator, deserialize with the CPU codec.
#[test]
fn accel_serializes_cpu_deserializes() {
    for service in 0..6 {
        let r = rig(service, 0xACCE1 + service as u64);
        let xeon = CostTable::xeon();
        let codec = SoftwareCodec::new(&xeon);
        let mut mem = Memory::new(MemConfig::default());
        let mut setup = BumpArena::new(0x1_0000, 1 << 26);
        let adts = write_adts(&r.schema, &r.layouts, &mut mem.data, &mut setup).unwrap();
        let mut accel = ProtoAccelerator::new(AccelConfig::default());
        accel.ser_assign_arena(0x4000_0000, 1 << 28, 0x7000_0000, 1 << 16);
        let layout = r.layouts.layout(r.type_id);
        let mut arena = BumpArena::new(0x2_0000_0000, 1 << 28);
        for (i, m) in r.messages.iter().enumerate() {
            let obj =
                object::write_message(&mut mem.data, &r.schema, &r.layouts, &mut setup, m).unwrap();
            accel.ser_info(
                layout.hasbits_offset(),
                layout.min_field(),
                layout.max_field(),
            );
            let run = accel
                .do_proto_ser(&mut mem, adts.addr(r.type_id), obj)
                .unwrap();
            // Reference check: byte-identical output.
            let expect = reference::encode(m, &r.schema).unwrap();
            assert_eq!(
                mem.data.read_vec(run.out_addr, run.out_len as usize),
                expect,
                "bench{service} message {i} bytes"
            );
            let dest = arena.alloc(layout.object_size(), 8).unwrap();
            codec
                .deserialize(
                    &mut mem,
                    &r.schema,
                    &r.layouts,
                    r.type_id,
                    run.out_addr,
                    run.out_len,
                    dest,
                    &mut arena,
                )
                .unwrap();
            let back =
                object::read_message(&mem.data, &r.schema, &r.layouts, r.type_id, dest).unwrap();
            assert!(back.bits_eq(m), "bench{service} message {i}");
        }
    }
}

/// All three serializers produce identical bytes for the same message.
#[test]
fn all_serializers_are_byte_identical() {
    let r = rig(5, 0x1DEA7);
    let boom = CostTable::boom();
    let codec = SoftwareCodec::new(&boom);
    let mut mem = Memory::new(MemConfig::default());
    let mut setup = BumpArena::new(0x1_0000, 1 << 26);
    let adts = write_adts(&r.schema, &r.layouts, &mut mem.data, &mut setup).unwrap();
    let mut accel = ProtoAccelerator::new(AccelConfig::default());
    accel.ser_assign_arena(0x4000_0000, 1 << 28, 0x7000_0000, 1 << 16);
    let layout = r.layouts.layout(r.type_id);
    for m in &r.messages {
        let expect = reference::encode(m, &r.schema).unwrap();
        let obj =
            object::write_message(&mut mem.data, &r.schema, &r.layouts, &mut setup, m).unwrap();
        let (_, len) = codec
            .serialize(&mut mem, &r.schema, &r.layouts, r.type_id, obj, 0x5000_0000)
            .unwrap();
        assert_eq!(mem.data.read_vec(0x5000_0000, len as usize), expect);
        accel.ser_info(
            layout.hasbits_offset(),
            layout.min_field(),
            layout.max_field(),
        );
        let run = accel
            .do_proto_ser(&mut mem, adts.addr(r.type_id), obj)
            .unwrap();
        assert_eq!(
            mem.data.read_vec(run.out_addr, run.out_len as usize),
            expect
        );
    }
}
