//! An RPC-style exchange: a client serializes requests, the "network" moves
//! the bytes, a server deserializes, handles, and responds — comparing the
//! software baseline against the accelerated SoC end-to-end.
//!
//! The paper's §3.4 insight: only a minority of (de)serialization cycles are
//! RPC-related, but RPC is still the canonical motivating flow. Run with:
//! `cargo run --release --example rpc_service`

use protoacc_suite::accel::{AccelConfig, ProtoAccelerator};
use protoacc_suite::cpu::{CostTable, SoftwareCodec};
use protoacc_suite::mem::{MemConfig, Memory};
use protoacc_suite::runtime::{object, write_adts, BumpArena, MessageLayouts, MessageValue, Value};
use protoacc_suite::schema::{parse_proto, Schema};

const REQUESTS: usize = 200;

fn build_request(schema: &Schema, i: usize) -> MessageValue {
    let req_id = schema.id_by_name("SearchRequest").expect("defined");
    let mut m = MessageValue::new(req_id);
    m.set_unchecked(1, Value::Str(format!("query terms number {i}")));
    m.set_unchecked(2, Value::Int32((i % 10) as i32));
    m.set_unchecked(3, Value::Int32(25));
    m.set_unchecked(7, Value::UInt64(0xfeed_0000 + i as u64));
    m
}

fn build_response(schema: &Schema, request: &MessageValue, i: usize) -> MessageValue {
    let resp_id = schema.id_by_name("SearchResponse").expect("defined");
    let hit_id = schema.id_by_name("SearchResponse.Hit").expect("defined");
    let mut resp = MessageValue::new(resp_id);
    resp.set_unchecked(1, Value::UInt64(0xfeed_0000 + i as u64));
    let query = match request.get_single(1) {
        Some(Value::Str(s)) => s.clone(),
        _ => String::new(),
    };
    let hits = (0..5)
        .map(|h| {
            let mut hit = MessageValue::new(hit_id);
            hit.set_unchecked(1, Value::Str(format!("result {h} for '{query}'")));
            hit.set_unchecked(2, Value::Float(1.0 / (h as f32 + 1.0)));
            hit.set_unchecked(3, Value::Str("x".repeat(120 + 40 * h)));
            Value::Message(hit)
        })
        .collect();
    resp.set_repeated(2, hits);
    resp
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let schema = parse_proto(
        r#"
        syntax = "proto2";
        message SearchRequest {
            required string query = 1;
            optional int32 page = 2;
            optional int32 results_per_page = 3;
            optional uint64 trace_id = 7;
        }
        message SearchResponse {
            message Hit {
                required string url = 1;
                optional float score = 2;
                optional string snippet = 3;
            }
            optional uint64 trace_id = 1;
            repeated Hit hits = 2;
        }
        "#,
    )?;
    let layouts = MessageLayouts::compute(&schema);
    let req_id = schema.id_by_name("SearchRequest").expect("defined");
    let resp_id = schema.id_by_name("SearchResponse").expect("defined");

    // ---- Software path (riscv-boom) ----
    let boom = CostTable::boom();
    let codec = SoftwareCodec::new(&boom);
    let mut mem = Memory::new(boom.mem);
    let mut arena = BumpArena::new(0x1000_0000, 1 << 28);
    let mut sw_cycles = 0u64;
    let mut bytes_moved = 0u64;
    for i in 0..REQUESTS {
        // Client side: build + serialize the request.
        let request = build_request(&schema, i);
        let req_obj =
            object::write_message(&mut mem.data, &schema, &layouts, &mut arena, &request)?;
        let (run, req_len) =
            codec.serialize(&mut mem, &schema, &layouts, req_id, req_obj, 0x2000_0000)?;
        sw_cycles += run.cycles;
        // Server side: deserialize, handle, serialize the response.
        let dest = arena.alloc(layouts.layout(req_id).object_size(), 8)?;
        let run = codec.deserialize(
            &mut mem,
            &schema,
            &layouts,
            req_id,
            0x2000_0000,
            req_len,
            dest,
            &mut arena,
        )?;
        sw_cycles += run.cycles;
        let seen = object::read_message(&mem.data, &schema, &layouts, req_id, dest)?;
        let response = build_response(&schema, &seen, i);
        let resp_obj =
            object::write_message(&mut mem.data, &schema, &layouts, &mut arena, &response)?;
        let (run, resp_len) =
            codec.serialize(&mut mem, &schema, &layouts, resp_id, resp_obj, 0x3000_0000)?;
        sw_cycles += run.cycles;
        // Client side: deserialize the response.
        let dest = arena.alloc(layouts.layout(resp_id).object_size(), 8)?;
        let run = codec.deserialize(
            &mut mem,
            &schema,
            &layouts,
            resp_id,
            0x3000_0000,
            resp_len,
            dest,
            &mut arena,
        )?;
        sw_cycles += run.cycles;
        bytes_moved += req_len + resp_len;
    }

    // ---- Accelerated path (riscv-boom-accel) ----
    let mut mem = Memory::new(MemConfig::default());
    let mut setup = BumpArena::new(0x1_0000, 1 << 24);
    let adts = write_adts(&schema, &layouts, &mut mem.data, &mut setup)?;
    let mut accel = ProtoAccelerator::new(AccelConfig::default());
    let mut arena = BumpArena::new(0x1000_0000, 1 << 28);
    let mut accel_cycles = 0u64;
    for i in 0..REQUESTS {
        accel.deser_assign_arena(0x8000_0000 + (i as u64) * (1 << 20), 1 << 20);
        accel.ser_assign_arena(0x2000_0000, 1 << 20, 0x6000_0000, 1 << 12);
        let request = build_request(&schema, i);
        let req_obj =
            object::write_message(&mut mem.data, &schema, &layouts, &mut arena, &request)?;
        let req_layout = layouts.layout(req_id);
        accel.ser_info(
            req_layout.hasbits_offset(),
            req_layout.min_field(),
            req_layout.max_field(),
        );
        let ser = accel.do_proto_ser(&mut mem, adts.addr(req_id), req_obj)?;
        let dest = arena.alloc(req_layout.object_size(), 8)?;
        accel.deser_info(adts.addr(req_id), dest);
        let deser =
            accel.do_proto_deser(&mut mem, ser.out_addr, ser.out_len, req_layout.min_field())?;
        let seen = object::read_message(&mem.data, &schema, &layouts, req_id, dest)?;
        let response = build_response(&schema, &seen, i);
        let resp_obj =
            object::write_message(&mut mem.data, &schema, &layouts, &mut arena, &response)?;
        let resp_layout = layouts.layout(resp_id);
        accel.ser_info(
            resp_layout.hasbits_offset(),
            resp_layout.min_field(),
            resp_layout.max_field(),
        );
        let ser2 = accel.do_proto_ser(&mut mem, adts.addr(resp_id), resp_obj)?;
        let dest = arena.alloc(resp_layout.object_size(), 8)?;
        accel.deser_info(adts.addr(resp_id), dest);
        let deser2 = accel.do_proto_deser(
            &mut mem,
            ser2.out_addr,
            ser2.out_len,
            resp_layout.min_field(),
        )?;
        accel_cycles += ser.cycles + deser.cycles + ser2.cycles + deser2.cycles;
    }

    println!("RPC exchange: {REQUESTS} request/response pairs, {bytes_moved} wire bytes total");
    println!(
        "riscv-boom (software codec): {sw_cycles} cycles ({:.3} ms at 2 GHz)",
        sw_cycles as f64 / 2e9 * 1e3
    );
    println!(
        "riscv-boom-accel:            {accel_cycles} cycles ({:.3} ms at 2 GHz)",
        accel_cycles as f64 / 2e9 * 1e3
    );
    println!(
        "end-to-end (de)serialization speedup: {:.2}x",
        sw_cycles as f64 / accel_cycles as f64
    );
    Ok(())
}
