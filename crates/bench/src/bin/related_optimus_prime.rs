//! Related-work comparison: protoacc vs an Optimus Prime-style design
//! (Sections 3.7 and 6).
//!
//! Optimus Prime programs its serializer with per-message-instance tables
//! maintained by code injected into every setter; protoacc uses fixed
//! per-type ADTs plus the existing hasbits. This binary measures both
//! halves of the trade on the Figure 11b set and a HyperProtoBench service:
//! accelerator-side serialization cycles and total cycles including the
//! CPU-side table maintenance. protoacc wins on both in this model — the
//! serial table walk loses the FSU parallelism, and the injected setter
//! code costs more than the whole accelerated serialization — matching
//! §3.7's density analysis.

use hyperprotobench::{Generator, ServiceProfile};
use protoacc::priorwork::{write_instance_table, OpSerializer};
use protoacc::ser::memwriter::ReverseWriter;
use protoacc::{AccelConfig, ProtoAccelerator};
use protoacc_bench::ubench::nonalloc_workloads;
use protoacc_bench::{geomean, Workload};
use protoacc_mem::{MemConfig, Memory};
use protoacc_runtime::{object, reference, write_adts, BumpArena, MessageLayouts};

/// Per-entry CPU bookkeeping on top of the 16 B entry write (BOOM-class).
const SETTER_OVERHEAD: u64 = 6;

struct Comparison {
    protoacc_accel: u64,
    op_accel: u64,
    op_cpu: u64,
}

fn compare(workload: &Workload) -> Comparison {
    let layouts = MessageLayouts::compute(&workload.schema);
    let layout = layouts.layout(workload.type_id);

    // protoacc path.
    let mut mem = Memory::new(MemConfig::default());
    let mut setup = BumpArena::new(0x1_0000, 1 << 26);
    let adts = write_adts(&workload.schema, &layouts, &mut mem.data, &mut setup).unwrap();
    let mut accel = ProtoAccelerator::new(AccelConfig::default());
    accel.ser_assign_arena(0x4000_0000, 1 << 28, 0x7000_0000, 1 << 16);
    let mut protoacc_accel = 0u64;
    let mut expected = Vec::new();
    let mut objects = Vec::new();
    for m in &workload.messages {
        let obj = object::write_message(&mut mem.data, &workload.schema, &layouts, &mut setup, m)
            .unwrap();
        objects.push(obj);
        expected.push(reference::encode(m, &workload.schema).unwrap());
    }
    for (i, &obj) in objects.iter().enumerate() {
        accel.ser_info(
            layout.hasbits_offset(),
            layout.min_field(),
            layout.max_field(),
        );
        let run = accel
            .do_proto_ser(&mut mem, adts.addr(workload.type_id), obj)
            .unwrap();
        assert_eq!(
            mem.data.read_vec(run.out_addr, run.out_len as usize),
            expected[i]
        );
        protoacc_accel += run.cycles;
    }

    // Optimus Prime path: same objects in a fresh machine, CPU builds
    // per-instance tables, the table-driven unit serializes.
    let mut mem = Memory::new(MemConfig::default());
    let mut setup = BumpArena::new(0x1_0000, 1 << 26);
    let _adts = write_adts(&workload.schema, &layouts, &mut mem.data, &mut setup).unwrap();
    let mut objects = Vec::new();
    for m in &workload.messages {
        objects.push(
            object::write_message(&mut mem.data, &workload.schema, &layouts, &mut setup, m)
                .unwrap(),
        );
    }
    let mut op = OpSerializer::new(AccelConfig::default());
    let mut writer = ReverseWriter::new(0x4000_0000, 1 << 28, 16);
    let mut op_accel = 0u64;
    let mut op_cpu = 0u64;
    for (i, &obj) in objects.iter().enumerate() {
        let build = write_instance_table(
            &mut mem,
            &workload.schema,
            &layouts,
            workload.type_id,
            obj,
            &mut setup,
            SETTER_OVERHEAD,
        )
        .unwrap();
        op_cpu += build.cpu_cycles;
        let run = op
            .run(
                &mut mem,
                &mut writer,
                &workload.schema,
                &layouts,
                workload.type_id,
                build.table_addr,
            )
            .unwrap();
        assert_eq!(
            mem.data.read_vec(run.out_addr, run.out_len as usize),
            expected[i],
            "{} message {i}: OP output must be byte-identical",
            workload.name
        );
        op_accel += run.cycles;
    }
    Comparison {
        protoacc_accel,
        op_accel,
        op_cpu,
    }
}

fn main() {
    println!("Related work: protoacc (fixed ADTs + hasbits) vs Optimus Prime-style");
    println!("(per-instance tables); serialization cycles per workload pass\n");
    println!(
        "{:<16} {:>14} {:>12} {:>12} {:>14} {:>12}",
        "Workload", "protoacc", "OP accel", "OP cpu", "OP total", "net winner"
    );
    let mut ratios = Vec::new();
    let mut workloads = nonalloc_workloads();
    workloads.truncate(6); // varint-0..5 are representative; keep runtime short
    let bench5 = Generator::new(ServiceProfile::bench(5), 0x0F).generate(16);
    workloads.push(Workload {
        name: "bench5".into(),
        schema: bench5.schema,
        type_id: bench5.type_id,
        messages: bench5.messages,
    });
    for w in &workloads {
        let c = compare(w);
        let op_total = c.op_accel + c.op_cpu;
        let winner = if op_total < c.protoacc_accel {
            "OP"
        } else {
            "protoacc"
        };
        ratios.push(op_total as f64 / c.protoacc_accel as f64);
        println!(
            "{:<16} {:>14} {:>12} {:>12} {:>14} {:>12}",
            w.name, c.protoacc_accel, c.op_accel, c.op_cpu, op_total, winner
        );
    }
    println!();
    println!(
        "geomean OP-total / protoacc: {:.2}x — the per-instance tables' CPU-side cost \
         outweighs the simpler accelerator frontend, as Section 3.7's density analysis \
         predicts for fleet-typical messages",
        geomean(&ratios)
    );
}
