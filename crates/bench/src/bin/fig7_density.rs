//! Regenerates Figure 7: field-number usage density distribution, weighted
//! by observed messages, plus the §3.7 programming-interface comparison.

use protoacc_fleet::density::{
    aggregate_interface_cost, density_histogram, fraction_favoring_protoacc,
};
use protoacc_fleet::protobufz::ShapeModel;
use xrand::StdRng;

fn main() {
    let model = ShapeModel::google_2021();
    let mut rng = StdRng::seed_from_u64(0xF167);
    let samples = model.sample_population(&mut rng, 100_000);

    println!("Figure 7: field-number usage density distribution");
    println!("{:<10} {:>14}", "Density", "% of messages");
    let hist = density_histogram(&samples);
    for (i, share) in hist.iter().enumerate() {
        println!("{:<10.2} {:>13.2}%", i as f64 * 0.05, share * 100.0);
    }
    println!();
    println!(
        "messages with density > 1/64 (favoring protoacc's ADTs + sparse hasbits): \
         {:.1}% (paper: >=92%)",
        fraction_favoring_protoacc(&samples) * 100.0
    );
    let (prior, ours) = aggregate_interface_cost(&samples);
    println!(
        "aggregate table state: prior work writes {prior} bits; protoacc reads {ours} bits \
         ({:.1}x less)",
        prior as f64 / ours as f64
    );
}
