//! Field-number usage density (Section 3.7, Figure 7).
//!
//! Density = (number of present fields in a message instance) divided by
//! (the range of defined field numbers of its type). The paper shows that a
//! density above 1/64 favors protoacc's sparse-hasbits design over the prior
//! work's per-present-field schema tables; at least 92% of observed messages
//! fleet-wide clear that bar.

use crate::MessageDescriptor;

/// The crossover density at which protoacc's design (one extra bit read per
/// defined field number) beats prior work's 64 bits written per present
/// field.
pub const CROSSOVER_DENSITY: f64 = 1.0 / 64.0;

/// Bucket edges used by Figure 7: densities are reported in 0.05-wide bins
/// from 0.00 to 1.00 inclusive.
pub const DENSITY_BUCKETS: usize = 21;

/// Computes usage density for a message instance.
///
/// `present_fields` is the number of fields with values set; the span comes
/// from the message type's defined field-number range.
///
/// Returns 0.0 for messages with no defined fields.
///
/// ```rust
/// use protoacc_schema::{usage_density, SchemaBuilder, FieldType};
/// let mut b = SchemaBuilder::new();
/// b.define("M", |m| {
///     m.optional("a", FieldType::Bool, 1)
///         .optional("b", FieldType::Bool, 10);
/// });
/// let schema = b.build()?;
/// let m = schema.message_by_name("M").unwrap();
/// assert_eq!(usage_density(m, 2), 0.2); // 2 present / span 10
/// # Ok::<(), protoacc_schema::SchemaError>(())
/// ```
pub fn usage_density(descriptor: &MessageDescriptor, present_fields: usize) -> f64 {
    let span = descriptor.field_number_span();
    if span == 0 {
        return 0.0;
    }
    present_fields as f64 / span as f64
}

/// Maps a density value onto its Figure 7 histogram bucket (0..DENSITY_BUCKETS).
///
/// Bucket `i` covers `[i * 0.05 - 0.025, i * 0.05 + 0.025)`; densities are
/// clamped to `[0, 1]` first, so bucket 0 is labeled "0.00" and bucket 20
/// "1.00" as in the paper.
pub fn density_bucket(density: f64) -> usize {
    let clamped = density.clamp(0.0, 1.0);
    ((clamped * 20.0).round() as usize).min(DENSITY_BUCKETS - 1)
}

/// Whether a message instance's density favors protoacc's sparse-hasbits
/// programming interface over prior work's dynamic schema tables.
///
/// Quantitatively (Section 3.7): prior work writes 64 bits per present field;
/// protoacc reads 1 bit per defined field number. Density > 1/64 favors
/// protoacc.
pub fn favors_sparse_hasbits(density: f64) -> bool {
    density > CROSSOVER_DENSITY
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FieldType, SchemaBuilder};

    fn message_with_span(span: u32) -> crate::Schema {
        let mut b = SchemaBuilder::new();
        b.define("M", |m| {
            m.optional("lo", FieldType::Bool, 1)
                .optional("hi", FieldType::Bool, span);
        });
        b.build().unwrap()
    }

    #[test]
    fn density_is_present_over_span() {
        let schema = message_with_span(100);
        let m = schema.message_by_name("M").unwrap();
        assert_eq!(usage_density(m, 1), 0.01);
        assert_eq!(usage_density(m, 50), 0.5);
        assert_eq!(usage_density(m, 100), 1.0);
    }

    #[test]
    fn crossover_matches_paper() {
        // Density 1/64 sits in the "0.00" bucket of Figure 7, and anything
        // above it favors the protoacc design.
        assert!(!favors_sparse_hasbits(CROSSOVER_DENSITY));
        assert!(favors_sparse_hasbits(CROSSOVER_DENSITY + 1e-9));
        assert_eq!(density_bucket(CROSSOVER_DENSITY), 0);
    }

    #[test]
    fn buckets_cover_unit_interval() {
        assert_eq!(density_bucket(0.0), 0);
        assert_eq!(density_bucket(0.024), 0);
        assert_eq!(density_bucket(0.025), 1);
        assert_eq!(density_bucket(0.05), 1);
        assert_eq!(density_bucket(0.5), 10);
        assert_eq!(density_bucket(1.0), 20);
        // Out-of-range inputs clamp.
        assert_eq!(density_bucket(-3.0), 0);
        assert_eq!(density_bucket(7.0), 20);
    }

    #[test]
    fn empty_message_density_is_zero() {
        let mut b = SchemaBuilder::new();
        b.define("E", |_| {});
        let schema = b.build().unwrap();
        assert_eq!(usage_density(schema.message_by_name("E").unwrap(), 0), 0.0);
    }
}
