//! Read-modify-write configuration updates using the Section 7 ops unit:
//! a base config object is kept in memory, delta messages arrive over the
//! wire, and each update is `deserialize(delta)` + `merge(base, delta)` —
//! all on the accelerator, with the software baseline for comparison.
//!
//! Run with: `cargo run --release --example config_updates`

use protoacc_suite::accel::{AccelConfig, ProtoAccelerator};
use protoacc_suite::cpu::{CostTable, SoftwareCodec};
use protoacc_suite::mem::{MemConfig, Memory};
use protoacc_suite::runtime::{
    object, reference, text, write_adts, BumpArena, MessageLayouts, MessageValue, Value,
};
use protoacc_suite::schema::parse_proto;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let schema = parse_proto(
        r#"
        syntax = "proto2";
        message ServerConfig {
            optional uint32 max_connections = 1;
            optional uint32 timeout_ms = 2;
            optional string log_level = 3;
            repeated string allowed_origins = 4;
            message Tls {
                optional bool enabled = 1;
                optional string cert_path = 2;
            }
            optional Tls tls = 9;
        }
        "#,
    )?;
    let cfg_id = schema.id_by_name("ServerConfig").unwrap();
    let tls_id = schema.id_by_name("ServerConfig.Tls").unwrap();
    let layouts = MessageLayouts::compute(&schema);
    let layout = layouts.layout(cfg_id);

    // Base config.
    let mut base = MessageValue::new(cfg_id);
    base.set(1, Value::UInt32(1024))?;
    base.set(2, Value::UInt32(5000))?;
    base.set(3, Value::Str("info".into()))?;
    base.set_repeated(4, vec![Value::Str("https://a.example".into())]);

    // A stream of deltas: tighten timeout, add an origin, enable TLS.
    let mut tls = MessageValue::new(tls_id);
    tls.set(1, Value::Bool(true))?;
    tls.set(2, Value::Str("/etc/certs/server.pem".into()))?;
    let deltas: Vec<MessageValue> = vec![
        {
            let mut d = MessageValue::new(cfg_id);
            d.set(2, Value::UInt32(2500))?;
            d
        },
        {
            let mut d = MessageValue::new(cfg_id);
            d.set_repeated(4, vec![Value::Str("https://b.example".into())]);
            d
        },
        {
            let mut d = MessageValue::new(cfg_id);
            d.set(3, Value::Str("debug".into()))?;
            d.set(9, Value::Message(tls))?;
            d
        },
    ];

    // ---- Accelerated pipeline ----
    let mut mem = Memory::new(MemConfig::default());
    let mut setup = BumpArena::new(0x1_0000, 1 << 22);
    let adts = write_adts(&schema, &layouts, &mut mem.data, &mut setup)?;
    let mut accel = ProtoAccelerator::new(AccelConfig::default());
    accel.deser_assign_arena(0x100_0000, 1 << 24);
    let base_obj = object::write_message(&mut mem.data, &schema, &layouts, &mut setup, &base)?;
    let mut accel_cycles = 0u64;
    for (i, delta) in deltas.iter().enumerate() {
        let wire = reference::encode(delta, &schema)?;
        let addr = 0x20_0000 + (i as u64) * 4096;
        mem.data.write_bytes(addr, &wire);
        // deserialize the delta…
        let delta_obj = setup.alloc(layout.object_size(), 8)?;
        accel.deser_info(adts.addr(cfg_id), delta_obj);
        let d = accel.do_proto_deser(&mut mem, addr, wire.len() as u64, layout.min_field())?;
        // …and merge it into the live config.
        let m = accel.do_proto_merge(&mut mem, adts.addr(cfg_id), base_obj, delta_obj)?;
        accel_cycles += d.cycles + m.cycles;
    }
    let final_accel = object::read_message(&mem.data, &schema, &layouts, cfg_id, base_obj)?;

    // ---- Software pipeline (riscv-boom) ----
    let boom = CostTable::boom();
    let codec = SoftwareCodec::new(&boom);
    let mut mem2 = Memory::new(boom.mem);
    let mut arena2 = BumpArena::new(0x100_0000, 1 << 24);
    let base_obj2 = object::write_message(&mut mem2.data, &schema, &layouts, &mut arena2, &base)?;
    let mut sw_cycles = 0u64;
    for (i, delta) in deltas.iter().enumerate() {
        let wire = reference::encode(delta, &schema)?;
        let addr = 0x20_0000 + (i as u64) * 4096;
        mem2.data.write_bytes(addr, &wire);
        let delta_obj = arena2.alloc(layout.object_size(), 8)?;
        let d = codec.deserialize(
            &mut mem2,
            &schema,
            &layouts,
            cfg_id,
            addr,
            wire.len() as u64,
            delta_obj,
            &mut arena2,
        )?;
        let m = codec.merge(
            &mut mem2,
            &schema,
            &layouts,
            cfg_id,
            base_obj2,
            delta_obj,
            &mut arena2,
        )?;
        sw_cycles += d.cycles + m.cycles;
    }
    let final_sw = object::read_message(&mem2.data, &schema, &layouts, cfg_id, base_obj2)?;

    // Both pipelines agree with the host-side reference semantics.
    let mut expect = base.clone();
    for d in &deltas {
        expect.merge_from(d);
    }
    assert!(final_accel.bits_eq(&expect));
    assert!(final_sw.bits_eq(&expect));

    println!("final config after {} deltas:", deltas.len());
    print!("{}", text::to_text(&final_accel, &schema));
    println!();
    println!("software (riscv-boom): {sw_cycles} cycles");
    println!("accelerated:           {accel_cycles} cycles");
    println!(
        "deserialize+merge pipeline speedup: {:.2}x",
        sw_cycles as f64 / accel_cycles as f64
    );
    Ok(())
}
