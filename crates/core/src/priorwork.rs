//! Prior-work comparator: an Optimus Prime-style serialization path
//! (Sections 3.7 and 6).
//!
//! Optimus Prime programs its accelerator with **dynamically constructed,
//! per-message-instance tables** of (type, address) entries — one entry per
//! populated field, written by code injected into every generated setter and
//! clear method. That buys the accelerator a simpler frontend (no hasbits
//! scan, no ADT loads: the table *is* the work list) at the price of
//! CPU-side table maintenance on the application's critical path —
//! conservatively 64 bits written per present field, per the paper's
//! comparison.
//!
//! This module models that design faithfully enough to race it against
//! protoacc:
//!
//! * [`write_instance_table`] — the CPU-side half: builds the per-instance
//!   table in guest memory (as the injected setter code would have,
//!   incrementally) and returns the cycles the *application* paid for it.
//! * [`OpSerializer`] — the accelerator-side half: serializes straight off
//!   the table, byte-identical to the reference encoder.
//!
//! The `related_optimus_prime` bench binary reports both halves; the paper's
//! §3.7 conclusion is that for fleet-typical densities the table
//! maintenance outweighs the simpler frontend.

use protoacc_mem::{AccessKind, Cycles, Memory};
use protoacc_runtime::{hasbits, BumpArena, MessageLayouts, SlotKind, TypeCode};
use protoacc_schema::{FieldType, MessageId, Schema};
use protoacc_wire::hw::CombVarintEncoder;
use protoacc_wire::{FieldKey, WireType};

use crate::ser::memwriter::ReverseWriter;
use crate::{AccelConfig, AccelError};

/// One 16-byte per-instance table entry: `[type_code u8][kind u8][field# u32
/// at +4][address u64 at +8]` (the paper's conservative 64-bit assumption
/// covers the address word; the header word carries type + number).
pub const ENTRY_BYTES: u64 = 16;

/// Entry kinds within the instance table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
enum EntryKind {
    Scalar = 0,
    StringObj = 1,
    RepeatedHeader = 2,
    /// Address points at the sub-message instance's own table.
    SubTable = 3,
}

/// CPU-side cost of maintaining the per-instance table, charged as the
/// injected setter code would have paid it (one entry write per populated
/// field, plus bookkeeping).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TableBuild {
    /// Guest address of the instance table.
    pub table_addr: u64,
    /// Number of entries (present fields, recursively including
    /// sub-message tables' own entries).
    pub entries: u64,
    /// CPU cycles the application paid (the cost protoacc avoids by fixing
    /// ADTs at load time).
    pub cpu_cycles: Cycles,
}

/// Builds the per-instance table for the populated object at `obj`.
///
/// `setter_overhead` is the per-entry CPU bookkeeping charge (index bump,
/// bounds check, branch) on top of the timed 16-byte entry write.
///
/// # Errors
///
/// Arena exhaustion.
#[allow(clippy::too_many_arguments)]
pub fn write_instance_table(
    mem: &mut Memory,
    schema: &Schema,
    layouts: &MessageLayouts,
    type_id: MessageId,
    obj: u64,
    arena: &mut BumpArena,
    setter_overhead: Cycles,
) -> Result<TableBuild, AccelError> {
    let layout = layouts.layout(type_id);
    let descriptor = schema.message(type_id);
    let present = hasbits::present_fields(&mem.data, layout, obj);
    // Table: one entry per present field, terminated by a zero entry.
    let table_addr = arena.alloc((present.len() as u64 + 1) * ENTRY_BYTES, 8)?;
    let mut build = TableBuild {
        table_addr,
        entries: 0,
        cpu_cycles: 0,
    };
    let mut cursor = table_addr;
    for number in present {
        let Some(field) = descriptor.field_by_number(number) else {
            continue;
        };
        let slot = layout.slot(number).expect("defined field");
        let slot_addr = obj + slot.offset;
        let (kind, addr) = match slot.kind {
            SlotKind::Scalar(_) => (EntryKind::Scalar, slot_addr),
            SlotKind::StringPtr => (EntryKind::StringObj, mem.data.read_u64(slot_addr)),
            SlotKind::RepeatedPtr => {
                // OP's tables expand repeated fields at set-time too; the
                // model keeps one header entry and lets the accelerator walk
                // elements (favoring OP slightly).
                (EntryKind::RepeatedHeader, mem.data.read_u64(slot_addr))
            }
            SlotKind::MessagePtr => {
                let sub_obj = mem.data.read_u64(slot_addr);
                let FieldType::Message(sub_id) = field.field_type() else {
                    continue;
                };
                let sub = write_instance_table(
                    mem,
                    schema,
                    layouts,
                    sub_id,
                    sub_obj,
                    arena,
                    setter_overhead,
                )?;
                build.entries += sub.entries;
                build.cpu_cycles += sub.cpu_cycles;
                (EntryKind::SubTable, sub.table_addr)
            }
        };
        let type_code = TypeCode::from_field_type(field.field_type());
        mem.data.write_u8(cursor, type_code as u8);
        mem.data.write_u8(cursor + 1, kind as u8);
        mem.data.write_u32(cursor + 4, number);
        mem.data.write_u64(cursor + 8, addr);
        build.cpu_cycles += mem
            .system
            .access(cursor, ENTRY_BYTES as usize, AccessKind::Write)
            + setter_overhead;
        build.entries += 1;
        cursor += ENTRY_BYTES;
    }
    // Explicit zero terminator (arena memory may be reused).
    mem.data.write_u8(cursor, 0);
    Ok(build)
}

/// Outcome of one Optimus Prime-style serialization.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OpSerRun {
    /// Accelerator cycles.
    pub cycles: Cycles,
    /// Output location.
    pub out_addr: u64,
    /// Output length.
    pub out_len: u64,
}

/// The table-driven serializer unit.
#[derive(Debug)]
pub struct OpSerializer {
    config: AccelConfig,
}

impl OpSerializer {
    /// Creates the unit.
    pub fn new(config: AccelConfig) -> Self {
        OpSerializer { config }
    }

    /// Serializes the message whose instance table is at `table_addr`,
    /// writing through `writer`. Output is byte-identical to the reference
    /// encoder.
    ///
    /// # Errors
    ///
    /// Output overflow or malformed table state.
    pub fn run(
        &mut self,
        mem: &mut Memory,
        writer: &mut ReverseWriter,
        schema: &Schema,
        layouts: &MessageLayouts,
        type_id: MessageId,
        table_addr: u64,
    ) -> Result<OpSerRun, AccelError> {
        let cursor_before = writer.cursor();
        let writer_before = writer.cycles();
        let mut cycles: Cycles = 0;
        self.ser_table(
            mem,
            writer,
            schema,
            layouts,
            type_id,
            table_addr,
            &mut cycles,
        )?;
        let out_addr = writer.cursor();
        Ok(OpSerRun {
            cycles: self.config.rocc_dispatch_cycles + cycles.max(writer.cycles() - writer_before),
            out_addr,
            out_len: cursor_before - out_addr,
        })
    }

    /// Walks the table in reverse entry order (entries were written in
    /// ascending field order, output builds high-to-low like protoacc's).
    #[allow(clippy::too_many_arguments)]
    fn ser_table(
        &mut self,
        mem: &mut Memory,
        writer: &mut ReverseWriter,
        schema: &Schema,
        layouts: &MessageLayouts,
        type_id: MessageId,
        table_addr: u64,
        cycles: &mut Cycles,
    ) -> Result<(), AccelError> {
        // Count entries (the real unit receives the count; charge one scan).
        let mut count = 0u64;
        while mem.data.read_u8(table_addr + count * ENTRY_BYTES) != 0 {
            count += 1;
        }
        *cycles +=
            mem.system
                .pipelined(table_addr, (count * ENTRY_BYTES) as usize, AccessKind::Read)
                + 1;
        let descriptor = schema.message(type_id);
        for i in (0..count).rev() {
            let entry = table_addr + i * ENTRY_BYTES;
            let type_code = TypeCode::from_raw(mem.data.read_u8(entry))
                .ok_or(AccelError::BadAdtEntry { field_number: 0 })?;
            let kind = mem.data.read_u8(entry + 1);
            let number = mem.data.read_u32(entry + 4);
            let addr = mem.data.read_u64(entry + 8);
            *cycles += 1; // entry dispatch — no typeInfo block, no hasbits
            let field = descriptor
                .field_by_number(number)
                .ok_or(AccelError::BadAdtEntry {
                    field_number: number,
                })?;
            match kind {
                k if k == EntryKind::Scalar as u8 => {
                    let size = type_code.scalar_size().expect("scalar entry");
                    *cycles += mem.system.access(addr, size as usize, AccessKind::Read);
                    let bits = read_bits(mem, addr, size);
                    emit_scalar(mem, writer, type_code, number, bits)?;
                    *cycles += 2;
                }
                k if k == EntryKind::StringObj as u8 => {
                    let data_ptr = mem.data.read_u64(addr);
                    let len = mem.data.read_u64(addr + 8);
                    *cycles += mem.system.access(addr, 16, AccessKind::Read);
                    *cycles += mem
                        .system
                        .pipelined(data_ptr, len as usize, AccessKind::Read);
                    let payload = mem.data.read_vec(data_ptr, len as usize);
                    writer.prepend(mem, &payload)?;
                    writer.prepend_varint(mem, len)?;
                    prepend_key(mem, writer, number, WireType::LengthDelimited)?;
                    *cycles += 2;
                }
                k if k == EntryKind::RepeatedHeader as u8 => {
                    *cycles += mem.system.access(addr, 16, AccessKind::Read);
                    let data = mem.data.read_u64(addr);
                    let n = mem.data.read_u64(addr + 8);
                    self.ser_repeated(
                        mem, writer, schema, layouts, field, type_code, data, n, cycles,
                    )?;
                }
                k if k == EntryKind::SubTable as u8 => {
                    let FieldType::Message(sub_id) = field.field_type() else {
                        return Err(AccelError::BadAdtEntry {
                            field_number: number,
                        });
                    };
                    let before = writer.cursor();
                    self.ser_table(mem, writer, schema, layouts, sub_id, addr, cycles)?;
                    let len = before - writer.cursor();
                    writer.prepend_varint(mem, len)?;
                    prepend_key(mem, writer, number, WireType::LengthDelimited)?;
                    *cycles += 2;
                }
                _ => {
                    return Err(AccelError::BadAdtEntry {
                        field_number: number,
                    })
                }
            }
        }
        Ok(())
    }

    #[allow(clippy::too_many_arguments)]
    fn ser_repeated(
        &mut self,
        mem: &mut Memory,
        writer: &mut ReverseWriter,
        schema: &Schema,
        layouts: &MessageLayouts,
        field: &protoacc_schema::FieldDescriptor,
        type_code: TypeCode,
        data: u64,
        count: u64,
        cycles: &mut Cycles,
    ) -> Result<(), AccelError> {
        match field.field_type() {
            FieldType::String | FieldType::Bytes => {
                for i in (0..count).rev() {
                    let str_obj = mem.data.read_u64(data + i * 8);
                    let data_ptr = mem.data.read_u64(str_obj);
                    let len = mem.data.read_u64(str_obj + 8);
                    *cycles += mem.system.access(data + i * 8, 8, AccessKind::Read)
                        + mem.system.access(str_obj, 16, AccessKind::Read)
                        + mem
                            .system
                            .pipelined(data_ptr, len as usize, AccessKind::Read)
                        + 2;
                    let payload = mem.data.read_vec(data_ptr, len as usize);
                    writer.prepend(mem, &payload)?;
                    writer.prepend_varint(mem, len)?;
                    prepend_key(mem, writer, field.number(), WireType::LengthDelimited)?;
                }
            }
            FieldType::Message(sub_id) => {
                // OP expands sub-message elements into sub-tables built by
                // the CPU at set-time; the model builds them lazily here
                // through the element objects' own tables is not available,
                // so walk the objects via the protoacc layout (charging the
                // same reads the table walk would).
                for i in (0..count).rev() {
                    let elem_obj = mem.data.read_u64(data + i * 8);
                    *cycles += mem.system.access(data + i * 8, 8, AccessKind::Read) + 1;
                    let before = writer.cursor();
                    self.ser_object_fallback(
                        mem, writer, schema, layouts, sub_id, elem_obj, cycles,
                    )?;
                    let len = before - writer.cursor();
                    writer.prepend_varint(mem, len)?;
                    prepend_key(mem, writer, field.number(), WireType::LengthDelimited)?;
                }
            }
            scalar => {
                let size = scalar.scalar_kind().expect("repeated scalar").size() as u64;
                *cycles += mem
                    .system
                    .access(data, (count * size) as usize, AccessKind::Read);
                if field.is_packed() {
                    let before = writer.cursor();
                    for i in (0..count).rev() {
                        let bits = read_bits(mem, data + i * size, size);
                        emit_value(mem, writer, type_code, bits)?;
                        *cycles += 1;
                    }
                    let body = before - writer.cursor();
                    writer.prepend_varint(mem, body)?;
                    prepend_key(mem, writer, field.number(), WireType::LengthDelimited)?;
                } else {
                    for i in (0..count).rev() {
                        let bits = read_bits(mem, data + i * size, size);
                        emit_scalar(mem, writer, type_code, field.number(), bits)?;
                        *cycles += 1;
                    }
                }
            }
        }
        Ok(())
    }

    /// Repeated sub-message elements have no table of their own in this
    /// model; serialize them by walking hasbits like protoacc (cost charged
    /// to the OP unit — slightly favoring protoacc's competitor is fine, it
    /// loses on the CPU side regardless).
    #[allow(clippy::too_many_arguments)]
    fn ser_object_fallback(
        &mut self,
        mem: &mut Memory,
        writer: &mut ReverseWriter,
        schema: &Schema,
        layouts: &MessageLayouts,
        type_id: MessageId,
        obj: u64,
        cycles: &mut Cycles,
    ) -> Result<(), AccelError> {
        let layout = layouts.layout(type_id);
        let descriptor = schema.message(type_id);
        *cycles += mem.system.pipelined(
            obj + layout.hasbits_offset(),
            layout.hasbits_bytes() as usize,
            AccessKind::Read,
        );
        let present: Vec<u32> = hasbits::present_fields(&mem.data, layout, obj);
        for number in present.into_iter().rev() {
            let Some(field) = descriptor.field_by_number(number) else {
                continue;
            };
            let slot = layout.slot(number).expect("defined field");
            let slot_addr = obj + slot.offset;
            let type_code = TypeCode::from_field_type(field.field_type());
            *cycles += 1;
            match slot.kind {
                SlotKind::Scalar(kind) => {
                    *cycles += mem.system.access(slot_addr, kind.size(), AccessKind::Read);
                    let bits = read_bits(mem, slot_addr, kind.size() as u64);
                    emit_scalar(mem, writer, type_code, number, bits)?;
                }
                SlotKind::StringPtr => {
                    let str_obj = mem.data.read_u64(slot_addr);
                    let data_ptr = mem.data.read_u64(str_obj);
                    let len = mem.data.read_u64(str_obj + 8);
                    *cycles += mem.system.access(slot_addr, 8, AccessKind::Read)
                        + mem.system.access(str_obj, 16, AccessKind::Read)
                        + mem
                            .system
                            .pipelined(data_ptr, len as usize, AccessKind::Read);
                    let payload = mem.data.read_vec(data_ptr, len as usize);
                    writer.prepend(mem, &payload)?;
                    writer.prepend_varint(mem, len)?;
                    prepend_key(mem, writer, number, WireType::LengthDelimited)?;
                }
                SlotKind::MessagePtr => {
                    let FieldType::Message(sub_id) = field.field_type() else {
                        continue;
                    };
                    let sub_obj = mem.data.read_u64(slot_addr);
                    *cycles += mem.system.access(slot_addr, 8, AccessKind::Read);
                    let before = writer.cursor();
                    self.ser_object_fallback(
                        mem, writer, schema, layouts, sub_id, sub_obj, cycles,
                    )?;
                    let len = before - writer.cursor();
                    writer.prepend_varint(mem, len)?;
                    prepend_key(mem, writer, number, WireType::LengthDelimited)?;
                }
                SlotKind::RepeatedPtr => {
                    let header = mem.data.read_u64(slot_addr);
                    *cycles += mem.system.access(slot_addr, 8, AccessKind::Read)
                        + mem.system.access(header, 16, AccessKind::Read);
                    let data = mem.data.read_u64(header);
                    let n = mem.data.read_u64(header + 8);
                    self.ser_repeated(
                        mem, writer, schema, layouts, field, type_code, data, n, cycles,
                    )?;
                }
            }
        }
        Ok(())
    }
}

fn read_bits(mem: &Memory, addr: u64, size: u64) -> u64 {
    match size {
        1 => u64::from(mem.data.read_u8(addr)),
        4 => u64::from(mem.data.read_u32(addr)),
        8 => mem.data.read_u64(addr),
        other => unreachable!("no {other}-byte scalars"),
    }
}

fn emit_value(
    mem: &mut Memory,
    writer: &mut ReverseWriter,
    type_code: TypeCode,
    bits: u64,
) -> Result<(), AccelError> {
    match type_code.wire_type() {
        WireType::Varint => {
            let encoded = CombVarintEncoder::encode(type_code.wire_varint_from_bits(bits));
            writer.prepend(mem, encoded.as_slice())?;
        }
        WireType::Bits32 => {
            writer.prepend(mem, &(bits as u32).to_le_bytes())?;
        }
        WireType::Bits64 => {
            writer.prepend(mem, &bits.to_le_bytes())?;
        }
        _ => unreachable!("length-delimited handled by callers"),
    }
    Ok(())
}

fn emit_scalar(
    mem: &mut Memory,
    writer: &mut ReverseWriter,
    type_code: TypeCode,
    number: u32,
    bits: u64,
) -> Result<(), AccelError> {
    emit_value(mem, writer, type_code, bits)?;
    prepend_key(mem, writer, number, type_code.wire_type())
}

fn prepend_key(
    mem: &mut Memory,
    writer: &mut ReverseWriter,
    number: u32,
    wire_type: WireType,
) -> Result<(), AccelError> {
    let key = FieldKey::new(number, wire_type).expect("valid field number");
    let encoded = CombVarintEncoder::encode(key.encoded());
    writer.prepend(mem, encoded.as_slice())?;
    Ok(())
}
