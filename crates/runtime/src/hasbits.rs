//! Presence tracking: sparse and dense hasbits.
//!
//! Upstream protoc packs hasbits densely (one bit per *declared* field, in
//! declaration order). The paper modifies this to a sparse representation the
//! accelerator can index directly by `field_number - min_field` (Section
//! 4.2), trading extra bits of storage for the removal of a mapping-table
//! read per field. Section 3.7 quantifies the trade-off; both layouts are
//! implemented here so the ablation bench can reproduce it.

use protoacc_mem::GuestMemory;
use protoacc_schema::MessageDescriptor;

use crate::MessageLayout;

/// Sets or clears the sparse hasbit of `field_number` in the object at
/// `object_addr`, as the deserializer's hasbits-writer unit does
/// (Section 4.4.4).
pub fn write_sparse(
    mem: &mut GuestMemory,
    layout: &MessageLayout,
    object_addr: u64,
    field_number: u32,
    present: bool,
) {
    let (byte, bit) = layout.hasbit_position(field_number);
    let addr = object_addr + layout.hasbits_offset() + byte;
    let old = mem.read_u8(addr);
    let new = if present {
        old | (1 << bit)
    } else {
        old & !(1 << bit)
    };
    mem.write_u8(addr, new);
}

/// Reads the sparse hasbit of `field_number`.
pub fn read_sparse(
    mem: &GuestMemory,
    layout: &MessageLayout,
    object_addr: u64,
    field_number: u32,
) -> bool {
    let (byte, bit) = layout.hasbit_position(field_number);
    let addr = object_addr + layout.hasbits_offset() + byte;
    mem.read_u8(addr) & (1 << bit) != 0
}

/// Iterator over the present field numbers of an object, scanning the sparse
/// hasbits array bit-by-bit exactly like the serializer frontend
/// (Section 4.5.3).
pub fn present_fields(mem: &GuestMemory, layout: &MessageLayout, object_addr: u64) -> Vec<u32> {
    let mut present = Vec::new();
    if layout.max_field() < layout.min_field() {
        return present;
    }
    // Only defined numbers can have their hasbit set, so walking the
    // layout's slots visits the same bits the hardware's span scan would,
    // without touching the (possibly half-billion-slot) gaps.
    for number in layout.field_numbers() {
        if read_sparse(mem, layout, object_addr, number) {
            present.push(number);
        }
    }
    present
}

/// The dense hasbits mapping upstream protoc uses: field → bit by
/// declaration (ascending-number) order. Provided for the Section 3.7
/// ablation; the accelerator itself never uses this.
#[derive(Debug, Clone)]
pub struct DenseHasbits {
    /// Field numbers in dense bit order.
    numbers: Vec<u32>,
}

impl DenseHasbits {
    /// Builds the dense mapping for a message type.
    pub fn new(descriptor: &MessageDescriptor) -> Self {
        DenseHasbits {
            numbers: descriptor
                .fields()
                .iter()
                .map(protoacc_schema::FieldDescriptor::number)
                .collect(),
        }
    }

    /// Bytes of presence state per object under the dense packing.
    pub fn bytes(&self) -> usize {
        self.numbers.len().div_ceil(8)
    }

    /// Dense bit index of a field number, or `None` if undefined. A real
    /// accelerator consuming this packing would need a mapping-table read
    /// (an extra 32-bit load per field, Section 4.2) to compute it.
    pub fn bit_of(&self, field_number: u32) -> Option<usize> {
        self.numbers.iter().position(|&n| n == field_number)
    }
}

/// Programming-interface cost model of Section 3.7: bits of table state
/// written/read per message instance under the two designs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InterfaceCost {
    /// Prior work (Optimus Prime-style): 64 bits written per present field
    /// to build per-instance schema tables.
    pub prior_work_bits: u64,
    /// This design: one bit read per field number in the defined range.
    pub protoacc_bits: u64,
}

/// Computes the Section 3.7 cost comparison for a message instance.
///
/// `present` is the number of populated fields; `span` the defined
/// field-number range. protoacc wins whenever density `present/span`
/// exceeds 1/64.
pub fn interface_cost(present: u64, span: u64) -> InterfaceCost {
    InterfaceCost {
        prior_work_bits: present * 64,
        protoacc_bits: span,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MessageLayouts;
    use protoacc_schema::{FieldType, SchemaBuilder};

    fn setup() -> (
        protoacc_schema::Schema,
        MessageLayouts,
        protoacc_schema::MessageId,
    ) {
        let mut b = SchemaBuilder::new();
        let id = b.define("M", |m| {
            m.optional("a", FieldType::Bool, 2)
                .optional("b", FieldType::Int32, 5)
                .optional("c", FieldType::Int64, 17);
        });
        let schema = b.build().unwrap();
        let layouts = MessageLayouts::compute(&schema);
        (schema, layouts, id)
    }

    #[test]
    fn sparse_bits_round_trip() {
        let (_, layouts, id) = setup();
        let layout = layouts.layout(id);
        let mut mem = GuestMemory::new();
        let obj = 0x1000;
        for n in [2u32, 5, 17] {
            assert!(!read_sparse(&mem, layout, obj, n));
            write_sparse(&mut mem, layout, obj, n, true);
            assert!(read_sparse(&mem, layout, obj, n));
        }
        write_sparse(&mut mem, layout, obj, 5, false);
        assert!(!read_sparse(&mem, layout, obj, 5));
        assert!(read_sparse(&mem, layout, obj, 2));
        assert!(read_sparse(&mem, layout, obj, 17));
    }

    #[test]
    fn present_fields_scans_in_order() {
        let (_, layouts, id) = setup();
        let layout = layouts.layout(id);
        let mut mem = GuestMemory::new();
        let obj = 0x2000;
        write_sparse(&mut mem, layout, obj, 17, true);
        write_sparse(&mut mem, layout, obj, 2, true);
        assert_eq!(present_fields(&mem, layout, obj), vec![2, 17]);
    }

    #[test]
    fn dense_mapping_matches_declaration_order() {
        let (schema, _, id) = setup();
        let dense = DenseHasbits::new(schema.message(id));
        assert_eq!(dense.bit_of(2), Some(0));
        assert_eq!(dense.bit_of(5), Some(1));
        assert_eq!(dense.bit_of(17), Some(2));
        assert_eq!(dense.bit_of(3), None);
        assert_eq!(dense.bytes(), 1);
    }

    #[test]
    fn section_3_7_crossover() {
        // Density exactly 1/64: costs tie. Above: protoacc wins.
        let tie = interface_cost(1, 64);
        assert_eq!(tie.prior_work_bits, tie.protoacc_bits);
        let sparse_win = interface_cost(2, 64);
        assert!(sparse_win.prior_work_bits > sparse_win.protoacc_bits);
        let dense_win = interface_cost(1, 128);
        assert!(dense_win.prior_work_bits < dense_win.protoacc_bits);
    }
}
