//! Base-128 variable-length integer encoding.
//!
//! The protobuf varint algorithm repeatedly consumes 7 bits at a time from
//! the least-significant side of a fixed-width value until no non-zero bits
//! remain, emitting one byte per group with a continuation bit in the MSB
//! (Section 2.1.2 of the paper).

use crate::{WireError, MAX_VARINT_LEN};

/// Returns the number of bytes `value` occupies when varint-encoded (1..=10).
///
/// ```rust
/// use protoacc_wire::varint::encoded_len;
/// assert_eq!(encoded_len(0), 1);
/// assert_eq!(encoded_len(127), 1);
/// assert_eq!(encoded_len(128), 2);
/// assert_eq!(encoded_len(u64::MAX), 10);
/// ```
#[inline]
pub fn encoded_len(value: u64) -> usize {
    // Each output byte carries 7 payload bits; value 0 still needs one byte.
    let bits = 64 - (value | 1).leading_zeros() as usize;
    bits.div_ceil(7)
}

/// Appends the varint encoding of `value` to `out`, returning the number of
/// bytes written.
///
/// ```rust
/// use protoacc_wire::varint::encode;
/// let mut buf = Vec::new();
/// assert_eq!(encode(1, &mut buf), 1);
/// assert_eq!(buf, [0x01]);
/// ```
#[inline]
pub fn encode(mut value: u64, out: &mut Vec<u8>) -> usize {
    let mut written = 0;
    loop {
        let byte = (value & 0x7f) as u8;
        value >>= 7;
        written += 1;
        if value == 0 {
            out.push(byte);
            return written;
        }
        out.push(byte | 0x80);
    }
}

/// Encodes `value` into a fixed 10-byte buffer, returning the byte length.
///
/// This is the allocation-free variant used by the simulators' inner loops.
#[inline]
pub fn encode_to_array(mut value: u64, out: &mut [u8; MAX_VARINT_LEN]) -> usize {
    let mut i = 0;
    loop {
        let byte = (value & 0x7f) as u8;
        value >>= 7;
        if value == 0 {
            out[i] = byte;
            return i + 1;
        }
        out[i] = byte | 0x80;
        i += 1;
    }
}

/// Decodes a varint from the front of `input`.
///
/// Returns the decoded value and the number of bytes consumed.
///
/// # Errors
///
/// * [`WireError::Truncated`] if `input` ends mid-varint.
/// * [`WireError::VarintOverflow`] if no terminating byte appears within the
///   10-byte maximum.
///
/// Note that, matching the C++ reference implementation, bits beyond the 64th
/// are silently discarded rather than rejected.
#[inline]
pub fn decode(input: &[u8]) -> Result<(u64, usize), WireError> {
    let mut value: u64 = 0;
    for (i, &byte) in input.iter().enumerate().take(MAX_VARINT_LEN) {
        // Shifts past bit 63 drop extra bits, as upstream protobuf does.
        if i * 7 < 64 {
            value |= u64::from(byte & 0x7f) << (i * 7);
        }
        if byte & 0x80 == 0 {
            return Ok((value, i + 1));
        }
    }
    if input.len() < MAX_VARINT_LEN {
        Err(WireError::Truncated {
            offset: input.len(),
        })
    } else {
        Err(WireError::VarintOverflow { offset: 0 })
    }
}

/// Counts how many CPU loop iterations a byte-at-a-time software decoder
/// executes for the varint at the front of `input`.
///
/// The instrumented CPU models charge per-iteration costs; for a well-formed
/// varint this equals its encoded length.
#[inline]
pub fn software_iterations(input: &[u8]) -> usize {
    input
        .iter()
        .take(MAX_VARINT_LEN)
        .position(|b| b & 0x80 == 0)
        .map_or(input.len().min(MAX_VARINT_LEN), |p| p + 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encodes_single_byte_values() {
        for v in 0..=127u64 {
            let mut buf = Vec::new();
            assert_eq!(encode(v, &mut buf), 1);
            assert_eq!(buf, [v as u8]);
        }
    }

    #[test]
    fn encodes_known_vectors() {
        // Canonical examples from the protobuf encoding documentation.
        let cases: &[(u64, &[u8])] = &[
            (0, &[0x00]),
            (1, &[0x01]),
            (150, &[0x96, 0x01]),
            (300, &[0xac, 0x02]),
            (16_384, &[0x80, 0x80, 0x01]),
        ];
        for &(value, expect) in cases {
            let mut buf = Vec::new();
            encode(value, &mut buf);
            assert_eq!(buf, expect, "value {value}");
        }
        let mut buf = Vec::new();
        encode(u64::MAX, &mut buf);
        assert_eq!(buf.len(), 10);
        assert_eq!(&buf[..9], &[0xff; 9]);
        assert_eq!(buf[9], 0x01);
    }

    #[test]
    fn round_trips_across_length_boundaries() {
        // Exercise every encoded-length bucket edge: 2^(7k) - 1 and 2^(7k).
        for k in 1..=9 {
            for v in [(1u64 << (7 * k)) - 1, 1u64 << (7 * k)] {
                let mut buf = Vec::new();
                let n = encode(v, &mut buf);
                assert_eq!(n, encoded_len(v));
                let (decoded, consumed) = decode(&buf).unwrap();
                assert_eq!(decoded, v);
                assert_eq!(consumed, n);
            }
        }
    }

    #[test]
    fn encoded_len_matches_encode() {
        for shift in 0..64 {
            let v = 1u64 << shift;
            let mut buf = Vec::new();
            assert_eq!(encode(v, &mut buf), encoded_len(v));
        }
    }

    #[test]
    fn encode_to_array_matches_encode() {
        for v in [0u64, 1, 127, 128, 300, 1 << 21, u64::MAX] {
            let mut vec = Vec::new();
            let n1 = encode(v, &mut vec);
            let mut arr = [0u8; MAX_VARINT_LEN];
            let n2 = encode_to_array(v, &mut arr);
            assert_eq!(n1, n2);
            assert_eq!(&arr[..n2], vec.as_slice());
        }
    }

    #[test]
    fn decode_rejects_truncated_input() {
        assert_eq!(decode(&[0x80]), Err(WireError::Truncated { offset: 1 }));
        assert_eq!(decode(&[]), Err(WireError::Truncated { offset: 0 }));
    }

    #[test]
    fn decode_rejects_eleven_continuations() {
        let bad = [0xffu8; 11];
        assert_eq!(decode(&bad), Err(WireError::VarintOverflow { offset: 0 }));
    }

    #[test]
    fn decode_accepts_ten_byte_max() {
        let mut buf = Vec::new();
        encode(u64::MAX, &mut buf);
        let (v, n) = decode(&buf).unwrap();
        assert_eq!(v, u64::MAX);
        assert_eq!(n, 10);
    }

    #[test]
    fn decode_discards_bits_past_64() {
        // A 10-byte varint whose final byte carries bits beyond the 64th:
        // upstream protobuf truncates, and so do we.
        let buf = [0x81, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x7f];
        let (v, n) = decode(&buf).unwrap();
        assert_eq!(n, 10);
        // Byte 9 contributes only its lowest bit (bit 63); bits 64+ vanish.
        assert_eq!(v, (1u64 << 63) | 1);
    }

    #[test]
    fn decode_ignores_trailing_bytes() {
        let buf = [0x05, 0xde, 0xad];
        assert_eq!(decode(&buf).unwrap(), (5, 1));
    }

    #[test]
    fn software_iterations_counts_bytes() {
        let mut buf = Vec::new();
        encode(1u64 << 40, &mut buf);
        assert_eq!(software_iterations(&buf), buf.len());
        assert_eq!(software_iterations(&[0x80, 0x80]), 2);
    }
}
