use std::error::Error;
use std::fmt;

/// Error produced while building or parsing a schema.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SchemaError {
    /// The `.proto` source failed to parse.
    Parse {
        /// 1-based line number of the failure.
        line: usize,
        /// Description of what went wrong.
        message: String,
    },
    /// A field referenced a message type that is not defined in the schema.
    UnknownMessageType {
        /// The unresolved type name.
        name: String,
    },
    /// Two fields in one message share a field number.
    DuplicateFieldNumber {
        /// The message in which the collision occurred.
        message: String,
        /// The colliding field number.
        number: u32,
    },
    /// Two messages in one schema share a fully-qualified name.
    DuplicateMessageName {
        /// The colliding name.
        name: String,
    },
    /// A field number was zero or exceeded the proto2 maximum.
    InvalidFieldNumber {
        /// The offending number.
        number: u32,
    },
    /// `packed` was requested on a field type that cannot be packed.
    InvalidPacked {
        /// The offending field name.
        field: String,
    },
    /// A message contained no fields where at least one was required.
    EmptyMessage {
        /// The offending message name.
        name: String,
    },
}

impl fmt::Display for SchemaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchemaError::Parse { line, message } => {
                write!(f, "parse error at line {line}: {message}")
            }
            SchemaError::UnknownMessageType { name } => {
                write!(f, "unknown message type `{name}`")
            }
            SchemaError::DuplicateFieldNumber { message, number } => {
                write!(f, "duplicate field number {number} in message `{message}`")
            }
            SchemaError::DuplicateMessageName { name } => {
                write!(f, "duplicate message name `{name}`")
            }
            SchemaError::InvalidFieldNumber { number } => {
                write!(f, "invalid field number {number}")
            }
            SchemaError::InvalidPacked { field } => {
                write!(f, "field `{field}` cannot be packed")
            }
            SchemaError::EmptyMessage { name } => {
                write!(f, "message `{name}` has no fields")
            }
        }
    }
}

impl Error for SchemaError {}
