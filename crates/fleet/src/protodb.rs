//! `protodb`-style static registry facts (§3.1.3, §3.3).

use xrand::Rng;

use crate::Discrete;

/// Protobuf language version a message type is defined against.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ProtoVersion {
    /// The proto2 language (the accelerator's target).
    Proto2,
    /// The proto3 language.
    Proto3,
}

/// Static registry summary.
#[derive(Debug, Clone, Copy)]
pub struct Registry {
    /// Fraction of serialized/deserialized *bytes* defined in proto2
    /// (0.96 in §3.3).
    pub proto2_bytes_fraction: f64,
    /// Fraction of repeated scalar fields declared `packed`.
    pub packed_fraction: f64,
    /// Average fraction of defined fields populated in observed messages
    /// (§3.9: over 90% of messages populate fewer than 52% of their fields).
    pub mean_populated_fraction: f64,
}

impl Registry {
    /// The 2021 Google-fleet parameterization.
    pub fn google_2021() -> Self {
        Registry {
            proto2_bytes_fraction: 0.96,
            packed_fraction: 0.55,
            mean_populated_fraction: 0.52,
        }
    }

    /// §3.3's conclusion: proto2 is the right target iff the overwhelming
    /// majority of bytes are proto2.
    pub fn proto2_is_the_right_target(&self) -> bool {
        self.proto2_bytes_fraction > 0.9
    }

    /// Samples the proto version of one observed byte.
    pub fn sample_version<R: Rng + ?Sized>(&self, rng: &mut R) -> ProtoVersion {
        let dist = Discrete::new(&[self.proto2_bytes_fraction, 1.0 - self.proto2_bytes_fraction]);
        match dist.sample(rng) {
            0 => ProtoVersion::Proto2,
            _ => ProtoVersion::Proto3,
        }
    }
}

/// Static per-schema statistics, as `protodb` exposes for every `.proto`
/// file in the codebase (§3.1.3: "the version of the protobufs language a
/// message is defined against, whether repeated fields are packed, and the
/// range of field numbers defined in a message").
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SchemaStats {
    /// Message types defined.
    pub message_types: usize,
    /// Total fields across all types.
    pub fields: usize,
    /// Repeated fields.
    pub repeated_fields: usize,
    /// Repeated fields declared `packed`.
    pub packed_fields: usize,
    /// Sub-message fields.
    pub submessage_fields: usize,
    /// Largest field-number span of any type (sizes the widest ADT entry
    /// region and hasbits array).
    pub max_field_number_span: usize,
    /// Mean static density: defined fields / field-number span, averaged
    /// over types (an upper bound on the Figure 7 dynamic density).
    pub mean_static_density: f64,
}

/// Computes `protodb`-style statistics for a schema.
pub fn analyze_schema(schema: &protoacc_schema::Schema) -> SchemaStats {
    let mut stats = SchemaStats {
        message_types: schema.len(),
        fields: 0,
        repeated_fields: 0,
        packed_fields: 0,
        submessage_fields: 0,
        max_field_number_span: 0,
        mean_static_density: 0.0,
    };
    let mut density_sum = 0.0;
    for (_, m) in schema.iter() {
        stats.fields += m.fields().len();
        for f in m.fields() {
            if f.is_repeated() {
                stats.repeated_fields += 1;
            }
            if f.is_packed() {
                stats.packed_fields += 1;
            }
            if f.field_type().is_message() {
                stats.submessage_fields += 1;
            }
        }
        let span = m.field_number_span();
        stats.max_field_number_span = stats.max_field_number_span.max(span);
        if span > 0 {
            density_sum += m.fields().len() as f64 / span as f64;
        }
    }
    if stats.message_types > 0 {
        stats.mean_static_density = density_sum / stats.message_types as f64;
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use xrand::StdRng;

    #[test]
    fn proto2_dominates() {
        let r = Registry::google_2021();
        assert!(r.proto2_is_the_right_target());
        assert!((r.proto2_bytes_fraction - 0.96).abs() < 1e-9);
    }

    #[test]
    fn analyze_schema_counts_structure() {
        use protoacc_schema::{FieldType, SchemaBuilder};
        let mut b = SchemaBuilder::new();
        let inner = b.declare("Inner");
        b.message(inner).optional("x", FieldType::Bool, 1);
        let outer = b.declare("Outer");
        b.message(outer)
            .optional("a", FieldType::Int32, 1)
            .packed("p", FieldType::Int64, 5)
            .repeated("r", FieldType::String, 7)
            .optional("s", FieldType::Message(inner), 20);
        let schema = b.build().unwrap();
        let stats = analyze_schema(&schema);
        assert_eq!(stats.message_types, 2);
        assert_eq!(stats.fields, 5);
        assert_eq!(stats.repeated_fields, 2);
        assert_eq!(stats.packed_fields, 1);
        assert_eq!(stats.submessage_fields, 1);
        assert_eq!(stats.max_field_number_span, 20);
        // Inner density 1.0, Outer density 4/20 = 0.2 -> mean 0.6.
        assert!((stats.mean_static_density - 0.6).abs() < 1e-9);
    }

    #[test]
    fn analyze_empty_schema() {
        let schema = protoacc_schema::Schema::new();
        let stats = analyze_schema(&schema);
        assert_eq!(stats.message_types, 0);
        assert_eq!(stats.mean_static_density, 0.0);
    }

    #[test]
    fn version_sampling_matches_fraction() {
        let r = Registry::google_2021();
        let mut rng = StdRng::seed_from_u64(3);
        let proto2 = (0..50_000)
            .filter(|_| r.sample_version(&mut rng) == ProtoVersion::Proto2)
            .count();
        let fraction = proto2 as f64 / 50_000.0;
        assert!((fraction - 0.96).abs() < 0.01, "fraction {fraction}");
    }
}
